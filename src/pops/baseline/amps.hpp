#pragma once
// The industrial-tool comparison baseline ("AMPS substitute", see
// DESIGN.md).
//
// The paper compares POPS against AMPS (Synopsys), which it characterises
// behaviourally: an *iterative* transistor sizer that repeatedly
// re-evaluates the path, needs two orders of magnitude more CPU (Table 1),
// reaches a worse minimum delay (Fig. 2, "pseudo-random sizing
// technique"), and over-sizes under a hard constraint (Fig. 4). This
// module reproduces exactly that computational profile with published
// algorithms:
//
//   * minimize_delay      — greedy steepest-descent upsizing with discrete
//                           size steps plus pseudo-random restarts;
//   * meet_constraint     — TILOS-style greedy: grow the gate with the best
//                           delay-gain-per-area until Tc holds
//                           (Fishburn/Dunlop, ICCAD'85 — ref [2]).
//
// Every candidate move triggers a full-path delay re-evaluation (the
// "embedded simulator" cost structure of industrial iterative tools):
// O(N^2) evaluations per step versus POPS's O(N) sweep — the Table 1 CPU
// gap follows from the algorithm, not from artificial slowdown.

#include <cstdint>

#include "pops/timing/delay_model.hpp"
#include "pops/timing/path.hpp"

namespace pops::baseline {

struct AmpsOptions {
  /// Discrete multiplicative size step. Industrial flows size over the
  /// library's drive classes (X1/X2/X3/X4/X6/...), i.e. a coarse ~1.35x
  /// grid — this is what keeps the iterative tool away from the continuum
  /// optimum the closed-form method reaches (Fig. 2 / Fig. 4).
  double upsize_factor = 1.35;
  int max_moves = 100000;       ///< move budget per descent
  int random_restarts = 4;      ///< pseudo-random restarts (delay mode)
  double restart_spread = 0.5;  ///< log-uniform perturbation half-range
  std::uint64_t seed = 0xA1157;
  double tc_rel_tol = 1e-3;
  /// Constraint guard band. The paper, §2: "The uncertainty in routing
  /// capacitance estimation imposes to use many iterations or to consider
  /// very large safety margin resulting in oversized designs" — the
  /// industrial tool targets Tc*(1 - margin) and over-delivers.
  double safety_margin = 0.05;
};

struct AmpsResult {
  timing::BoundedPath path;
  double delay_ps = 0.0;
  double area_um = 0.0;
  bool feasible = false;
  long evaluations = 0;  ///< # of full-path delay evaluations performed
};

/// Greedy + random-restart minimum-delay sizing (the Fig. 2 "AMPS" bar).
AmpsResult minimize_delay(const timing::BoundedPath& path,
                          const timing::DelayModel& dm,
                          const AmpsOptions& opt = {});

/// TILOS-style constraint satisfaction (the Fig. 4 / Table 1 "AMPS" bar):
/// start from minimum sizes, repeatedly upsize the most effective gate.
AmpsResult meet_constraint(const timing::BoundedPath& path,
                           const timing::DelayModel& dm, double tc_ps,
                           const AmpsOptions& opt = {});

}  // namespace pops::baseline
