#include "pops/baseline/amps.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pops/util/rng.hpp"

namespace pops::baseline {

using timing::BoundedPath;
using timing::DelayModel;

namespace {

/// One steepest-descent pass in the TILOS family: monotone upsizing over
/// the discrete drive grid — repeatedly apply the single coarse up-step
/// that reduces the path delay the most; stop when no step improves.
/// Every probe is a full-path evaluation (counted).
double greedy_descend(BoundedPath& path, const DelayModel& dm,
                      const AmpsOptions& opt, long& evaluations) {
  double best = path.delay_ps(dm);
  ++evaluations;
  for (int move = 0; move < opt.max_moves; ++move) {
    int best_stage = -1;
    double best_cin = 0.0;
    double best_delay = best;
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (!path.sizable(i)) continue;
      const double original = path.cin(i);
      path.set_cin(i, original * opt.upsize_factor);
      const double d = path.delay_ps(dm);
      ++evaluations;
      if (d < best_delay) {
        best_delay = d;
        best_stage = static_cast<int>(i);
        best_cin = path.cin(i);
      }
      path.set_cin(i, original);
    }
    if (best_stage < 0) break;
    path.set_cin(static_cast<std::size_t>(best_stage), best_cin);
    best = best_delay;
  }
  return best;
}

}  // namespace

AmpsResult minimize_delay(const BoundedPath& path, const DelayModel& dm,
                          const AmpsOptions& opt) {
  util::Rng rng(opt.seed);
  AmpsResult res{path, 0.0, 0.0, true, 0};

  // Descent from minimum sizes.
  BoundedPath work = path;
  work.set_all_min_drive();
  double best_delay = greedy_descend(work, dm, opt, res.evaluations);
  BoundedPath best_path = work;

  // Pseudo-random restarts: log-uniform perturbations around the incumbent.
  for (int r = 0; r < opt.random_restarts; ++r) {
    BoundedPath probe = best_path;
    for (std::size_t i = 1; i < probe.size(); ++i) {
      if (!probe.sizable(i)) continue;
      const double f =
          std::exp(rng.uniform(-opt.restart_spread, opt.restart_spread));
      probe.set_cin(i, probe.cin(i) * f);
    }
    const double d = greedy_descend(probe, dm, opt, res.evaluations);
    if (d < best_delay) {
      best_delay = d;
      best_path = std::move(probe);
    }
  }

  res.path = std::move(best_path);
  res.delay_ps = best_delay;
  res.area_um = res.path.area_um();
  return res;
}

AmpsResult meet_constraint(const BoundedPath& path, const DelayModel& dm,
                           double tc_ps, const AmpsOptions& opt) {
  if (!(tc_ps > 0.0))
    throw std::invalid_argument("meet_constraint: Tc must be > 0");

  AmpsResult res{path, 0.0, 0.0, false, 0};
  BoundedPath work = path;
  work.set_all_min_drive();
  double delay = work.delay_ps(dm);
  ++res.evaluations;

  // The industrial guard band (see AmpsOptions::safety_margin).
  const double target_ps = tc_ps * (1.0 - opt.safety_margin);

  for (int move = 0; move < opt.max_moves && delay > target_ps; ++move) {
    // TILOS step: the upsize with the best delay reduction per added area.
    int best_stage = -1;
    double best_score = 0.0;
    double best_delay = delay;
    double best_cin = 0.0;
    for (std::size_t i = 1; i < work.size(); ++i) {
      if (!work.sizable(i)) continue;
      const double original = work.cin(i);
      const double candidate = original * opt.upsize_factor;
      if (candidate <= original * 1.0000001) continue;  // clamped at max
      work.set_cin(i, candidate);
      const double d = work.delay_ps(dm);
      ++res.evaluations;
      const double darea = work.cin(i) - original;  // ~ area increase proxy
      work.set_cin(i, original);
      const double gain = delay - d;
      if (gain <= 0.0 || darea <= 0.0) continue;
      const double score = gain / darea;
      if (score > best_score) {
        best_score = score;
        best_stage = static_cast<int>(i);
        best_delay = d;
        best_cin = candidate;
      }
    }
    if (best_stage < 0) break;  // stuck: constraint unreachable by sizing
    work.set_cin(static_cast<std::size_t>(best_stage), best_cin);
    delay = best_delay;
  }

  res.path = std::move(work);
  res.delay_ps = delay;
  res.area_um = res.path.area_um();
  res.feasible = delay <= tc_ps * (1.0 + opt.tc_rel_tol);
  return res;
}

}  // namespace pops::baseline
