#pragma once
// The unified entry point of the POPS reproduction.
//
//   api::OptContext ctx;                            // library + model + Flimit
//   api::Optimizer opt(ctx);                        // validated config
//   api::PipelineReport r = opt.run_relative(nl, 0.8);
//
// One Optimizer drives the standard pass pipeline (or any custom
// PassPipeline) over single circuits or over batches: run_many fans a
// span of independent netlists out across a thread pool — each circuit is
// optimized by the same deterministic pipeline, so the results are
// bit-identical for any thread count (verified in tests).

#include <cstddef>
#include <span>
#include <vector>

#include "pops/api/config.hpp"
#include "pops/api/context.hpp"
#include "pops/api/pipeline.hpp"

namespace pops::api {

class Optimizer {
 public:
  /// Bind to a context (borrowed; must outlive the optimizer) with a
  /// validated config. Throws ConfigError listing every violated
  /// invariant, so a bad config fails at construction instead of silently
  /// misclassifying constraint domains later.
  explicit Optimizer(OptContext& ctx, OptimizerConfig cfg = {});

  const OptimizerConfig& config() const noexcept { return cfg_; }
  OptContext& context() const noexcept { return *ctx_; }
  const PassPipeline& pipeline() const noexcept { return pipeline_; }

  /// Replace the standard pipeline with a custom one (pass plugins).
  void set_pipeline(PassPipeline pipeline);

  // ----- single circuit -------------------------------------------------------

  /// Optimize `nl` in place toward the absolute constraint `tc_ps`.
  PipelineReport run(netlist::Netlist& nl, double tc_ps) const;

  /// Optimize toward Tc = `tc_ratio` x the circuit's initial critical
  /// delay (the way the paper's circuit experiments state constraints).
  PipelineReport run_relative(netlist::Netlist& nl, double tc_ratio) const;

  // ----- batch ----------------------------------------------------------------

  /// Optimize every netlist of `circuits` in place, fanning the work out
  /// over `n_threads` workers (0 = hardware concurrency). Circuits are
  /// independent, the pipeline is deterministic, and the Flimit cache is
  /// warmed up front, so results are bit-identical for any thread count.
  /// Reports are returned in input order.
  std::vector<PipelineReport> run_many(std::span<netlist::Netlist> circuits,
                                       double tc_ps,
                                       std::size_t n_threads = 0) const;

  /// Batch version of run_relative: per-circuit Tc = ratio x initial delay.
  std::vector<PipelineReport> run_many_relative(
      std::span<netlist::Netlist> circuits, double tc_ratio,
      std::size_t n_threads = 0) const;

 private:
  std::vector<PipelineReport> run_many_impl(std::span<netlist::Netlist> nls,
                                            double tc, bool relative,
                                            std::size_t n_threads) const;
  /// The single optimization point behind every entry point: consult the
  /// context's ResultCacheHook (if installed) and replay a memoized run,
  /// or run the pipeline and record the result. Cached replays are
  /// bit-identical to fresh runs and flagged with report.from_cache.
  PipelineReport run_point(netlist::Netlist& nl, double tc_ps,
                           double initial_delay_ps) const;
  /// run_point for a relative constraint: with a cache installed, even
  /// the initial STA (needed to turn the ratio into an absolute Tc) is
  /// memoized, so a repeated point is O(lookup) end to end.
  PipelineReport run_relative_point(netlist::Netlist& nl,
                                    double tc_ratio) const;
  double initial_delay_ps(const netlist::Netlist& nl) const;
  /// Throws std::logic_error when the context's installed delay-model
  /// backend no longer matches this optimizer's selection (another
  /// Optimizer constructed on the shared context swapped it) — running
  /// anyway would silently compute under the wrong backend.
  void ensure_backend_current() const;

  OptContext* ctx_;
  OptimizerConfig cfg_;
  PassPipeline pipeline_;
};

}  // namespace pops::api
