#pragma once
// Unified optimizer configuration — the single options surface of the
// pops::api layer.
//
// The seed exposed five scattered options structs (ProtocolOptions,
// CircuitOptions, ShieldOptions, BoundsOptions, SensitivityOptions), each
// consumed by a different free function and none validated: a config with
// hard_ratio >= weak_ratio silently collapses the Medium domain and the
// Fig. 7 protocol misclassifies every path. OptimizerConfig subsumes all
// five behind one builder-style object, validates every invariant up
// front, and projects back onto the legacy structs so the core kernels
// (and the forwarding shims kept for the old API) are driven unchanged.

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "pops/core/netopt.hpp"
#include "pops/core/protocol.hpp"
#include "pops/power/power_model.hpp"
#include "pops/timing/table_model.hpp"

namespace pops::api {

/// Thrown when a configuration violates an invariant. The message lists
/// *every* violated invariant, not just the first.
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::vector<std::string>& problems);
  const std::vector<std::string>& problems() const noexcept {
    return problems_;
  }

 private:
  std::vector<std::string> problems_;
};

/// One configuration object for the whole optimization pipeline.
///
/// Builder-style: setters return *this so configs compose in one
/// expression; `validate()` reports every violated invariant and
/// `ensure_valid()` throws a ConfigError carrying the same list. The
/// Optimizer validates at construction, so a misconfigured run fails with
/// a diagnostic instead of silently misclassifying constraint domains.
struct OptimizerConfig {
  // --- Fig. 6 constraint-domain thresholds -----------------------------------
  double hard_ratio = 1.2;  ///< Tc < hard_ratio*Tmin  -> hard
  double weak_ratio = 2.5;  ///< Tc > weak_ratio*Tmin  -> weak
  bool allow_restructuring = true;

  // --- circuit-level protocol driver -----------------------------------------
  std::size_t max_paths = 24;  ///< K most critical paths per round
  int max_rounds = 6;          ///< STA re-verification rounds
  double tc_margin = 0.97;     ///< per-path tightening, in (0, 1]
  double pi_slew_ps = -1.0;    ///< forwarded to STA; <= 0 = model default

  // --- STA execution knobs (performance only; results are bitwise
  // --- identical at any worker count, so result caches ignore them) ----------
  std::size_t sta_workers = 1;  ///< level-parallel STA sweep workers
  /// Netlists below this node count keep sequential sweeps even when
  /// sta_workers > 1 (per-level fan-out overhead dominates there).
  std::size_t sta_parallel_min_nodes = 50000;

  // --- circuit-wide shielding pass -------------------------------------------
  double shield_margin = 1.0;          ///< flag nets with F > margin*Flimit
  std::size_t max_shield_buffers = 64; ///< insertion budget
  double shield_fanout = 4.0;          ///< shield buffer drive rule

  // --- which standard passes run ---------------------------------------------
  bool enable_shielding = true;  ///< shield_high_fanout_nets pass
  bool enable_cleanup = true;    ///< cancel_inverter_pairs + sweep_dead
  bool enable_protocol = true;   ///< the Fig. 7 circuit protocol

  // --- numerical solver knobs -------------------------------------------------
  core::BoundsOptions bounds;
  core::SensitivityOptions sensitivity;

  // --- delay-model backend ----------------------------------------------------
  /// Backend name: "closed-form" (eq. 1-3) or "table" (NLDM-style lookup
  /// tables characterized from the closed form over table_model's grid).
  /// api::Optimizer installs the selected backend on its OptContext at
  /// construction (see OptContext::set_delay_model).
  std::string delay_model = "closed-form";
  /// Characterization grid used when delay_model == "table".
  timing::TableModelOptions table_model;

  // --- power-model backend ----------------------------------------------------
  /// Backend name: "proxy" (the paper's ΣW proxy + flat leakage) or
  /// "state" (state-dependent sub-threshold + gate leakage per Vt class).
  std::string power_model = "proxy";
  /// Junction temperature power is evaluated at (degC). The default is
  /// the reference every leakage calibration is stated at.
  double temperature_c = power::kDefaultTemperatureC;
  /// Vt classes (by Technology::vt_classes name) passes may assign.
  /// The first entry is the default class every gate starts in; the
  /// multi-vt pass moves slack-rich cells into the lowest-leakage other
  /// enabled class.
  std::vector<std::string> vt_library{"svt", "hvt"};
  bool enable_multi_vt = false;  ///< slack-driven high-Vt assignment pass

  // --- builder-style setters ---------------------------------------------------
  OptimizerConfig& with_domain_ratios(double hard, double weak) {
    hard_ratio = hard;
    weak_ratio = weak;
    return *this;
  }
  OptimizerConfig& with_restructuring(bool allow) {
    allow_restructuring = allow;
    return *this;
  }
  OptimizerConfig& with_max_paths(std::size_t k) {
    max_paths = k;
    return *this;
  }
  OptimizerConfig& with_max_rounds(int rounds) {
    max_rounds = rounds;
    return *this;
  }
  OptimizerConfig& with_tc_margin(double margin) {
    tc_margin = margin;
    return *this;
  }
  OptimizerConfig& with_pi_slew_ps(double slew) {
    pi_slew_ps = slew;
    return *this;
  }
  OptimizerConfig& with_sta_workers(std::size_t workers) {
    sta_workers = workers;
    return *this;
  }
  OptimizerConfig& with_sta_threshold(std::size_t min_nodes) {
    sta_parallel_min_nodes = min_nodes;
    return *this;
  }
  OptimizerConfig& with_shielding(bool on) {
    enable_shielding = on;
    return *this;
  }
  OptimizerConfig& with_shield_budget(std::size_t max_buffers) {
    max_shield_buffers = max_buffers;
    return *this;
  }
  OptimizerConfig& with_cleanup(bool on) {
    enable_cleanup = on;
    return *this;
  }
  OptimizerConfig& with_protocol(bool on) {
    enable_protocol = on;
    return *this;
  }
  OptimizerConfig& with_bounds(const core::BoundsOptions& b) {
    bounds = b;
    return *this;
  }
  OptimizerConfig& with_sensitivity(const core::SensitivityOptions& s) {
    sensitivity = s;
    return *this;
  }
  OptimizerConfig& with_delay_model(std::string name) {
    delay_model = std::move(name);
    return *this;
  }
  OptimizerConfig& with_table_model(timing::TableModelOptions opt) {
    table_model = std::move(opt);
    return *this;
  }
  OptimizerConfig& with_power_model(std::string name) {
    power_model = std::move(name);
    return *this;
  }
  OptimizerConfig& with_temperature(double celsius) {
    temperature_c = celsius;
    return *this;
  }
  OptimizerConfig& with_vt_library(std::vector<std::string> classes) {
    vt_library = std::move(classes);
    return *this;
  }
  OptimizerConfig& with_multi_vt(bool on) {
    enable_multi_vt = on;
    return *this;
  }

  // --- validation --------------------------------------------------------------

  /// Every violated invariant, as human-readable diagnostics. Empty when
  /// the config is usable.
  std::vector<std::string> validate() const;

  /// Throws ConfigError listing every problem; no-op when valid.
  void ensure_valid() const;

  // --- projections onto the legacy options structs -----------------------------

  core::ProtocolOptions protocol_options() const;
  core::CircuitOptions circuit_options() const;
  core::ShieldOptions shield_options() const;

  // --- delay-model backend construction ----------------------------------------

  /// Build a fresh instance of the backend this config selects, over
  /// `lib`. Throws ConfigError when the selection is invalid.
  std::unique_ptr<timing::DelayModel> make_delay_model(
      const liberty::Library& lib) const;

  /// Identity of the selected backend (name + construction parameters),
  /// comparable against timing::DelayModel::selector() to decide whether
  /// an installed backend already satisfies this config.
  std::string delay_model_selector() const;

  // --- power-model backend construction -----------------------------------------

  /// Build a fresh instance of the power backend this config selects,
  /// over `lib`. Throws ConfigError when the selection is invalid.
  std::unique_ptr<power::PowerModel> make_power_model(
      const liberty::Library& lib) const;

  /// Identity of the selected power backend, comparable against
  /// power::PowerModel::selector().
  std::string power_model_selector() const;

  /// Lift a legacy circuit-level options struct into a protocol-only
  /// unified config. Note the legacy shim (core::optimize_circuit)
  /// forwards its options directly to api::ProtocolPass::run_protocol —
  /// this lift is for callers migrating a stored CircuitOptions onto an
  /// Optimizer.
  static OptimizerConfig from_legacy(const core::CircuitOptions& opt);
};

}  // namespace pops::api
