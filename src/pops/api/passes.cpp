#include "pops/api/passes.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "pops/core/netopt.hpp"
#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"
#include "pops/power/power_model.hpp"
#include "pops/timing/incremental_sta.hpp"
#include "pops/timing/path.hpp"
#include "pops/timing/sta.hpp"

namespace pops::api {

using netlist::Netlist;
using timing::BoundedPath;
using timing::DelayModel;

void ShieldPass::run(Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
                     double /*tc_ps*/, PassReport& report) const {
  const core::ShieldReport r = core::shield_high_fanout_nets(
      nl, ctx.dm(), ctx.flimits(), cfg.shield_options());
  report.buffers_inserted = r.buffers_inserted;
  report.changed = r.buffers_inserted > 0;
}

void ShieldPass::run(Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
                     double /*tc_ps*/, PassReport& report,
                     timing::IncrementalSta& sta) const {
  const core::ShieldReport r = core::shield_high_fanout_nets(
      nl, ctx.dm(), ctx.flimits(), cfg.shield_options(), &sta);
  report.buffers_inserted = r.buffers_inserted;
  report.changed = r.buffers_inserted > 0;
}

void CancelInvertersPass::run(Netlist& nl, OptContext& /*ctx*/,
                              const OptimizerConfig& /*cfg*/, double /*tc_ps*/,
                              PassReport& report) const {
  report.sinks_rewired = core::cancel_inverter_pairs(nl);
  report.changed = report.sinks_rewired > 0;
}

void CancelInvertersPass::run(Netlist& nl, OptContext& /*ctx*/,
                              const OptimizerConfig& /*cfg*/, double /*tc_ps*/,
                              PassReport& report,
                              timing::IncrementalSta& sta) const {
  std::vector<netlist::NodeId> dirty;
  report.sinks_rewired = core::cancel_inverter_pairs(nl, &dirty);
  report.changed = report.sinks_rewired > 0;
  // Rewires change connectivity -> structure_changed. No rewires = no
  // update, and the engine revision not moving is then correct (the
  // pipeline only expects a moved revision when `changed` is set).
  if (!dirty.empty()) sta.update(dirty, /*structure_changed=*/true);
}

void SweepDeadPass::run(Netlist& nl, OptContext& /*ctx*/,
                        const OptimizerConfig& /*cfg*/, double /*tc_ps*/,
                        PassReport& report) const {
  const std::size_t before = nl.stats().n_gates;
  nl = core::sweep_dead(nl);
  const std::size_t after = nl.stats().n_gates;
  report.gates_removed = before - after;
  report.changed = report.gates_removed > 0;
}

void SweepDeadPass::run(Netlist& nl, OptContext& ctx,
                        const OptimizerConfig& cfg, double tc_ps,
                        PassReport& report,
                        timing::IncrementalSta& sta) const {
  run(nl, ctx, cfg, tc_ps, report);
  // The rebuild renumbers node ids even when nothing was removed (gates
  // are re-appended in topo order) — always outside the dirty-set
  // contract, so the engine must restart cold either way.
  sta.invalidate();
}

void ProtocolPass::run(Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
                       double tc_ps, PassReport& report) const {
  core::CircuitResult r =
      run_protocol(nl, ctx.dm(), ctx.flimits(), tc_ps, cfg.circuit_options());
  report.paths_optimized = r.paths_optimized;
  report.changed = r.paths_optimized > 0;
  report.circuit = std::move(r);
}

void ProtocolPass::run(Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
                       double tc_ps, PassReport& report,
                       timing::IncrementalSta& sta) const {
  core::CircuitResult r = run_protocol(nl, ctx.dm(), ctx.flimits(), tc_ps,
                                       cfg.circuit_options(), &sta);
  report.paths_optimized = r.paths_optimized;
  report.changed = r.paths_optimized > 0;
  report.circuit = std::move(r);
}

core::CircuitResult ProtocolPass::run_protocol(Netlist& nl,
                                               const DelayModel& dm,
                                               core::FlimitTable& table,
                                               double tc_ps,
                                               const core::CircuitOptions& opt,
                                               timing::IncrementalSta* shared) {
  opt.validate();
  if (!(tc_ps > 0.0))
    throw std::invalid_argument("optimize_circuit: Tc must be > 0");

  core::CircuitResult out;
  out.tc_ps = tc_ps;

  timing::StaOptions sta_opt;
  sta_opt.pi_slew_ps = opt.pi_slew_ps;
  sta_opt.level_parallel_workers = opt.sta_workers;
  sta_opt.level_parallel_min_nodes = opt.sta_parallel_min_nodes;
  // The protocol's hot loop: one STA verification per sizing round. The
  // incremental analyzer keeps arrivals/slews AND the K-paths downstream
  // bounds alive between rounds, so a round costs O(resized fanout cone)
  // instead of O(E) — bit-identical to re-running Sta from cold. A
  // pipeline-shared engine (already warm from the passes before this one)
  // is reused in place of a private one.
  std::optional<timing::IncrementalSta> local;
  if (shared == nullptr) local.emplace(nl, dm, sta_opt);
  timing::IncrementalSta& sta = shared != nullptr ? *shared : *local;
  const double input_slew =
      opt.pi_slew_ps > 0.0 ? opt.pi_slew_ps : dm.default_input_slew_ps();

  static const obs::Registry::Counter rounds_total =
      obs::Registry::global().counter("protocol.rounds");

  const timing::StaResult* result =
      &(sta.has_result() ? sta.result() : sta.run_full());
  for (int round = 0; round < opt.max_rounds; ++round) {
    // Same predicate as `met` below (kTcMetRelTol): a point at the
    // boundary must not iterate as "violating" yet report met=true.
    if (core::tc_met(result->critical_delay_ps, tc_ps)) break;

    obs::Span round_span("protocol/round");
    if (round_span.active()) {
      // Entry-side Tc gap and power proxy (total width tracks the
      // paper's dynamic-power objective); computed only when tracing.
      round_span.arg("slack_ps", tc_ps - result->critical_delay_ps);
      round_span.arg("area_um", nl.total_width_um());
    }

    // Tighten per-path targets round by round: resizing one path loads its
    // neighbours, so a straight Tc target leaves residual violations.
    const double margin =
        std::pow(opt.tc_margin, static_cast<double>(round + 1));
    const double path_tc = tc_ps * margin;

    // Reference, not copy: the zero-progress `continue` below re-enters
    // this query with the engine untouched, and the enumeration gate then
    // replays the cached list instead of re-running the K-paths search.
    const std::vector<timing::TimedPath>& paths =
        sta.k_critical_paths(opt.max_paths);
    bool any_change = false;
    std::size_t below_target = 0;  // skipped now, admitted by tighter targets
    std::vector<netlist::NodeId> resized;
    for (const timing::TimedPath& tp : paths) {
      if (tp.delay_ps <= path_tc) {  // already fast enough this round
        ++below_target;
        continue;
      }
      if (tp.points.size() < 2) continue;
      BoundedPath bp = BoundedPath::extract(nl, tp, input_slew);
      // Circuit mode applies sizing only (see protocol.hpp); the
      // protocol's structural rewrites are evaluated but only surviving
      // stages carry their sizes back to the netlist.
      core::ProtocolResult pr =
          core::optimize_path(bp, dm, table, path_tc, opt.protocol);
      const std::vector<netlist::NodeId> changed =
          pr.sizing.path.apply_sizes_to(nl);
      if (!changed.empty()) any_change = true;
      resized.insert(resized.end(), changed.begin(), changed.end());
      out.per_path.push_back(std::move(pr));
      ++out.paths_optimized;
    }
    ++out.rounds;
    rounds_total.add();
    round_span.arg("resized", static_cast<double>(resized.size()));
    if (!any_change) {
      // No drive moved. If every enumerated path was already processed
      // (none skipped as fast-enough), further rounds would replay the
      // same pinned paths against ever-tighter targets — stop instead of
      // burning the round budget on zero-progress re-verifications. When
      // paths WERE skipped, keep tightening: a later round admits them
      // (tp.delay_ps > tc*margin^(r+1)) and their resizing can unload
      // shared gates on the still-violating critical path. Timing is
      // unchanged either way, so no STA update is needed.
      if (below_target == 0) break;
      continue;
    }
    result = &sta.update(resized);
  }

  out.achieved_delay_ps = result->critical_delay_ps;
  out.area_um = nl.total_width_um();
  out.met = core::tc_met(result->critical_delay_ps, tc_ps);
  return out;
}

void MultiVtPass::run(Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
                      double tc_ps, PassReport& report) const {
  timing::StaOptions sta_opt;
  sta_opt.pi_slew_ps = cfg.pi_slew_ps;
  sta_opt.level_parallel_workers = cfg.sta_workers;
  sta_opt.level_parallel_min_nodes = cfg.sta_parallel_min_nodes;
  timing::IncrementalSta sta(nl, ctx.dm(), sta_opt);
  run(nl, ctx, cfg, tc_ps, report, sta);
}

void MultiVtPass::run(Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
                      double tc_ps, PassReport& report,
                      timing::IncrementalSta& sta) const {
  if (!(tc_ps > 0.0))
    throw std::invalid_argument("multi-vt: Tc must be > 0");

  // Resolve the target class: the lowest-off-current non-default class the
  // config enables. One enabled class (the default) = nothing to assign.
  const process::Technology& tech = nl.lib().tech();
  int target = -1;
  for (const std::string& name : cfg.vt_library) {
    const int cls = tech.find_vt_class(name);
    if (cls < 0)
      throw std::invalid_argument("multi-vt: vt class '" + name +
                                  "' is not offered by the technology");
    if (cls == 0) continue;
    if (target < 0 ||
        tech.vt_class(static_cast<std::size_t>(cls)).ioff_na_per_um <
            tech.vt_class(static_cast<std::size_t>(target)).ioff_na_per_um)
      target = cls;
  }
  if (target < 0) return;

  const timing::StaResult* result =
      &(sta.has_result() ? sta.result() : sta.run_full());
  // Leakage can only be traded for slack that exists: an unmet point is
  // left for the sizing passes, not slowed down further.
  if (!core::tc_met(result->critical_delay_ps, tc_ps)) return;

  // Candidates: default-class gates with positive slack, most slack
  // first (ties by id so the greedy order — hence the result — is
  // deterministic under any slack distribution).
  struct Candidate {
    netlist::NodeId id;
    double slack_ps;
  };
  std::vector<Candidate> candidates;
  {
    const std::vector<double>& slack = sta.slacks(tc_ps);
    for (std::size_t i = 0; i < nl.size(); ++i) {
      const netlist::Node& n = nl.node(static_cast<netlist::NodeId>(i));
      if (n.is_input || n.vt != 0) continue;
      if (slack[i] > 0.0)
        candidates.push_back({static_cast<netlist::NodeId>(i), slack[i]});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.slack_ps != b.slack_ps) return a.slack_ps > b.slack_ps;
              return a.id < b.id;
            });
  if (candidates.empty()) return;

  // The recovered-leakage metric is inherently state-dependent (the flat
  // proxy is Vt-blind), so it is always accounted with the state backend;
  // the flip decisions themselves are pure timing and do not depend on
  // any power number.
  const power::StateDependentModel accounting(nl.lib());
  const double freq = power::kDefaultFrequencyMhz;
  double leak_before = 0.0;
  {
    util::Rng rng = ctx.make_rng(kPowerRngStream);
    leak_before =
        accounting.estimate(nl, rng, freq, 512, cfg.temperature_c).leakage_uw;
  }

  // Greedy assignment: flip, re-time the fanout cone incrementally, keep
  // the flip only while the whole circuit still meets Tc. A rejected cone
  // does not end the walk — an unrelated cone elsewhere may still absorb
  // the derating.
  std::size_t moved = 0;
  for (const Candidate& c : candidates) {
    nl.set_vt_class(c.id, target);
    // A Vt flip changes the gate's own kernel inputs only (like a drive
    // change; its cin is untouched) — squarely inside the dirty-set
    // contract.
    const netlist::NodeId dirty[] = {c.id};
    result = &sta.update(dirty);
    if (core::tc_met(result->critical_delay_ps, tc_ps)) {
      ++moved;
    } else {
      nl.set_vt_class(c.id, 0);
      result = &sta.update(dirty);
    }
  }

  report.cells_high_vt = moved;
  report.changed = moved > 0;
  if (moved > 0) {
    util::Rng rng = ctx.make_rng(kPowerRngStream);
    const double leak_after =
        accounting.estimate(nl, rng, freq, 512, cfg.temperature_c).leakage_uw;
    report.leakage_saved_uw = leak_before - leak_after;
  }

  static const obs::Registry::Counter cells_total =
      obs::Registry::global().counter("multi_vt.cells_high_vt");
  if (moved > 0) cells_total.add(static_cast<double>(moved));
}

}  // namespace pops::api
