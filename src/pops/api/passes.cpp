#include "pops/api/passes.hpp"

#include <cmath>
#include <stdexcept>

#include "pops/core/netopt.hpp"
#include "pops/timing/path.hpp"
#include "pops/timing/sta.hpp"

namespace pops::api {

using netlist::Netlist;
using timing::BoundedPath;
using timing::DelayModel;

void ShieldPass::run(Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
                     double /*tc_ps*/, PassReport& report) const {
  const core::ShieldReport r = core::shield_high_fanout_nets(
      nl, ctx.dm(), ctx.flimits(), cfg.shield_options());
  report.buffers_inserted = r.buffers_inserted;
  report.changed = r.buffers_inserted > 0;
}

void CancelInvertersPass::run(Netlist& nl, OptContext& /*ctx*/,
                              const OptimizerConfig& /*cfg*/, double /*tc_ps*/,
                              PassReport& report) const {
  report.sinks_rewired = core::cancel_inverter_pairs(nl);
  report.changed = report.sinks_rewired > 0;
}

void SweepDeadPass::run(Netlist& nl, OptContext& /*ctx*/,
                        const OptimizerConfig& /*cfg*/, double /*tc_ps*/,
                        PassReport& report) const {
  const std::size_t before = nl.stats().n_gates;
  nl = core::sweep_dead(nl);
  const std::size_t after = nl.stats().n_gates;
  report.gates_removed = before - after;
  report.changed = report.gates_removed > 0;
}

void ProtocolPass::run(Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
                       double tc_ps, PassReport& report) const {
  core::CircuitResult r =
      run_protocol(nl, ctx.dm(), ctx.flimits(), tc_ps, cfg.circuit_options());
  report.paths_optimized = r.paths_optimized;
  report.changed = r.paths_optimized > 0;
  report.circuit = std::move(r);
}

core::CircuitResult ProtocolPass::run_protocol(Netlist& nl,
                                               const DelayModel& dm,
                                               core::FlimitTable& table,
                                               double tc_ps,
                                               const core::CircuitOptions& opt) {
  opt.validate();
  if (!(tc_ps > 0.0))
    throw std::invalid_argument("optimize_circuit: Tc must be > 0");

  core::CircuitResult out;
  out.tc_ps = tc_ps;

  timing::StaOptions sta_opt;
  sta_opt.pi_slew_ps = opt.pi_slew_ps;
  const timing::Sta sta(nl, dm, sta_opt);
  const double input_slew =
      opt.pi_slew_ps > 0.0 ? opt.pi_slew_ps : dm.default_input_slew_ps();

  for (int round = 0; round < opt.max_rounds; ++round) {
    const timing::StaResult result = sta.run();
    if (result.critical_delay_ps <= tc_ps) break;

    // Tighten per-path targets round by round: resizing one path loads its
    // neighbours, so a straight Tc target leaves residual violations.
    const double margin =
        std::pow(opt.tc_margin, static_cast<double>(round + 1));
    const double path_tc = tc_ps * margin;

    const std::vector<timing::TimedPath> paths =
        sta.k_critical_paths(result, opt.max_paths);
    bool any_change = false;
    for (const timing::TimedPath& tp : paths) {
      if (tp.delay_ps <= path_tc) continue;  // already fast enough
      if (tp.points.size() < 2) continue;
      BoundedPath bp = BoundedPath::extract(nl, tp, input_slew);
      // Circuit mode applies sizing only (see protocol.hpp); the
      // protocol's structural rewrites are evaluated but only surviving
      // stages carry their sizes back to the netlist.
      core::ProtocolResult pr =
          core::optimize_path(bp, dm, table, path_tc, opt.protocol);
      pr.sizing.path.apply_sizes_to(nl);
      out.per_path.push_back(std::move(pr));
      ++out.paths_optimized;
      any_change = true;
    }
    if (!any_change) break;
  }

  const timing::StaResult final_sta = sta.run();
  out.achieved_delay_ps = final_sta.critical_delay_ps;
  out.area_um = nl.total_width_um();
  out.met = final_sta.critical_delay_ps <= tc_ps * 1.0001;
  return out;
}

}  // namespace pops::api
