#pragma once
// Ordered pass composition with per-pass structured diagnostics.
//
// A PassPipeline owns a sequence of passes and runs them in order over one
// netlist, measuring every pass the same way (STA delay and total width
// before/after, wall-clock runtime) and aggregating the per-pass counters
// into one PipelineReport. `standard()` builds the canonical POPS order —
// shield -> cancel-inverters -> sweep-dead -> protocol — honouring the
// enable_* flags of the config; custom pipelines are built by add() /
// emplace() with user passes implementing the Pass interface.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pops/api/pass.hpp"

namespace pops::api {

/// Aggregated outcome of one pipeline run on one circuit.
struct PipelineReport {
  double tc_ps = 0.0;
  double initial_delay_ps = 0.0;
  double final_delay_ps = 0.0;
  double initial_area_um = 0.0;
  double final_area_um = 0.0;
  bool met = false;  ///< final_delay <= Tc (within STA tolerance)
  /// True when this report was replayed from a ResultCacheHook instead of
  /// recomputed; all other fields are bit-identical to the original run.
  bool from_cache = false;
  /// Delay-model backend that produced this result ("closed-form",
  /// "table"); cached replays carry the producing run's backend.
  std::string delay_model;

  /// Power of the final implementation under the configured backend
  /// (cfg.power_model at cfg.temperature_c, activities drawn from the
  /// reserved kPowerRngStream so the bytes are fleet-deterministic);
  /// cached replays carry the producing run's numbers.
  power::PowerReport power;
  /// Gate count per Vt class of the final implementation, indexed by
  /// Technology::vt_classes position (single-class technologies report
  /// one bucket).
  std::vector<std::size_t> vt_mix;

  std::vector<PassReport> passes;  ///< one entry per executed pass

  // Aggregates over `passes` (tested to equal the per-pass sums).
  std::size_t total_buffers_inserted() const noexcept;
  std::size_t total_sinks_rewired() const noexcept;
  std::size_t total_gates_removed() const noexcept;
  std::size_t total_paths_optimized() const noexcept;
  std::size_t total_cells_high_vt() const noexcept;
  double total_leakage_saved_uw() const noexcept;
  double total_runtime_ms() const noexcept;

  /// The protocol pass's circuit result (per-path domains/methods), or
  /// nullptr if no protocol pass ran.
  const core::CircuitResult* protocol() const noexcept;
};

class PassPipeline {
 public:
  PassPipeline() = default;
  PassPipeline(PassPipeline&&) = default;
  PassPipeline& operator=(PassPipeline&&) = default;

  /// Append a pass; returns *this for chaining. Throws
  /// std::invalid_argument for a null pass or a name already in the
  /// pipeline (duplicate names would make per-pass reports ambiguous).
  PassPipeline& add(std::unique_ptr<Pass> pass);

  /// Construct-and-append. `pipeline.emplace<ShieldPass>()`.
  template <typename P, typename... Args>
  PassPipeline& emplace(Args&&... args) {
    return add(std::make_unique<P>(std::forward<Args>(args)...));
  }

  /// The canonical pipeline for `cfg` (shield -> cancel-inverters ->
  /// sweep-dead -> protocol -> multi-vt, gated by the enable_* flags).
  static PassPipeline standard(const OptimizerConfig& cfg);

  std::size_t size() const noexcept { return passes_.size(); }
  bool empty() const noexcept { return passes_.empty(); }
  std::vector<std::string> pass_names() const;

  /// The i-th pass, 0-based (introspection: cache keys, tooling).
  const Pass& pass(std::size_t i) const { return *passes_.at(i); }

  /// Run every pass in order over `nl` toward `tc_ps`. Thread-safe for
  /// concurrent calls on distinct netlists as long as every pass keeps its
  /// state in locals (true of all built-in passes) and ctx.flimits() is
  /// warmed (see OptContext::warm_flimits).
  /// `initial_delay_ps` > 0 supplies a precomputed initial critical delay
  /// (callers that already ran STA to derive Tc, e.g. run_relative, skip
  /// a redundant analysis); <= 0 computes it here.
  PipelineReport run(netlist::Netlist& nl, OptContext& ctx,
                     const OptimizerConfig& cfg, double tc_ps,
                     double initial_delay_ps = -1.0) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace pops::api
