#pragma once
// The built-in passes of the standard pipeline, in their canonical order:
//
//   shield            circuit-wide Flimit shielding (netopt.hpp kernel)
//   cancel-inverters  INV(INV(x)) peephole           (netopt.hpp kernel)
//   sweep-dead        dead-logic removal             (netopt.hpp kernel)
//   protocol          the Fig. 7 circuit protocol (driver loop lives HERE;
//                     core::optimize_circuit forwards to it)
//
// The structural passes run before the protocol so the sizing engine sees
// the cleaned, shielded implementation — buffering decisions made on nets
// the protocol would otherwise have to size around.

#include "pops/api/pass.hpp"

namespace pops::api {

/// Circuit-wide Flimit-guided shield-buffer insertion
/// (wraps core::shield_high_fanout_nets).
class ShieldPass final : public Pass {
 public:
  std::string_view name() const noexcept override { return "shield"; }
  void run(netlist::Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
           double tc_ps, PassReport& report) const override;
  void run(netlist::Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
           double tc_ps, PassReport& report,
           timing::IncrementalSta& sta) const override;
};

/// INV(INV(x)) cancellation (wraps core::cancel_inverter_pairs).
class CancelInvertersPass final : public Pass {
 public:
  std::string_view name() const noexcept override { return "cancel-inverters"; }
  void run(netlist::Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
           double tc_ps, PassReport& report) const override;
  void run(netlist::Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
           double tc_ps, PassReport& report,
           timing::IncrementalSta& sta) const override;
};

/// Dead-logic sweep (wraps core::sweep_dead).
class SweepDeadPass final : public Pass {
 public:
  std::string_view name() const noexcept override { return "sweep-dead"; }
  void run(netlist::Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
           double tc_ps, PassReport& report) const override;
  /// The sweep rebuilds (and renumbers) the netlist — outside the
  /// dirty-set contract, so this invalidates the shared engine instead of
  /// reporting an update.
  void run(netlist::Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
           double tc_ps, PassReport& report,
           timing::IncrementalSta& sta) const override;
};

/// The Fig. 7 protocol applied circuit-wide: repeatedly extract the K most
/// critical paths, optimize each as a bounded path, write the sizes back,
/// and re-run STA until the constraint holds or the round budget is spent.
class ProtocolPass final : public Pass {
 public:
  std::string_view name() const noexcept override { return "protocol"; }
  void run(netlist::Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
           double tc_ps, PassReport& report) const override;
  void run(netlist::Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
           double tc_ps, PassReport& report,
           timing::IncrementalSta& sta) const override;

  /// The driver loop itself, in terms of the legacy types. This is the
  /// single implementation behind both the pass and the legacy
  /// core::optimize_circuit free function (now a forwarding shim).
  /// `shared` (optional) is a caller-owned engine over `nl` reused in
  /// place of a private one, same contract as
  /// core::shield_high_fanout_nets: an existing result is trusted, all
  /// sizing rounds are reported through update(), and its StaOptions are
  /// the caller's responsibility (the private engine derives them from
  /// `opt`).
  static core::CircuitResult run_protocol(
      netlist::Netlist& nl, const timing::DelayModel& dm,
      core::FlimitTable& table, double tc_ps, const core::CircuitOptions& opt,
      timing::IncrementalSta* shared = nullptr);
};

/// Slack-driven leakage recovery: greedily move the highest-slack gates
/// into the lowest-leakage non-default Vt class of cfg.vt_library while
/// the constraint stays met (every tentative flip is timed through the
/// shared incremental engine and reverted if it breaks Tc). First
/// consumer of the power::PowerModel backends: the report carries the
/// number of cells moved and the leakage recovered.
class MultiVtPass final : public Pass {
 public:
  std::string_view name() const noexcept override { return "multi-vt"; }
  void run(netlist::Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
           double tc_ps, PassReport& report) const override;
  void run(netlist::Netlist& nl, OptContext& ctx, const OptimizerConfig& cfg,
           double tc_ps, PassReport& report,
           timing::IncrementalSta& sta) const override;
};

}  // namespace pops::api
