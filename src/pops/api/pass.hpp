#pragma once
// The pass interface of the optimization pipeline.
//
// A Pass is one netlist-to-netlist transformation step toward a delay
// constraint: structural (shielding, inverter cancellation, dead sweep) or
// sizing (the Fig. 7 protocol). Passes are composed by PassPipeline and
// report what they did through a structured PassReport, so drivers can
// aggregate diagnostics across passes and circuits without parsing text.
//
// Contract: a Pass must leave the netlist functionally equivalent, must be
// deterministic, and — because Optimizer::run_many shares pass objects
// across worker threads — must keep all its state in locals (the built-in
// passes are stateless).

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "pops/api/config.hpp"
#include "pops/api/context.hpp"
#include "pops/core/protocol.hpp"
#include "pops/netlist/netlist.hpp"

namespace pops::timing {
class IncrementalSta;
}

namespace pops::api {

/// Structured diagnostics of one pass execution. The area/delay/runtime
/// envelope is filled in by the pipeline (so every pass is measured the
/// same way); the counters are filled in by the pass itself.
struct PassReport {
  std::string pass_name;

  // Filled by the pipeline around the pass.
  double delay_before_ps = 0.0;
  double delay_after_ps = 0.0;
  double area_before_um = 0.0;
  double area_after_um = 0.0;
  double runtime_ms = 0.0;

  // Filled by the pass.
  bool changed = false;                ///< did the pass touch the netlist?
  std::size_t buffers_inserted = 0;    ///< shield / in-path buffers added
  std::size_t sinks_rewired = 0;       ///< inverter-pair cancellations
  std::size_t gates_removed = 0;       ///< dead gates swept
  std::size_t paths_optimized = 0;     ///< protocol path optimizations
  std::size_t cells_high_vt = 0;       ///< multi-vt cells moved off class 0
  double leakage_saved_uw = 0.0;       ///< multi-vt leakage recovered
  /// Per-path protocol outcome, present for the protocol pass only.
  std::optional<core::CircuitResult> circuit;
};

class Pass {
 public:
  virtual ~Pass() = default;

  /// Stable identifier ("shield", "cancel-inverters", ...).
  virtual std::string_view name() const noexcept = 0;

  /// Extra bytes folded into result-cache keys alongside name()
  /// (api::ResultCacheHook implementations hash both). Custom passes whose
  /// behaviour depends on constructor parameters MUST override this to
  /// encode those parameters — otherwise two same-named pass instances
  /// with different tuning would share cached results. The built-in
  /// passes are fully described by the OptimizerConfig, so the default
  /// empty salt is correct for them.
  virtual std::string cache_salt() const { return {}; }

  /// Transform `nl` toward `tc_ps`, recording counters in `report`
  /// (report arrives with pass_name set and the before-envelope filled).
  virtual void run(netlist::Netlist& nl, OptContext& ctx,
                   const OptimizerConfig& cfg, double tc_ps,
                   PassReport& report) const = 0;

  /// Shared-timing-engine variant: `sta` is the pipeline's per-run
  /// incremental analyzer over `nl`, current whenever it has a result. A
  /// pass that edits the netlist should report the edits through
  /// sta.update() (or sta.invalidate() for edits outside the dirty-set
  /// contract) so later passes and the pipeline's envelope measurements
  /// reuse the maintained state instead of re-running STA cold. The
  /// default forwards to the 5-argument run() and touches the engine not
  /// at all — the pipeline detects the untouched revision and invalidates,
  /// so custom passes stay correct (just unshared) without opting in.
  virtual void run(netlist::Netlist& nl, OptContext& ctx,
                   const OptimizerConfig& cfg, double tc_ps,
                   PassReport& report, timing::IncrementalSta& sta) const {
    (void)sta;
    run(nl, ctx, cfg, tc_ps, report);
  }
};

}  // namespace pops::api
