#include "pops/api/context.hpp"

#include <stdexcept>
#include <utility>

#include "pops/liberty/cell.hpp"

namespace pops::api {

OptContext::OptContext(process::Technology tech,
                       core::FlimitOptions flimit_opt, std::uint64_t rng_seed)
    : lib_(std::move(tech)),
      dm_(std::make_unique<timing::ClosedFormModel>(lib_)),
      flimits_(flimit_opt),
      rng_seed_(rng_seed) {}

void OptContext::set_delay_model(std::unique_ptr<timing::DelayModel> backend) {
  util::MutexLock lock(install_mu_);
  set_delay_model_locked(std::move(backend));
}

void OptContext::set_delay_model_locked(
    std::unique_ptr<timing::DelayModel> backend) {
  if (!backend)
    throw std::invalid_argument("OptContext::set_delay_model: null backend");
  if (&backend->lib() != &lib_)
    throw std::invalid_argument(
        "OptContext::set_delay_model: backend was built over a different "
        "Library; backends hold a non-owning library pointer and must be "
        "characterized over this context's own library");
  dm_ = std::move(backend);
  // Flimit values are delays of the installed backend; a stale warm cache
  // would silently mix backends.
  flimits_.clear();
}

bool OptContext::ensure_delay_model(
    const std::string& selector,
    const std::function<std::unique_ptr<timing::DelayModel>()>& make) {
  util::MutexLock lock(install_mu_);
  if (dm_->selector() == selector) return false;
  // Building under the lock is deliberate: installs are the cold path,
  // and releasing the lock between check and install would reopen the
  // construct-vs-construct race this method exists to close.
  set_delay_model_locked(make());
  return true;
}

void OptContext::warm_flimits() {
  for (liberty::CellKind driver : liberty::all_cell_kinds())
    for (liberty::CellKind gate : liberty::all_cell_kinds())
      flimits_.get(*dm_, driver, gate);
}

}  // namespace pops::api
