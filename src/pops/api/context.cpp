#include "pops/api/context.hpp"

#include "pops/liberty/cell.hpp"

namespace pops::api {

OptContext::OptContext(process::Technology tech,
                       core::FlimitOptions flimit_opt, std::uint64_t rng_seed)
    : lib_(std::move(tech)), dm_(lib_), flimits_(flimit_opt),
      rng_seed_(rng_seed) {}

void OptContext::warm_flimits() {
  for (liberty::CellKind driver : liberty::all_cell_kinds())
    for (liberty::CellKind gate : liberty::all_cell_kinds())
      flimits_.get(dm_, driver, gate);
}

}  // namespace pops::api
