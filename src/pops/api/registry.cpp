#include "pops/api/registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "pops/api/passes.hpp"

namespace pops::api {

PassRegistry::PassRegistry() {
  register_pass("shield", [] { return std::make_unique<ShieldPass>(); });
  register_pass("cancel-inverters",
                [] { return std::make_unique<CancelInvertersPass>(); });
  register_pass("sweep-dead", [] { return std::make_unique<SweepDeadPass>(); });
  register_pass("protocol", [] { return std::make_unique<ProtocolPass>(); });
  register_pass("multi-vt", [] { return std::make_unique<MultiVtPass>(); });
}

PassRegistry& PassRegistry::global() {
  static PassRegistry registry;
  return registry;
}

void PassRegistry::register_pass(std::string name, Factory factory) {
  if (name.empty())
    throw std::invalid_argument("PassRegistry: empty pass name");
  if (!factory)
    throw std::invalid_argument("PassRegistry: null factory for '" + name +
                                "'");
  util::MutexLock lock(mu_);
  for (const auto& [existing, _] : factories_)
    if (existing == name)
      throw std::invalid_argument("PassRegistry: '" + name +
                                  "' is already registered");
  factories_.emplace_back(std::move(name), std::move(factory));
}

bool PassRegistry::contains(const std::string& name) const {
  util::MutexLock lock(mu_);
  for (const auto& [existing, _] : factories_)
    if (existing == name) return true;
  return false;
}

std::vector<std::string> PassRegistry::names() const {
  std::vector<std::string> out;
  {
    util::MutexLock lock(mu_);
    out.reserve(factories_.size());
    for (const auto& [name, _] : factories_) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Pass> PassRegistry::create(const std::string& name) const {
  Factory factory;
  {
    util::MutexLock lock(mu_);
    for (const auto& [existing, f] : factories_)
      if (existing == name) {
        factory = f;
        break;
      }
  }
  if (!factory) {
    std::ostringstream os;
    os << "PassRegistry: unknown pass '" << name << "' (known:";
    for (const std::string& n : names()) os << " " << n;
    os << ")";
    throw std::invalid_argument(os.str());
  }
  return factory();
}

PassPipeline PassRegistry::make_pipeline(
    const std::vector<std::string>& names) const {
  PassPipeline pipeline;
  for (const std::string& name : names) pipeline.add(create(name));
  return pipeline;
}

}  // namespace pops::api
