#pragma once
// Shared optimization context.
//
// Every pass of the pipeline needs the same four things: the technology
// node, the calibrated cell library, the eq. (1-3) delay model over it,
// and the Flimit characterization cache (the "Library characterization"
// step at the top of the Fig. 7 protocol). The seed made every caller
// assemble these by hand in the right dependency order; OptContext owns
// them as one object with the lifetimes tied together, plus the RNG seed
// that makes every stochastic consumer (power estimation, synthetic
// benchmarks) reproducible.

#include <cstdint>

#include "pops/core/buffer.hpp"
#include "pops/liberty/library.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/delay_model.hpp"
#include "pops/util/rng.hpp"

namespace pops::api {

class OptContext {
 public:
  /// Build the context for one technology node (default: the paper's
  /// 0.25µm process). `flimit_opt` parameterizes the Fig. 5
  /// characterization set-up behind the FlimitTable.
  explicit OptContext(process::Technology tech = process::Technology::cmos025(),
                      core::FlimitOptions flimit_opt = {},
                      std::uint64_t rng_seed = kDefaultSeed);

  // The delay model and the Flimit cache point into the owned library;
  // the context is pinned in memory.
  OptContext(const OptContext&) = delete;
  OptContext& operator=(const OptContext&) = delete;

  const process::Technology& tech() const noexcept { return lib_.tech(); }
  const liberty::Library& lib() const noexcept { return lib_; }
  const timing::DelayModel& dm() const noexcept { return dm_; }
  core::FlimitTable& flimits() noexcept { return flimits_; }
  const core::FlimitTable& flimits() const noexcept { return flimits_; }

  std::uint64_t rng_seed() const noexcept { return rng_seed_; }

  /// A fresh deterministic engine. Distinct `stream` values give
  /// decorrelated engines off the same context seed (splitmix64 expands
  /// the combined seed inside Rng).
  util::Rng make_rng(std::uint64_t stream = 0) const noexcept {
    return util::Rng(rng_seed_ + 0x9E3779B97F4A7C15ull * (stream + 1));
  }

  /// Precompute Flimit for every (driver, gate) cell pair. After warming,
  /// FlimitTable::get only reads the cache, so the table may be shared by
  /// concurrent workers (Optimizer::run_many calls this before fanning
  /// out).
  void warm_flimits();

  static constexpr std::uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ull;

 private:
  liberty::Library lib_;
  timing::DelayModel dm_;
  core::FlimitTable flimits_;
  std::uint64_t rng_seed_;
};

}  // namespace pops::api
