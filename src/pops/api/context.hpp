#pragma once
// Shared optimization context.
//
// Every pass of the pipeline needs the same four things: the technology
// node, the calibrated cell library, a delay-model backend over it
// (closed-form eq. 1-3 by default; see timing/delay_model.hpp), and the
// Flimit characterization cache (the "Library characterization" step at
// the top of the Fig. 7 protocol). The seed made every caller assemble
// these by hand in the right dependency order; OptContext owns them as
// one object with the lifetimes tied together, plus the RNG seed that
// makes every stochastic consumer (power estimation, synthetic
// benchmarks) reproducible.
//
// The delay-model backend is owned by pointer so it is polymorphic:
// OptimizerConfig selects a backend by name + parameters and
// api::Optimizer installs it here (set_delay_model). A backend keeps a
// non-owning pointer to the library it was built over, so OptContext only
// accepts backends built over ITS library — installing one built over a
// foreign (possibly shorter-lived) library throws instead of dangling.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "pops/core/buffer.hpp"
#include "pops/liberty/library.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/delay_model.hpp"
#include "pops/util/rng.hpp"
#include "pops/util/thread_annotations.hpp"

namespace pops::netlist {
class Netlist;
}

namespace pops::api {

class OptContext;
struct OptimizerConfig;
class PassPipeline;
struct PipelineReport;

/// RNG stream reserved for power-activity simulation (OptContext::
/// make_rng). Every power evaluation in the api layer — the pipeline's
/// final report, the multi-vt pass's recovered-leakage accounting — draws
/// from this stream, so the simulated vectors (hence the power bytes) are
/// identical across processes and across the sweep fleet.
inline constexpr std::uint64_t kPowerRngStream = 0x706f776572ull;  // "power"

/// Key of one memoized optimization point: circuit content, effective
/// configuration (config + pipeline + context characterization), and the
/// exact constraint value. Two points with equal keys produce bit-identical
/// results, so a cached entry may be replayed in place of a fresh run.
///
/// The first three words are pure *content* — deterministic across
/// processes, so they can be persisted (service/cache_io.hpp) and replayed
/// after a restart. `ctx_bits` is the process-local binding to the live
/// OptContext instance: cached netlists/reports point into the storing
/// context (library, BoundedPaths), so entries must never hit from another
/// context. Persistence strips ctx_bits on save and re-binds it to the
/// loading context after rebuilding every entry against that context's
/// library.
struct ResultCacheKey {
  std::uint64_t circuit_hash = 0;  ///< content hash of the input netlist
  std::uint64_t config_hash = 0;   ///< config + pipeline + context tuple
  std::uint64_t tc_bits = 0;       ///< bit pattern of the absolute Tc (ps)
  std::uint64_t ctx_bits = 0;      ///< identity of the binding OptContext
  friend bool operator==(const ResultCacheKey&,
                         const ResultCacheKey&) = default;
};

/// Hook through which the Optimizer memoizes converged runs. The concrete
/// implementation lives one layer up (service::ResultCache); the api layer
/// only depends on this interface, so OptContext can own a cache without
/// the api -> service dependency inversion.
///
/// Contract: lookup must only report a hit for a key produced by make_key
/// on identical inputs, and must then restore the netlist and report
/// bit-identically to the run store() recorded. Implementations must be
/// safe for concurrent calls (Optimizer::run_many workers share the hook).
class ResultCacheHook {
 public:
  virtual ~ResultCacheHook() = default;

  /// Key for optimizing `nl` under (cfg, pipeline, tc_ps) in this context.
  virtual ResultCacheKey make_key(const OptContext& ctx,
                                  const netlist::Netlist& nl,
                                  const OptimizerConfig& cfg,
                                  const PassPipeline& pipeline,
                                  double tc_ps) const = 0;

  /// On a hit: overwrite `nl` with the cached optimized netlist, fill
  /// `report`, and return true. On a miss: record the miss, return false.
  virtual bool lookup(const ResultCacheKey& key, netlist::Netlist& nl,
                      PipelineReport& report) = 0;

  /// Record a freshly computed result (`nl` is the *optimized* netlist).
  virtual void store(const ResultCacheKey& key, const netlist::Netlist& nl,
                     const PipelineReport& report) = 0;

  /// Memoized initial critical delay for the circuit + configuration of
  /// `key` (tc_bits ignored), or nullopt when unknown. Relative runs need
  /// one STA to turn a Tc ratio into the absolute constraint before they
  /// can even form the full key; memoizing it makes repeated sweep points
  /// O(lookup) end to end. nullopt (not a sentinel value) distinguishes
  /// "unknown" from a legitimately memoized 0.0 — degenerate netlists
  /// with zero critical delay must not re-run full STA on every replay.
  /// Optional: the defaults keep a hook lookup-only.
  virtual std::optional<double> initial_delay_ps(
      const ResultCacheKey& key) const {
    (void)key;
    return std::nullopt;
  }
  virtual void store_initial_delay(const ResultCacheKey& key,
                                   double delay_ps) {
    (void)key;
    (void)delay_ps;
  }
};

class OptContext {
 public:
  /// Build the context for one technology node (default: the paper's
  /// 0.25µm process). `flimit_opt` parameterizes the Fig. 5
  /// characterization set-up behind the FlimitTable.
  explicit OptContext(process::Technology tech = process::Technology::cmos025(),
                      core::FlimitOptions flimit_opt = {},
                      std::uint64_t rng_seed = kDefaultSeed);

  // The delay model and the Flimit cache point into the owned library;
  // the context is pinned in memory.
  OptContext(const OptContext&) = delete;
  OptContext& operator=(const OptContext&) = delete;

  const process::Technology& tech() const noexcept { return lib_.tech(); }
  const liberty::Library& lib() const noexcept { return lib_; }
  const timing::DelayModel& dm() const noexcept { return *dm_; }

  /// Install a delay-model backend (the context takes ownership). The
  /// backend must have been built over THIS context's library — backends
  /// keep a non-owning library pointer, so a foreign library would leave
  /// it dangling; such installs (and nullptr) throw std::invalid_argument.
  /// Installing a backend clears the Flimit cache (its entries are
  /// backend-dependent).
  ///
  /// The stale-backend contract, in two halves: concurrent *installs*
  /// (two threads constructing Optimizers on one shared context) are
  /// serialized by install_mu_ here, so the swap itself is never a data
  /// race between installers. Install-vs-*run* cannot be a lock — dm()
  /// readers are the unsynchronized hot path of every STA worker — so
  /// that half is enforced by (a) Optimizer::ensure_backend_current's
  /// runtime std::logic_error on every run entry point, and (b) the
  /// owner of the sharing topology holding its execution lock around
  /// anything that may install: net::SweepServer's exec_mu_ annotations
  /// (POPS_REQUIRES) make that discipline a compile-time obligation.
  void set_delay_model(std::unique_ptr<timing::DelayModel> backend)
      POPS_EXCLUDES(install_mu_);

  /// Atomic check-and-install: when the installed backend's selector
  /// already equals `selector`, do nothing; otherwise build a backend
  /// with `make` and install it — check, build, and swap all under
  /// install_mu_, so two threads constructing Optimizers with different
  /// selections on one shared context serialize instead of racing
  /// between the selector read and the install (the losing selection is
  /// then caught at run time by Optimizer::ensure_backend_current).
  /// Returns true when a new backend was installed.
  bool ensure_delay_model(
      const std::string& selector,
      const std::function<std::unique_ptr<timing::DelayModel>()>& make)
      POPS_EXCLUDES(install_mu_);

  core::FlimitTable& flimits() noexcept { return flimits_; }
  const core::FlimitTable& flimits() const noexcept { return flimits_; }

  std::uint64_t rng_seed() const noexcept { return rng_seed_; }

  /// A fresh deterministic engine. Distinct `stream` values give
  /// decorrelated engines off the same context seed (splitmix64 expands
  /// the combined seed inside Rng).
  util::Rng make_rng(std::uint64_t stream = 0) const noexcept {
    return util::Rng(rng_seed_ + 0x9E3779B97F4A7C15ull * (stream + 1));
  }

  /// Precompute Flimit for every (driver, gate) cell pair. After warming,
  /// FlimitTable::get only reads the cache, so the table may be shared by
  /// concurrent workers (Optimizer::run_many calls this before fanning
  /// out).
  void warm_flimits();

  /// Install (or remove, with nullptr) a result cache: every Optimizer
  /// bound to this context memoizes converged runs through it. Shared
  /// ownership lets services hold the cache (for stats) alongside the
  /// context. Entries are context-bound — the key includes the context
  /// identity, because cached netlists/reports point into the storing
  /// context — so installing one cache on several contexts is safe but
  /// points only hit within the context that stored them.
  void set_result_cache(std::shared_ptr<ResultCacheHook> cache) noexcept {
    result_cache_ = std::move(cache);
  }
  ResultCacheHook* result_cache() const noexcept {
    return result_cache_.get();
  }
  const std::shared_ptr<ResultCacheHook>& result_cache_shared()
      const noexcept {
    return result_cache_;
  }

  static constexpr std::uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ull;

 private:
  void set_delay_model_locked(std::unique_ptr<timing::DelayModel> backend)
      POPS_REQUIRES(install_mu_);

  liberty::Library lib_;
  /// Serializes backend installs (set_delay_model). Deliberately NOT a
  /// GUARDED_BY on dm_: reads are the lock-free hot path, protected by
  /// the execution discipline documented on set_delay_model instead.
  mutable util::Mutex install_mu_;
  std::unique_ptr<timing::DelayModel> dm_;
  core::FlimitTable flimits_;
  std::uint64_t rng_seed_;
  std::shared_ptr<ResultCacheHook> result_cache_;
};

}  // namespace pops::api
