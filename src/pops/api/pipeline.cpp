#include "pops/api/pipeline.hpp"

#include <cstdint>
#include <stdexcept>

#include "pops/api/passes.hpp"
#include "pops/core/protocol.hpp"
#include "pops/obs/clock.hpp"
#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"
#include "pops/power/power_model.hpp"
#include "pops/timing/incremental_sta.hpp"
#include "pops/timing/sta.hpp"
#include "pops/util/rng.hpp"

namespace pops::api {

std::size_t PipelineReport::total_buffers_inserted() const noexcept {
  std::size_t n = 0;
  for (const PassReport& p : passes) n += p.buffers_inserted;
  return n;
}

std::size_t PipelineReport::total_sinks_rewired() const noexcept {
  std::size_t n = 0;
  for (const PassReport& p : passes) n += p.sinks_rewired;
  return n;
}

std::size_t PipelineReport::total_gates_removed() const noexcept {
  std::size_t n = 0;
  for (const PassReport& p : passes) n += p.gates_removed;
  return n;
}

std::size_t PipelineReport::total_paths_optimized() const noexcept {
  std::size_t n = 0;
  for (const PassReport& p : passes) n += p.paths_optimized;
  return n;
}

std::size_t PipelineReport::total_cells_high_vt() const noexcept {
  std::size_t n = 0;
  for (const PassReport& p : passes) n += p.cells_high_vt;
  return n;
}

double PipelineReport::total_leakage_saved_uw() const noexcept {
  double uw = 0.0;
  for (const PassReport& p : passes) uw += p.leakage_saved_uw;
  return uw;
}

double PipelineReport::total_runtime_ms() const noexcept {
  double ms = 0.0;
  for (const PassReport& p : passes) ms += p.runtime_ms;
  return ms;
}

const core::CircuitResult* PipelineReport::protocol() const noexcept {
  for (auto it = passes.rbegin(); it != passes.rend(); ++it)
    if (it->circuit) return &*it->circuit;
  return nullptr;
}

PassPipeline& PassPipeline::add(std::unique_ptr<Pass> pass) {
  if (!pass) throw std::invalid_argument("PassPipeline::add: null pass");
  // Pass names key per-pass reports (and registry/spec lookups); a
  // duplicate would make them ambiguous, so reject it with a diagnostic
  // instead of silently aggregating two passes under one name.
  for (const auto& existing : passes_)
    if (existing->name() == pass->name())
      throw std::invalid_argument("PassPipeline::add: duplicate pass name '" +
                                  std::string(pass->name()) +
                                  "'; per-pass reports would be ambiguous");
  passes_.push_back(std::move(pass));
  return *this;
}

PassPipeline PassPipeline::standard(const OptimizerConfig& cfg) {
  PassPipeline p;
  if (cfg.enable_shielding) p.emplace<ShieldPass>();
  if (cfg.enable_cleanup) {
    p.emplace<CancelInvertersPass>();
    p.emplace<SweepDeadPass>();
  }
  if (cfg.enable_protocol) p.emplace<ProtocolPass>();
  // After the sizing passes: multi-vt spends the slack the protocol left
  // behind, and a later structural pass would invalidate its timing proof.
  if (cfg.enable_multi_vt) p.emplace<MultiVtPass>();
  return p;
}

std::vector<std::string> PassPipeline::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.emplace_back(p->name());
  return names;
}

PipelineReport PassPipeline::run(netlist::Netlist& nl, OptContext& ctx,
                                 const OptimizerConfig& cfg, double tc_ps,
                                 double initial_delay_ps) const {
  if (!(tc_ps > 0.0))
    throw std::invalid_argument("PassPipeline::run: Tc must be > 0");
  cfg.ensure_valid();

  // One timing engine for the whole run, threaded through every pass: the
  // passes report their edits (or invalidate), so the per-pass delay
  // envelope below reads the maintained result instead of re-running a
  // cold O(E) analysis after every pass. Local by design — run() is
  // called concurrently on distinct netlists by Optimizer::run_many.
  timing::StaOptions sta_opt;
  sta_opt.pi_slew_ps = cfg.pi_slew_ps;
  sta_opt.level_parallel_workers = cfg.sta_workers;
  sta_opt.level_parallel_min_nodes = cfg.sta_parallel_min_nodes;
  timing::IncrementalSta engine(nl, ctx.dm(), sta_opt);
  const auto measured_delay = [&engine]() {
    return (engine.has_result() ? engine.result() : engine.run_full())
        .critical_delay_ps;
  };
  static const obs::Registry::Counter stale_invalidations =
      obs::Registry::global().counter("pipeline.engine_invalidated");

  PipelineReport out;
  out.tc_ps = tc_ps;
  out.delay_model = std::string(ctx.dm().name());
  out.initial_delay_ps =
      initial_delay_ps > 0.0 ? initial_delay_ps : measured_delay();
  out.initial_area_um = nl.total_width_um();

  double delay = out.initial_delay_ps;
  for (const std::unique_ptr<Pass>& pass : passes_) {
    PassReport rep;
    rep.pass_name = std::string(pass->name());
    rep.delay_before_ps = delay;
    rep.area_before_um = nl.total_width_um();

    obs::Span span("pass/", pass->name());
    const obs::StopWatch watch;
    const std::uint64_t revision = engine.revision();
    pass->run(nl, ctx, cfg, tc_ps, rep, engine);
    // A pass that changed the netlist without moving the engine (a custom
    // pass using the forwarding default, or a built-in whose edits never
    // produced an update) left the maintained state stale — restart cold.
    // The revision also moves on timing-neutral reports, so this never
    // misfires on a pass that did its bookkeeping.
    if (rep.changed && engine.revision() == revision) {
      engine.invalidate();
      stale_invalidations.add();
    }
    rep.runtime_ms = watch.elapsed_ms();

    delay = measured_delay();
    rep.delay_after_ps = delay;
    rep.area_after_um = nl.total_width_um();
    span.arg("delay_after_ps", rep.delay_after_ps);
    span.arg("area_after_um", rep.area_after_um);
    out.passes.push_back(std::move(rep));
  }

  out.final_delay_ps = delay;
  out.final_area_um = nl.total_width_um();
  // Power of the final implementation, under the configured backend. The
  // reserved activity stream keeps these bytes identical across processes
  // (pops_sweep, pops_serve, a fabric fleet) for the same point.
  {
    const std::unique_ptr<power::PowerModel> pm = cfg.make_power_model(nl.lib());
    util::Rng rng = ctx.make_rng(kPowerRngStream);
    out.power = pm->estimate(nl, rng, power::kDefaultFrequencyMhz, 512,
                             cfg.temperature_c);
  }
  out.vt_mix.assign(nl.lib().tech().n_vt_classes(), 0);
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const netlist::Node& n = nl.node(static_cast<netlist::NodeId>(i));
    if (!n.is_input) ++out.vt_mix[static_cast<std::size_t>(n.vt)];
  }
  // Same tolerance the ProtocolPass round loop stops on (core::tc_met):
  // the two must agree or a boundary point could iterate as violating yet
  // report met (pops_sweep exits 2 off this flag).
  out.met = core::tc_met(out.final_delay_ps, tc_ps);
  return out;
}

}  // namespace pops::api
