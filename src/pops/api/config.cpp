#include "pops/api/config.hpp"

#include <sstream>

namespace pops::api {

namespace {

std::string join_problems(const std::vector<std::string>& problems) {
  std::ostringstream os;
  os << "invalid OptimizerConfig (" << problems.size() << " problem"
     << (problems.size() == 1 ? "" : "s") << "):";
  for (const std::string& p : problems) os << "\n  - " << p;
  return os.str();
}

}  // namespace

ConfigError::ConfigError(const std::vector<std::string>& problems)
    : std::invalid_argument(join_problems(problems)), problems_(problems) {}

std::vector<std::string> OptimizerConfig::validate() const {
  // Domain-threshold and circuit-driver invariants are owned by the core
  // options structs (single source of truth, shared with the legacy
  // entry points); the projection carries this config's values.
  std::vector<std::string> out = circuit_options().problems();
  auto require = [&out](bool ok, const std::string& msg) {
    if (!ok) out.push_back(msg);
  };

  // Shielding.
  require(shield_margin > 0.0, "shield_margin must be > 0");
  require(shield_fanout > 1.0, "shield_fanout must be > 1");

  // Solvers.
  require(bounds.max_sweeps > 0, "bounds.max_sweeps must be > 0");
  require(bounds.tol > 0.0, "bounds.tol must be > 0");
  require(bounds.init_scale > 0.0, "bounds.init_scale must be > 0");
  require(sensitivity.max_sweeps > 0, "sensitivity.max_sweeps must be > 0");
  require(sensitivity.tol > 0.0, "sensitivity.tol must be > 0");
  require(sensitivity.max_bisect > 0, "sensitivity.max_bisect must be > 0");
  require(sensitivity.tc_rel_tol > 0.0, "sensitivity.tc_rel_tol must be > 0");

  require(enable_shielding || enable_cleanup || enable_protocol,
          "all passes disabled: the pipeline would be empty");

  // Delay-model backend selection.
  if (delay_model != "closed-form" && delay_model != "table") {
    out.push_back("delay_model must be 'closed-form' or 'table' (got '" +
                  delay_model + "')");
  } else if (delay_model == "table") {
    for (std::string& p : table_model.problems()) out.push_back(std::move(p));
  }

  // Power-model backend selection.
  if (power_model != "proxy" && power_model != "state") {
    out.push_back("power_model must be 'proxy' or 'state' (got '" +
                  power_model + "')");
  }
  // Silicon junction range, generously bounded.
  require(temperature_c > -273.15 && temperature_c < 300.0,
          "temperature_c must be a physical junction temperature "
          "(-273.15, 300)");
  require(!vt_library.empty(), "vt_library must name at least one Vt class");
  for (std::size_t i = 0; i < vt_library.size(); ++i) {
    require(!vt_library[i].empty(), "vt_library entries must be non-empty");
    for (std::size_t j = 0; j < i; ++j)
      require(vt_library[j] != vt_library[i],
              "vt_library lists '" + vt_library[i] + "' more than once");
  }
  return out;
}

std::unique_ptr<timing::DelayModel> OptimizerConfig::make_delay_model(
    const liberty::Library& lib) const {
  if (delay_model == "closed-form")
    return std::make_unique<timing::ClosedFormModel>(lib);
  if (delay_model == "table") {
    const timing::ClosedFormModel source(lib);
    return std::make_unique<timing::TableModel>(
        timing::TableModel::characterize(source, table_model));
  }
  throw ConfigError({"delay_model must be 'closed-form' or 'table' (got '" +
                     delay_model + "')"});
}

std::string OptimizerConfig::delay_model_selector() const {
  return delay_model == "table" ? table_model.selector() : delay_model;
}

std::unique_ptr<power::PowerModel> OptimizerConfig::make_power_model(
    const liberty::Library& lib) const {
  if (power_model != "proxy" && power_model != "state")
    throw ConfigError(
        {"power_model must be 'proxy' or 'state' (got '" + power_model +
         "')"});
  return power::make_power_model(power_model, lib);
}

std::string OptimizerConfig::power_model_selector() const {
  return power_model;
}

void OptimizerConfig::ensure_valid() const {
  const std::vector<std::string> problems = validate();
  if (!problems.empty()) throw ConfigError(problems);
}

core::ProtocolOptions OptimizerConfig::protocol_options() const {
  core::ProtocolOptions p;
  p.hard_ratio = hard_ratio;
  p.weak_ratio = weak_ratio;
  p.allow_restructuring = allow_restructuring;
  p.bounds = bounds;
  p.sensitivity = sensitivity;
  return p;
}

core::CircuitOptions OptimizerConfig::circuit_options() const {
  core::CircuitOptions c;
  c.max_paths = max_paths;
  c.max_rounds = max_rounds;
  c.tc_margin = tc_margin;
  c.pi_slew_ps = pi_slew_ps;
  c.sta_workers = sta_workers;
  c.sta_parallel_min_nodes = sta_parallel_min_nodes;
  c.protocol = protocol_options();
  return c;
}

core::ShieldOptions OptimizerConfig::shield_options() const {
  core::ShieldOptions s;
  s.margin = shield_margin;
  s.max_buffers = max_shield_buffers;
  s.shield_fanout = shield_fanout;
  return s;
}

OptimizerConfig OptimizerConfig::from_legacy(const core::CircuitOptions& opt) {
  OptimizerConfig cfg;
  cfg.max_paths = opt.max_paths;
  cfg.max_rounds = opt.max_rounds;
  cfg.tc_margin = opt.tc_margin;
  cfg.pi_slew_ps = opt.pi_slew_ps;
  cfg.sta_workers = opt.sta_workers;
  cfg.sta_parallel_min_nodes = opt.sta_parallel_min_nodes;
  cfg.hard_ratio = opt.protocol.hard_ratio;
  cfg.weak_ratio = opt.protocol.weak_ratio;
  cfg.allow_restructuring = opt.protocol.allow_restructuring;
  cfg.bounds = opt.protocol.bounds;
  cfg.sensitivity = opt.protocol.sensitivity;
  // The legacy entry point ran the protocol only.
  cfg.enable_shielding = false;
  cfg.enable_cleanup = false;
  cfg.enable_protocol = true;
  return cfg;
}

}  // namespace pops::api
