#pragma once
// Umbrella header for the unified optimization API.
//
//   #include "pops/api/api.hpp"
//
//   pops::api::OptContext ctx;               // tech + library + delay model
//   pops::api::Optimizer opt(ctx);           // standard pipeline, validated
//   auto report = opt.run_relative(nl, 0.8); // Tc = 80% of initial delay
//
// See optimizer.hpp for the batch entry point (run_many) and pipeline.hpp
// for composing custom pass sequences.

#include "pops/api/config.hpp"
#include "pops/api/context.hpp"
#include "pops/api/optimizer.hpp"
#include "pops/api/pass.hpp"
#include "pops/api/passes.hpp"
#include "pops/api/pipeline.hpp"
#include "pops/api/registry.hpp"
