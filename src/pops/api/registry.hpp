#pragma once
// Name -> pass-factory registry (the ROADMAP "pass plugins" seed).
//
// Configs and sweep specs (service/sweep.hpp) describe pipelines
// declaratively as a list of pass names; the registry turns those names
// into Pass instances. The built-in passes ("shield", "cancel-inverters",
// "sweep-dead", "protocol") are pre-registered; plugins add their own
// factories at start-up and become addressable from specs with no further
// plumbing:
//
//   api::PassRegistry::global().register_pass(
//       "retime", [] { return std::make_unique<MyRetimingPass>(); });
//   api::PassPipeline p = api::PassRegistry::global().make_pipeline(
//       {"shield", "retime", "protocol"});

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pops/api/pipeline.hpp"
#include "pops/util/thread_annotations.hpp"

namespace pops::api {

class PassRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Pass>()>;

  /// A registry pre-loaded with the built-in passes.
  PassRegistry();

  /// The process-wide registry (plugins register here).
  static PassRegistry& global();

  /// Register a factory under `name`. The factory must produce passes
  /// whose name() equals `name`. Throws std::invalid_argument on an empty
  /// name or a name already registered. Thread-safe.
  void register_pass(std::string name, Factory factory) POPS_EXCLUDES(mu_);

  bool contains(const std::string& name) const POPS_EXCLUDES(mu_);

  /// All registered names, sorted (stable across insertion order).
  std::vector<std::string> names() const POPS_EXCLUDES(mu_);

  /// Instantiate the pass registered under `name`. Throws
  /// std::invalid_argument listing the known names when absent. The
  /// factory itself runs outside the lock (it may be arbitrarily slow
  /// or re-enter the registry).
  std::unique_ptr<Pass> create(const std::string& name) const
      POPS_EXCLUDES(mu_);

  /// Build a pipeline from an ordered name list. Duplicate names are
  /// rejected by PassPipeline::add; unknown names throw as in create().
  PassPipeline make_pipeline(const std::vector<std::string>& names) const;

 private:
  mutable util::Mutex mu_;
  /// Registration order (names() sorts a copy); concurrent plugin
  /// registration and create() calls are serialized by mu_.
  std::vector<std::pair<std::string, Factory>> factories_ POPS_GUARDED_BY(mu_);
};

}  // namespace pops::api
