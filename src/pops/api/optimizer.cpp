#include "pops/api/optimizer.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "pops/timing/sta.hpp"

namespace pops::api {

Optimizer::Optimizer(OptContext& ctx, OptimizerConfig cfg)
    : ctx_(&ctx), cfg_(std::move(cfg)) {
  cfg_.ensure_valid();
  pipeline_ = PassPipeline::standard(cfg_);
}

void Optimizer::set_pipeline(PassPipeline pipeline) {
  if (pipeline.empty())
    throw std::invalid_argument("Optimizer::set_pipeline: empty pipeline");
  pipeline_ = std::move(pipeline);
}

PipelineReport Optimizer::run(netlist::Netlist& nl, double tc_ps) const {
  return pipeline_.run(nl, *ctx_, cfg_, tc_ps);
}

double Optimizer::initial_delay_ps(const netlist::Netlist& nl) const {
  timing::StaOptions opt;
  opt.pi_slew_ps = cfg_.pi_slew_ps;
  return timing::Sta(nl, ctx_->dm(), opt).run().critical_delay_ps;
}

PipelineReport Optimizer::run_relative(netlist::Netlist& nl,
                                       double tc_ratio) const {
  if (!(tc_ratio > 0.0))
    throw std::invalid_argument("Optimizer: tc_ratio must be > 0");
  // One STA both derives Tc and seeds the report's initial delay.
  const double initial = initial_delay_ps(nl);
  return pipeline_.run(nl, *ctx_, cfg_, tc_ratio * initial, initial);
}

std::vector<PipelineReport> Optimizer::run_many(
    std::span<netlist::Netlist> circuits, double tc_ps,
    std::size_t n_threads) const {
  return run_many_impl(circuits, tc_ps, /*relative=*/false, n_threads);
}

std::vector<PipelineReport> Optimizer::run_many_relative(
    std::span<netlist::Netlist> circuits, double tc_ratio,
    std::size_t n_threads) const {
  return run_many_impl(circuits, tc_ratio, /*relative=*/true, n_threads);
}

std::vector<PipelineReport> Optimizer::run_many_impl(
    std::span<netlist::Netlist> nls, double tc, bool relative,
    std::size_t n_threads) const {
  cfg_.ensure_valid();
  if (relative && !(tc > 0.0))
    throw std::invalid_argument("Optimizer: tc_ratio must be > 0");
  if (nls.empty()) return {};

  // Warm the Flimit cache before fanning out: FlimitTable::get mutates its
  // cache on a miss, but on a fully warmed table it only reads, so the
  // shared context is safe for concurrent workers.
  ctx_->warm_flimits();

  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  n_threads = std::min(n_threads, nls.size());

  std::vector<PipelineReport> reports(nls.size());

  // Dynamic work queue: circuit sizes vary wildly (c17 .. c7552), so
  // static striping would leave workers idle behind the biggest circuit.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= nls.size()) return;
      try {
        if (relative) {
          const double initial = initial_delay_ps(nls[i]);
          reports[i] =
              pipeline_.run(nls[i], *ctx_, cfg_, tc * initial, initial);
        } else {
          reports[i] = pipeline_.run(nls[i], *ctx_, cfg_, tc);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  if (n_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return reports;
}

}  // namespace pops::api
