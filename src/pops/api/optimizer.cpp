#include "pops/api/optimizer.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"
#include "pops/timing/incremental_sta.hpp"
#include "pops/util/thread_annotations.hpp"

namespace pops::api {

Optimizer::Optimizer(OptContext& ctx, OptimizerConfig cfg)
    : ctx_(&ctx), cfg_(std::move(cfg)) {
  cfg_.ensure_valid();
  // The config selects the delay-model backend; install it when the
  // context's current backend does not already satisfy the selection
  // (the default config + default context agree on "closed-form", so the
  // common path never rebuilds or resets anything). The check and the
  // install are one atomic step under the context's install lock, so
  // concurrent Optimizer constructions on a shared context serialize.
  // Construction-time only: switching backends while runs are in flight
  // on the context would race (see OptContext::set_delay_model).
  ctx.ensure_delay_model(cfg_.delay_model_selector(),
                         [&] { return cfg_.make_delay_model(ctx.lib()); });
  pipeline_ = PassPipeline::standard(cfg_);
}

void Optimizer::set_pipeline(PassPipeline pipeline) {
  if (pipeline.empty())
    throw std::invalid_argument("Optimizer::set_pipeline: empty pipeline");
  pipeline_ = std::move(pipeline);
}

void Optimizer::ensure_backend_current() const {
  const std::string installed = ctx_->dm().selector();
  const std::string selected = cfg_.delay_model_selector();
  if (installed == selected) return;
  // Selectors, not family names: two table backends with different grids
  // both print "table" — the selector shows the actual mismatch.
  throw std::logic_error(
      "Optimizer: the context's delay-model backend ('" + installed +
      "') no longer matches this optimizer's selection ('" + selected +
      "') — another Optimizer constructed on the shared OptContext "
      "replaced it. Re-construct this Optimizer (or avoid interleaving "
      "optimizers with different delay-model selections on one context).");
}

PipelineReport Optimizer::run_point(netlist::Netlist& nl, double tc_ps,
                                    double initial_delay) const {
  ensure_backend_current();
  static const obs::Registry::Counter points =
      obs::Registry::global().counter("optimizer.points");
  points.add();
  obs::Span span("optimizer/point");
  span.arg("tc_ps", tc_ps);
  ResultCacheHook* cache = ctx_->result_cache();
  // Invalid Tc must throw (from pipeline.run) without polluting the
  // cache's miss counter.
  if (!cache || !(tc_ps > 0.0))
    return pipeline_.run(nl, *ctx_, cfg_, tc_ps, initial_delay);

  // Key on the *input* netlist before the pipeline mutates it.
  const ResultCacheKey key =
      cache->make_key(*ctx_, nl, cfg_, pipeline_, tc_ps);
  PipelineReport report;
  if (cache->lookup(key, nl, report)) {
    report.from_cache = true;
    return report;
  }
  report = pipeline_.run(nl, *ctx_, cfg_, tc_ps, initial_delay);
  cache->store(key, nl, report);
  return report;
}

PipelineReport Optimizer::run(netlist::Netlist& nl, double tc_ps) const {
  return run_point(nl, tc_ps, -1.0);
}

double Optimizer::initial_delay_ps(const netlist::Netlist& nl) const {
  timing::StaOptions opt;
  opt.pi_slew_ps = cfg_.pi_slew_ps;
  // One-shot measurement on the incremental engine: run_full() delegates
  // to Sta::run() and materializes no incremental state until the first
  // update()/downstream() call, so this costs exactly a plain cold STA.
  return timing::IncrementalSta(nl, ctx_->dm(), opt)
      .run_full()
      .critical_delay_ps;
}

PipelineReport Optimizer::run_relative_point(netlist::Netlist& nl,
                                             double tc_ratio) const {
  ensure_backend_current();
  static const obs::Registry::Counter points =
      obs::Registry::global().counter("optimizer.points");
  points.add();
  obs::Span span("optimizer/point");
  span.arg("tc_ratio", tc_ratio);
  ResultCacheHook* cache = ctx_->result_cache();
  if (!cache) {
    // One STA both derives Tc and seeds the report's initial delay.
    const double initial = initial_delay_ps(nl);
    return pipeline_.run(nl, *ctx_, cfg_, tc_ratio * initial, initial);
  }

  // The full key needs the absolute Tc, which needs the initial delay —
  // so the STA itself is memoized under the tc-less half of the key.
  // Any finite value memoizes, including 0.0: a degenerate (gate-free)
  // netlist has a legitimate zero critical delay, and skipping the memo
  // for it would re-run full STA on every cached replay.
  ResultCacheKey key = cache->make_key(*ctx_, nl, cfg_, pipeline_, 0.0);
  const std::optional<double> memo = cache->initial_delay_ps(key);
  const double initial = memo ? *memo : initial_delay_ps(nl);
  if (!memo && std::isfinite(initial))
    cache->store_initial_delay(key, initial);
  const double tc_ps = tc_ratio * initial;
  // A degenerate derived Tc (e.g. a gate-free netlist with zero critical
  // delay) must throw from pipeline.run without polluting the miss
  // counter — same invariant as run_point.
  if (!(tc_ps > 0.0)) return pipeline_.run(nl, *ctx_, cfg_, tc_ps, initial);
  key.tc_bits = std::bit_cast<std::uint64_t>(tc_ps);

  PipelineReport report;
  if (cache->lookup(key, nl, report)) {
    report.from_cache = true;
    return report;
  }
  report = pipeline_.run(nl, *ctx_, cfg_, tc_ps, initial);
  cache->store(key, nl, report);
  return report;
}

PipelineReport Optimizer::run_relative(netlist::Netlist& nl,
                                       double tc_ratio) const {
  if (!(tc_ratio > 0.0))
    throw std::invalid_argument("Optimizer: tc_ratio must be > 0");
  return run_relative_point(nl, tc_ratio);
}

std::vector<PipelineReport> Optimizer::run_many(
    std::span<netlist::Netlist> circuits, double tc_ps,
    std::size_t n_threads) const {
  return run_many_impl(circuits, tc_ps, /*relative=*/false, n_threads);
}

std::vector<PipelineReport> Optimizer::run_many_relative(
    std::span<netlist::Netlist> circuits, double tc_ratio,
    std::size_t n_threads) const {
  return run_many_impl(circuits, tc_ratio, /*relative=*/true, n_threads);
}

std::vector<PipelineReport> Optimizer::run_many_impl(
    std::span<netlist::Netlist> nls, double tc, bool relative,
    std::size_t n_threads) const {
  cfg_.ensure_valid();
  ensure_backend_current();  // before warming Flimits under a wrong backend
  if (relative && !(tc > 0.0))
    throw std::invalid_argument("Optimizer: tc_ratio must be > 0");
  if (nls.empty()) return {};

  // Warm the Flimit cache before fanning out: FlimitTable::get mutates its
  // cache on a miss, but on a fully warmed table it only reads, so the
  // shared context is safe for concurrent workers.
  ctx_->warm_flimits();

  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  n_threads = std::min(n_threads, nls.size());

  obs::Span batch("run_many/batch");
  batch.arg("circuits", static_cast<double>(nls.size()));
  batch.arg("threads", static_cast<double>(n_threads));

  std::vector<PipelineReport> reports(nls.size());

  // Dynamic work queue: circuit sizes vary wildly (c17 .. c7552), so
  // static striping would leave workers idle behind the biggest circuit.
  std::atomic<std::size_t> next{0};
  // First-error slot shared by the pool, annotated so the worker-side
  // lock discipline is compiler-checked like every other surface (a
  // bare local capture could be read unlocked without a diagnostic).
  struct ErrorSlot {
    util::Mutex mu;
    std::exception_ptr first POPS_GUARDED_BY(mu);
  } error;

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= nls.size()) return;
      obs::Span task("run_many/task");
      task.arg("circuit", static_cast<double>(i));
      try {
        if (relative) {
          reports[i] = run_relative_point(nls[i], tc);
        } else {
          reports[i] = run_point(nls[i], tc, -1.0);
        }
      } catch (...) {
        util::MutexLock lock(error.mu);
        if (!error.first) error.first = std::current_exception();
        return;
      }
    }
  };

  if (n_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  std::exception_ptr first_error;
  {
    util::MutexLock lock(error.mu);
    first_error = error.first;
  }
  if (first_error) std::rethrow_exception(first_error);
  return reports;
}

}  // namespace pops::api
