#include "pops/core/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace pops::core {

using timing::BoundedPath;
using timing::DelayModel;

namespace {

/// One symmetric Gauss-Seidel sweep of eq. (6) at sensitivity `a`
/// (forward then backward, see bounds.cpp); returns max relative CIN
/// change. A non-positive denominator means the wanted sensitivity cannot
/// be reached at finite size — clamp to the maximum.
double sensitivity_sweep(BoundedPath& path, const DelayModel& dm, double a) {
  double worst = 0.0;
  const std::size_t n = path.size();
  auto update = [&](std::size_t i) {
    if (!path.sizable(i)) return;
    const double a_prev = path.stage_coefficient(dm, i - 1);
    const double a_own = path.stage_coefficient(dm, i);
    const double load = path.load_ff(i);
    const double denom = a_prev / path.cin(i - 1) - a;
    const double before = path.cin(i);
    if (denom <= 0.0) {
      path.set_cin(i, path.cin_max(i));
    } else {
      path.set_cin(i, std::sqrt(a_own * load / denom));
    }
    worst = std::max(worst,
                     std::abs(path.cin(i) - before) / std::max(before, 1e-12));
  };
  for (std::size_t i = 1; i < n; ++i) update(i);
  for (std::size_t i = n; i-- > 1;) update(i);
  return worst;
}

}  // namespace

BoundedPath size_at_sensitivity(BoundedPath path, const DelayModel& dm,
                                double a, const SensitivityOptions& opt,
                                int* sweeps_used) {
  if (a > 0.0)
    throw std::invalid_argument("size_at_sensitivity: a must be <= 0");
  int sweeps = 0;
  double prev_delay = path.delay_ps(dm);
  int delay_stable = 0;
  for (; sweeps < opt.max_sweeps; ++sweeps) {
    if (sensitivity_sweep(path, dm, a) < opt.tol) {
      ++sweeps;
      break;
    }
    // Delay-stabilisation early stop (see bounds.cpp).
    const double delay = path.delay_ps(dm);
    delay_stable =
        std::abs(delay - prev_delay) < 1e-9 * delay ? delay_stable + 1 : 0;
    prev_delay = delay;
    if (delay_stable >= 3) {
      ++sweeps;
      break;
    }
  }
  if (sweeps_used) *sweeps_used = sweeps;
  return path;
}

SizingResult size_for_constraint(const BoundedPath& path, const DelayModel& dm,
                                 double tc_ps, const SensitivityOptions& opt) {
  if (!(tc_ps > 0.0))
    throw std::invalid_argument("size_for_constraint: Tc must be > 0");

  SizingResult res{path, 0.0, 0.0, 0.0, false, 0};

  // a = 0: the Tmin end of the curve.
  int sw = 0;
  BoundedPath at0 = size_at_sensitivity(path, dm, 0.0, opt, &sw);
  res.sweeps += sw;
  const double tmin = at0.delay_ps(dm);

  if (tc_ps <= tmin * (1.0 + opt.tc_rel_tol)) {
    // Infeasible (or exactly Tmin): best effort is the Tmin sizing.
    res.path = std::move(at0);
    res.delay_ps = res.path.delay_ps(dm);
    res.area_um = res.path.area_um();
    res.a = 0.0;
    res.feasible = tc_ps >= tmin * (1.0 - opt.tc_rel_tol);
    return res;
  }

  // All-minimum end (the a -> -inf limit).
  BoundedPath at_min = path;
  at_min.set_all_min_drive();
  const double tmax = at_min.delay_ps(dm);
  if (tc_ps >= tmax) {
    res.path = std::move(at_min);
    res.delay_ps = res.path.delay_ps(dm);
    res.area_um = res.path.area_um();
    res.a = -std::numeric_limits<double>::infinity();
    res.feasible = true;
    return res;
  }

  // Bracket: T(a) increases as a decreases. Grow |a| geometrically until
  // T(a) >= Tc. Scale the probe by a representative sensitivity magnitude
  // so bracketing is technology-independent.
  const double a_scale =
      path.stage_coefficient(dm, 0) / std::max(path.cin(0), 1e-9);
  double a_hi = 0.0;                      // T(a_hi) <= Tc
  double a_lo = -a_scale * 1e-3;          // will grow until T(a_lo) >= Tc
  BoundedPath warm = at0;                 // warm-start consecutive solves
  double t_lo = 0.0;
  for (int grow = 0; grow < 80; ++grow) {
    warm = size_at_sensitivity(warm, dm, a_lo, opt, &sw);
    res.sweeps += sw;
    t_lo = warm.delay_ps(dm);
    if (t_lo >= tc_ps) break;
    a_hi = a_lo;
    a_lo *= 4.0;
  }

  // Bisection on a in [a_lo, a_hi] (a_lo more negative, slower).
  BoundedPath best = warm;
  double best_delay = t_lo;
  for (int it = 0; it < opt.max_bisect; ++it) {
    const double a_mid = 0.5 * (a_lo + a_hi);
    warm = size_at_sensitivity(warm, dm, a_mid, opt, &sw);
    res.sweeps += sw;
    const double t_mid = warm.delay_ps(dm);
    if (t_mid <= tc_ps) {
      a_hi = a_mid;  // feasible side: remember the smallest-area feasible fit
      best = warm;
      best_delay = t_mid;
      if (std::abs(t_mid - tc_ps) <= opt.tc_rel_tol * tc_ps) break;
    } else {
      a_lo = a_mid;
    }
  }

  res.path = std::move(best);
  res.delay_ps = best_delay;
  res.area_um = res.path.area_um();
  res.a = a_hi;
  res.feasible = best_delay <= tc_ps * (1.0 + opt.tc_rel_tol);
  return res;
}

SizingResult size_equal_effort(const BoundedPath& path, const DelayModel& dm,
                               double tc_ps, const SensitivityOptions& opt) {
  if (!(tc_ps > 0.0))
    throw std::invalid_argument("size_equal_effort: Tc must be > 0");

  const std::size_t n = path.size();
  // The analytic inner solve below exploits the eq. (1) decomposition
  // (slope + Miller terms); when the backend is not the closed form, the
  // same two quantities are estimated through the generic contract — the
  // slope term as delay(tin) - delay(0), and the effort coefficient as the
  // zero-slew delay per unit CL/CIN (the secant through the origin, which
  // for the closed form reproduces miller/2 * S * tau up to rounding).
  const timing::ClosedFormModel* cf = dm.closed_form();

  // Given a per-stage delay budget d, solve backward for the CINs: stage
  // i's delay is (slope term) + miller/2 * S * tau * (CL+Cpar)/CIN, and the
  // slope term depends on the previous stage's output transition, so we
  // iterate the slew profile a few times per budget evaluation.
  auto size_for_budget = [&](BoundedPath p, double budget) {
    for (int round = 0; round < 6; ++round) {
      // Current slews along the path (eq. 2 — independent of input slew).
      std::vector<double> slews(n);
      for (std::size_t i = 0; i < n; ++i)
        slews[i] = dm.transition_ps(p.cell(i), p.out_edge(i), p.cin(i),
                                    p.total_load_ff(i));
      // Backward pass: choose CIN(i) so that stage i's delay == budget.
      for (std::size_t ri = 0; ri + 1 < n; ++ri) {
        const std::size_t i = n - 1 - ri;
        const double tin_i = i == 0 ? p.input_slew_ps() : slews[i - 1];
        // Slope term and effort coefficient k_eff with
        // delay_own = k_eff * (CLext + cpar_coeff*CIN)/CIN,
        // both frozen at the current iterate.
        double slope, k_eff;
        if (cf) {
          slope = 0.5 * cf->reduced_vt(p.out_edge(i)) * tin_i;
          const double miller = cf->miller_factor(
              p.cell(i), p.out_edge(i), p.cin(i), p.total_load_ff(i));
          const double s = cf->symmetry_factor(p.cell(i), p.out_edge(i));
          const double tau = cf->lib().tech().tau_ps;
          k_eff = 0.5 * miller * s * tau;
        } else {
          const double tl = p.total_load_ff(i);
          const double d_full =
              dm.delay_ps(p.cell(i), p.out_edge(i), tin_i, p.cin(i), tl);
          const double d_zero =
              dm.delay_ps(p.cell(i), p.out_edge(i), 0.0, p.cin(i), tl);
          slope = d_full - d_zero;
          k_eff = d_zero * p.cin(i) / std::max(tl, 1e-12);
        }
        const double own_budget = budget - slope;
        if (own_budget <= 0.0) {
          p.set_cin(i, p.cin_max(i));
          continue;
        }
        const double cpar_per_cin = p.cpar_ff(i) / std::max(p.cin(i), 1e-12);
        const double denom = own_budget - k_eff * cpar_per_cin;
        if (denom <= 0.0) {
          p.set_cin(i, p.cin_max(i));
        } else {
          p.set_cin(i, k_eff * p.load_ff(i) / denom);
        }
      }
    }
    return p;
  };

  // Bisect the per-stage budget to meet Tc.
  BoundedPath fastest = size_for_budget(path, 1e-3);
  const double t_fast = fastest.delay_ps(dm);
  BoundedPath slowest = path;
  slowest.set_all_min_drive();
  const double t_slow = slowest.delay_ps(dm);

  SizingResult res{path, 0.0, 0.0, 0.0, false, 0};
  if (tc_ps >= t_slow) {
    res.path = std::move(slowest);
  } else if (tc_ps <= t_fast) {
    res.path = std::move(fastest);
  } else {
    double lo = 1e-3, hi = tc_ps;  // per-stage budget bracket
    BoundedPath best = fastest;
    for (int it = 0; it < opt.max_bisect; ++it) {
      const double mid = 0.5 * (lo + hi);
      BoundedPath p = size_for_budget(path, mid);
      const double t = p.delay_ps(dm);
      if (t <= tc_ps) {
        lo = mid;
        best = std::move(p);
        if (std::abs(t - tc_ps) <= opt.tc_rel_tol * tc_ps) break;
      } else {
        hi = mid;
      }
    }
    res.path = std::move(best);
  }
  res.delay_ps = res.path.delay_ps(dm);
  res.area_um = res.path.area_um();
  res.feasible = res.delay_ps <= tc_ps * (1.0 + opt.tc_rel_tol);
  return res;
}

}  // namespace pops::core
