#pragma once
// Logic structure modification by De Morgan's theorem — paper §4.2.
//
// A NOR gate has the worst Flimit of the library (Table 2): its serial
// PMOS array makes it the least efficient gate. Instead of buffering it,
// replace it by its De Morgan dual:
//
//     NOR(a, b) = INV( NAND( INV(a), INV(b) ) )
//
// The inverter on the on-path input and the output inverter become *path
// stages* (sizable, and providing the same beneficial load dilution as a
// buffer); the inverters on off-path inputs are an area overhead that is
// charged to the result. Adjacent inverter pairs created by the rewrite
// are cancelled (peephole). The dual NAND -> NOR rewrite is provided for
// completeness; the metric never selects it.
//
// Two levels:
//   * path level  — used by the optimisation protocol and Table 4;
//   * netlist level — a real DAG rewrite with functional-equivalence
//     guarantees (tested exhaustively), used by examples and tests.

#include <vector>

#include "pops/core/buffer.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/timing/path.hpp"

namespace pops::core {

/// Result of a path-level restructuring pass.
struct RestructureResult {
  timing::BoundedPath path;        ///< rewritten path
  std::size_t gates_restructured = 0;
  std::size_t off_path_inverters = 0;
  double off_path_area_um = 0.0;   ///< fixed area of off-path input inverters
  double delay_ps = 0.0;
  double area_um = 0.0;            ///< path area + off_path_area_um
};

/// Rewrite every *critical* NOR stage (fanout above its Flimit, i.e. the
/// stages buffer insertion would target) as INV + NAND + INV. On-path
/// inverters are sizable stages; off-path inputs are charged one
/// minimum-size inverter each. Cancels INV-INV pairs the rewrite creates.
RestructureResult restructure_path(const timing::BoundedPath& path,
                                   const timing::DelayModel& dm,
                                   FlimitTable& table);

/// Netlist-level De Morgan rewrite of gate `id` (must be a NOR2/3/4):
/// inserts inverters on every fanin, swaps the cell for the same-arity
/// NAND, and inserts an output inverter that takes over the fanouts (and
/// PO role, preserving the node's public name). Returns the new output
/// inverter's id. Throws std::invalid_argument for non-NOR gates.
netlist::NodeId demorgan_nor_to_nand(netlist::Netlist& nl, netlist::NodeId id);

/// Dual rewrite NAND -> NOR (for completeness and for tests showing the
/// metric rejects it). Same contract as demorgan_nor_to_nand.
netlist::NodeId demorgan_nand_to_nor(netlist::Netlist& nl, netlist::NodeId id);

}  // namespace pops::core
