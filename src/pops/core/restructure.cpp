#include "pops/core/restructure.hpp"

#include <algorithm>
#include <stdexcept>

namespace pops::core {

using liberty::CellKind;
using netlist::Netlist;
using netlist::NodeId;
using timing::BoundedPath;
using timing::DelayModel;
using timing::PathStage;

namespace {

bool is_nor(CellKind k) {
  return k == CellKind::Nor2 || k == CellKind::Nor3 || k == CellKind::Nor4;
}
bool is_nand(CellKind k) {
  return k == CellKind::Nand2 || k == CellKind::Nand3 || k == CellKind::Nand4;
}

CellKind nand_of_arity(int n) {
  switch (n) {
    case 2: return CellKind::Nand2;
    case 3: return CellKind::Nand3;
    case 4: return CellKind::Nand4;
    default: throw std::logic_error("nand_of_arity: bad arity");
  }
}
CellKind nor_of_arity(int n) {
  switch (n) {
    case 2: return CellKind::Nor2;
    case 3: return CellKind::Nor3;
    case 4: return CellKind::Nor4;
    default: throw std::logic_error("nor_of_arity: bad arity");
  }
}

}  // namespace

RestructureResult restructure_path(const BoundedPath& path,
                                   const DelayModel& dm, FlimitTable& table) {
  const liberty::Library& lib = path.lib();
  const double cin_inv_min =
      lib.cell(CellKind::Inv).cin_ff(lib.tech(), lib.wmin_um());

  // Critical stages at the current sizing that are NOR gates.
  const std::vector<std::size_t> crit = critical_nodes(path, dm, table);
  std::vector<std::size_t> targets;
  for (std::size_t i : crit)
    if (is_nor(path.stage(i).kind) && i > 0) targets.push_back(i);

  // Rebuild the stage list with the rewrites applied (left to right;
  // explicit rebuild keeps the index bookkeeping simple and allows the
  // INV-INV cancellation to look at neighbours).
  std::vector<PathStage> stages;
  std::vector<double> cins;
  std::size_t restructured = 0;
  std::size_t off_inverters = 0;
  double off_area = 0.0;

  const liberty::Cell& inv = lib.cell(CellKind::Inv);

  for (std::size_t i = 0; i < path.size(); ++i) {
    const PathStage& st = path.stage(i);
    const bool rewrite =
        std::find(targets.begin(), targets.end(), i) != targets.end();
    if (!rewrite) {
      stages.push_back(st);
      cins.push_back(path.cin(i));
      continue;
    }

    const int arity = lib.cell(st.kind).fanin;
    ++restructured;
    // Off-path *input* inverters: one minimum-size INV per side input.
    off_inverters += static_cast<std::size_t>(arity - 1);
    off_area += static_cast<double>(arity - 1) *
                inv.total_width_um(lib.wmin_um());

    // INV on the on-path input — unless the previous emitted stage is an
    // inverter, in which case the pair cancels. Never cancel the path's
    // first stage: its input capacitance is the fixed latch constraint.
    if (stages.size() > 1 && stages.back().kind == CellKind::Inv &&
        stages.back().off_path_ff == 0.0) {
      cins.pop_back();
      stages.pop_back();
    } else {
      PathStage inv_in;
      inv_in.kind = CellKind::Inv;
      inv_in.node = netlist::kNoNode;
      inv_in.off_path_ff = 0.0;
      stages.push_back(inv_in);
      cins.push_back(std::max(cin_inv_min, 0.5 * path.cin(i)));
    }

    // The NAND replacement keeps the NOR's position and size. The NOR's
    // off-path fanout needs the inverted (original) polarity, so it hangs
    // behind its own conservation inverter on the NAND output — this is
    // exactly the "beneficial load dilution" of §4.2: the off-path load
    // leaves the critical path. The NAND sees that inverter's input cap.
    PathStage nand;
    nand.kind = nand_of_arity(arity);
    nand.node = st.node;
    nand.off_path_ff = 0.0;
    double nand_cin = path.cin(i);
    if (st.off_path_ff > 0.0) {
      const double off_inv_cin =
          std::clamp(st.off_path_ff / 4.0, cin_inv_min,
                     inv.cin_ff(lib.tech(), lib.wmax_um()));
      nand.off_path_ff = off_inv_cin;
      nand.shielded = true;
      ++off_inverters;
      off_area += inv.total_width_um(inv.wn_for_cin(lib.tech(), off_inv_cin));
    }
    stages.push_back(nand);
    cins.push_back(nand_cin);

    // On-path conservation inverter: restores the NOR polarity for the
    // downstream path; carries no off-path load (shielded above).
    PathStage inv_out;
    inv_out.kind = CellKind::Inv;
    inv_out.node = netlist::kNoNode;
    inv_out.off_path_ff = 0.0;
    stages.push_back(inv_out);
    cins.push_back(std::max(cin_inv_min, 0.5 * path.cin(i)));
  }

  // Stage 0 may not have been rewritten (targets exclude i==0), so cins[0]
  // is still the fixed input capacitance.
  BoundedPath rebuilt(lib, stages, cins.front(), path.terminal_ff(),
                      path.input_edge(), path.input_slew_ps());
  for (std::size_t i = 1; i < cins.size(); ++i) rebuilt.set_cin(i, cins[i]);

  RestructureResult res{std::move(rebuilt), restructured, off_inverters,
                        off_area, 0.0, 0.0};
  res.delay_ps = res.path.delay_ps(dm);
  res.area_um = res.path.area_um() + res.off_path_area_um;
  return res;
}

namespace {

/// Shared implementation of the two netlist-level De Morgan rewrites.
NodeId demorgan_rewrite(Netlist& nl, NodeId id, bool from_nor) {
  // Copy everything needed out of the node up front: add_gate below
  // appends to the netlist's node vector, which may reallocate and leave a
  // Node reference dangling.
  const std::string base_name = nl.node(id).name;
  const std::vector<NodeId> fanins = nl.node(id).fanins;
  const liberty::CellKind kind = nl.node(id).kind;
  if (nl.node(id).is_input)
    throw std::invalid_argument("demorgan: " + base_name + " is a PI");
  if (from_nor ? !is_nor(kind) : !is_nand(kind))
    throw std::invalid_argument("demorgan: " + base_name +
                                " is not of the expected kind");
  const int arity = nl.lib().cell(kind).fanin;

  // 1. Inverters on every fanin. (A fanin that is itself an inverter could
  //    be bypassed, but only when it keeps another fanout — left to a
  //    separate peephole pass to keep this rewrite always-legal.)
  for (NodeId f : fanins) {
    const NodeId inv =
        nl.add_gate(CellKind::Inv, nl.fresh_name(base_name + "_din"), {f});
    nl.rewire_fanin(id, f, inv);
  }

  // 2. Swap the cell for its dual.
  nl.replace_cell(id, from_nor ? nand_of_arity(arity) : nor_of_arity(arity));

  // 3. Output inverter capturing all sinks and the PO role.
  const std::string public_name = nl.node(id).name;
  const NodeId out_inv = nl.insert_buffer(id, CellKind::Inv,
                                          nl.fresh_name(public_name + "_dout"));
  // Preserve the public name on the node that now carries the function.
  const std::string temp = nl.fresh_name(public_name + "_core");
  nl.rename(id, temp);
  const std::string inv_name = nl.node(out_inv).name;
  nl.rename(out_inv, public_name);
  (void)inv_name;
  return out_inv;
}

}  // namespace

NodeId demorgan_nor_to_nand(Netlist& nl, NodeId id) {
  return demorgan_rewrite(nl, id, /*from_nor=*/true);
}

NodeId demorgan_nand_to_nor(Netlist& nl, NodeId id) {
  return demorgan_rewrite(nl, id, /*from_nor=*/false);
}

}  // namespace pops::core
