#include "pops/core/power.hpp"

#include <stdexcept>

namespace pops::core {

PowerReport estimate_power(const netlist::Netlist& nl, util::Rng& rng,
                           double frequency_mhz, int vectors) {
  if (!(frequency_mhz > 0.0))
    throw std::invalid_argument("estimate_power: frequency must be > 0");

  const netlist::ActivityReport activity =
      netlist::estimate_activity(nl, rng, vectors);

  PowerReport report;
  report.frequency_mhz = frequency_mhz;
  report.area_um = nl.total_width_um();
  // Switched capacitance per vector (nets toggle at their measured rate;
  // each node's own drain parasitic switches with it).
  double switched = 0.0;
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const auto id = static_cast<netlist::NodeId>(i);
    const double cap = nl.load_ff(id) + nl.cpar_ff(id);
    switched += activity.toggle_rate[i] * cap;
  }
  report.switched_cap_ff = switched;

  const double vdd = nl.lib().tech().vdd;
  // fF * V^2 * MHz = 1e-15 F * V^2 * 1e6 1/s = 1e-9 W = nW; report µW.
  const double dyn_nw = 0.5 * switched * vdd * vdd * frequency_mhz;
  report.dynamic_uw = dyn_nw * 1e-3 * (1.0 + kShortCircuitFraction);
  // nA * V = nW; per µm of width.
  report.leakage_uw = kIoffNaPerUm * report.area_um * vdd * 1e-3;
  report.total_uw = report.dynamic_uw + report.leakage_uw;
  return report;
}

double path_area_um(const timing::BoundedPath& path) { return path.area_um(); }

}  // namespace pops::core
