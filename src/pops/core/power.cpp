#include "pops/core/power.hpp"

#include <stdexcept>

#include "pops/power/power_model.hpp"

namespace pops::core {

PowerReport estimate_power(const netlist::Netlist& nl, util::Rng& rng,
                           double frequency_mhz, int vectors,
                           double temperature_c) {
  if (!(frequency_mhz > 0.0))
    throw std::invalid_argument("estimate_power: frequency must be > 0");
  return power::ProxyModel(nl.lib())
      .estimate(nl, rng, frequency_mhz, vectors, temperature_c);
}

double path_area_um(const timing::BoundedPath& path) { return path.area_um(); }

}  // namespace pops::core
