#include "pops/core/buffer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "pops/util/stats.hpp"

namespace pops::core {

using liberty::Cell;
using liberty::CellKind;
using timing::BoundedPath;
using timing::DelayModel;
using timing::Edge;

namespace {

/// Delay of `gate` (at cin_g, with its own parasitic) driving `cl_ext`,
/// fed by `driver` (at cin_d, loaded only by gate): the Fig. 5 "A" config,
/// measured from the driver output (input of gate i) to the load — i.e.
/// just the delay of gate i with the realistic input slew produced by the
/// driver. Averaged over the two polarities of the path input.
double config_a_delay(const DelayModel& dm, const Cell& driver,
                      const Cell& gate, double cin_d, double cin_g,
                      double cl_ext, EdgeAggregate aggregate) {
  const auto& tech = dm.lib().tech();
  double total = 0.0, worst = 0.0;
  for (Edge e_in : {Edge::Rise, Edge::Fall}) {
    // Driver output edge given its input edge.
    const Edge e_drv = driver.inverting ? flip(e_in) : e_in;
    const double drv_load = cin_g + driver.cpar_ff(tech, driver.wn_for_cin(tech, cin_d));
    const double slew_in = dm.transition_ps(driver, e_drv, cin_d, drv_load);
    const Edge e_gate = gate.inverting ? flip(e_drv) : e_drv;
    const double gate_load =
        cl_ext + gate.cpar_ff(tech, gate.wn_for_cin(tech, cin_g));
    const double d = dm.delay_ps(gate, e_gate, slew_in, cin_g, gate_load);
    total += d;
    worst = std::max(worst, d);
  }
  return aggregate == EdgeAggregate::Worst ? worst : 0.5 * total;
}

/// The Fig. 5 "B" config: gate i drives an inverter buffer of input cap
/// `cb`, which drives `cl_ext`. Delay from gate input to load, both
/// polarities averaged.
double config_b_delay(const DelayModel& dm, const Cell& driver,
                      const Cell& gate, const Cell& buf, double cin_d,
                      double cin_g, double cb, double cl_ext,
                      EdgeAggregate aggregate) {
  const auto& tech = dm.lib().tech();
  double total = 0.0, worst = 0.0;
  for (Edge e_in : {Edge::Rise, Edge::Fall}) {
    const Edge e_drv = driver.inverting ? flip(e_in) : e_in;
    const double drv_load =
        cin_g + driver.cpar_ff(tech, driver.wn_for_cin(tech, cin_d));
    const double slew_in = dm.transition_ps(driver, e_drv, cin_d, drv_load);

    const Edge e_gate = gate.inverting ? flip(e_drv) : e_drv;
    const double gate_load =
        cb + gate.cpar_ff(tech, gate.wn_for_cin(tech, cin_g));
    double d = dm.delay_ps(gate, e_gate, slew_in, cin_g, gate_load);
    const double slew_gate = dm.transition_ps(gate, e_gate, cin_g, gate_load);

    const Edge e_buf = buf.inverting ? flip(e_gate) : e_gate;
    const double buf_load =
        cl_ext + buf.cpar_ff(tech, buf.wn_for_cin(tech, cb));
    d += dm.delay_ps(buf, e_buf, slew_gate, cb, buf_load);
    total += d;
    worst = std::max(worst, d);
  }
  return aggregate == EdgeAggregate::Worst ? worst : 0.5 * total;
}

}  // namespace

double flimit(const DelayModel& dm, CellKind driver_kind, CellKind gate_kind,
              const FlimitOptions& opt) {
  const liberty::Library& lib = dm.lib();
  const auto& tech = lib.tech();
  const Cell& driver = lib.cell(driver_kind);
  const Cell& gate = lib.cell(gate_kind);
  const Cell& buf = lib.cell(CellKind::Inv);

  const double cin_d = driver.cin_ff(tech, tech.wmin_um * opt.driver_drive_x);
  const double cin_g = gate.cin_ff(tech, tech.wmin_um * opt.gate_drive_x);
  const double cb_min = buf.cin_ff(tech, tech.wmin_um);

  // h(F) = D_A - D_B_opt : negative when the buffer does not pay off.
  auto h = [&](double f) {
    const double cl = f * cin_g;
    const double da =
        config_a_delay(dm, driver, gate, cin_d, cin_g, cl, opt.aggregate);
    const double cb_opt = util::golden_section_min(
        [&](double cb) {
          return config_b_delay(dm, driver, gate, buf, cin_d, cin_g, cb, cl,
                                opt.aggregate);
        },
        cb_min, std::max(2.0 * cl, 4.0 * cb_min), 1e-4);
    const double db = config_b_delay(dm, driver, gate, buf, cin_d, cin_g,
                                     cb_opt, cl, opt.aggregate);
    return da - db;
  };

  if (h(opt.f_hi) <= 0.0) return std::numeric_limits<double>::infinity();
  if (h(opt.f_lo) >= 0.0) return opt.f_lo;
  return util::bisect_root(h, opt.f_lo, opt.f_hi, opt.tol);
}

double FlimitTable::get(const DelayModel& dm, CellKind driver, CellKind gate) {
  const auto key = std::make_pair(driver, gate);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  const double value = flimit(dm, driver, gate, opt_);
  cache_.emplace(key, value);
  return value;
}

std::vector<std::size_t> critical_nodes(const BoundedPath& path,
                                        const DelayModel& dm,
                                        FlimitTable& table, double margin) {
  std::vector<std::size_t> crit;
  for (std::size_t i = 0; i < path.size(); ++i) {
    // Never buffer a buffer, a stage already feeding one, or a shielded
    // node — past that point sizing is the right tool.
    if (path.stage(i).kind == CellKind::Buf) continue;
    if (i + 1 < path.size() && path.stage(i + 1).kind == CellKind::Buf)
      continue;
    if (path.stage(i).shielded) continue;
    const CellKind driver_kind =
        i == 0 ? CellKind::Inv : path.stage(i - 1).kind;
    const double limit = table.get(dm, driver_kind, path.stage(i).kind);
    const double f = path.load_ff(i) / path.cin(i);
    if (f > margin * limit) crit.push_back(i);
  }
  return crit;
}

double shield_buffer_cin_ff(const liberty::Library& lib, double off_load_ff) {
  const Cell& buf = lib.cell(CellKind::Buf);
  const double cb_min = buf.cin_ff(lib.tech(), lib.wmin_um());
  const double cb_max = buf.cin_ff(lib.tech(), lib.wmax_um());
  return std::clamp(off_load_ff / 4.0, cb_min, cb_max);
}

namespace {

/// Area (um) of one shield buffer that absorbs `off_ff` of off-path load.
double shield_area_um(const liberty::Library& lib, double off_ff) {
  const Cell& buf = lib.cell(CellKind::Buf);
  const double cb = shield_buffer_cin_ff(lib, off_ff);
  return buf.total_width_um(buf.wn_for_cin(lib.tech(), cb));
}

}  // namespace

BufferInsertionResult insert_buffers_local(BoundedPath path,
                                           const DelayModel& dm,
                                           FlimitTable& table,
                                           InsertionStyle style) {
  const liberty::Library& lib = path.lib();
  const Cell& buf = lib.cell(CellKind::Buf);
  const double cb_min = buf.cin_ff(lib.tech(), lib.wmin_um());

  const std::vector<std::size_t> crit = critical_nodes(path, dm, table);
  std::size_t inserted = 0, shields = 0;
  double shield_area = 0.0;

  // Apply from the back so earlier indices stay valid after insertions.
  for (auto it = crit.rbegin(); it != crit.rend(); ++it) {
    const std::size_t i = *it;
    const double base_delay = path.delay_ps(dm);

    // Option SHIELD: a buffer absorbs the off-path fanout; the node then
    // sees only the buffer's input capacitance.
    double shield_delay = std::numeric_limits<double>::infinity();
    double shield_cb = 0.0;
    const double off = path.stage(i).off_path_ff;
    if (style != InsertionStyle::InPathOnly && !path.stage(i).shielded &&
        off > 2.0 * cb_min) {
      shield_cb = shield_buffer_cin_ff(lib, off);
      BoundedPath probe = path;
      probe.set_off_path_ff(i, shield_cb);
      shield_delay = probe.delay_ps(dm);
    }

    // Option IN-PATH: Fig. 5 insertion in front of the whole load, buffer
    // sized by golden section, everything else conserved.
    double inpath_delay = std::numeric_limits<double>::infinity();
    BoundedPath inpath = path;
    if (style != InsertionStyle::ShieldOnly) {
      inpath.insert_stage_after(i, CellKind::Buf, cb_min,
                                /*take_off_path=*/true);
      const std::size_t bi = i + 1;
      const double hi = std::max(2.0 * inpath.load_ff(bi), 8.0 * cb_min);
      const double cb_opt = util::golden_section_min(
          [&](double cb) {
            BoundedPath g = inpath;
            g.set_cin(bi, cb);
            return g.delay_ps(dm);
          },
          cb_min, hi, 1e-3);
      inpath.set_cin(bi, cb_opt);
      inpath_delay = inpath.delay_ps(dm);
    }

    if (shield_delay < base_delay && shield_delay <= inpath_delay) {
      path.set_off_path_ff(i, shield_cb);
      path.set_shielded(i, true);
      shield_area += shield_area_um(lib, off);
      ++shields;
      ++inserted;
    } else if (inpath_delay < base_delay) {
      path = std::move(inpath);
      ++inserted;
    }
  }

  BufferInsertionResult res{std::move(path), inserted, shields, shield_area,
                            0.0, 0.0};
  res.delay_ps = res.path.delay_ps(dm);
  res.area_um = res.path.area_um() + res.shield_area_um;
  return res;
}

BufferInsertionResult min_delay_with_buffers(const BoundedPath& path,
                                             const DelayModel& dm,
                                             FlimitTable& table,
                                             const BoundsOptions& bopt) {
  // Identify overload on the *sizing-optimised* implementation: a node
  // whose fanout still exceeds Flimit when the link equations have done
  // their best (drives clamp at the library ceiling) is a genuine buffer
  // candidate. Whether a shield or an in-path buffer wins can flip after
  // redistribution, so both insertion styles are carried to the resized
  // comparison.
  const BoundedPath at_tmin = size_for_tmin(path, dm, bopt);
  BufferInsertionResult sized[2] = {
      insert_buffers_local(at_tmin, dm, table, InsertionStyle::Auto),
      insert_buffers_local(at_tmin, dm, table, InsertionStyle::ShieldOnly),
  };
  for (BufferInsertionResult& cand : sized) {
    cand.path = size_for_tmin(cand.path, dm, bopt);
    cand.delay_ps = cand.path.delay_ps(dm);
    cand.area_um = cand.path.area_um() + cand.shield_area_um;
  }

  // Sizing-only fallback.
  BoundedPath plain_tmin = size_for_tmin(path, dm, bopt);
  const double t_plain = plain_tmin.delay_ps(dm);

  BufferInsertionResult* best = nullptr;
  for (BufferInsertionResult& cand : sized) {
    if (cand.buffers_inserted == 0) continue;
    if (!best || cand.delay_ps < best->delay_ps) best = &cand;
  }
  if (!best || best->delay_ps >= t_plain) {
    BufferInsertionResult res{std::move(plain_tmin), 0, 0, 0.0, 0.0, 0.0};
    res.delay_ps = t_plain;
    res.area_um = res.path.area_um();
    return res;
  }
  return std::move(*best);
}

}  // namespace pops::core
