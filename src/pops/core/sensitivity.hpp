#pragma once
// The constant sensitivity method — paper §3.2 ("Constraint distribution").
//
// Impose the same delay sensitivity on every free gate of the path:
//
//     dT/dCIN(i) = a        for all i,  a <= 0            (eq. 5)
//
// which expands (eq. 6) to the chain
//
//     A_(i-1)/CIN(i-1) - A_i * (Coff(i) + CIN(i+1)) / CIN(i)^2 = a
//
// solved here by Gauss-Seidel sweeps of
//
//     CIN(i) <- sqrt( A_i * (Coff(i)+CIN(i+1)) / (A_(i-1)/CIN(i-1) - a) ).
//
// a = 0 reproduces the Tmin link equations; decreasing a walks the
// delay/area trade-off curve (Fig. 3). A few bisection iterations on `a`
// meet a delay constraint Tc at minimum area (the paper's claim, backed by
// the convexity of the bounded-path delay).
//
// The Sutherland / logical-effort *equal effort-delay* distribution
// (ref [4] of the paper) is provided as the comparison baseline: fast, but
// oversizes gates with a large logical weight.

#include "pops/core/bounds.hpp"
#include "pops/timing/delay_model.hpp"
#include "pops/timing/path.hpp"

namespace pops::core {

/// Knobs for the sensitivity solver.
struct SensitivityOptions {
  int max_sweeps = 800;  ///< per solve; each sweep is O(N)
  double tol = 1e-7;
  /// Bisection iterations on `a` when meeting a constraint.
  int max_bisect = 80;
  /// Constraint satisfaction tolerance, relative to Tc.
  double tc_rel_tol = 1e-4;
};

/// Result of a constraint-distribution run.
struct SizingResult {
  timing::BoundedPath path;  ///< the sized path
  double delay_ps = 0.0;
  double area_um = 0.0;
  double a = 0.0;            ///< realised sensitivity coefficient
  bool feasible = false;     ///< Tc >= Tmin (met within tolerance)
  int sweeps = 0;            ///< total fixed-point sweeps spent
};

/// Size the path so every free gate sees sensitivity `a` (<= 0).
/// Starts from the provided sizing. Returns the converged path.
timing::BoundedPath size_at_sensitivity(timing::BoundedPath path,
                                        const timing::DelayModel& dm, double a,
                                        const SensitivityOptions& opt = {},
                                        int* sweeps_used = nullptr);

/// Meet delay constraint `tc_ps` at minimum area by bisecting `a`:
///  * Tc <= Tmin  -> returns the Tmin sizing with feasible=false;
///  * Tc >= Tmax  -> returns the all-minimum sizing (a -> -inf limit);
///  * otherwise   -> the unique a with T(a) = Tc.
SizingResult size_for_constraint(const timing::BoundedPath& path,
                                 const timing::DelayModel& dm, double tc_ps,
                                 const SensitivityOptions& opt = {});

/// Sutherland-style equal effort-delay distribution (the paper's "simplest
/// method"): every stage receives the same delay budget, realised by a
/// backward solve per stage and a bisection on the budget to meet Tc.
/// Oversizes heavy gates relative to the constant-sensitivity method.
SizingResult size_equal_effort(const timing::BoundedPath& path,
                               const timing::DelayModel& dm, double tc_ps,
                               const SensitivityOptions& opt = {});

}  // namespace pops::core
