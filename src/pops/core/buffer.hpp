#pragma once
// Buffer insertion and the Flimit metric — paper §4.1.
//
// Flimit ("load buffer insertion limit"): for the Fig. 5 configuration
//
//      (i-1) --> (i) --> CL          (A: direct drive)
//      (i-1) --> (i) --> buf --> CL  (B: inserted, optimally sized buffer)
//
// Flimit is the fanout F = CL/CIN(i) at which B becomes faster than A,
// with the sizes of (i-1) and (i) conserved and only the buffer sized
// ("local insertion"). The weaker the gate (higher logical weight), the
// lower its limit — Table 2: inv 5.7 > nand2 4.9 > nand3 4.5 > nor2 3.8 >
// nor3 2.7. Flimit measures gate efficiency and identifies the critical
// (overloaded) nodes *of the implementation as given* deterministically.
//
// Insertion applies the paper's "load dilution" in two forms:
//   * SHIELD — a buffer takes over the node's *off-path* fanout; the
//     buffer's own delay leaves the critical path entirely (the dominant
//     Table 3 mechanism), at the cost of the buffer's area and a slower
//     off-path branch;
//   * IN-PATH — a buffer is inserted in series before the node's load
//     (Fig. 5 exactly); pays off above Flimit, e.g. into a massive
//     terminal load.
// `insert_buffers_local` evaluates both at each critical node and keeps
// whatever reduces the path delay most; only buffers are sized, every
// original gate is conserved. `min_delay_with_buffers` additionally
// re-distributes the whole path with the link equations afterwards
// (the Table 3 "buff" rows).

#include <map>
#include <vector>

#include "pops/core/sensitivity.hpp"
#include "pops/timing/delay_model.hpp"
#include "pops/timing/path.hpp"

namespace pops::core {

/// How the two path polarities combine into one delay figure.
enum class EdgeAggregate {
  Worst,    ///< max over rising/falling input (default: what STA constrains)
  Average,  ///< mean of the two polarities
};

/// Parameters of the Fig. 5 characterisation set-up.
struct FlimitOptions {
  double driver_drive_x = 4.0;  ///< drive of gate (i-1), in wmin multiples
  double gate_drive_x = 4.0;    ///< drive of gate (i), in wmin multiples
  double f_lo = 1.05;           ///< bisection bracket for the crossing
  double f_hi = 400.0;
  double tol = 1e-4;
  EdgeAggregate aggregate = EdgeAggregate::Worst;
};

/// Compute Flimit for `gate` driven by `driver`, with a single optimally
/// sized inverter as the buffer (the paper's Fig. 5 cell "4"). Returns
/// +inf if the buffer never wins inside the bracket.
double flimit(const timing::DelayModel& dm, liberty::CellKind driver,
              liberty::CellKind gate, const FlimitOptions& opt = {});

/// Library characterisation cache: Flimit per (driver, gate) pair — the
/// "Library characterization" step at the top of the Fig. 7 protocol.
class FlimitTable {
 public:
  explicit FlimitTable(FlimitOptions opt = {}) : opt_(opt) {}

  /// Cached lookup (computes on first use).
  double get(const timing::DelayModel& dm, liberty::CellKind driver,
             liberty::CellKind gate);

  const FlimitOptions& options() const noexcept { return opt_; }

  /// Cached pair count (introspection: tests, cache-invalidation checks).
  std::size_t size() const noexcept { return cache_.size(); }

  /// Drop every cached value. Required when the delay-model backend the
  /// table was warmed against changes — Flimit is a backend-dependent
  /// characterization (api::OptContext::set_delay_model calls this).
  void clear() noexcept { cache_.clear(); }

 private:
  FlimitOptions opt_;
  std::map<std::pair<liberty::CellKind, liberty::CellKind>, double> cache_;
};

/// Stage indices whose fanout F(i) = load/CIN exceeds the Flimit of
/// (driver kind, own kind) by `margin`, at the path's *current* sizes.
/// Buffers, stages already feeding a buffer, and shielded stages are never
/// candidates (buffering them again is what sizing is for).
std::vector<std::size_t> critical_nodes(const timing::BoundedPath& path,
                                        const timing::DelayModel& dm,
                                        FlimitTable& table,
                                        double margin = 1.0);

/// Result of a buffer-insertion pass.
struct BufferInsertionResult {
  timing::BoundedPath path;        ///< path with buffers applied
  std::size_t buffers_inserted = 0;   ///< total (shield + in-path)
  std::size_t shield_buffers = 0;     ///< of which off-path shields
  double shield_area_um = 0.0;     ///< area of shield buffers (off-path)
  double delay_ps = 0.0;
  double area_um = 0.0;            ///< path area + shield_area_um
};

/// Which insertion moves insert_buffers_local may use.
enum class InsertionStyle {
  Auto,        ///< per node: better of shield / in-path (local evaluation)
  ShieldOnly,  ///< only off-path shields (never lengthens the path)
  InPathOnly,  ///< only Fig. 5 in-path buffers (the paper's mechanism)
};

/// LOCAL insertion: at every critical node try the shield and the in-path
/// buffer (sized by golden section, everything else conserved); keep the
/// variant that shortens the path delay most, or nothing if neither does.
BufferInsertionResult insert_buffers_local(timing::BoundedPath path,
                                           const timing::DelayModel& dm,
                                           FlimitTable& table,
                                           InsertionStyle style =
                                               InsertionStyle::Auto);

/// GLOBAL flow (Table 3 "buff"): identify critical nodes on the path as
/// given, apply the best insertions, then re-distribute the whole path
/// with the link equations (a = 0). Falls back to the sizing-only Tmin if
/// buffering does not pay.
BufferInsertionResult min_delay_with_buffers(const timing::BoundedPath& path,
                                             const timing::DelayModel& dm,
                                             FlimitTable& table,
                                             const BoundsOptions& bopt = {});

/// Shield-buffer sizing rule: the buffer drives the off-path load at a
/// fanout of ~4 (classic FO4 repeater sizing), clamped to the library.
double shield_buffer_cin_ff(const liberty::Library& lib, double off_load_ff);

}  // namespace pops::core
