#include "pops/core/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "pops/api/passes.hpp"

namespace pops::core {

using liberty::CellKind;
using timing::BoundedPath;
using timing::DelayModel;

const char* to_string(ConstraintDomain d) noexcept {
  switch (d) {
    case ConstraintDomain::Infeasible: return "infeasible";
    case ConstraintDomain::Hard: return "hard";
    case ConstraintDomain::Medium: return "medium";
    case ConstraintDomain::Weak: return "weak";
  }
  return "?";
}

const char* to_string(Method m) noexcept {
  switch (m) {
    case Method::Sizing: return "sizing";
    case Method::LocalBufferSizing: return "local-buffer+sizing";
    case Method::GlobalBufferSizing: return "global-buffer+sizing";
    case Method::Restructure: return "restructure+sizing";
  }
  return "?";
}

namespace {

void throw_if_any(const std::vector<std::string>& problems) {
  if (problems.empty()) return;
  std::string msg = "invalid options:";
  for (const std::string& p : problems) msg += "\n  - " + p;
  throw std::invalid_argument(msg);
}

}  // namespace

std::vector<std::string> ProtocolOptions::problems() const {
  std::vector<std::string> out;
  if (!(hard_ratio >= 1.0))
    out.push_back("hard_ratio must be >= 1 (got " +
                  std::to_string(hard_ratio) + ")");
  if (!(hard_ratio < weak_ratio))
    out.push_back(
        "hard_ratio must be < weak_ratio or the Medium domain is empty "
        "(got hard_ratio=" + std::to_string(hard_ratio) +
        ", weak_ratio=" + std::to_string(weak_ratio) + ")");
  return out;
}

void ProtocolOptions::validate() const { throw_if_any(problems()); }

std::vector<std::string> CircuitOptions::problems() const {
  std::vector<std::string> out;
  if (max_paths == 0) out.push_back("max_paths must be > 0");
  if (max_rounds <= 0) out.push_back("max_rounds must be > 0");
  if (!(tc_margin > 0.0 && tc_margin <= 1.0))
    out.push_back("tc_margin must be in (0, 1] (got " +
                  std::to_string(tc_margin) + ")");
  if (sta_workers == 0)
    out.push_back("sta_workers must be >= 1 (1 = sequential sweeps)");
  for (std::string& p : protocol.problems()) out.push_back(std::move(p));
  return out;
}

void CircuitOptions::validate() const { throw_if_any(problems()); }

ConstraintDomain classify_constraint(double tc_ps, double tmin_ps,
                                     const ProtocolOptions& opt) {
  opt.validate();
  if (tc_ps < tmin_ps) return ConstraintDomain::Infeasible;
  if (tc_ps < opt.hard_ratio * tmin_ps) return ConstraintDomain::Hard;
  if (tc_ps <= opt.weak_ratio * tmin_ps) return ConstraintDomain::Medium;
  return ConstraintDomain::Weak;
}

namespace {

/// A buffered variant of a path plus its bookkeeping.
struct Buffered {
  BoundedPath path;
  std::size_t n_buffers;
  double shield_area_um;
};

/// Apply the Flimit-guided insertions (shields / in-path, see buffer.hpp)
/// on the implementation as given. `freeze_buffers` keeps the inserted
/// in-path buffers at their locally optimal size during later global
/// sizing (the Fig. 8 "Local Buff" method); otherwise they are free
/// variables ("Global Buff").
Buffered with_buffers(const BoundedPath& path, const DelayModel& dm,
                      FlimitTable& table, bool freeze_buffers) {
  BufferInsertionResult r = insert_buffers_local(path, dm, table);
  Buffered b{std::move(r.path), r.buffers_inserted, r.shield_area_um};
  if (freeze_buffers) {
    for (std::size_t i = 0; i < b.path.size(); ++i)
      if (b.path.stage(i).kind == CellKind::Buf &&
          b.path.stage(i).node == netlist::kNoNode)
        b.path.set_sizable(i, false);
  }
  return b;
}

}  // namespace

SizingResult optimize_with_method(const BoundedPath& path,
                                  const DelayModel& dm, FlimitTable& table,
                                  double tc_ps, Method method,
                                  const ProtocolOptions& opt) {
  switch (method) {
    case Method::Sizing:
      return size_for_constraint(path, dm, tc_ps, opt.sensitivity);
    case Method::LocalBufferSizing: {
      Buffered b = with_buffers(path, dm, table, /*freeze_buffers=*/true);
      SizingResult sr = size_for_constraint(b.path, dm, tc_ps, opt.sensitivity);
      sr.area_um += b.shield_area_um;
      return sr;
    }
    case Method::GlobalBufferSizing: {
      Buffered b = with_buffers(path, dm, table, /*freeze_buffers=*/false);
      SizingResult sr = size_for_constraint(b.path, dm, tc_ps, opt.sensitivity);
      sr.area_um += b.shield_area_um;
      return sr;
    }
    case Method::Restructure: {
      RestructureResult rr = restructure_path(path, dm, table);
      SizingResult sr = size_for_constraint(rr.path, dm, tc_ps, opt.sensitivity);
      sr.area_um += rr.off_path_area_um;
      return sr;
    }
  }
  throw std::logic_error("optimize_with_method: unreachable");
}

ProtocolResult optimize_path(const BoundedPath& path, const DelayModel& dm,
                             FlimitTable& table, double tc_ps,
                             const ProtocolOptions& opt) {
  if (!(tc_ps > 0.0))
    throw std::invalid_argument("optimize_path: Tc must be > 0");

  ProtocolResult res(SizingResult{path, 0.0, 0.0, 0.0, false, 0});

  // --- Characterise the optimisation space (bounds) -------------------------
  const PathBounds bounds = compute_bounds(path, dm, opt.bounds);
  res.tmin_ps = bounds.tmin_ps;
  res.tmax_ps = bounds.tmax_ps;
  res.domain = classify_constraint(tc_ps, bounds.tmin_ps, opt);

  // --- Infeasible: structure modification required ---------------------------
  if (res.domain == ConstraintDomain::Infeasible) {
    Buffered b = with_buffers(path, dm, table, /*freeze_buffers=*/false);
    SizingResult best =
        size_for_constraint(b.path, dm, tc_ps, opt.sensitivity);
    double best_extra = b.shield_area_um;
    res.method = Method::GlobalBufferSizing;
    res.buffers_inserted = b.n_buffers;

    if (!best.feasible && opt.allow_restructuring) {
      // Try restructuring the path's inefficient NOR stages, buffers on top.
      RestructureResult rr = restructure_path(path, dm, table);
      Buffered b2 = with_buffers(rr.path, dm, table, false);
      SizingResult alt =
          size_for_constraint(b2.path, dm, tc_ps, opt.sensitivity);
      const double alt_extra = rr.off_path_area_um + b2.shield_area_um;
      if ((alt.feasible && !best.feasible) ||
          (alt.feasible == best.feasible &&
           alt.area_um + alt_extra < best.area_um + best_extra)) {
        best = std::move(alt);
        best_extra = alt_extra;
        res.method = Method::Restructure;
        res.buffers_inserted = b2.n_buffers;
        res.gates_restructured = rr.gates_restructured;
      }
    }
    res.extra_area_um = best_extra;
    res.sizing = std::move(best);
    return res;
  }

  // --- Feasible domains -------------------------------------------------------
  // Weak: sizing is enough and cheapest (buffers only add area).
  SizingResult sizing_only =
      size_for_constraint(path, dm, tc_ps, opt.sensitivity);
  if (res.domain == ConstraintDomain::Weak) {
    res.method = Method::Sizing;
    res.sizing = std::move(sizing_only);
    return res;
  }

  // Medium: buffer insertion is "not necessary, but allows path
  // implementation with area reduction" — evaluate and keep the smaller.
  Buffered local = with_buffers(path, dm, table, /*freeze_buffers=*/true);
  SizingResult local_sized =
      size_for_constraint(local.path, dm, tc_ps, opt.sensitivity);
  const double local_total = local_sized.area_um + local.shield_area_um;

  if (res.domain == ConstraintDomain::Medium) {
    if (local_sized.feasible &&
        (!sizing_only.feasible || local_total < sizing_only.area_um)) {
      res.method = Method::LocalBufferSizing;
      res.buffers_inserted = local.n_buffers;
      res.extra_area_um = local.shield_area_um;
      res.sizing = std::move(local_sized);
    } else {
      res.method = Method::Sizing;
      res.sizing = std::move(sizing_only);
    }
    return res;
  }

  // Hard: buffer insertion & global sizing; pick the best feasible of the
  // three alternatives.
  Buffered global = with_buffers(path, dm, table, /*freeze_buffers=*/false);
  SizingResult global_sized =
      size_for_constraint(global.path, dm, tc_ps, opt.sensitivity);

  struct Candidate {
    Method method;
    SizingResult* sizing;
    std::size_t buffers;
    double extra_area;
  };
  Candidate candidates[] = {
      {Method::Sizing, &sizing_only, 0, 0.0},
      {Method::LocalBufferSizing, &local_sized, local.n_buffers,
       local.shield_area_um},
      {Method::GlobalBufferSizing, &global_sized, global.n_buffers,
       global.shield_area_um},
  };
  Candidate* best = nullptr;
  for (Candidate& c : candidates) {
    if (!c.sizing->feasible) continue;
    if (!best || c.sizing->area_um + c.extra_area <
                     best->sizing->area_um + best->extra_area)
      best = &c;
  }
  if (!best) best = &candidates[2];  // none feasible: global buffering is
                                     // the strongest fallback
  res.method = best->method;
  res.buffers_inserted = best->buffers;
  res.extra_area_um = best->extra_area;
  res.sizing = std::move(*best->sizing);
  return res;
}

CircuitResult optimize_circuit(netlist::Netlist& nl, const DelayModel& dm,
                               FlimitTable& table, double tc_ps,
                               const CircuitOptions& opt) {
  // Forwarding shim: the circuit-level driver loop moved to the unified
  // pipeline API (api::ProtocolPass), which validates `opt` and `tc_ps`.
  return api::ProtocolPass::run_protocol(nl, dm, table, tc_ps, opt);
}

}  // namespace pops::core
