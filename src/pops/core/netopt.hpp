#pragma once
// Netlist-level optimisation passes.
//
// The path-at-a-time protocol (protocol.hpp) sizes gates; these passes
// perform the *structural* half of the job on the whole netlist, with
// functional equivalence guaranteed (and tested exhaustively):
//
//  * cancel_inverter_pairs — peephole: a chain INV(INV(x)) is rewired so
//    the second inverter's sinks read x directly. De Morgan rewrites
//    (restructure.hpp) create such pairs by design; this pass absorbs
//    them, completing §4.2's "the necessary inverters used to conserve
//    the logic function".
//  * sweep_dead — remove logic with no transitive fanout to any primary
//    output (rewrites leave such residue; real netlists should not carry
//    it into area/power accounting).
//  * shield_high_fanout_nets — the Flimit metric applied circuit-wide:
//    each net whose fanout exceeds the limit of its weakest (driver,
//    sink) pair gets a buffer that takes over every sink except the most
//    timing-critical one, unloading the critical path (the netlist-level
//    counterpart of the path shield in buffer.hpp).

#include <cstddef>

#include "pops/core/buffer.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/timing/delay_model.hpp"

namespace pops::core {

/// Rewire sinks of INV(INV(x)) to x. Does not delete the bypassed
/// inverters (run sweep_dead afterwards); never bypasses a primary
/// output's defining gate. Returns the number of sink rewires performed.
std::size_t cancel_inverter_pairs(netlist::Netlist& nl);

/// Rebuild the netlist without gates that cannot reach any primary
/// output. Primary inputs are always preserved (they are the interface).
/// Names, drives, wire loads and PO annotations survive.
netlist::Netlist sweep_dead(const netlist::Netlist& nl);

/// Options for the circuit-wide shielding pass.
struct ShieldOptions {
  double margin = 1.0;        ///< flag nets with F > margin * Flimit
  std::size_t max_buffers = 64;  ///< insertion budget
  /// Buffer drive rule: the shield drives its sinks at about this fanout.
  double shield_fanout = 4.0;
};

/// Result summary of shield_high_fanout_nets.
struct ShieldReport {
  std::size_t buffers_inserted = 0;
  double area_added_um = 0.0;
  double delay_before_ps = 0.0;
  double delay_after_ps = 0.0;
};

/// Insert shield buffers on overloaded nets, keeping the most
/// timing-critical sink directly driven. Non-inverting buffers only, so
/// the function is untouched. Nets are processed worst-overload-first.
ShieldReport shield_high_fanout_nets(netlist::Netlist& nl,
                                     const timing::DelayModel& dm,
                                     FlimitTable& table,
                                     const ShieldOptions& opt = {});

}  // namespace pops::core
