#pragma once
// Netlist-level optimisation passes.
//
// The path-at-a-time protocol (protocol.hpp) sizes gates; these passes
// perform the *structural* half of the job on the whole netlist, with
// functional equivalence guaranteed (and tested exhaustively):
//
//  * cancel_inverter_pairs — peephole: a chain INV(INV(x)) is rewired so
//    the second inverter's sinks read x directly. De Morgan rewrites
//    (restructure.hpp) create such pairs by design; this pass absorbs
//    them, completing §4.2's "the necessary inverters used to conserve
//    the logic function".
//  * sweep_dead — remove logic with no transitive fanout to any primary
//    output (rewrites leave such residue; real netlists should not carry
//    it into area/power accounting).
//  * shield_high_fanout_nets — the Flimit metric applied circuit-wide:
//    each net whose fanout exceeds the limit of its weakest (driver,
//    sink) pair gets a buffer that takes over every sink except the most
//    timing-critical one, unloading the critical path (the netlist-level
//    counterpart of the path shield in buffer.hpp).

#include <cstddef>
#include <vector>

#include "pops/core/buffer.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/timing/delay_model.hpp"

namespace pops::timing {
class IncrementalSta;
}

namespace pops::core {

/// Rewire sinks of INV(INV(x)) to x. Does not delete the bypassed
/// inverters (run sweep_dead afterwards); never bypasses a primary
/// output's defining gate. Returns the number of sink rewires performed.
/// When `dirty` is non-null, every node touched by a rewire (the repointed
/// sink, the bypassed inverter, the new driver) is appended to it —
/// exactly the IncrementalSta dirty-set contract, so a caller sharing a
/// timing engine can `update(dirty, true)` instead of re-running cold.
std::size_t cancel_inverter_pairs(netlist::Netlist& nl,
                                  std::vector<netlist::NodeId>* dirty =
                                      nullptr);

/// Rebuild the netlist without gates that cannot reach any primary
/// output. Primary inputs are always preserved (they are the interface).
/// Names, drives, wire loads and PO annotations survive.
netlist::Netlist sweep_dead(const netlist::Netlist& nl);

/// Options for the circuit-wide shielding pass.
struct ShieldOptions {
  double margin = 1.0;        ///< flag nets with F > margin * Flimit
  std::size_t max_buffers = 64;  ///< insertion budget
  /// Buffer drive rule: the shield drives its sinks at about this fanout.
  double shield_fanout = 4.0;
};

/// Result summary of shield_high_fanout_nets.
struct ShieldReport {
  std::size_t buffers_inserted = 0;
  double area_added_um = 0.0;
  double delay_before_ps = 0.0;
  double delay_after_ps = 0.0;
};

/// Insert shield buffers on overloaded nets, keeping the most
/// timing-critical sink directly driven. Non-inverting buffers only, so
/// the function is untouched. Nets are processed worst-overload-first.
///
/// `shared` (optional) is a caller-owned timing engine over `nl` to reuse
/// instead of building a private one: an existing result is taken as-is
/// (no cold re-run — the caller vouches it is current), every buffer
/// insertion is reported through update(), and the maintained state stays
/// valid for the caller's subsequent passes. Its StaOptions are the
/// caller's choice; the private engine uses defaults.
///
/// The timing-critical sink of each net is chosen by slack against the
/// circuit's *current* critical delay — the pass's historical definition,
/// preserved bit for bit (pinning one tc for the whole pass would be
/// equivalent in exact arithmetic, since shifting tc moves every required
/// time uniformly, but floating-point required-time propagation does not
/// shift exactly and near-tied sinks flip). The cost win comes from the
/// engine instead: its slack cache is keyed on the tc bit pattern and
/// maintained over dirty cones by update(), so the historical full
/// backward sweep per candidate happens only when a preceding insertion
/// actually moved the critical delay.
ShieldReport shield_high_fanout_nets(netlist::Netlist& nl,
                                     const timing::DelayModel& dm,
                                     FlimitTable& table,
                                     const ShieldOptions& opt = {},
                                     timing::IncrementalSta* shared = nullptr);

}  // namespace pops::core
