#pragma once
// Area and power reporting.
//
// The paper uses the sum of transistor widths ΣW as its area *and* power
// proxy ("minimum area/power cost"): at fixed supply and frequency the
// switched capacitance — hence the dynamic power — scales with the widths.
// This module makes the proxy explicit and additionally reports a
// first-order dynamic/leakage power estimate from simulated switching
// activities, so the "low power oriented" claim can be quantified:
//
//   P_dyn  = alpha_total * Cload * VDD^2 * f / 2   (per net, summed)
//   P_leak = I_off_per_um * W_total * VDD
//
// (Short-circuit power is folded into P_dyn with a +10% allowance — the
// standard first-order budget for edge rates in the fast-input range.)

#include "pops/netlist/logic_sim.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/timing/path.hpp"
#include "pops/util/rng.hpp"

namespace pops::core {

struct PowerReport {
  double area_um = 0.0;          ///< ΣW, the paper's metric
  double switched_cap_ff = 0.0;  ///< sum over nets of alpha * C
  double dynamic_uw = 0.0;       ///< at the report frequency
  double leakage_uw = 0.0;
  double total_uw = 0.0;
  double frequency_mhz = 0.0;
};

/// Per-µm off current used for the leakage estimate (nA/µm); generic
/// 0.25µm magnitude.
inline constexpr double kIoffNaPerUm = 0.03;

/// Short-circuit allowance on top of the switched-capacitance power.
inline constexpr double kShortCircuitFraction = 0.10;

/// Estimate circuit power at `frequency_mhz` with random-vector switching
/// activities (deterministic in `rng`).
PowerReport estimate_power(const netlist::Netlist& nl, util::Rng& rng,
                           double frequency_mhz = 100.0, int vectors = 512);

/// ΣW of a bounded path (convenience; identical to path.area_um()).
double path_area_um(const timing::BoundedPath& path);

}  // namespace pops::core
