#pragma once
// Area and power reporting.
//
// The paper uses the sum of transistor widths ΣW as its area *and* power
// proxy ("minimum area/power cost"): at fixed supply and frequency the
// switched capacitance — hence the dynamic power — scales with the widths.
// This module keeps the historical convenience entry points; the math now
// lives in the polymorphic power::PowerModel backends (estimate_power is
// the power::ProxyModel, bit-identical to its pre-backend numbers at the
// reference temperature).

#include "pops/netlist/netlist.hpp"
#include "pops/power/report.hpp"
#include "pops/timing/path.hpp"
#include "pops/util/rng.hpp"

namespace pops::core {

using PowerReport = power::PowerReport;

/// Per-µm off current used for the flat leakage estimate (nA/µm); generic
/// 0.25µm magnitude.
inline constexpr double kIoffNaPerUm = power::kProxyIoffNaPerUm;

/// Short-circuit allowance on top of the switched-capacitance power.
inline constexpr double kShortCircuitFraction = power::kShortCircuitFraction;

/// Estimate circuit power at `frequency_mhz` with random-vector switching
/// activities (deterministic in `rng`), optionally at a junction
/// temperature (the 25 degC default reproduces the historical,
/// temperature-blind numbers bit-for-bit).
PowerReport estimate_power(const netlist::Netlist& nl, util::Rng& rng,
                           double frequency_mhz = 100.0, int vectors = 512,
                           double temperature_c = power::kDefaultTemperatureC);

/// ΣW of a bounded path (convenience; identical to path.area_um()).
double path_area_um(const timing::BoundedPath& path);

}  // namespace pops::core
