#pragma once
// The optimization protocol — paper Fig. 7.
//
//   Library characterization (Flimit determination)
//   Characterisation of the optimization space:
//     - path classification
//     - delay bounds determination: Tmax, Tmin
//   Delay constraint Tc distribution:
//     - Tc <  Tmin                  -> structure modification (buffers,
//                                      then De Morgan restructuring)
//     - weak   (Tc > 2.5 Tmin)      -> gate sizing
//     - medium (1.2 Tmin < Tc < 2.5 Tmin) -> buffer insertion
//     - hard   (Tc < 1.2 Tmin)     -> buffer insertion & global sizing
//
// For the medium and hard domains the protocol evaluates the admissible
// alternatives and returns the smallest-area implementation that meets Tc
// (the paper's target: "delay constraint satisfaction at minimum area
// cost"). A circuit-level driver applies the protocol path-by-path over
// the K most critical paths, with iterative STA re-verification (gate
// sizing "may slow down adjacent upward paths", §1).

#include <string>
#include <vector>

#include "pops/core/bounds.hpp"
#include "pops/core/buffer.hpp"
#include "pops/core/restructure.hpp"
#include "pops/core/sensitivity.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/timing/sta.hpp"

namespace pops::core {

/// Relative tolerance under which a measured critical delay counts as
/// meeting Tc. One named constant shared by the ProtocolPass round loop,
/// the pipeline's `met` field and (through them) the sweep front-ends'
/// unmet counters — a point must never iterate as "violating" yet report
/// met=true, or vice versa at the boundary (pops_sweep's exit-2 contract
/// keys off `met`).
inline constexpr double kTcMetRelTol = 1e-4;

/// Whether `delay_ps` meets `tc_ps` within the shared tolerance.
constexpr bool tc_met(double delay_ps, double tc_ps) noexcept {
  return delay_ps <= tc_ps * (1.0 + kTcMetRelTol);
}

/// Where a constraint falls relative to the path's feasible range.
enum class ConstraintDomain { Infeasible, Hard, Medium, Weak };
const char* to_string(ConstraintDomain d) noexcept;

/// Which alternative the protocol settled on.
enum class Method {
  Sizing,              ///< constant-sensitivity sizing only
  LocalBufferSizing,   ///< locally sized buffers + sizing of the rest
  GlobalBufferSizing,  ///< buffers + global re-distribution of all stages
  Restructure,         ///< De Morgan rewrite + buffers + sizing
};
const char* to_string(Method m) noexcept;

struct ProtocolOptions {
  double hard_ratio = 1.2;  ///< Tc < hard_ratio*Tmin  -> hard
  double weak_ratio = 2.5;  ///< Tc > weak_ratio*Tmin  -> weak
  bool allow_restructuring = true;
  BoundsOptions bounds;
  SensitivityOptions sensitivity;

  /// Every violated invariant (hard_ratio < 1, or hard_ratio >=
  /// weak_ratio, which silently empties the Medium domain), as
  /// human-readable diagnostics. Empty when usable. Single source of
  /// truth shared with api::OptimizerConfig::validate.
  std::vector<std::string> problems() const;

  /// Throws std::invalid_argument listing the problems; no-op when valid.
  /// Called by every consumer.
  void validate() const;
};

/// Classify `tc` against `tmin` with the Fig. 6 thresholds.
ConstraintDomain classify_constraint(double tc_ps, double tmin_ps,
                                     const ProtocolOptions& opt = {});

/// Outcome of the protocol on one path.
struct ProtocolResult {
  /// SizingResult (and the BoundedPath inside it) has no empty state, so a
  /// ProtocolResult is seeded with an initial sizing that the protocol
  /// then replaces.
  explicit ProtocolResult(SizingResult seed) : sizing(std::move(seed)) {}

  ConstraintDomain domain = ConstraintDomain::Weak;
  Method method = Method::Sizing;
  SizingResult sizing;              ///< final sized path + delay/area
  double tmin_ps = 0.0;             ///< of the *original* structure
  double tmax_ps = 0.0;
  std::size_t buffers_inserted = 0;
  std::size_t gates_restructured = 0;
  double extra_area_um = 0.0;       ///< off-path inverters (restructuring)
  /// Total implementation area: path ΣW + off-path overhead.
  double total_area_um() const { return sizing.area_um + extra_area_um; }
};

/// Run the Fig. 7 protocol on one bounded path.
ProtocolResult optimize_path(const timing::BoundedPath& path,
                             const timing::DelayModel& dm, FlimitTable& table,
                             double tc_ps, const ProtocolOptions& opt = {});

/// The Fig. 8 comparison: size the path with one *forced* method (no
/// selection), for the Sizing / Local Buff / Global Buff series.
SizingResult optimize_with_method(const timing::BoundedPath& path,
                                  const timing::DelayModel& dm,
                                  FlimitTable& table, double tc_ps,
                                  Method method,
                                  const ProtocolOptions& opt = {});

/// Circuit-level outcome.
struct CircuitResult {
  double tc_ps = 0.0;
  double achieved_delay_ps = 0.0;   ///< STA critical delay after optimisation
  double area_um = 0.0;             ///< ΣW over the whole netlist
  bool met = false;
  std::size_t paths_optimized = 0;
  /// Rounds that evaluated paths (0 when the input already met Tc).
  /// Strictly less than max_rounds when a round's write-back moved no
  /// drive and no enumerated path was still below the tightening target
  /// — the loop stops instead of replaying identical rounds.
  std::size_t rounds = 0;
  std::vector<ProtocolResult> per_path;
};

struct CircuitOptions {
  std::size_t max_paths = 24;   ///< K most critical paths per round
  int max_rounds = 6;           ///< STA re-verification rounds
  /// Per-path constraint tightening: paths are optimised to margin*Tc so
  /// that the off-path loading changes caused by resizing *other* paths
  /// (the interaction of §1: sizing "may slow down adjacent upward paths")
  /// still leave the circuit under Tc at re-verification.
  double tc_margin = 0.97;
  ProtocolOptions protocol;
  double pi_slew_ps = -1.0;     ///< forwarded to STA

  /// Forwarded to timing::StaOptions::level_parallel_workers /
  /// level_parallel_min_nodes: > 1 workers fan STA sweeps out by
  /// topological level on netlists at or above the node threshold.
  /// Results are bitwise-identical at any worker count, so these are pure
  /// performance knobs (result caches ignore them).
  std::size_t sta_workers = 1;
  std::size_t sta_parallel_min_nodes = 50000;

  /// Every violated driver invariant (max_paths == 0, max_rounds <= 0,
  /// tc_margin outside (0,1], sta_workers == 0) plus protocol.problems().
  std::vector<std::string> problems() const;

  /// Throws std::invalid_argument listing the problems; no-op when valid.
  void validate() const;
};

/// Apply the protocol to a netlist: repeatedly extract the K most critical
/// paths, optimise each as a bounded path (off-path loads frozen), write
/// the sizes back, and re-run STA until the constraint holds everywhere or
/// the round budget is exhausted. Buffer/restructure edits are *not*
/// applied to the netlist (sizing only) — structural rewrites are offered
/// at the path level where their cost can be judged; this mirrors POPS's
/// path-by-path operation.
///
/// Forwarding shim: the driver loop lives in api::ProtocolPass (the
/// unified pipeline API, see pops/api/api.hpp); this entry point is kept
/// for source compatibility and forwards unchanged.
CircuitResult optimize_circuit(netlist::Netlist& nl,
                               const timing::DelayModel& dm,
                               FlimitTable& table, double tc_ps,
                               const CircuitOptions& opt = {});

}  // namespace pops::core
