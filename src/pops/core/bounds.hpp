#pragma once
// Path delay bounds — paper §3.1 ("Constraint feasibility").
//
//   Tmax: the pseudo-upper bound at minimum area — every free gate at the
//         minimum available drive (CREF).
//   Tmin: the minimum achievable delay on the bounded path, obtained by
//         cancelling dT/dCIN(i), which yields the link equations (eq. 4)
//
//           CIN(i)^2 = (A_i / A_(i-1)) * CIN(i-1) * (Coff(i) + CIN(i+1))
//
//         solved by the paper's scheme: a backward initial pass that sets
//         each CIN(i) from eq. (4) with CIN(i-1) := CREF, followed by
//         fixed-point sweeps until convergence. The fixed point is
//         independent of the starting CREF scale (verified in tests and
//         illustrated by Fig. 1).
//
// The A_i are re-evaluated from the current sizes between sweeps (they
// absorb the Miller and slope coefficients of eq. 1-2, which vary slowly).

#include <vector>

#include "pops/timing/delay_model.hpp"
#include "pops/timing/path.hpp"

namespace pops::core {

/// Knobs for the fixed-point solver.
struct BoundsOptions {
  int max_sweeps = 800;          ///< fixed-point sweep budget (each is O(N))
  double tol = 1e-7;             ///< max relative CIN change to declare converged
  double init_scale = 1.0;       ///< CREF multiplier for the initial pass
                                 ///< (Fig. 1 explores several; Tmin must not move)
};

/// One row per fixed-point sweep — the data behind Fig. 1.
struct IterationTrace {
  std::vector<double> delay_ps;         ///< path delay after each sweep
  std::vector<double> normalized_size;  ///< ΣCIN/CREF after each sweep
};

/// The feasibility envelope of a path.
struct PathBounds {
  double tmin_ps = 0.0;
  double tmax_ps = 0.0;
  int sweeps = 0;             ///< sweeps used to converge Tmin
  timing::BoundedPath at_tmin;   ///< sizing realising Tmin
  timing::BoundedPath at_tmax;   ///< sizing realising Tmax (all CREF)
};

/// Path delay with every free stage at minimum drive (Tmax, §3.1).
double tmax_ps(timing::BoundedPath path, const timing::DelayModel& dm);

/// Solve the link equations (eq. 4) for the Tmin sizing.
/// If `trace` is non-null, appends one entry per sweep (sweep 0 = the
/// backward initial solution).
timing::BoundedPath size_for_tmin(timing::BoundedPath path,
                                  const timing::DelayModel& dm,
                                  const BoundsOptions& opt = {},
                                  IterationTrace* trace = nullptr,
                                  int* sweeps_used = nullptr);

/// Compute both bounds.
PathBounds compute_bounds(const timing::BoundedPath& path,
                          const timing::DelayModel& dm,
                          const BoundsOptions& opt = {},
                          IterationTrace* trace = nullptr);

}  // namespace pops::core
