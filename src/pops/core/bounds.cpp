#include "pops/core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pops::core {

using timing::BoundedPath;
using timing::DelayModel;

double tmax_ps(BoundedPath path, const DelayModel& dm) {
  path.set_all_min_drive();
  return path.delay_ps(dm);
}

namespace {

/// One symmetric Gauss-Seidel sweep of the link equations at a = 0:
///   CIN(i) <- sqrt( (A_i/A_(i-1)) * CIN(i-1) * (Coff(i) + CIN(i+1)) )
/// applied forward then backward (input information propagates one stage
/// per forward pass, terminal information one stage per backward pass —
/// symmetric sweeps keep the iteration count flat in the path length).
/// Returns the maximum relative change over the sweep.
double link_sweep(BoundedPath& path, const DelayModel& dm) {
  double worst = 0.0;
  const std::size_t n = path.size();
  auto update = [&](std::size_t i) {
    if (!path.sizable(i)) return;
    const double a_prev = path.stage_coefficient(dm, i - 1);
    const double a_own = path.stage_coefficient(dm, i);
    const double load = path.load_ff(i);  // Coff(i) + CIN(i+1) / terminal
    const double target = std::sqrt(a_own / a_prev * path.cin(i - 1) * load);
    const double before = path.cin(i);
    path.set_cin(i, target);
    worst = std::max(worst,
                     std::abs(path.cin(i) - before) / std::max(before, 1e-12));
  };
  for (std::size_t i = 1; i < n; ++i) update(i);
  for (std::size_t i = n; i-- > 1;) update(i);
  return worst;
}

}  // namespace

BoundedPath size_for_tmin(BoundedPath path, const DelayModel& dm,
                          const BoundsOptions& opt, IterationTrace* trace,
                          int* sweeps_used) {
  if (opt.max_sweeps < 1 || opt.tol <= 0.0 || opt.init_scale <= 0.0)
    throw std::invalid_argument("size_for_tmin: bad options");
  const std::size_t n = path.size();

  // Paper's initial solution: process backward from the output (where the
  // terminal load is known) with CIN(i-1) pinned at CREF — i.e. eq. (4)
  // with CIN(i-1) := init_scale * CREF.
  const double cref = path.lib().cref_ff() * opt.init_scale;
  for (std::size_t ri = 0; ri < n - 1; ++ri) {
    const std::size_t i = n - 1 - ri;  // n-1 .. 1
    if (!path.sizable(i)) continue;
    const double a_prev = path.stage_coefficient(dm, i - 1);
    const double a_own = path.stage_coefficient(dm, i);
    const double load = path.load_ff(i);
    path.set_cin(i, std::sqrt(a_own / a_prev * cref * load));
  }
  if (trace) {
    trace->delay_ps.push_back(path.delay_ps(dm));
    trace->normalized_size.push_back(path.normalized_size());
  }

  // Converged when the sizes are stable OR the delay has stopped moving
  // (very long chains keep micro-adjusting sizes long after the delay —
  // the quantity of interest — has settled).
  int sweeps = 0;
  double prev_delay = path.delay_ps(dm);
  int delay_stable = 0;
  for (; sweeps < opt.max_sweeps; ++sweeps) {
    const double change = link_sweep(path, dm);
    const double delay = path.delay_ps(dm);
    if (trace) {
      trace->delay_ps.push_back(delay);
      trace->normalized_size.push_back(path.normalized_size());
    }
    if (change < opt.tol) break;
    delay_stable =
        std::abs(delay - prev_delay) < 1e-9 * delay ? delay_stable + 1 : 0;
    prev_delay = delay;
    if (delay_stable >= 3) break;
  }
  if (sweeps_used) *sweeps_used = sweeps + 1;
  return path;
}

PathBounds compute_bounds(const BoundedPath& path, const DelayModel& dm,
                          const BoundsOptions& opt, IterationTrace* trace) {
  BoundedPath at_max = path;
  at_max.set_all_min_drive();

  int sweeps = 0;
  BoundedPath at_min = size_for_tmin(path, dm, opt, trace, &sweeps);

  PathBounds b{/*tmin_ps=*/at_min.delay_ps(dm),
               /*tmax_ps=*/at_max.delay_ps(dm),
               /*sweeps=*/sweeps,
               /*at_tmin=*/std::move(at_min),
               /*at_tmax=*/std::move(at_max)};
  return b;
}

}  // namespace pops::core
