#include "pops/core/netopt.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "pops/timing/incremental_sta.hpp"
#include "pops/timing/sta.hpp"

namespace pops::core {

using liberty::CellKind;
using netlist::Netlist;
using netlist::NodeId;

std::size_t cancel_inverter_pairs(Netlist& nl,
                                  std::vector<NodeId>* dirty) {
  std::size_t rewired = 0;
  // Iterate over a snapshot: rewiring invalidates fanout caches but ids
  // are stable.
  for (NodeId g : nl.gates()) {
    const netlist::Node& gn = nl.node(g);
    if (gn.kind != CellKind::Inv) continue;
    const NodeId d = gn.fanins.front();
    const netlist::Node& dn = nl.node(d);
    if (dn.is_input || dn.kind != CellKind::Inv) continue;
    const NodeId x = dn.fanins.front();
    // g computes exactly x; repoint g's sinks to x. Keep g itself if it
    // is a PO (its net name is the interface).
    const std::vector<NodeId> sinks = nl.fanouts(g);
    for (NodeId s : sinks) {
      nl.rewire_fanin(s, g, x);
      ++rewired;
      if (dirty != nullptr) {
        // s's fanin list changed; g lost a sink and x gained one (their
        // loads moved) — the full dirty neighbourhood of one rewire.
        dirty->push_back(s);
        dirty->push_back(g);
        dirty->push_back(x);
      }
    }
  }
  return rewired;
}

Netlist sweep_dead(const Netlist& nl) {
  const std::size_t n = nl.size();
  // Mark backwards from POs.
  std::vector<bool> live(n, false);
  std::vector<NodeId> stack;
  for (NodeId po : nl.outputs()) {
    live[static_cast<std::size_t>(po)] = true;
    stack.push_back(po);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId f : nl.node(id).fanins) {
      if (!live[static_cast<std::size_t>(f)]) {
        live[static_cast<std::size_t>(f)] = true;
        stack.push_back(f);
      }
    }
  }

  Netlist out(nl.lib(), nl.name());
  std::vector<NodeId> remap(n, netlist::kNoNode);
  // PIs first (all preserved: the module interface is not ours to shrink).
  for (NodeId pi : nl.inputs())
    remap[static_cast<std::size_t>(pi)] = out.add_input(nl.node(pi).name);
  // Gates in topological order so fanins are already remapped.
  for (NodeId id : nl.topo_order()) {
    const netlist::Node& node = nl.node(id);
    if (node.is_input || !live[static_cast<std::size_t>(id)]) continue;
    std::vector<NodeId> fanins;
    fanins.reserve(node.fanins.size());
    for (NodeId f : node.fanins)
      fanins.push_back(remap[static_cast<std::size_t>(f)]);
    const NodeId nid = out.add_gate(node.kind, node.name, fanins);
    out.set_drive(nid, node.wn_um);
    out.set_wire_cap(nid, node.wire_cap_ff);
    if (node.is_output) out.mark_output(nid, node.po_load_ff);
    remap[static_cast<std::size_t>(id)] = nid;
  }
  return out;
}

ShieldReport shield_high_fanout_nets(Netlist& nl,
                                     const timing::DelayModel& dm,
                                     FlimitTable& table,
                                     const ShieldOptions& opt,
                                     timing::IncrementalSta* shared) {
  ShieldReport report;
  // One full STA up front (reused from `shared` when it already holds a
  // current result); every buffer insertion afterwards re-times only the
  // affected cone (the edit touches the driver, the new buffer and the
  // re-pointed sinks — a local neighbourhood).
  std::optional<timing::IncrementalSta> local;
  if (shared == nullptr) local.emplace(nl, dm);
  timing::IncrementalSta& sta = shared != nullptr ? *shared : *local;
  report.delay_before_ps = (sta.has_result() ? sta.result() : sta.run_full())
                               .critical_delay_ps;

  struct Candidate {
    NodeId net;
    double overload;  // F / Flimit
  };

  // Collect overloaded nets at the current sizes.
  std::vector<Candidate> candidates;
  for (NodeId g : nl.gates()) {
    if (nl.node(g).kind == CellKind::Buf) continue;
    const auto& sinks = nl.fanouts(g);
    if (sinks.size() < 2) continue;  // shielding needs somebody to offload
    double limit = std::numeric_limits<double>::infinity();
    for (NodeId s : sinks)
      limit = std::min(limit, table.get(dm, nl.node(g).kind, nl.node(s).kind));
    const double f = nl.load_ff(g) / nl.cin_ff(g);
    if (f > opt.margin * limit)
      candidates.push_back({g, f / limit});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.overload > b.overload;
            });

  const double area_before = nl.total_width_um();
  for (const Candidate& cand : candidates) {
    if (report.buffers_inserted >= opt.max_buffers) break;
    const NodeId g = cand.net;

    // Keep the most timing-critical sink direct: smallest slack w.r.t.
    // the current critical delay — the pass's historical definition,
    // preserved bit for bit (the parity regression in test_netopt.cpp
    // pins it). The engine's slack cache is keyed on the tc bit pattern,
    // so this costs O(dirty cone) for every candidate whose preceding
    // edits left the critical delay unchanged, and one full backward
    // re-materialization only when the delay actually moved.
    const std::vector<double>& slack =
        sta.slacks(sta.result().critical_delay_ps);
    const std::vector<NodeId> sinks = nl.fanouts(g);
    if (sinks.size() < 2) continue;  // may have changed since collection
    NodeId keep = sinks.front();
    for (NodeId s : sinks)
      if (slack[static_cast<std::size_t>(s)] <
          slack[static_cast<std::size_t>(keep)])
        keep = s;

    std::vector<NodeId> moved;
    for (NodeId s : sinks)
      if (s != keep) moved.push_back(s);
    if (moved.empty()) continue;

    const NodeId buf = nl.insert_buffer(g, CellKind::Buf,
                                        nl.fresh_name(nl.node(g).name + "_sh"),
                                        moved);
    // Drive rule: the shield serves its own load at ~shield_fanout.
    const liberty::Cell& bufc = nl.lib().cell(CellKind::Buf);
    const double load = nl.load_ff(buf);
    nl.set_drive(buf, bufc.wn_for_cin(nl.lib().tech(),
                                      load / opt.shield_fanout));
    ++report.buffers_inserted;

    // Dirty set of the edit: the unloaded driver, the sized new buffer,
    // and every re-pointed sink (their fanin lists changed).
    std::vector<NodeId> dirty = moved;
    dirty.push_back(g);
    dirty.push_back(buf);
    sta.update(dirty, /*structure_changed=*/true);
  }

  report.delay_after_ps = sta.result().critical_delay_ps;
  report.area_added_um = nl.total_width_um() - area_before;
  return report;
}

}  // namespace pops::core
