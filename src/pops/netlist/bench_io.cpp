#include "pops/netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pops::netlist {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw std::runtime_error("bench parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

struct PendingGate {
  std::string target;
  std::string op;
  std::vector<std::string> args;
  int line_no;
};

}  // namespace

Netlist read_bench(std::istream& in, const liberty::Library& lib,
                   const BenchReadOptions& options) {
  Netlist nl(lib, options.name);

  std::vector<std::string> output_names;
  std::vector<PendingGate> pending;
  // "# pops-vt: <node>=<class>" pragmas (our multi-Vt extension of the
  // format — plain comments to every other .bench consumer). Captured
  // before comment stripping, applied after all gates exist.
  std::vector<std::pair<std::string, std::string>> vt_pragmas;
  std::string line;
  int line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      const std::string comment = trim(line.substr(hash + 1));
      if (comment.rfind("pops-vt:", 0) == 0) {
        const std::string body = trim(comment.substr(8));
        const std::size_t eq = body.find('=');
        if (eq == std::string::npos)
          fail(line_no, "pops-vt pragma needs <node>=<class>: " + body);
        vt_pragmas.emplace_back(trim(body.substr(0, eq)),
                                trim(body.substr(eq + 1)));
      }
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const std::string uline = upper(line);
    auto paren_arg = [&](std::size_t open) {
      const std::size_t close = line.rfind(')');
      if (close == std::string::npos || close <= open)
        fail(line_no, "missing ')'");
      return trim(line.substr(open + 1, close - open - 1));
    };

    if (uline.rfind("INPUT", 0) == 0) {
      const std::size_t open = line.find('(');
      if (open == std::string::npos) fail(line_no, "missing '(' after INPUT");
      nl.add_input(paren_arg(open));
      continue;
    }
    if (uline.rfind("OUTPUT", 0) == 0) {
      const std::size_t open = line.find('(');
      if (open == std::string::npos) fail(line_no, "missing '(' after OUTPUT");
      output_names.push_back(paren_arg(open));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected assignment: " + line);
    PendingGate g;
    g.target = trim(line.substr(0, eq));
    g.line_no = line_no;
    std::string rhs = trim(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open)
      fail(line_no, "expected OP(args): " + rhs);
    g.op = upper(trim(rhs.substr(0, open)));
    std::stringstream args(rhs.substr(open + 1, close - open - 1));
    std::string arg;
    while (std::getline(args, arg, ',')) {
      arg = trim(arg);
      if (!arg.empty()) g.args.push_back(arg);
    }
    if (g.args.empty()) fail(line_no, "gate with no inputs: " + g.target);
    pending.push_back(std::move(g));
  }

  // .bench files list gates in arbitrary order; resolve iteratively.
  // Each pass instantiates every gate whose fanins already exist.
  std::size_t remaining = pending.size();
  std::vector<bool> done(pending.size(), false);
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t gi = 0; gi < pending.size(); ++gi) {
      if (done[gi]) continue;
      const PendingGate& g = pending[gi];
      std::vector<NodeId> fanins;
      bool ready = true;
      for (const std::string& a : g.args) {
        const NodeId id = nl.find(a);
        if (id == kNoNode) {
          ready = false;
          break;
        }
        fanins.push_back(id);
      }
      if (!ready) continue;

      if (nl.find(g.target) != kNoNode)
        fail(g.line_no, "signal redefined: " + g.target);

      using liberty::CellKind;
      const std::size_t n = fanins.size();
      auto direct = [&](CellKind kind) { nl.add_gate(kind, g.target, fanins); };
      auto wide = [&](bool is_and, bool invert) {
        // Build the NAND/NOR/INV tree under temp names; the root gate then
        // takes the target's public name. If the root happens to be a
        // pre-existing node (single-term identity), alias it with a BUF.
        const NodeId before = static_cast<NodeId>(nl.size());
        const NodeId root =
            build_wide_gate(nl, is_and, invert, fanins, g.target + "_w");
        if (root >= before)
          nl.rename(root, g.target);
        else
          nl.add_gate(CellKind::Buf, g.target, {root});
      };

      if (g.op == "NOT" || g.op == "INV") {
        if (n != 1) fail(g.line_no, "NOT needs 1 input");
        direct(CellKind::Inv);
      } else if (g.op == "BUF" || g.op == "BUFF") {
        if (n != 1) fail(g.line_no, "BUF needs 1 input");
        direct(CellKind::Buf);
      } else if (g.op == "NAND") {
        if (n == 2) direct(CellKind::Nand2);
        else if (n == 3) direct(CellKind::Nand3);
        else if (n == 4) direct(CellKind::Nand4);
        else wide(/*is_and=*/true, /*invert=*/true);
      } else if (g.op == "NOR") {
        if (n == 2) direct(CellKind::Nor2);
        else if (n == 3) direct(CellKind::Nor3);
        else if (n == 4) direct(CellKind::Nor4);
        else wide(/*is_and=*/false, /*invert=*/true);
      } else if (g.op == "AND") {
        wide(/*is_and=*/true, /*invert=*/false);
      } else if (g.op == "OR") {
        wide(/*is_and=*/false, /*invert=*/false);
      } else if (g.op == "XOR") {
        if (n == 2) direct(CellKind::Xor2);
        else {
          // Chain XORs for arity > 2.
          NodeId acc = fanins[0];
          for (std::size_t i = 1; i + 1 < n; ++i)
            acc = nl.add_gate(CellKind::Xor2, nl.fresh_name(g.target + "_x"),
                              {acc, fanins[i]});
          nl.add_gate(CellKind::Xor2, g.target, {acc, fanins[n - 1]});
        }
      } else if (g.op == "XNOR") {
        if (n == 2) direct(CellKind::Xnor2);
        else {
          NodeId acc = fanins[0];
          for (std::size_t i = 1; i + 1 < n; ++i)
            acc = nl.add_gate(CellKind::Xor2, nl.fresh_name(g.target + "_x"),
                              {acc, fanins[i]});
          nl.add_gate(CellKind::Xnor2, g.target, {acc, fanins[n - 1]});
        }
      } else {
        fail(g.line_no, "unknown op " + g.op);
      }

      done[gi] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    for (std::size_t gi = 0; gi < pending.size(); ++gi)
      if (!done[gi])
        fail(pending[gi].line_no,
             "unresolved signals (cycle or undefined input) for " +
                 pending[gi].target);
  }

  for (const std::string& name : output_names) {
    const NodeId id = nl.find(name);
    if (id == kNoNode)
      throw std::runtime_error("bench: OUTPUT(" + name + ") never defined");
    nl.mark_output(id, options.po_load_ff);
  }
  for (const auto& [node_name, cls_name] : vt_pragmas) {
    const NodeId id = nl.find(node_name);
    if (id == kNoNode)
      throw std::runtime_error("bench: pops-vt pragma names unknown node " +
                               node_name);
    const int cls = lib.tech().find_vt_class(cls_name);
    if (cls < 0)
      throw std::runtime_error("bench: pops-vt pragma names unknown vt class " +
                               cls_name);
    nl.set_vt_class(id, cls);
  }
  return nl;
}

Netlist read_bench_string(const std::string& text, const liberty::Library& lib,
                          const BenchReadOptions& options) {
  std::istringstream in(text);
  return read_bench(in, lib, options);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  using liberty::CellKind;
  out << "# " << nl.name() << " — written by POPS\n";
  for (NodeId id : nl.inputs()) out << "INPUT(" << nl.node(id).name << ")\n";
  for (NodeId id : nl.outputs()) out << "OUTPUT(" << nl.node(id).name << ")\n";
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.is_input) continue;

    // AOI/OAI have no .bench operator: emit their exact two-line
    // decomposition under a derived helper name ("$" cannot appear in
    // library names, so the helper never collides).
    if (n.kind == CellKind::Aoi21 || n.kind == CellKind::Oai21) {
      const std::string& a = nl.node(n.fanins[0]).name;
      const std::string& b = nl.node(n.fanins[1]).name;
      const std::string& c = nl.node(n.fanins[2]).name;
      const std::string helper = n.name + "$inner";
      if (n.kind == CellKind::Aoi21) {
        // !((a&b)|c) == NOR(AND(a,b), c)
        out << helper << " = AND(" << a << ", " << b << ")\n";
        out << n.name << " = NOR(" << helper << ", " << c << ")\n";
      } else {
        // !((a|b)&c) == NAND(OR(a,b), c)
        out << helper << " = OR(" << a << ", " << b << ")\n";
        out << n.name << " = NAND(" << helper << ", " << c << ")\n";
      }
      continue;
    }

    const char* op = nullptr;
    switch (n.kind) {
      case CellKind::Inv: op = "NOT"; break;
      case CellKind::Buf: op = "BUFF"; break;
      case CellKind::Nand2:
      case CellKind::Nand3:
      case CellKind::Nand4: op = "NAND"; break;
      case CellKind::Nor2:
      case CellKind::Nor3:
      case CellKind::Nor4: op = "NOR"; break;
      case CellKind::Xor2: op = "XOR"; break;
      case CellKind::Xnor2: op = "XNOR"; break;
      case CellKind::Aoi21:
      case CellKind::Oai21: break;  // handled above
    }
    out << n.name << " = " << op << "(";
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      if (i) out << ", ";
      out << nl.node(n.fanins[i]).name;
    }
    out << ")\n";
  }
  // Non-default Vt assignments, as pragmas other .bench consumers read as
  // comments. Topo order keeps the writer deterministic.
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.is_input || n.vt == 0) continue;
    out << "# pops-vt: " << n.name << "="
        << nl.lib().tech().vt_class(static_cast<std::size_t>(n.vt)).name
        << "\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream out;
  write_bench(out, nl);
  return out.str();
}

}  // namespace pops::netlist
