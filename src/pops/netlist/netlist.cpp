#include "pops/netlist/netlist.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace pops::netlist {

Netlist::Netlist(const liberty::Library& lib, std::string name)
    : lib_(&lib), name_(std::move(name)) {}

Netlist Netlist::from_nodes(const liberty::Library& lib, std::string name,
                            std::vector<Node> nodes, int fresh_counter) {
  Netlist nl(lib, std::move(name));
  nl.nodes_ = std::move(nodes);
  for (NodeId id = 0; id < static_cast<NodeId>(nl.nodes_.size()); ++id) {
    const Node& n = nl.nodes_[static_cast<std::size_t>(id)];
    if (!nl.by_name_.emplace(n.name, id).second)
      throw std::invalid_argument("Netlist::from_nodes: duplicate node name " +
                                  n.name);
    if (n.is_input) nl.inputs_.push_back(id);
  }
  nl.fresh_counter_ = fresh_counter;
  nl.invalidate_caches();
  nl.validate();  // arity, fanin range, drive range, acyclicity, dangling
  return nl;
}

NodeId Netlist::add_node(Node node) {
  if (by_name_.count(node.name))
    throw std::invalid_argument("Netlist: duplicate node name " + node.name);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  invalidate_caches();
  return id;
}

NodeId Netlist::add_input(const std::string& name) {
  Node n;
  n.name = name;
  n.is_input = true;
  const NodeId id = add_node(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_gate(liberty::CellKind kind, const std::string& name,
                         const std::vector<NodeId>& fanins) {
  const liberty::Cell& cell = lib_->cell(kind);
  if (static_cast<int>(fanins.size()) != cell.fanin)
    throw std::invalid_argument("Netlist: gate " + name + " of kind " +
                                cell.name + " needs " +
                                std::to_string(cell.fanin) + " fanins, got " +
                                std::to_string(fanins.size()));
  for (NodeId f : fanins)
    if (f < 0 || f >= static_cast<NodeId>(nodes_.size()))
      throw std::invalid_argument("Netlist: gate " + name + " has invalid fanin");
  Node n;
  n.name = name;
  n.kind = kind;
  n.fanins = fanins;
  n.wn_um = lib_->wmin_um();
  return add_node(std::move(n));
}

void Netlist::mark_output(NodeId id, double load_ff) {
  Node& n = nodes_.at(static_cast<std::size_t>(id));
  n.is_output = true;
  n.po_load_ff = load_ff;
}

const Node& Netlist::node(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id));
}

NodeId Netlist::find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoNode : it->second;
}

std::vector<NodeId> Netlist::outputs() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id)
    if (nodes_[static_cast<std::size_t>(id)].is_output) out.push_back(id);
  return out;
}

std::vector<NodeId> Netlist::gates() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id)
    if (!nodes_[static_cast<std::size_t>(id)].is_input) out.push_back(id);
  return out;
}

const std::vector<NodeId>& Netlist::fanouts(NodeId id) const {
  if (!caches_valid_) rebuild_caches();
  return fanouts_.at(static_cast<std::size_t>(id));
}

const std::vector<NodeId>& Netlist::topo_order() const {
  if (!caches_valid_) rebuild_caches();
  return topo_;
}

const liberty::Cell& Netlist::cell_of(NodeId id) const {
  const Node& n = node(id);
  if (n.is_input) throw std::invalid_argument("cell_of: " + n.name + " is a PI");
  return lib_->cell(n.kind);
}

double Netlist::drive(NodeId id) const {
  const Node& n = node(id);
  if (n.is_input) throw std::invalid_argument("drive: " + n.name + " is a PI");
  return n.wn_um;
}

void Netlist::set_drive(NodeId id, double wn_um) {
  Node& n = nodes_.at(static_cast<std::size_t>(id));
  if (n.is_input) throw std::invalid_argument("set_drive: " + n.name + " is a PI");
  n.wn_um = std::clamp(wn_um, lib_->wmin_um(), lib_->wmax_um());
}

void Netlist::set_all_min_drive() {
  for (Node& n : nodes_)
    if (!n.is_input) n.wn_um = lib_->wmin_um();
}

int Netlist::vt_class(NodeId id) const {
  const Node& n = node(id);
  if (n.is_input) throw std::invalid_argument("vt_class: " + n.name + " is a PI");
  return n.vt;
}

void Netlist::set_vt_class(NodeId id, int cls) {
  Node& n = nodes_.at(static_cast<std::size_t>(id));
  if (n.is_input)
    throw std::invalid_argument("set_vt_class: " + n.name + " is a PI");
  if (cls < 0 ||
      static_cast<std::size_t>(cls) >= lib_->tech().n_vt_classes())
    throw std::invalid_argument("set_vt_class: " + n.name +
                                ": technology has no vt class " +
                                std::to_string(cls));
  n.vt = cls;
}

void Netlist::set_wire_cap(NodeId id, double cap_ff) {
  nodes_.at(static_cast<std::size_t>(id)).wire_cap_ff = cap_ff;
}

double Netlist::load_ff(NodeId id) const {
  const Node& n = node(id);
  double cap = n.wire_cap_ff + (n.is_output ? n.po_load_ff : 0.0);
  for (NodeId sink : fanouts(id)) cap += cin_ff(sink);
  return cap;
}

double Netlist::cin_ff(NodeId id) const {
  const Node& n = node(id);
  if (n.is_input) throw std::invalid_argument("cin_ff: " + n.name + " is a PI");
  return lib_->cell(n.kind).cin_ff(lib_->tech(), n.wn_um);
}

double Netlist::cpar_ff(NodeId id) const {
  const Node& n = node(id);
  if (n.is_input) return 0.0;  // PI drivers are external; no modelled drain cap
  return lib_->cell(n.kind).cpar_ff(lib_->tech(), n.wn_um);
}

double Netlist::total_width_um() const {
  double w = 0.0;
  for (const Node& n : nodes_)
    if (!n.is_input) w += lib_->cell(n.kind).total_width_um(n.wn_um);
  return w;
}

NodeId Netlist::insert_buffer(NodeId driver, liberty::CellKind kind,
                              const std::string& name,
                              const std::vector<NodeId>& sinks) {
  if (kind != liberty::CellKind::Inv && kind != liberty::CellKind::Buf)
    throw std::invalid_argument("insert_buffer: kind must be Inv or Buf");
  // Snapshot the sinks before mutating.
  std::vector<NodeId> targets = sinks.empty() ? fanouts(driver) : sinks;
  const bool capture_po = sinks.empty() && node(driver).is_output;

  const NodeId buf = add_gate(kind, name, {driver});
  for (NodeId sink : targets) {
    if (sink == buf) continue;
    rewire_fanin(sink, driver, buf);
  }
  if (capture_po) {
    Node& d = nodes_.at(static_cast<std::size_t>(driver));
    Node& b = nodes_.at(static_cast<std::size_t>(buf));
    b.is_output = true;
    b.po_load_ff = d.po_load_ff;
    b.wire_cap_ff = d.wire_cap_ff;
    d.is_output = false;
    d.po_load_ff = 0.0;
    d.wire_cap_ff = 0.0;
  }
  invalidate_caches();
  return buf;
}

void Netlist::replace_cell(NodeId id, liberty::CellKind kind) {
  Node& n = nodes_.at(static_cast<std::size_t>(id));
  if (n.is_input) throw std::invalid_argument("replace_cell: PI " + n.name);
  const liberty::Cell& neu = lib_->cell(kind);
  if (neu.fanin != static_cast<int>(n.fanins.size()))
    throw std::invalid_argument("replace_cell: arity mismatch replacing " +
                                n.name + " with " + neu.name);
  n.kind = kind;
}

void Netlist::rewire_fanin(NodeId gate, NodeId old_driver, NodeId new_driver) {
  Node& g = nodes_.at(static_cast<std::size_t>(gate));
  auto it = std::find(g.fanins.begin(), g.fanins.end(), old_driver);
  if (it == g.fanins.end())
    throw std::invalid_argument("rewire_fanin: " + node(old_driver).name +
                                " does not feed " + g.name);
  *it = new_driver;
  invalidate_caches();
}

void Netlist::rename(NodeId id, const std::string& new_name) {
  Node& n = nodes_.at(static_cast<std::size_t>(id));
  if (n.name == new_name) return;
  if (by_name_.count(new_name))
    throw std::invalid_argument("rename: name taken: " + new_name);
  by_name_.erase(n.name);
  n.name = new_name;
  by_name_.emplace(new_name, id);
}

std::vector<int> Netlist::depths() const {
  std::vector<int> depth(nodes_.size(), 0);
  for (NodeId id : topo_order()) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.is_input) continue;
    int d = 0;
    for (NodeId f : n.fanins)
      d = std::max(d, depth[static_cast<std::size_t>(f)]);
    depth[static_cast<std::size_t>(id)] = d + 1;
  }
  return depth;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  const std::vector<int> d = depths();
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.is_input) {
      ++s.n_inputs;
    } else {
      ++s.n_gates;
      ++s.gates_by_kind[lib_->cell(n.kind).name];
      s.depth = std::max(s.depth, static_cast<std::size_t>(d[static_cast<std::size_t>(id)]));
    }
    if (n.is_output) ++s.n_outputs;
  }
  return s;
}

void Netlist::validate() const {
  // Unique names guaranteed by construction; check arity and fanin ranges.
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.is_input) {
      if (!n.fanins.empty())
        throw std::logic_error("validate: PI " + n.name + " has fanins");
      continue;
    }
    const liberty::Cell& c = lib_->cell(n.kind);
    if (static_cast<int>(n.fanins.size()) != c.fanin)
      throw std::logic_error("validate: " + n.name + " arity mismatch");
    for (NodeId f : n.fanins)
      if (f < 0 || f >= static_cast<NodeId>(nodes_.size()))
        throw std::logic_error("validate: " + n.name + " bad fanin id");
    if (n.wn_um < lib_->wmin_um() - 1e-12 || n.wn_um > lib_->wmax_um() + 1e-12)
      throw std::logic_error("validate: " + n.name + " drive out of range");
    if (n.vt < 0 ||
        static_cast<std::size_t>(n.vt) >= lib_->tech().n_vt_classes())
      throw std::logic_error("validate: " + n.name + " vt class " +
                             std::to_string(n.vt) +
                             " not offered by the technology");
  }
  // Acyclicity: topo must cover all nodes (rebuild_caches throws on cycle).
  if (topo_order().size() != nodes_.size())
    throw std::logic_error("validate: cycle detected");
  // Dangling internal nodes.
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (!n.is_output && fanouts(id).empty() && !n.is_input)
      throw std::logic_error("validate: dangling gate " + n.name);
  }
}

std::string Netlist::fresh_name(const std::string& prefix) {
  std::string candidate;
  do {
    candidate = prefix + "_" + std::to_string(fresh_counter_++);
  } while (by_name_.count(candidate));
  return candidate;
}

void Netlist::invalidate_caches() const { caches_valid_ = false; }

void Netlist::rebuild_caches() const {
  const std::size_t n = nodes_.size();
  fanouts_.assign(n, {});
  std::vector<int> indeg(n, 0);
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id) {
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    for (NodeId f : nd.fanins) {
      fanouts_[static_cast<std::size_t>(f)].push_back(id);
      ++indeg[static_cast<std::size_t>(id)];
    }
  }
  topo_.clear();
  topo_.reserve(n);
  std::queue<NodeId> ready;
  for (NodeId id = 0; id < static_cast<NodeId>(n); ++id)
    if (indeg[static_cast<std::size_t>(id)] == 0) ready.push(id);
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop();
    topo_.push_back(id);
    for (NodeId s : fanouts_[static_cast<std::size_t>(id)])
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push(s);
  }
  if (topo_.size() != n)
    throw std::logic_error("Netlist: combinational cycle detected");
  caches_valid_ = true;
}

NodeId build_wide_gate(Netlist& nl, bool is_and, bool invert,
                       std::vector<NodeId> terms, const std::string& prefix) {
  using liberty::CellKind;
  if (terms.empty()) throw std::invalid_argument("build_wide_gate: no terms");

  // Single term: identity (with inversion if requested).
  if (terms.size() == 1) {
    if (!invert) return terms[0];
    return nl.add_gate(CellKind::Inv, nl.fresh_name(prefix + "_inv"), {terms[0]});
  }

  // Reduce with inverting primitives of arity <= 4; each NAND/NOR layer
  // flips the polarity, so alternate AND<->OR duals (De Morgan) to keep the
  // logic straight and invert at the end only if needed.
  auto layer_kind = [](bool and_layer, std::size_t arity) {
    switch (arity) {
      case 2: return and_layer ? CellKind::Nand2 : CellKind::Nor2;
      case 3: return and_layer ? CellKind::Nand3 : CellKind::Nor3;
      default: return and_layer ? CellKind::Nand4 : CellKind::Nor4;
    }
  };

  bool and_layer = is_and;
  bool polarity_inverted = false;  // outputs of current `terms` inverted?
  while (terms.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < terms.size();) {
      const std::size_t take = std::min<std::size_t>(4, terms.size() - i);
      if (take == 1) {
        // Odd leftover: pass through an inverter to keep polarity uniform.
        next.push_back(nl.add_gate(CellKind::Inv,
                                   nl.fresh_name(prefix + "_pas"),
                                   {terms[i]}));
        i += 1;
        continue;
      }
      std::vector<NodeId> group(terms.begin() + static_cast<long>(i),
                                terms.begin() + static_cast<long>(i + take));
      next.push_back(nl.add_gate(layer_kind(and_layer, take),
                                 nl.fresh_name(prefix + "_t"), group));
      i += take;
    }
    terms = std::move(next);
    polarity_inverted = !polarity_inverted;
    and_layer = !and_layer;  // De Morgan dual for the next layer
  }

  NodeId root = terms[0];
  const bool want_inverted = invert;
  if (polarity_inverted != want_inverted)
    root = nl.add_gate(CellKind::Inv, nl.fresh_name(prefix + "_fix"), {root});
  return root;
}

}  // namespace pops::netlist
