#pragma once
// Benchmark circuit provider.
//
// The paper evaluates on ISCAS'85 circuits (c432..c7552), a 16-bit adder
// ("Adder16") and a small datapath fragment ("fpd"), all on a 0.25µm
// process. The original ISCAS netlists are not redistributable inside this
// offline reproduction, so (per DESIGN.md "Substitutions"):
//
//   * `c17` is embedded verbatim (6 NAND2, public-domain tiny example);
//   * `Adder16` is a real structural 16-bit ripple-carry adder built from
//     9-NAND full adders;
//   * the remaining benchmarks are generated deterministically (fixed seed
//     per circuit) to match the published profile that actually matters to
//     the paper's experiments: the *critical-path gate count* of Table 1
//     (c432: 29 ... c6288: 116), plus realistic total gate counts, PI/PO
//     counts and gate-kind mixes.
//
// The generator guarantees: acyclic netlist, all arities satisfied, no
// dangling internal nodes, spine (deepest path) length == `path_depth`.

#include <cstdint>
#include <string>
#include <vector>

#include "pops/netlist/netlist.hpp"

namespace pops::netlist {

/// Shape parameters of one generated benchmark.
struct BenchmarkSpec {
  std::string name;
  int n_pi;          ///< primary inputs
  int n_po;          ///< primary outputs (approximate; dangling gates add)
  int n_gates;       ///< total gate target
  int path_depth;    ///< critical-path gate count (Table 1 "Gate nb")
  std::uint64_t seed;
};

/// The benchmark suite of the paper, in its Table 1 order. `Adder16` and
/// `c17` carry structural (non-synthetic) netlists; their spec entries
/// document the realised shape.
const std::vector<BenchmarkSpec>& paper_benchmarks();

/// Look up a spec by name; throws std::invalid_argument if unknown.
const BenchmarkSpec& benchmark_spec(const std::string& name);

/// Materialise a benchmark by name ("c17", "Adder16", "fpd", "c432", ...).
/// Throws std::invalid_argument for unknown names.
Netlist make_benchmark(const liberty::Library& lib, const std::string& name);

/// The verbatim ISCAS-85 c17 netlist (6 NAND2).
Netlist make_c17(const liberty::Library& lib);

/// Structural 16-bit ripple-carry adder from 9-NAND full adders.
/// PIs a0..a15, b0..b15, cin; POs s0..s15, cout.
Netlist make_adder16(const liberty::Library& lib);

/// Synthetic ISCAS-like circuit for `spec` (deterministic in spec.seed).
Netlist make_synthetic(const liberty::Library& lib, const BenchmarkSpec& spec);

/// A linear chain of `kinds.size()` gates: PI -> g1 -> ... -> gN -> PO.
/// Off-path fanins of multi-input gates are tied to dedicated PIs. Useful
/// for unit tests and the paper's didactic arrays (11-gate path of Fig. 3,
/// 13-gate array of Fig. 6).
Netlist make_chain(const liberty::Library& lib,
                   const std::vector<liberty::CellKind>& kinds,
                   double po_load_ff, const std::string& name = "chain");

/// The 11-gate mixed path used for Fig. 3.
Netlist make_fig3_path(const liberty::Library& lib);

/// The 13-gate array used for Fig. 6 (heavily loaded interior nodes).
Netlist make_fig6_array(const liberty::Library& lib);

}  // namespace pops::netlist
