#pragma once
// Functional (zero-delay) logic simulation over a Netlist.
//
// Three uses in this reproduction:
//  1. equivalence checking — De Morgan restructuring (paper §4.2) must not
//     change the logic function; `equivalent()` proves it exhaustively for
//     small PI counts and by dense random vectors otherwise;
//  2. switching-activity estimation for the dynamic-power report
//     (the paper uses ΣW as the power proxy; we additionally report
//     alpha*C*VDD^2 power with simulated activities);
//  3. benchmark sanity tests.

#include <vector>

#include "pops/netlist/netlist.hpp"
#include "pops/util/rng.hpp"

namespace pops::netlist {

/// Zero-delay evaluator. Holds only a pointer; the netlist must outlive it.
class LogicSimulator {
 public:
  explicit LogicSimulator(const Netlist& nl) : nl_(&nl) {}

  /// Evaluate every node. `pi_values[i]` is the value of `nl.inputs()[i]`.
  /// Returns a value per NodeId. Throws on PI-count mismatch.
  std::vector<bool> eval_all(const std::vector<bool>& pi_values) const;

  /// Evaluate and return the values of the primary outputs, in
  /// `nl.outputs()` order.
  std::vector<bool> eval_outputs(const std::vector<bool>& pi_values) const;

 private:
  const Netlist* nl_;
};

/// Functional equivalence of two netlists with identical PI/PO name sets
/// (matched by name, so gate-level rewrites in between are fine).
/// Exhaustive when the PI count is at most `exhaustive_limit` (default 14,
/// i.e. <= 16384 vectors); otherwise `n_random_vectors` random vectors.
/// Throws std::invalid_argument if the interfaces do not match.
bool equivalent(const Netlist& a, const Netlist& b, util::Rng& rng,
                int n_random_vectors = 512, int exhaustive_limit = 14);

/// Per-node toggle rates from random-vector simulation plus the aggregate
/// switched capacitance; feeds the dynamic power estimate.
struct ActivityReport {
  std::vector<double> toggle_rate;      ///< toggles per input vector, per node
  /// Fraction of vectors on which the node evaluates to 1 (static "ones
  /// probability"); weights the state-dependent leakage model — a CMOS
  /// gate's N network leaks while the output is high, the P network while
  /// it is low.
  std::vector<double> p_one;
  double switched_cap_ff_per_vec = 0.0; ///< sum(load_ff * toggle_rate)
};

/// Simulate `n_vectors` uniform random vectors and measure node toggle
/// rates (fraction of consecutive vector pairs where the node flips).
ActivityReport estimate_activity(const Netlist& nl, util::Rng& rng,
                                 int n_vectors = 1024);

}  // namespace pops::netlist
