#pragma once
// Reader / writer for the ISCAS-85 `.bench` netlist format:
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//   G11 = NOT(G1)
//
// Supported operators: NOT, BUF(F), AND, NAND, OR, NOR, XOR, XNOR with any
// arity >= 1 (>=2 for the binary ops). Operators or arities not present in
// the POPS library (AND/OR, arity > 4) are decomposed on the fly into
// NAND/NOR/INV trees via build_wide_gate(), so any ISCAS-85 file maps onto
// library cells while preserving the logic function (verified in tests).

#include <iosfwd>
#include <string>

#include "pops/netlist/netlist.hpp"

namespace pops::netlist {

/// Options for `read_bench`.
struct BenchReadOptions {
  /// External load (fF) applied to every primary output.
  double po_load_ff = 12.0;
  /// Netlist name to assign (defaults to "bench").
  std::string name = "bench";
};

/// Parse a `.bench` stream. Throws std::runtime_error with a line-numbered
/// diagnostic on malformed input (unknown op, undefined signal, redefined
/// signal, bad arity).
Netlist read_bench(std::istream& in, const liberty::Library& lib,
                   const BenchReadOptions& options = {});

/// Convenience: parse from a string.
Netlist read_bench_string(const std::string& text, const liberty::Library& lib,
                          const BenchReadOptions& options = {});

/// Serialise a netlist to `.bench`. Library kinds map as:
/// inv->NOT, buf->BUFF, nandN->NAND, norN->NOR, xor2->XOR, xnor2->XNOR.
/// aoi21/oai21 have no .bench operator and are emitted as their exact
/// two-line AND+NOR / OR+NAND decomposition (functionally identical; the
/// reader maps those back onto library cells).
void write_bench(std::ostream& out, const Netlist& nl);

/// Convenience: serialise to a string.
std::string write_bench_string(const Netlist& nl);

}  // namespace pops::netlist
