#include "pops/netlist/benchmarks.hpp"

#include <algorithm>
#include <stdexcept>

#include "pops/netlist/bench_io.hpp"
#include "pops/util/rng.hpp"

namespace pops::netlist {

using liberty::CellKind;

const std::vector<BenchmarkSpec>& paper_benchmarks() {
  // PI/PO/gate counts follow the published ISCAS-85 profiles; path_depth is
  // Table 1's "Gate nb" (the gate count of the longest path POPS extracts).
  static const std::vector<BenchmarkSpec> specs = {
      {"Adder16", 33, 17, 144, 35, 0xADD16},  // structural; realised shape
      {"fpd", 16, 8, 120, 14, 0xF9D1},
      {"c432", 36, 7, 160, 29, 0x432},
      {"c499", 41, 32, 202, 29, 0x499},
      {"c880", 60, 26, 383, 28, 0x880},
      {"c1355", 41, 32, 546, 30, 0x1355},
      {"c1908", 33, 25, 880, 44, 0x1908},
      {"c3540", 50, 22, 1669, 58, 0x3540},
      {"c5315", 178, 123, 2307, 60, 0x5315},
      {"c6288", 32, 32, 2416, 116, 0x6288},
      {"c7552", 207, 108, 3512, 47, 0x7552},
  };
  return specs;
}

const BenchmarkSpec& benchmark_spec(const std::string& name) {
  for (const BenchmarkSpec& s : paper_benchmarks())
    if (s.name == name) return s;
  throw std::invalid_argument("unknown benchmark: " + name);
}

Netlist make_benchmark(const liberty::Library& lib, const std::string& name) {
  if (name == "c17") return make_c17(lib);
  if (name == "Adder16") return make_adder16(lib);
  return make_synthetic(lib, benchmark_spec(name));
}

Netlist make_c17(const liberty::Library& lib) {
  static const char* kC17 = R"(# c17 ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  BenchReadOptions opt;
  opt.name = "c17";
  return read_bench_string(kC17, lib, opt);
}

namespace {

/// One 9-NAND full adder: sum = a^b^cin, cout = majority(a,b,cin).
/// Returns {sum, cout}.
std::pair<NodeId, NodeId> add_full_adder(Netlist& nl, NodeId a, NodeId b,
                                         NodeId cin, const std::string& p) {
  auto nand = [&](NodeId x, NodeId y, const char* tag) {
    return nl.add_gate(CellKind::Nand2, p + tag, {x, y});
  };
  // Half-XOR a^b via 4 NAND2.
  const NodeId n1 = nand(a, b, "_n1");
  const NodeId n2 = nand(a, n1, "_n2");
  const NodeId n3 = nand(b, n1, "_n3");
  const NodeId x1 = nand(n2, n3, "_x1");  // a ^ b
  // Second XOR with cin.
  const NodeId n4 = nand(x1, cin, "_n4");
  const NodeId n5 = nand(x1, n4, "_n5");
  const NodeId n6 = nand(cin, n4, "_n6");
  const NodeId sum = nand(n5, n6, "_sum");  // a ^ b ^ cin
  // cout = ab + cin(a^b) = NAND(n1, n4) since n1 = !(ab), n4 = !(cin(a^b)).
  const NodeId cout = nand(n1, n4, "_cout");
  return {sum, cout};
}

}  // namespace

Netlist make_adder16(const liberty::Library& lib) {
  Netlist nl(lib, "Adder16");
  const double po_load = 4.0 * lib.cref_ff();
  std::vector<NodeId> a(16), b(16);
  for (int i = 0; i < 16; ++i) a[static_cast<std::size_t>(i)] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < 16; ++i) b[static_cast<std::size_t>(i)] = nl.add_input("b" + std::to_string(i));
  NodeId carry = nl.add_input("cin");
  for (int i = 0; i < 16; ++i) {
    const auto [sum, cout] = add_full_adder(nl, a[static_cast<std::size_t>(i)],
                                            b[static_cast<std::size_t>(i)],
                                            carry, "fa" + std::to_string(i));
    nl.rename(sum, "s" + std::to_string(i));
    nl.mark_output(sum, po_load);
    carry = cout;
  }
  nl.rename(carry, "cout");
  nl.mark_output(carry, po_load);
  nl.validate();
  return nl;
}

namespace {

/// Inverting-gate mix used by the synthetic generator; weights roughly
/// follow ISCAS-85 statistics (NAND-dominated, some NOR, ~15% inverters).
CellKind sample_kind(util::Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.16) return CellKind::Inv;
  if (u < 0.52) return CellKind::Nand2;
  if (u < 0.64) return CellKind::Nor2;
  if (u < 0.76) return CellKind::Nand3;
  if (u < 0.84) return CellKind::Nor3;
  if (u < 0.89) return CellKind::Nand4;
  if (u < 0.92) return CellKind::Nor4;
  if (u < 0.96) return CellKind::Aoi21;
  return CellKind::Oai21;
}

/// Spine gate mix: 2-input inverting gates plus inverters, so the critical
/// path resembles the decomposed ISCAS paths the paper sizes.
CellKind sample_spine_kind(util::Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.25) return CellKind::Inv;
  if (u < 0.60) return CellKind::Nand2;
  if (u < 0.80) return CellKind::Nor2;
  if (u < 0.92) return CellKind::Nand3;
  return CellKind::Nor3;
}

}  // namespace

Netlist make_synthetic(const liberty::Library& lib, const BenchmarkSpec& spec) {
  if (spec.n_pi < 2 || spec.path_depth < 2 || spec.n_gates < spec.path_depth)
    throw std::invalid_argument("make_synthetic: bad spec for " + spec.name);

  util::Rng rng(spec.seed);
  Netlist nl(lib, spec.name);
  const double po_load = 4.0 * lib.cref_ff();

  std::vector<NodeId> pis;
  pis.reserve(static_cast<std::size_t>(spec.n_pi));
  for (int i = 0; i < spec.n_pi; ++i)
    pis.push_back(nl.add_input(spec.name + "_pi" + std::to_string(i)));

  // depth[] tracks gate depth so fanin choices keep the spine the deepest
  // path: a node at depth d only consumes nodes of depth < d.
  std::vector<int> depth(nl.size(), 0);
  auto node_depth = [&](NodeId id) { return depth[static_cast<std::size_t>(id)]; };

  // Buckets of candidate fanins per depth for fast biased sampling.
  std::vector<std::vector<NodeId>> by_depth(
      static_cast<std::size_t>(spec.path_depth) + 1);
  for (NodeId pi : pis) by_depth[0].push_back(pi);

  auto register_node = [&](NodeId id, int d) {
    depth.resize(nl.size(), 0);
    depth[static_cast<std::size_t>(id)] = d;
    by_depth[static_cast<std::size_t>(d)].push_back(id);
  };

  // Sample a fanin strictly shallower than `dmax`, biased towards the
  // immediately preceding depths (local connectivity, like real circuits).
  auto sample_fanin = [&](int dmax) -> NodeId {
    for (int attempt = 0; attempt < 64; ++attempt) {
      // Geometric bias: mostly depth dmax-1, sometimes further back.
      int d = dmax - 1;
      while (d > 0 && rng.bernoulli(0.35)) --d;
      const auto& bucket = by_depth[static_cast<std::size_t>(d)];
      if (!bucket.empty())
        return bucket[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(bucket.size()) - 1))];
    }
    return pis[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pis.size()) - 1))];
  };

  int gate_count = 0;

  // --- 1. the spine: a chain of `path_depth` gates --------------------------
  std::vector<NodeId> spine;
  NodeId prev = pis[0];
  for (int i = 0; i < spec.path_depth; ++i) {
    const CellKind kind = sample_spine_kind(rng);
    const liberty::Cell& cell = lib.cell(kind);
    std::vector<NodeId> fanins{prev};
    for (int f = 1; f < cell.fanin; ++f) {
      // Prefer distinct drivers (real gates rarely tie two pins together).
      NodeId fi = sample_fanin(i + 1);
      for (int attempt = 0;
           attempt < 8 &&
           std::find(fanins.begin(), fanins.end(), fi) != fanins.end();
           ++attempt)
        fi = sample_fanin(i + 1);
      fanins.push_back(fi);
    }
    const NodeId g = nl.add_gate(kind, spec.name + "_sp" + std::to_string(i),
                                 fanins);
    register_node(g, i + 1);
    spine.push_back(g);
    prev = g;
    ++gate_count;
  }

  // --- 2. filler logic -------------------------------------------------------
  while (gate_count < spec.n_gates) {
    const CellKind kind = sample_kind(rng);
    const liberty::Cell& cell = lib.cell(kind);
    // Target a depth in [1, path_depth]; deeper levels get denser, matching
    // the cone-shaped profile of real circuits.
    const int dmax = 1 + static_cast<int>(rng.uniform_int(0, spec.path_depth - 1));
    std::vector<NodeId> fanins;
    int realized = 0;
    for (int f = 0; f < cell.fanin; ++f) {
      NodeId fi = sample_fanin(dmax);  // depth(fi) <= dmax-1
      for (int attempt = 0;
           attempt < 8 &&
           std::find(fanins.begin(), fanins.end(), fi) != fanins.end();
           ++attempt)
        fi = sample_fanin(dmax);
      realized = std::max(realized, node_depth(fi) + 1);
      fanins.push_back(fi);
    }
    const NodeId g = nl.add_gate(
        kind, spec.name + "_g" + std::to_string(gate_count), fanins);
    register_node(g, realized);
    ++gate_count;
  }

  // --- 3. primary outputs ----------------------------------------------------
  // The spine end is always a PO; then pick up every dangling gate so the
  // netlist validates (real circuits have no dangling logic), counting
  // towards the n_po budget first and absorbing the rest as extra POs.
  nl.mark_output(spine.back(), po_load);
  int n_po = 1;
  for (NodeId id : nl.gates()) {
    if (nl.fanouts(id).empty() && !nl.node(id).is_output) {
      nl.mark_output(id, po_load);
      ++n_po;
    }
  }
  // If the circuit is under the PO budget, promote random deep gates.
  std::vector<NodeId> gates = nl.gates();
  for (int guard = 0; n_po < spec.n_po && guard < 10 * spec.n_po; ++guard) {
    const NodeId id = gates[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(gates.size()) - 1))];
    if (!nl.node(id).is_output && node_depth(id) > spec.path_depth / 3) {
      nl.mark_output(id, po_load);
      ++n_po;
    }
  }

  // --- 4. interconnect -------------------------------------------------------
  // Wire load grows with fanout count (~1.2 fF per sink plus a base stub).
  for (NodeId id : nl.gates()) {
    const double sinks = static_cast<double>(nl.fanouts(id).size());
    nl.set_wire_cap(id, 0.8 + 1.2 * sinks * rng.uniform(0.6, 1.4));
  }

  nl.validate();
  return nl;
}

Netlist make_chain(const liberty::Library& lib,
                   const std::vector<liberty::CellKind>& kinds,
                   double po_load_ff, const std::string& name) {
  if (kinds.empty()) throw std::invalid_argument("make_chain: empty");
  Netlist nl(lib, name);
  NodeId prev = nl.add_input("in");
  int side = 0;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const liberty::Cell& cell = lib.cell(kinds[i]);
    std::vector<NodeId> fanins{prev};
    for (int f = 1; f < cell.fanin; ++f)
      fanins.push_back(nl.add_input("side" + std::to_string(side++)));
    prev = nl.add_gate(kinds[i], name + "_g" + std::to_string(i), fanins);
  }
  nl.mark_output(prev, po_load_ff);
  nl.validate();
  return nl;
}

Netlist make_fig3_path(const liberty::Library& lib) {
  // An 11-gate mixed path similar in spirit to the paper's example:
  // alternating inverters and 2/3-input gates.
  const std::vector<CellKind> kinds = {
      CellKind::Inv,   CellKind::Nand2, CellKind::Nor2, CellKind::Inv,
      CellKind::Nand3, CellKind::Inv,   CellKind::Nor3, CellKind::Nand2,
      CellKind::Inv,   CellKind::Nor2,  CellKind::Inv,
  };
  Netlist nl = make_chain(lib, kinds, 30.0 * lib.cref_ff(), "fig3_path");
  return nl;
}

Netlist make_fig6_array(const liberty::Library& lib) {
  // 13-gate array with a heavily loaded interior node (where buffer
  // insertion pays off) — gate 6 carries a large wire + off-path load.
  const std::vector<CellKind> kinds = {
      CellKind::Inv,   CellKind::Nand2, CellKind::Inv,  CellKind::Nor2,
      CellKind::Nand2, CellKind::Inv,   CellKind::Nor3, CellKind::Inv,
      CellKind::Nand3, CellKind::Inv,   CellKind::Nor2, CellKind::Nand2,
      CellKind::Inv,
  };
  Netlist nl = make_chain(lib, kinds, 25.0 * lib.cref_ff(), "fig6_array");
  // Heavy interior loads: emulate long wires / wide off-path fanout.
  const NodeId g6 = nl.find("fig6_array_g6");
  const NodeId g3 = nl.find("fig6_array_g3");
  nl.set_wire_cap(g6, 40.0 * lib.cref_ff());
  nl.set_wire_cap(g3, 15.0 * lib.cref_ff());
  nl.validate();
  return nl;
}

}  // namespace pops::netlist
