#pragma once
// Gate-level combinational netlist.
//
// The netlist is a DAG of nodes; a node is either a primary input or a gate
// instantiating a library cell. Each gate carries its *drive* `wn` (NMOS
// width, µm) — the sizing variable of the whole paper — plus a fixed wire
// capacitance on its output net. Primary outputs carry an external load
// (the input capacitance of the register/latch the path ends on), which is
// what makes extracted paths "bounded" in the paper's sense.
//
// Editing operations used by the optimizer (buffer insertion, gate
// replacement for De Morgan restructuring) preserve names of untouched
// nodes and invalidate the cached topological order / fanout lists.

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "pops/liberty/library.hpp"

namespace pops::netlist {

/// Index of a node inside a Netlist. Stable across edits that only append.
using NodeId = int;
inline constexpr NodeId kNoNode = -1;

/// One node of the DAG: a primary input or a sized gate.
struct Node {
  std::string name;                 ///< unique within the netlist
  bool is_input = false;            ///< primary input?
  liberty::CellKind kind = liberty::CellKind::Inv;  ///< valid iff gate
  std::vector<NodeId> fanins;       ///< driver nodes, size == cell fanin
  double wn_um = 0.0;               ///< drive (µm); meaningful iff gate
  double wire_cap_ff = 0.0;         ///< fixed interconnect cap on output net
  bool is_output = false;           ///< drives a primary output
  double po_load_ff = 0.0;          ///< external load when is_output
  /// Threshold-voltage implant class (index into Technology::vt_classes);
  /// 0 = the standard-Vt base device. Meaningful iff gate. Assigned by
  /// the multi-Vt pass; timing derates and leakage models read it.
  int vt = 0;
};

/// Aggregate statistics (used by reports and the benchmark tables).
struct NetlistStats {
  std::size_t n_inputs = 0;
  std::size_t n_outputs = 0;
  std::size_t n_gates = 0;
  std::size_t depth = 0;  ///< max #gates on any PI->PO path
  std::unordered_map<std::string, std::size_t> gates_by_kind;
};

class Netlist {
 public:
  /// Create an empty netlist over `lib` (not owned; must outlive the netlist).
  explicit Netlist(const liberty::Library& lib, std::string name = "top");

  /// Reconstruct a netlist from raw node records (deserialization —
  /// service/cache_io.hpp). add_gate cannot replay an optimized netlist:
  /// buffer insertion re-points existing fanins at later-appended nodes,
  /// so fanins may reference *forward*. from_nodes admits any DAG order,
  /// rebuilds the name index and input list, restores the fresh-name
  /// counter, and runs validate(); a structurally invalid node set throws
  /// std::logic_error / std::invalid_argument with a diagnostic.
  static Netlist from_nodes(const liberty::Library& lib, std::string name,
                            std::vector<Node> nodes, int fresh_counter = 0);

  /// The fresh_name counter (persisted so a deserialized netlist names
  /// future inserted buffers exactly like the original would).
  int fresh_counter() const noexcept { return fresh_counter_; }

  const liberty::Library& lib() const noexcept { return *lib_; }
  const std::string& name() const noexcept { return name_; }

  // ----- construction ------------------------------------------------------

  /// Add a primary input. Throws if the name is already taken.
  NodeId add_input(const std::string& name);

  /// Add a gate of `kind` with the given fanins (arity-checked against the
  /// library cell). Initial drive is the library minimum. Throws on bad
  /// arity, unknown fanin ids, or duplicate name.
  NodeId add_gate(liberty::CellKind kind, const std::string& name,
                  const std::vector<NodeId>& fanins);

  /// Mark `id` as a primary output with external load `load_ff` (fF).
  void mark_output(NodeId id, double load_ff);

  // ----- access -------------------------------------------------------------

  std::size_t size() const noexcept { return nodes_.size(); }
  const Node& node(NodeId id) const;
  bool is_gate(NodeId id) const { return !node(id).is_input; }

  /// Node id by name; kNoNode if absent.
  NodeId find(const std::string& name) const;

  /// Ids of all primary inputs / primary outputs / gates.
  const std::vector<NodeId>& inputs() const noexcept { return inputs_; }
  std::vector<NodeId> outputs() const;
  std::vector<NodeId> gates() const;

  /// Gates (or POs) fed by node `id` (cached; rebuilt after edits).
  const std::vector<NodeId>& fanouts(NodeId id) const;

  /// Topological order over all nodes (inputs first). Cached.
  const std::vector<NodeId>& topo_order() const;

  /// Library cell of a gate node.
  const liberty::Cell& cell_of(NodeId id) const;

  // ----- sizing -------------------------------------------------------------

  /// Current drive of gate `id` (µm). Throws for inputs.
  double drive(NodeId id) const;

  /// Set the drive of gate `id`, clamped to [wmin, wmax]. Throws for inputs.
  void set_drive(NodeId id, double wn_um);

  /// Set all gate drives to the library minimum (the paper's Tmax sizing).
  void set_all_min_drive();

  // ----- threshold-voltage class ---------------------------------------------

  /// Vt class of gate `id` (0 = standard Vt). Throws for inputs.
  int vt_class(NodeId id) const;

  /// Assign gate `id` to Vt class `cls` (index into the technology's
  /// vt_classes). Throws for inputs and for classes the technology does
  /// not offer. Logic function, drive, and capacitances are unchanged —
  /// only timing derates and leakage read the class.
  void set_vt_class(NodeId id, int cls);

  /// Add fixed wire capacitance (fF) on the output net of `id`.
  void set_wire_cap(NodeId id, double cap_ff);

  /// Total capacitive load (fF) seen by the output of node `id`:
  /// wire cap + PO load + sum of fanout input-pin capacitances at their
  /// current drives.
  double load_ff(NodeId id) const;

  /// Input pin capacitance (fF) of gate `id` at its current drive.
  double cin_ff(NodeId id) const;

  /// Own output (drain) parasitic capacitance (fF) of gate `id` at its
  /// current drive — adds to load_ff() in delay evaluation (eq. 4's Cpar).
  double cpar_ff(NodeId id) const;

  /// Sum of total transistor widths over all gates (µm) — the paper's ΣW.
  double total_width_um() const;

  // ----- editing (used by the optimizer) ------------------------------------

  /// Insert a gate of `kind` (Inv or Buf) between `driver` and a subset of
  /// its sinks: the listed `sinks` are re-pointed to the new gate. The new
  /// gate is named `name` and gets minimum drive. If `sinks` is empty the
  /// buffer captures *all* current sinks (including the PO load, which
  /// migrates to the buffer). Returns the new gate id.
  /// Note: inserting Inv changes logic polarity downstream — callers that
  /// must preserve logic insert a pair or use Buf.
  NodeId insert_buffer(NodeId driver, liberty::CellKind kind,
                       const std::string& name,
                       const std::vector<NodeId>& sinks = {});

  /// Replace the cell of gate `id` with `kind` (must have the same fanin
  /// count). Drive is preserved. Used by De Morgan restructuring.
  void replace_cell(NodeId id, liberty::CellKind kind);

  /// Re-point one fanin of `gate` from `old_driver` to `new_driver`.
  /// Throws if `old_driver` is not a fanin of `gate`.
  void rewire_fanin(NodeId gate, NodeId old_driver, NodeId new_driver);

  /// Rename a node. Throws if the new name is already taken.
  void rename(NodeId id, const std::string& new_name);

  // ----- analysis helpers ----------------------------------------------------

  /// Gate depth of each node (inputs = 0, gate = 1 + max fanin depth).
  std::vector<int> depths() const;

  /// Aggregate statistics.
  NetlistStats stats() const;

  /// Structural sanity check: acyclic, arities match cells, fanins valid,
  /// unique names, every non-PO node has at least one fanout.
  /// Throws std::logic_error with a diagnostic on violation.
  void validate() const;

  /// A fresh unique name with the given prefix (for inserted buffers).
  std::string fresh_name(const std::string& prefix);

 private:
  void invalidate_caches() const;
  NodeId add_node(Node node);

  const liberty::Library* lib_;
  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::unordered_map<std::string, NodeId> by_name_;
  int fresh_counter_ = 0;

  // Caches (derived, rebuilt lazily).
  mutable std::vector<std::vector<NodeId>> fanouts_;
  mutable std::vector<NodeId> topo_;
  mutable bool caches_valid_ = false;
  void rebuild_caches() const;
};

/// Build a balanced tree computing the wide AND/OR of `terms` using only
/// library NAND/NOR/INV cells (max arity 4). `invert` selects NAND/NOR
/// semantics for the final output. Returns the root node id.
/// Used by the .bench reader to decompose wide ISCAS gates.
NodeId build_wide_gate(Netlist& nl, bool is_and, bool invert,
                       std::vector<NodeId> terms, const std::string& prefix);

}  // namespace pops::netlist
