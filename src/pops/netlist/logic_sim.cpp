#include "pops/netlist/logic_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pops::netlist {

std::vector<bool> LogicSimulator::eval_all(const std::vector<bool>& pi_values) const {
  const Netlist& nl = *nl_;
  if (pi_values.size() != nl.inputs().size())
    throw std::invalid_argument("LogicSimulator: expected " +
                                std::to_string(nl.inputs().size()) +
                                " PI values, got " +
                                std::to_string(pi_values.size()));
  std::vector<bool> value(nl.size(), false);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i)
    value[static_cast<std::size_t>(nl.inputs()[i])] = pi_values[i];

  bool scratch[8];  // library arity is at most 4
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    if (n.is_input) continue;
    const std::size_t arity = n.fanins.size();
    if (arity > std::size(scratch))
      throw std::logic_error("eval_all: gate arity exceeds library maximum");
    for (std::size_t k = 0; k < arity; ++k)
      scratch[k] = value[static_cast<std::size_t>(n.fanins[k])];
    value[static_cast<std::size_t>(id)] =
        nl.cell_of(id).eval({scratch, arity});
  }
  return value;
}

std::vector<bool> LogicSimulator::eval_outputs(const std::vector<bool>& pi_values) const {
  const std::vector<bool> all = eval_all(pi_values);
  std::vector<bool> out;
  for (NodeId id : nl_->outputs()) out.push_back(all[static_cast<std::size_t>(id)]);
  return out;
}

namespace {

/// PI index mapping of `b` onto the PI order of `a`, matched by name.
std::vector<std::size_t> match_inputs(const Netlist& a, const Netlist& b) {
  if (a.inputs().size() != b.inputs().size())
    throw std::invalid_argument("equivalent: PI count mismatch");
  std::vector<std::size_t> map(b.inputs().size());
  for (std::size_t i = 0; i < b.inputs().size(); ++i) {
    const std::string& name = b.node(b.inputs()[i]).name;
    NodeId in_a = a.find(name);
    bool found = false;
    for (std::size_t j = 0; j < a.inputs().size(); ++j) {
      if (a.inputs()[j] == in_a) {
        map[i] = j;
        found = true;
        break;
      }
    }
    if (!found)
      throw std::invalid_argument("equivalent: PI " + name + " missing in lhs");
  }
  return map;
}

/// PO name list of `nl`, sorted for stable comparison order.
std::vector<std::string> sorted_po_names(const Netlist& nl) {
  std::vector<std::string> names;
  for (NodeId id : nl.outputs()) names.push_back(nl.node(id).name);
  std::sort(names.begin(), names.end());
  return names;
}

bool outputs_match(const Netlist& a, const Netlist& b,
                   const std::vector<bool>& values_a,
                   const std::vector<bool>& values_b,
                   const std::vector<std::string>& po_names) {
  for (const std::string& name : po_names) {
    const NodeId ia = a.find(name);
    const NodeId ib = b.find(name);
    if (values_a[static_cast<std::size_t>(ia)] !=
        values_b[static_cast<std::size_t>(ib)])
      return false;
  }
  return true;
}

}  // namespace

bool equivalent(const Netlist& a, const Netlist& b, util::Rng& rng,
                int n_random_vectors, int exhaustive_limit) {
  const std::vector<std::size_t> pi_map = match_inputs(a, b);
  const std::vector<std::string> po_a = sorted_po_names(a);
  const std::vector<std::string> po_b = sorted_po_names(b);
  if (po_a != po_b)
    throw std::invalid_argument("equivalent: PO name sets differ");
  for (const std::string& name : po_b)
    if (b.find(name) == kNoNode || a.find(name) == kNoNode)
      throw std::invalid_argument("equivalent: PO lookup failed for " + name);

  const LogicSimulator sim_a(a), sim_b(b);
  const std::size_t n_pi = a.inputs().size();

  auto check_vector = [&](const std::vector<bool>& va) {
    std::vector<bool> vb(n_pi);
    for (std::size_t i = 0; i < n_pi; ++i) vb[i] = va[pi_map[i]];
    return outputs_match(a, b, sim_a.eval_all(va), sim_b.eval_all(vb), po_a);
  };

  if (n_pi <= static_cast<std::size_t>(exhaustive_limit)) {
    const std::uint64_t total = 1ull << n_pi;
    for (std::uint64_t pattern = 0; pattern < total; ++pattern) {
      std::vector<bool> va(n_pi);
      for (std::size_t i = 0; i < n_pi; ++i) va[i] = (pattern >> i) & 1ull;
      if (!check_vector(va)) return false;
    }
    return true;
  }

  for (int v = 0; v < n_random_vectors; ++v) {
    std::vector<bool> va(n_pi);
    for (std::size_t i = 0; i < n_pi; ++i) va[i] = rng.bernoulli(0.5);
    if (!check_vector(va)) return false;
  }
  return true;
}

ActivityReport estimate_activity(const Netlist& nl, util::Rng& rng,
                                 int n_vectors) {
  if (n_vectors < 2)
    throw std::invalid_argument("estimate_activity: need at least 2 vectors");
  const LogicSimulator sim(nl);
  const std::size_t n_pi = nl.inputs().size();

  std::vector<int> toggles(nl.size(), 0);
  std::vector<int> ones(nl.size(), 0);
  std::vector<bool> prev;
  for (int v = 0; v < n_vectors; ++v) {
    std::vector<bool> pi(n_pi);
    for (std::size_t i = 0; i < n_pi; ++i) pi[i] = rng.bernoulli(0.5);
    std::vector<bool> cur = sim.eval_all(pi);
    for (std::size_t i = 0; i < cur.size(); ++i)
      if (cur[i]) ++ones[i];
    if (v > 0)
      for (std::size_t i = 0; i < cur.size(); ++i)
        if (cur[i] != prev[i]) ++toggles[i];
    prev = std::move(cur);
  }

  ActivityReport report;
  report.toggle_rate.resize(nl.size());
  report.p_one.resize(nl.size());
  const double pairs = static_cast<double>(n_vectors - 1);
  for (std::size_t i = 0; i < nl.size(); ++i) {
    report.toggle_rate[i] = static_cast<double>(toggles[i]) / pairs;
    report.p_one[i] =
        static_cast<double>(ones[i]) / static_cast<double>(n_vectors);
    report.switched_cap_ff_per_vec +=
        report.toggle_rate[i] * nl.load_ff(static_cast<NodeId>(i));
  }
  return report;
}

}  // namespace pops::netlist
