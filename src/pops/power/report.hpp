#pragma once
// The power report record and the calibration constants of the power
// subsystem.
//
// This header is the single home of the repo's raw leakage/temperature
// magnitudes (tools/pops_lint fences such constants into src/pops/power/
// and src/pops/process/): every other layer consumes them through the
// named constants or through a power::PowerModel backend.

#include <string>

namespace pops::power {

/// Reference temperature every leakage calibration is stated at (degC).
inline constexpr double kDefaultTemperatureC = 25.0;

/// Default report frequency for power estimates (MHz).
inline constexpr double kDefaultFrequencyMhz = 100.0;

/// Per-µm off current of the flat legacy leakage estimate (nA/µm) — the
/// generic 0.25µm magnitude the proxy backend reproduces bit-identically.
/// State-dependent leakage uses the per-Vt-class currents of
/// process::Technology::vt_classes instead.
inline constexpr double kProxyIoffNaPerUm = 0.03;

/// Short-circuit allowance on top of the switched-capacitance power.
inline constexpr double kShortCircuitFraction = 0.10;

/// Sub-threshold leakage suppression per extra series (stacked) off
/// device in the leaking network — the "stacking effect": each extra
/// series transistor raises the intermediate node and cuts the stack's
/// off current by roughly an order of magnitude.
inline constexpr double kSeriesStackFactor = 0.1;

/// Outcome of one power evaluation. `area_um`/`switched_cap_ff`/
/// `dynamic_uw`/`leakage_uw`/`total_uw` are the historical fields every
/// consumer reads; the split of `leakage_uw` into sub-threshold and gate
/// components, the producing backend, and the evaluation temperature were
/// added with the polymorphic backends (the proxy backend reports its
/// whole leakage as sub-threshold and zero gate leakage).
struct PowerReport {
  double area_um = 0.0;          ///< ΣW, the paper's metric
  double switched_cap_ff = 0.0;  ///< sum over nets of alpha * C
  double dynamic_uw = 0.0;       ///< at the report frequency
  double leakage_uw = 0.0;       ///< subthreshold_uw + gate_leak_uw
  double total_uw = 0.0;
  double frequency_mhz = 0.0;
  double subthreshold_uw = 0.0;
  double gate_leak_uw = 0.0;
  double temperature_c = kDefaultTemperatureC;
  std::string model;             ///< producing backend ("proxy", "state")
};

}  // namespace pops::power
