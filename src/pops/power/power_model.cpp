#include "pops/power/power_model.hpp"

#include <cmath>
#include <stdexcept>

#include "pops/obs/metrics.hpp"

namespace pops::power {

using liberty::CellKind;
using netlist::Netlist;
using netlist::NodeId;

double temperature_factor(const process::Technology& tech,
                          double temperature_c) {
  return std::exp2((temperature_c - kDefaultTemperatureC) /
                   tech.ioff_doubling_c);
}

PowerReport PowerModel::evaluate(const Netlist& nl,
                                 const netlist::ActivityReport& activity,
                                 double frequency_mhz,
                                 double temperature_c) const {
  if (!(frequency_mhz > 0.0))
    throw std::invalid_argument("PowerModel: frequency must be > 0");
  if (&nl.lib() != lib_)
    throw std::invalid_argument(
        "PowerModel: netlist is over a different library than this backend");
  if (activity.toggle_rate.size() != nl.size())
    throw std::invalid_argument(
        "PowerModel: activity report does not match the netlist");
  static const obs::Registry::Counter evals =
      obs::Registry::global().counter("power.evals");
  evals.add();
  return do_evaluate(nl, activity, frequency_mhz, temperature_c);
}

PowerReport PowerModel::estimate(const Netlist& nl, util::Rng& rng,
                                 double frequency_mhz, int vectors,
                                 double temperature_c) const {
  return evaluate(nl, netlist::estimate_activity(nl, rng, vectors),
                  frequency_mhz, temperature_c);
}

namespace {

/// Dynamic (switched-capacitance + short-circuit) power — shared by both
/// backends, and bit-identical to the historical core::estimate_power:
/// same accumulation order, same expression shapes.
void fill_dynamic(const Netlist& nl, const netlist::ActivityReport& activity,
                  double frequency_mhz, PowerReport& report) {
  double switched = 0.0;
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const double cap = nl.load_ff(id) + nl.cpar_ff(id);
    switched += activity.toggle_rate[i] * cap;
  }
  report.switched_cap_ff = switched;
  const double vdd = nl.lib().tech().vdd;
  // fF * V^2 * MHz = 1e-15 F * V^2 * 1e6 1/s = 1e-9 W = nW; report µW.
  const double dyn_nw = 0.5 * switched * vdd * vdd * frequency_mhz;
  report.dynamic_uw = dyn_nw * 1e-3 * (1.0 + kShortCircuitFraction);
}

/// Number of series (stacked) devices in the N and P networks of `kind`.
/// The leaking (off) network's stack depth sets the sub-threshold
/// suppression; parallel devices leak independently (depth 1).
void series_devices(CellKind kind, int fanin, int& n_series, int& p_series) {
  switch (kind) {
    case CellKind::Inv:
    case CellKind::Buf:
      n_series = p_series = 1;
      break;
    case CellKind::Nand2:
    case CellKind::Nand3:
    case CellKind::Nand4:
      n_series = fanin;  // NMOS array in series, PMOS in parallel
      p_series = 1;
      break;
    case CellKind::Nor2:
    case CellKind::Nor3:
    case CellKind::Nor4:
      n_series = 1;  // NMOS in parallel, PMOS array in series
      p_series = fanin;
      break;
    case CellKind::Aoi21:
    case CellKind::Oai21:
    case CellKind::Xor2:
    case CellKind::Xnor2:
      // Mixed series/parallel networks; both worst paths are two deep.
      n_series = p_series = 2;
      break;
  }
}

}  // namespace

PowerReport ProxyModel::do_evaluate(const Netlist& nl,
                                    const netlist::ActivityReport& activity,
                                    double frequency_mhz,
                                    double temperature_c) const {
  PowerReport report;
  report.model = std::string(name());
  report.frequency_mhz = frequency_mhz;
  report.temperature_c = temperature_c;
  report.area_um = nl.total_width_um();
  fill_dynamic(nl, activity, frequency_mhz, report);
  const double vdd = nl.lib().tech().vdd;
  // nA * V = nW; per µm of width. The temperature factor is exactly 1.0
  // at the 25 degC reference, keeping the historical numbers bit-for-bit.
  report.subthreshold_uw = kProxyIoffNaPerUm * report.area_um * vdd * 1e-3 *
                           temperature_factor(nl.lib().tech(), temperature_c);
  report.gate_leak_uw = 0.0;
  report.leakage_uw = report.subthreshold_uw;
  report.total_uw = report.dynamic_uw + report.leakage_uw;
  return report;
}

PowerReport StateDependentModel::do_evaluate(
    const Netlist& nl, const netlist::ActivityReport& activity,
    double frequency_mhz, double temperature_c) const {
  if (activity.p_one.size() != nl.size())
    throw std::invalid_argument(
        "StateDependentModel: activity report lacks state probabilities");
  PowerReport report;
  report.model = std::string(name());
  report.frequency_mhz = frequency_mhz;
  report.temperature_c = temperature_c;
  report.area_um = nl.total_width_um();
  fill_dynamic(nl, activity, frequency_mhz, report);

  const process::Technology& tech = nl.lib().tech();
  const double tf = temperature_factor(tech, temperature_c);
  double sub_nw = 0.0;
  double gate_nw = 0.0;
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const netlist::Node& n = nl.node(static_cast<NodeId>(i));
    if (n.is_input) continue;
    const liberty::Cell& cell = nl.lib().cell(n.kind);
    const process::VtClass cls =
        tech.vt_class(static_cast<std::size_t>(n.vt));
    // Per-network total widths: every input pin contributes an N device
    // of width wn and a P device of width k*wn.
    const double wn_total = static_cast<double>(cell.fanin) * n.wn_um;
    const double wp_total = cell.k_ratio * wn_total;
    int n_series = 1, p_series = 1;
    series_devices(n.kind, cell.fanin, n_series, p_series);
    const double n_stack = std::pow(kSeriesStackFactor, n_series - 1);
    const double p_stack = std::pow(kSeriesStackFactor, p_series - 1);
    // State weighting: output high -> the N pulldown is off and leaks;
    // output low -> the P pullup is off and leaks.
    const double p1 = activity.p_one[i];
    sub_nw += cls.ioff_na_per_um * tf * tech.vdd *
              (p1 * wn_total * n_stack + (1.0 - p1) * wp_total * p_stack);
    // Gate (tunnelling) leakage across the whole cell, state- and
    // temperature-insensitive to first order.
    gate_nw += tech.igate_na_per_um * (wn_total + wp_total) * tech.vdd;
  }
  report.subthreshold_uw = sub_nw * 1e-3;
  report.gate_leak_uw = gate_nw * 1e-3;
  report.leakage_uw = report.subthreshold_uw + report.gate_leak_uw;
  report.total_uw = report.dynamic_uw + report.leakage_uw;
  return report;
}

std::unique_ptr<PowerModel> make_power_model(const std::string& name,
                                             const liberty::Library& lib) {
  if (name == "proxy") return std::make_unique<ProxyModel>(lib);
  if (name == "state") return std::make_unique<StateDependentModel>(lib);
  throw std::invalid_argument("make_power_model: unknown backend '" + name +
                              "' (known: proxy, state)");
}

}  // namespace pops::power
