#pragma once
// Polymorphic power-model backends, mirroring timing::DelayModel.
//
// A PowerModel evaluates a netlist's power from simulated switching
// activities at a report frequency and a junction temperature. Two
// backends implement the contract:
//
//   * ProxyModel — the paper's ΣW proxy plus the first-order flat
//     estimate the repo always reported:
//       P_dyn  = alpha_total * Cload * VDD^2 * f / 2  (+10% short-circuit)
//       P_leak = I_off_per_um * ΣW * VDD
//     Bit-identical to the historical core::estimate_power at the
//     reference temperature; away from it the flat leakage scales with
//     the technology's doubling rule.
//
//   * StateDependentModel — McPAT-style state-dependent leakage:
//     sub-threshold current per Vt class (Technology::vt_classes),
//     weighted by each gate's simulated output-state probability (the N
//     network leaks while the output is high, the P network while it is
//     low), suppressed by series stacking, doubled every
//     ioff_doubling_c degC; plus temperature-insensitive gate
//     (tunnelling) leakage. Dynamic power is evaluated exactly like the
//     proxy — the backends differ only where the physics differ.
//
// Like a delay model, a backend carries a (name, content_hash, selector)
// identity that result caches fold into their keys so backends never
// alias, and keeps a non-owning pointer to the library it is built over.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "pops/liberty/library.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/power/report.hpp"
#include "pops/util/rng.hpp"

namespace pops::power {

/// Sub-threshold temperature scaling: leakage doubles every
/// `tech.ioff_doubling_c` degC above the 25 degC reference (exactly 1.0
/// at the reference, so reference-temperature reports are bit-identical
/// to temperature-blind ones).
double temperature_factor(const process::Technology& tech,
                          double temperature_c);

class PowerModel {
 public:
  /// Backends keep a non-owning pointer; the library must outlive them.
  explicit PowerModel(const liberty::Library& lib) : lib_(&lib) {}
  virtual ~PowerModel() = default;

  const liberty::Library& lib() const noexcept { return *lib_; }

  // ----- backend identity -----------------------------------------------------

  /// Stable backend family name ("proxy", "state"); reported in sweep
  /// records and folded into result-cache keys.
  virtual std::string_view name() const noexcept = 0;

  /// Hash of everything beyond the shared library/technology that
  /// determines this backend's numbers (the technology itself — including
  /// the Vt class table — is hashed separately by cache keys).
  virtual std::uint64_t content_hash() const noexcept = 0;

  /// Identity of the selection that produced this backend, comparable
  /// against OptimizerConfig::power_model_selector().
  virtual std::string selector() const { return std::string(name()); }

  // ----- evaluation -----------------------------------------------------------

  /// Evaluate `nl` under the given activities at `frequency_mhz` and
  /// `temperature_c`. Validates the inputs (positive frequency, activity
  /// sized to the netlist, netlist over this backend's library) and bumps
  /// the `power.evals` counter; the physics live in the backend override.
  PowerReport evaluate(const netlist::Netlist& nl,
                       const netlist::ActivityReport& activity,
                       double frequency_mhz = kDefaultFrequencyMhz,
                       double temperature_c = kDefaultTemperatureC) const;

  /// Convenience: simulate activities (deterministic in `rng`), then
  /// evaluate.
  PowerReport estimate(const netlist::Netlist& nl, util::Rng& rng,
                       double frequency_mhz = kDefaultFrequencyMhz,
                       int vectors = 512,
                       double temperature_c = kDefaultTemperatureC) const;

 private:
  virtual PowerReport do_evaluate(const netlist::Netlist& nl,
                                  const netlist::ActivityReport& activity,
                                  double frequency_mhz,
                                  double temperature_c) const = 0;

  const liberty::Library* lib_;
};

/// The paper's ΣW proxy + flat leakage (see file comment). Stateless.
class ProxyModel final : public PowerModel {
 public:
  explicit ProxyModel(const liberty::Library& lib) : PowerModel(lib) {}

  std::string_view name() const noexcept override { return "proxy"; }
  std::uint64_t content_hash() const noexcept override {
    return 0x70726f78792d7077ull;  // "proxy-pw"
  }

 private:
  PowerReport do_evaluate(const netlist::Netlist& nl,
                          const netlist::ActivityReport& activity,
                          double frequency_mhz,
                          double temperature_c) const override;
};

/// State-dependent sub-threshold + gate leakage (see file comment).
class StateDependentModel final : public PowerModel {
 public:
  explicit StateDependentModel(const liberty::Library& lib)
      : PowerModel(lib) {}

  std::string_view name() const noexcept override { return "state"; }
  std::uint64_t content_hash() const noexcept override {
    return 0x73746174652d7077ull;  // "state-pw"
  }

 private:
  PowerReport do_evaluate(const netlist::Netlist& nl,
                          const netlist::ActivityReport& activity,
                          double frequency_mhz,
                          double temperature_c) const override;
};

/// Build the backend named `name` ("proxy" or "state") over `lib`.
/// Throws std::invalid_argument listing the known names when unknown.
std::unique_ptr<PowerModel> make_power_model(const std::string& name,
                                             const liberty::Library& lib);

}  // namespace pops::power
