#include "pops/net/protocol.hpp"

#include <stdexcept>
#include <utility>

#include "pops/service/serialize.hpp"

namespace pops::net {

using util::Json;

Json make_sweep_request(const service::SweepSpec& spec,
                        const std::map<std::string, std::string>& bench,
                        double po_load_ff, bool record_runtimes,
                        std::uint64_t trace_id) {
  Json j = Json::object();
  j["op"] = "sweep";
  j["spec"] = service::to_json(spec);
  if (!bench.empty()) {
    Json files = Json::object();
    for (const auto& [label, text] : bench) files[label] = text;
    j["bench"] = std::move(files);
    j["po_load_ff"] = po_load_ff;
  }
  // Only the non-default spelling goes on the wire: default requests stay
  // byte-identical to pre-option clients.
  if (!record_runtimes) j["record_runtimes"] = false;
  if (trace_id != 0) j["trace_id"] = static_cast<double>(trace_id);
  return j;
}

Request parse_request(const Json& j) {
  if (!j.is_object())
    throw std::invalid_argument("request must be a JSON object");
  const Json* op = j.find("op");
  if (!op || !op->is_string())
    throw std::invalid_argument("request needs a string 'op'");

  Request req;
  req.op = op->as_string();
  if (req.op == "ping" || req.op == "stats" || req.op == "metrics" ||
      req.op == "save" || req.op == "shutdown")
    return req;
  if (req.op == "trace") {
    if (const Json* start = j.find("start")) {
      if (!start->is_bool())
        throw std::invalid_argument("'start' must be a boolean");
      req.trace_start = start->as_bool();
    }
    return req;
  }
  if (req.op != "sweep")
    throw std::invalid_argument(
        "unknown op '" + req.op +
        "' (known: metrics ping save shutdown stats sweep trace)");

  const Json* spec = j.find("spec");
  if (!spec) throw std::invalid_argument("'sweep' request needs a 'spec'");
  req.spec = service::sweep_spec_from_json(*spec);

  if (const Json* bench = j.find("bench")) {
    if (!bench->is_object())
      throw std::invalid_argument(
          "'bench' must be an object of label -> .bench source");
    for (const auto& [label, text] : bench->members()) {
      if (!text.is_string())
        throw std::invalid_argument("'bench." + label + "' must be a string");
      req.bench.emplace(label, text.as_string());
    }
  }
  if (const Json* po = j.find("po_load_ff")) {
    if (!po->is_number())
      throw std::invalid_argument("'po_load_ff' must be a number");
    req.po_load_ff = po->as_number();
  }
  if (const Json* rr = j.find("record_runtimes")) {
    if (!rr->is_bool())
      throw std::invalid_argument("'record_runtimes' must be a boolean");
    req.record_runtimes = rr->as_bool();
  }
  if (const Json* tid = j.find("trace_id")) {
    if (!tid->is_number() || tid->as_number() < 0)
      throw std::invalid_argument("'trace_id' must be a non-negative number");
    req.trace_id = static_cast<std::uint64_t>(tid->as_number());
  }
  return req;
}

bool is_event(const Json& record) {
  return record.is_object() && record.find("event") != nullptr;
}

std::string event_name(const Json& record) {
  const Json* e = record.is_object() ? record.find("event") : nullptr;
  return e && e->is_string() ? e->as_string() : std::string();
}

Json make_event(const std::string& name) {
  Json j = Json::object();
  j["event"] = name;
  return j;
}

Json make_error(const std::string& message) {
  Json j = make_event("error");
  j["message"] = message;
  return j;
}

}  // namespace pops::net
