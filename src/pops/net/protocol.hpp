#pragma once
// The wire protocol of the sweep daemon.
//
// Framing: newline-delimited JSON, both directions — every request and
// every response record is exactly one '\n'-terminated line of compact
// JSON (util::Json, dump(0)). A connection carries any number of requests
// sequentially; the server answers each request completely before reading
// the next line.
//
// Requests ({"op": ...}):
//
//   {"op": "sweep", "spec": {SweepSpec JSON},
//    "bench": {"label": "<.bench source>", ...},   // optional inline files
//    "po_load_ff": 12.0,                           // optional, for "bench"
//    "record_runtimes": true,                      // optional, default true
//    "trace_id": 7}                                // optional, default 0
//       Runs the spec on the server's shared SweepService. Spec circuit
//       names resolve against "bench" first, then as built-in benchmarks.
//       Response: one line per completed point — the *bare*
//       service::to_json(SweepPoint) record, byte-identical to what an
//       in-process run (or pops_sweep --jsonl) emits — followed by one
//       "done" event line. With "record_runtimes": false, point records
//       drop their measured section (SerializeOptions{.measured=false}):
//       same request, same bytes, run to run. A non-zero "trace_id" is a
//       caller-chosen correlation id (the fabric coordinator sends its
//       dispatch-span id): the server attaches it as an arg on the
//       request's "net/sweep" span, so a merged coordinator+worker trace
//       links each worker-side sweep to the dispatch that caused it.
//       The shard-dispatch form is just this op with a single-point spec
//       (fabric::single_point_spec) — one record per request.
//   {"op": "ping"}      -> {"event": "pong"}
//   {"op": "stats"}     -> {"event": "stats", cache: {...}, sweeps, points}
//   {"op": "metrics"}   -> {"event": "metrics", counters: {...},
//                          gauges: {...}, histograms: {...}} — the
//                          process-wide obs::Registry snapshot. The
//                          fabric coordinator polls this op across the
//                          fleet and aggregates the snapshots.
//   {"op": "trace", "start": false}
//                       -> {"event": "trace", "origin_ns": hex,
//                           "trace": {chrome JSON doc}}. With "start":
//                          true, begins recording on the process-wide
//                          obs::TraceRecorder instead and returns only
//                          {"event": "trace", "started": true,
//                          "origin_ns": hex}. origin_ns (hex_u64 of the
//                          recorder origin) lets a coordinator rebase the
//                          worker's relative-µs timestamps into its own
//                          timeline when merging fleet traces.
//   {"op": "save"}      -> {"event": "saved", entries, path} (compact the
//                          result-cache journal at the server's
//                          --cache-file; see service/cache_journal.hpp
//                          for the on-disk format)
//   {"op": "shutdown"}  -> {"event": "bye"}; the server then stops
//                          accepting, drains, compacts the journal,
//                          exits.
//
// Response records: a line is either a sweep POINT record (no "event"
// member — exactly the schema of service/serialize.hpp's SweepPoint) or a
// control EVENT ({"event": "done" | "error" | "pong" | ...}). "done"
// carries {points, unmet, cache: {hits, misses, entries, evictions},
// wall_ms}. "error" carries {message} and ends the current request —
// points already streamed for it remain valid. A server past its
// connection cap answers the connection's first byte-stream with a single
// "error" event line and closes.

#include <cstdint>
#include <map>
#include <string>

#include "pops/service/sweep.hpp"
#include "pops/util/json.hpp"

namespace pops::net {

/// One parsed client request.
struct Request {
  std::string op;
  service::SweepSpec spec;                   ///< for op == "sweep"
  std::map<std::string, std::string> bench;  ///< label -> .bench source
  double po_load_ff = 12.0;  ///< PO load applied to inline .bench circuits
  bool record_runtimes = true;   ///< emit the measured section per point
  std::uint64_t trace_id = 0;    ///< cross-wire correlation id; 0 = none
  bool trace_start = false;      ///< for op == "trace": begin recording
};

/// Build the wire form of a sweep request.
util::Json make_sweep_request(const service::SweepSpec& spec,
                              const std::map<std::string, std::string>& bench,
                              double po_load_ff,
                              bool record_runtimes = true,
                              std::uint64_t trace_id = 0);

/// Parse one request line. Throws std::invalid_argument on an unknown op
/// or malformed body (the server answers with an "error" event).
Request parse_request(const util::Json& j);

/// True when `record` is a control event (has an "event" member) rather
/// than a streamed sweep point.
bool is_event(const util::Json& record);

/// The "event" name, or "" when `record` is a point record.
std::string event_name(const util::Json& record);

/// Build an {"event": name} record; callers add fields.
util::Json make_event(const std::string& name);

/// {"event": "error", "message": message}.
util::Json make_error(const std::string& message);

}  // namespace pops::net
