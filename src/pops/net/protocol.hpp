#pragma once
// The wire protocol of the sweep daemon.
//
// Framing: newline-delimited JSON, both directions — every request and
// every response record is exactly one '\n'-terminated line of compact
// JSON (util::Json, dump(0)). A connection carries any number of requests
// sequentially; the server answers each request completely before reading
// the next line.
//
// Requests ({"op": ...}):
//
//   {"op": "sweep", "spec": {SweepSpec JSON},
//    "bench": {"label": "<.bench source>", ...},   // optional inline files
//    "po_load_ff": 12.0,                           // optional, for "bench"
//    "record_runtimes": true}                      // optional, default true
//       Runs the spec on the server's shared SweepService. Spec circuit
//       names resolve against "bench" first, then as built-in benchmarks.
//       Response: one line per completed point — the *bare*
//       service::to_json(SweepPoint) record, byte-identical to what an
//       in-process run (or pops_sweep --jsonl) emits — followed by one
//       "done" event line. With "record_runtimes": false, point records
//       drop their measured section (SerializeOptions{.measured=false}):
//       same request, same bytes, run to run.
//   {"op": "ping"}      -> {"event": "pong"}
//   {"op": "stats"}     -> {"event": "stats", cache: {...}, sweeps, points}
//   {"op": "metrics"}   -> {"event": "metrics", counters: {...},
//                          gauges: {...}, histograms: {...}} — the
//                          process-wide obs::Registry snapshot
//   {"op": "save"}      -> {"event": "saved", entries, path} (checkpoint
//                          the result cache to the server's --cache-file)
//   {"op": "shutdown"}  -> {"event": "bye"}; the server then stops
//                          accepting, drains, flushes the cache, exits.
//
// Response records: a line is either a sweep POINT record (no "event"
// member — exactly the schema of service/serialize.hpp's SweepPoint) or a
// control EVENT ({"event": "done" | "error" | "pong" | ...}). "done"
// carries {points, unmet, cache: {hits, misses, entries, evictions},
// wall_ms}. "error" carries {message} and ends the current request —
// points already streamed for it remain valid.

#include <map>
#include <string>

#include "pops/service/sweep.hpp"
#include "pops/util/json.hpp"

namespace pops::net {

/// One parsed client request.
struct Request {
  std::string op;
  service::SweepSpec spec;                   ///< for op == "sweep"
  std::map<std::string, std::string> bench;  ///< label -> .bench source
  double po_load_ff = 12.0;  ///< PO load applied to inline .bench circuits
  bool record_runtimes = true;  ///< emit the measured section per point
};

/// Build the wire form of a sweep request.
util::Json make_sweep_request(const service::SweepSpec& spec,
                              const std::map<std::string, std::string>& bench,
                              double po_load_ff,
                              bool record_runtimes = true);

/// Parse one request line. Throws std::invalid_argument on an unknown op
/// or malformed body (the server answers with an "error" event).
Request parse_request(const util::Json& j);

/// True when `record` is a control event (has an "event" member) rather
/// than a streamed sweep point.
bool is_event(const util::Json& record);

/// The "event" name, or "" when `record` is a point record.
std::string event_name(const util::Json& record);

/// Build an {"event": name} record; callers add fields.
util::Json make_event(const std::string& name);

/// {"event": "error", "message": message}.
util::Json make_error(const std::string& message);

}  // namespace pops::net
