#pragma once
// Minimal POSIX TCP building blocks for the sweep daemon.
//
// pops::net speaks one deliberately simple wire format: newline-delimited
// JSON over a TCP stream (loopback by default). These wrappers add exactly
// what the daemon and client need on top of raw sockets — RAII ownership
// of file descriptors, bind-to-ephemeral-port with port readback, an
// accept loop that can be woken for shutdown, buffered line reads with a
// size bound (untrusted peers must not grow a line without limit), and
// EINTR/partial-write-safe sends that never raise SIGPIPE.
//
// Nothing here knows about sweeps; the protocol lives one layer up
// (net/protocol.hpp, net/server.hpp, net/client.hpp).

#include <cstdint>
#include <string>

namespace pops::net {

/// RAII owner of one socket file descriptor. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close() noexcept;

  /// shutdown(2) both directions — wakes a thread blocked in accept/read
  /// on this descriptor without closing it (close alone does not reliably
  /// interrupt a blocked syscall on Linux).
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP stream with buffered, bounded line framing.
class TcpStream {
 public:
  explicit TcpStream(Socket socket) : socket_(std::move(socket)) {}

  /// Connect to host:port (IPv4 dotted quad, e.g. "127.0.0.1"). Throws
  /// std::runtime_error with the errno text on failure. With
  /// `timeout_ms > 0` the connect itself is bounded (non-blocking connect
  /// + poll); 0 keeps the kernel's default blocking behaviour — the
  /// fleet-coordination knob that turns an unreachable worker into a
  /// prompt, catchable error instead of a minutes-long TCP stall.
  static TcpStream connect(const std::string& host, std::uint16_t port,
                           long timeout_ms = 0);

  /// Read one '\n'-terminated line (the terminator is stripped; a final
  /// unterminated chunk before EOF counts as a line). Returns false on
  /// clean EOF with no buffered data. Throws std::runtime_error on a read
  /// error or when a line exceeds `max_bytes`.
  bool read_line(std::string& line, std::size_t max_bytes = kMaxLineBytes);

  /// Write `line` plus a trailing '\n', looping over partial writes.
  /// SIGPIPE is suppressed (MSG_NOSIGNAL); a closed peer throws
  /// std::runtime_error instead of killing the process.
  void write_line(const std::string& line);

  /// Write `n` raw bytes (no framing added), with the same partial-write
  /// / EINTR / MSG_NOSIGNAL discipline as write_line — the primitive
  /// BufferedWriter flushes through.
  void write_bytes(const char* data, std::size_t n);

  /// Bound every subsequent read (SO_RCVTIMEO): a recv that sits longer
  /// than `ms` milliseconds throws std::runtime_error("recv timed out...")
  /// instead of blocking forever on a hung peer. 0 removes the bound.
  void set_read_timeout_ms(long ms);

  /// Half-close the sending side (signals end-of-requests to the peer).
  void shutdown_write() noexcept;

  /// Shut down both directions: wakes a thread blocked in read_line on
  /// this stream (it sees EOF) without closing the descriptor — the
  /// server's stop path for in-flight connections.
  void shutdown_both() noexcept { socket_.shutdown_both(); }

  bool valid() const noexcept { return socket_.valid(); }
  void close() noexcept { socket_.close(); }

  /// Default per-line bound: a request carries at most a sweep spec plus
  /// inlined .bench sources — 16 MiB is far above any sane request and
  /// far below a memory-exhaustion attack.
  static constexpr std::size_t kMaxLineBytes = 16u << 20;

 private:
  Socket socket_;
  std::string buffer_;  ///< bytes received but not yet returned
};

/// Aggregating line writer over a TcpStream.
///
/// A sweep streams thousands of small point records; sending each as its
/// own send(2) syscall (plus a TCP_NODELAY segment) makes the wire the
/// bottleneck long before serialization is. BufferedWriter appends framed
/// lines to one contiguous buffer and flushes on a size threshold — and
/// always on *record boundaries*, never mid-line, so a reader observes
/// only whole records. Callers flush explicitly before blocking on a read
/// (request/response turnarounds) and at end of stream; the destructor
/// does a best-effort flush for abandoned writers.
///
/// Single-writer by design (like TcpStream itself): the owning connection
/// thread is the only sender on the stream.
class BufferedWriter {
 public:
  /// Lines accumulate until the buffer reaches `flush_bytes` (then the
  /// whole buffer goes out in one send). 64 KiB amortizes syscall cost
  /// without holding records hostage for long.
  explicit BufferedWriter(TcpStream& stream,
                          std::size_t flush_bytes = kDefaultFlushBytes)
      : stream_(&stream), flush_bytes_(flush_bytes) {
    buffer_.reserve(flush_bytes_ + 1);
  }

  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  ~BufferedWriter() {
    try {
      flush();
    } catch (...) {
      // Destructor flush is best effort: the peer may already be gone.
    }
  }

  /// Append `line` + '\n' to the buffer; flush when the threshold is
  /// reached (after the append — records never split across flush
  /// decisions, only across send(2) calls, which is invisible framing-
  /// wise).
  void write_line(const std::string& line) {
    buffer_.append(line);
    buffer_.push_back('\n');
    if (buffer_.size() >= flush_bytes_) flush();
  }

  /// Send everything buffered. Throws like TcpStream::write_line on a
  /// closed peer; the buffer is cleared first so a throwing flush is not
  /// retried with stale bytes by a destructor.
  void flush() {
    if (buffer_.empty()) return;
    std::string out;
    out.swap(buffer_);
    stream_->write_bytes(out.data(), out.size());
  }

  std::size_t buffered_bytes() const noexcept { return buffer_.size(); }

  static constexpr std::size_t kDefaultFlushBytes = 64u << 10;

 private:
  TcpStream* stream_;
  std::size_t flush_bytes_;
  std::string buffer_;
};

/// A listening TCP socket. Construction binds + listens; port() reports
/// the actual port (useful with port 0 = kernel-assigned ephemeral port,
/// how tests and the smoke script avoid collisions).
class TcpListener {
 public:
  /// An unbound placeholder (valid() == false); assign from bind().
  TcpListener() = default;

  /// Bind to host:port and listen. Throws std::runtime_error (errno text)
  /// when the address is unavailable.
  static TcpListener bind(const std::string& host, std::uint16_t port,
                          int backlog = 16);

  std::uint16_t port() const noexcept { return port_; }

  /// Block until a peer connects. Returns an invalid Socket (instead of
  /// throwing) once close() was called — the accept-loop termination
  /// signal.
  Socket accept();

  /// Wake any thread blocked in accept() (subsequent accepts return an
  /// invalid Socket). The descriptor — and with it the bound port — is
  /// released at destruction, after the accept loop has been joined;
  /// closing it here could recycle the fd under a concurrent ::accept.
  void close() noexcept;

  bool valid() const noexcept { return socket_.valid(); }

 private:
  TcpListener(Socket socket, std::uint16_t port)
      : socket_(std::move(socket)), port_(port) {}

  Socket socket_;
  std::uint16_t port_ = 0;
};

}  // namespace pops::net
