#pragma once
// Minimal POSIX TCP building blocks for the sweep daemon.
//
// pops::net speaks one deliberately simple wire format: newline-delimited
// JSON over a TCP stream (loopback by default). These wrappers add exactly
// what the daemon and client need on top of raw sockets — RAII ownership
// of file descriptors, bind-to-ephemeral-port with port readback, an
// accept loop that can be woken for shutdown, buffered line reads with a
// size bound (untrusted peers must not grow a line without limit), and
// EINTR/partial-write-safe sends that never raise SIGPIPE.
//
// Nothing here knows about sweeps; the protocol lives one layer up
// (net/protocol.hpp, net/server.hpp, net/client.hpp).

#include <cstdint>
#include <string>

namespace pops::net {

/// RAII owner of one socket file descriptor. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void close() noexcept;

  /// shutdown(2) both directions — wakes a thread blocked in accept/read
  /// on this descriptor without closing it (close alone does not reliably
  /// interrupt a blocked syscall on Linux).
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP stream with buffered, bounded line framing.
class TcpStream {
 public:
  explicit TcpStream(Socket socket) : socket_(std::move(socket)) {}

  /// Connect to host:port (IPv4 dotted quad, e.g. "127.0.0.1"). Throws
  /// std::runtime_error with the errno text on failure.
  static TcpStream connect(const std::string& host, std::uint16_t port);

  /// Read one '\n'-terminated line (the terminator is stripped; a final
  /// unterminated chunk before EOF counts as a line). Returns false on
  /// clean EOF with no buffered data. Throws std::runtime_error on a read
  /// error or when a line exceeds `max_bytes`.
  bool read_line(std::string& line, std::size_t max_bytes = kMaxLineBytes);

  /// Write `line` plus a trailing '\n', looping over partial writes.
  /// SIGPIPE is suppressed (MSG_NOSIGNAL); a closed peer throws
  /// std::runtime_error instead of killing the process.
  void write_line(const std::string& line);

  /// Half-close the sending side (signals end-of-requests to the peer).
  void shutdown_write() noexcept;

  /// Shut down both directions: wakes a thread blocked in read_line on
  /// this stream (it sees EOF) without closing the descriptor — the
  /// server's stop path for in-flight connections.
  void shutdown_both() noexcept { socket_.shutdown_both(); }

  bool valid() const noexcept { return socket_.valid(); }
  void close() noexcept { socket_.close(); }

  /// Default per-line bound: a request carries at most a sweep spec plus
  /// inlined .bench sources — 16 MiB is far above any sane request and
  /// far below a memory-exhaustion attack.
  static constexpr std::size_t kMaxLineBytes = 16u << 20;

 private:
  Socket socket_;
  std::string buffer_;  ///< bytes received but not yet returned
};

/// A listening TCP socket. Construction binds + listens; port() reports
/// the actual port (useful with port 0 = kernel-assigned ephemeral port,
/// how tests and the smoke script avoid collisions).
class TcpListener {
 public:
  /// An unbound placeholder (valid() == false); assign from bind().
  TcpListener() = default;

  /// Bind to host:port and listen. Throws std::runtime_error (errno text)
  /// when the address is unavailable.
  static TcpListener bind(const std::string& host, std::uint16_t port,
                          int backlog = 16);

  std::uint16_t port() const noexcept { return port_; }

  /// Block until a peer connects. Returns an invalid Socket (instead of
  /// throwing) once close() was called — the accept-loop termination
  /// signal.
  Socket accept();

  /// Wake any thread blocked in accept() (subsequent accepts return an
  /// invalid Socket). The descriptor — and with it the bound port — is
  /// released at destruction, after the accept loop has been joined;
  /// closing it here could recycle the fd under a concurrent ::accept.
  void close() noexcept;

  bool valid() const noexcept { return socket_.valid(); }

 private:
  TcpListener(Socket socket, std::uint16_t port)
      : socket_(std::move(socket)), port_(port) {}

  Socket socket_;
  std::uint16_t port_ = 0;
};

}  // namespace pops::net
