#pragma once
// The sweep-serving daemon: SweepService over a TCP port.
//
// SweepServer completes the heavy-traffic picture of the ROADMAP: many
// clients submit SweepSpec JSON over loopback/TCP (newline-delimited
// framing, net/protocol.hpp), the server schedules each sweep onto one
// shared OptContext + SweepService — whose run_many worker pool fans the
// grid points out across threads — and streams per-point JSONL records
// back as they complete, byte-identical to an in-process run. The shared
// ResultCache memoizes across *all* clients and, with a cache file
// configured, across *restarts*: the cache is loaded at start, flushed
// after every sweep (checkpoint), on the "save" op, and at stop, so a
// warm restart replays repeated specs without recomputing anything.
//
// Concurrency model (the shared-context audit): connections are handled
// on one thread each, but sweep *execution* is serialized by a mutex.
// This is a correctness requirement, not laziness — constructing an
// Optimizer installs the spec's delay-model backend on the shared
// OptContext (OptContext::set_delay_model), which is documented unsafe
// while other optimizations are in flight on that context, and the
// per-context ResultCache binds entries to that one context (sharding
// across contexts would lose cross-client memoization). Parallelism
// lives *inside* a sweep (Optimizer::run_many workers), where it is
// proven bit-identical across thread counts.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "pops/api/api.hpp"
#include "pops/net/protocol.hpp"
#include "pops/net/socket.hpp"
#include "pops/service/cache_io.hpp"
#include "pops/service/result_cache.hpp"
#include "pops/service/sweep.hpp"

namespace pops::net {

struct SweepServerOptions {
  std::string host = "127.0.0.1";  ///< loopback by default; no auth yet
  std::uint16_t port = 0;          ///< 0 = kernel-assigned (see port())
  /// Worker threads per sweep (run_many), applied when a spec leaves
  /// n_threads at 0; 0 = hardware concurrency.
  std::size_t n_threads = 0;
  /// Persist the ResultCache here (empty = in-memory only). Loaded at
  /// start when the file exists; flushed on checkpoint/save/stop.
  std::string cache_file;
  /// LRU bound on the cache (entries); 0 = unbounded.
  std::size_t cache_capacity = 0;
  /// Flush the cache file every N completed sweeps (0 = only on
  /// save/stop). Checkpoints are atomic (tmp + rename).
  std::size_t checkpoint_every = 1;
  std::size_t max_request_bytes = TcpStream::kMaxLineBytes;
};

/// Aggregate serving counters, snapshot via SweepServer::stats().
struct SweepServerStats {
  std::size_t connections = 0;  ///< accepted so far
  std::size_t requests = 0;     ///< request lines parsed
  std::size_t sweeps = 0;       ///< sweep ops completed
  std::size_t points = 0;       ///< point records streamed
  std::size_t errors = 0;       ///< error events sent
};

class SweepServer {
 public:
  explicit SweepServer(SweepServerOptions opt = {});
  ~SweepServer();

  /// Bind + listen + start accepting. Returns what the cache file
  /// contributed (zeros when none was configured or the file does not
  /// exist yet). Throws when the port cannot be bound or the cache file
  /// exists but is foreign/corrupt (stale-context rejection — refusing to
  /// serve from a cache that would not replay bit-identically).
  service::CacheLoadReport start();

  /// Block until a client's "shutdown" op (or stop() from another
  /// thread).
  void wait();

  /// wait() with a timeout: returns true when shutdown was requested,
  /// false after `ms` milliseconds — the polling primitive that lets a
  /// tool interleave signal-flag checks (Ctrl-C) with protocol shutdown.
  bool wait_for_ms(long ms);

  /// Stop accepting, wake every connection, join all threads, flush the
  /// cache file. Idempotent; called by the destructor.
  void stop();

  /// The actual listening port (after start(); resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Flush the cache to the configured file now. Returns the number of
  /// entries written; 0 with no cache file configured.
  std::size_t save_cache();

  SweepServerStats stats() const;

  api::OptContext& context() noexcept { return ctx_; }
  service::ResultCache* cache() const noexcept { return cache_.get(); }

 private:
  struct Connection {
    std::unique_ptr<TcpStream> stream;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection& conn);
  void handle_request(TcpStream& stream, const Request& req);
  void run_sweep(TcpStream& stream, const Request& req);
  void request_shutdown();
  void reap_finished_locked();

  SweepServerOptions opt_;
  api::OptContext ctx_;
  std::shared_ptr<service::ResultCache> cache_;
  service::SweepService sweeps_;

  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::list<Connection> conns_;

  /// Serializes sweep execution on the shared context (see file header)
  /// AND cache-file saves: archiving reads ctx_.dm(), which a sweep's
  /// Optimizer construction may swap.
  std::mutex exec_mu_;
  std::size_t sweeps_since_checkpoint_ = 0;  ///< guarded by exec_mu_

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::atomic<std::size_t> n_connections_{0};
  std::atomic<std::size_t> n_requests_{0};
  std::atomic<std::size_t> n_sweeps_{0};
  std::atomic<std::size_t> n_points_{0};
  std::atomic<std::size_t> n_errors_{0};
};

}  // namespace pops::net
