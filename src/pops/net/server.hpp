#pragma once
// The sweep-serving daemon: SweepService over a TCP port.
//
// SweepServer completes the heavy-traffic picture of the ROADMAP: many
// clients submit SweepSpec JSON over loopback/TCP (newline-delimited
// framing, net/protocol.hpp), the server routes each sweep onto a
// fabric::ContextPool member and streams per-point JSONL records back as
// they complete, byte-identical to an in-process run. The pool-shared
// ResultCache memoizes across *all* clients and, with a cache file
// configured, across *restarts*: every store is appended to a
// service::CacheJournal as it lands, so a warm restart replays repeated
// specs without recomputing anything — and without the old
// whole-archive-rewrite checkpoints (checkpoints are now journal
// *compactions*, O(live entries) and only when garbage warrants it).
//
// Concurrency model (the shared-context audit): connections are handled
// on one thread each; sweep execution is serialized *per pool member*,
// not globally. The old single-context design serialized every sweep
// behind one mutex because constructing an Optimizer may install the
// spec's delay-model backend on the shared OptContext — documented
// unsafe while other optimizations are in flight on that context. The
// pool removes the conflict instead of locking around it: one context
// per delay-model selector, so a member's backend is installed once and
// never swapped, and sweeps that differ in backend run concurrently.
// Same-selector sweeps still queue on their member's exec_mu (the
// per-context ResultCacheKey::ctx_bits binding and run_many's internal
// parallelism are unchanged).

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>

#include "pops/api/api.hpp"
#include "pops/fabric/context_pool.hpp"
#include "pops/net/protocol.hpp"
#include "pops/net/socket.hpp"
#include "pops/service/cache_io.hpp"
#include "pops/service/cache_journal.hpp"
#include "pops/service/result_cache.hpp"
#include "pops/service/sweep.hpp"
#include "pops/util/thread_annotations.hpp"

namespace pops::net {

struct SweepServerOptions {
  std::string host = "127.0.0.1";  ///< loopback by default; no auth yet
  std::uint16_t port = 0;          ///< 0 = kernel-assigned (see port())
  /// Worker threads per sweep (run_many), applied when a spec leaves
  /// n_threads at 0; 0 = hardware concurrency.
  std::size_t n_threads = 0;
  /// Persist the ResultCache here as an append-only journal
  /// (service/cache_journal.hpp; empty = in-memory only). Replayed at
  /// start; appended per store; compacted on checkpoint/save/stop.
  std::string cache_file;
  /// LRU bound on the cache (entries); 0 = unbounded.
  std::size_t cache_capacity = 0;
  /// Offer journal compaction every N completed sweeps (0 = only on
  /// save/stop). Compaction is atomic (tmp + rename) and only rewrites
  /// when the garbage policy says it is worth it.
  std::size_t checkpoint_every = 1;
  std::size_t max_request_bytes = TcpStream::kMaxLineBytes;
  /// Serve at most this many concurrent connections; an accept past the
  /// cap is answered with one "error" event line and closed. 0 = no cap.
  std::size_t max_connections = 0;
};

/// Aggregate serving counters, snapshot via SweepServer::stats().
///
/// The snapshot is internally consistent even when taken mid-sweep:
/// `sweeps`/`points` are published together with the cache counters
/// under one lock, so a reply never pairs a completed sweep with the
/// point or cache totals of the sweep before it (cache hits + misses
/// can only run *ahead* of `points`, never behind — in-flight points
/// touch the cache before they are counted).
struct SweepServerStats {
  std::size_t connections = 0;  ///< accepted and served so far
  std::size_t rejected = 0;     ///< turned away by max_connections
  std::size_t requests = 0;     ///< request lines parsed
  std::size_t sweeps = 0;       ///< sweep ops completed
  std::size_t points = 0;       ///< point records streamed
  std::size_t errors = 0;       ///< error events sent
  service::ResultCache::Stats cache;  ///< same-instant cache counters
};

class SweepServer {
 public:
  explicit SweepServer(SweepServerOptions opt = {});
  ~SweepServer();

  /// Bind + listen + start accepting. Returns what the cache journal
  /// contributed (zeros when none was configured or the file did not
  /// exist yet). Throws when the port cannot be bound or the journal
  /// exists but is foreign/corrupt (stale-context rejection — refusing
  /// to serve from a cache that would not replay bit-identically).
  service::CacheLoadReport start();

  /// Block until a client's "shutdown" op (or stop() from another
  /// thread).
  void wait() POPS_EXCLUDES(shutdown_mu_);

  /// wait() with a timeout: returns true when shutdown was requested,
  /// false after `ms` milliseconds — the polling primitive that lets a
  /// tool interleave signal-flag checks (Ctrl-C) with protocol shutdown.
  bool wait_for_ms(long ms) POPS_EXCLUDES(shutdown_mu_);

  /// Stop accepting, wake every connection, join all threads, compact +
  /// close the journal. Idempotent; called by the destructor.
  void stop() POPS_EXCLUDES(conns_mu_);

  /// The actual listening port (after start(); resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Compact the journal now (the "save" op). Returns the number of live
  /// entries it holds; 0 with no cache file configured.
  std::size_t save_cache();

  SweepServerStats stats() const POPS_EXCLUDES(stats_mu_);

  /// The pool member for the default delay-model selector (creates it on
  /// first call) — the reference context tests and tools load circuits
  /// against.
  api::OptContext& context() { return pool_.default_entry().ctx; }
  service::ResultCache* cache() const noexcept { return cache_.get(); }
  fabric::ContextPool& pool() noexcept { return pool_; }
  /// The journal, or nullptr with no cache file configured.
  service::CacheJournal* journal() const noexcept { return journal_.get(); }

 private:
  struct Connection {
    std::unique_ptr<TcpStream> stream;
    std::thread thread;
    /// Set (release) by the connection thread as its last action; read
    /// (acquire) by reap_finished_locked before joining, so everything
    /// the thread wrote happens-before the reap.
    std::atomic<bool> done{false};
  };

  void accept_loop() POPS_EXCLUDES(conns_mu_);
  void serve_connection(Connection& conn);
  void handle_request(BufferedWriter& out, const Request& req);
  /// All response lines leave through here: one write site keeps the
  /// net.bytes_out metric exact (every record, every event, +1 framing
  /// newline each — counted when buffered; the BufferedWriter flushes
  /// them downstream in batches).
  void write_record(BufferedWriter& out, const std::string& line);
  /// Bumps n_errors_ and the net.errors metric together.
  void count_error();
  void run_sweep(BufferedWriter& out, const Request& req)
      POPS_EXCLUDES(stats_mu_);
  void request_shutdown() POPS_EXCLUDES(shutdown_mu_);
  void reap_finished_locked() POPS_REQUIRES(conns_mu_);

  SweepServerOptions opt_;
  std::shared_ptr<service::ResultCache> cache_;
  /// Declared before pool_: the pool's on_create callback binds new
  /// members to the journal.
  std::unique_ptr<service::CacheJournal> journal_;
  fabric::ContextPool pool_;

  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  /// Guards the connection registry: accept_loop appends, stop() tears
  /// down, reap_finished_locked erases. Connection threads never take
  /// it (they only flip their own `done` flag), so joining them while
  /// holding it cannot deadlock.
  util::Mutex conns_mu_;
  std::list<Connection> conns_ POPS_GUARDED_BY(conns_mu_);

  /// Counts sweeps toward the next checkpoint_every compaction offer.
  util::Mutex checkpoint_mu_;
  std::size_t sweeps_since_checkpoint_ POPS_GUARDED_BY(checkpoint_mu_) = 0;

  util::Mutex shutdown_mu_;
  util::CondVar shutdown_cv_;
  bool shutdown_requested_ POPS_GUARDED_BY(shutdown_mu_) = false;

  /// Publishes the per-sweep composite (sweeps + their streamed points)
  /// atomically with respect to stats(), which also samples the cache
  /// counters under this lock — the coherence contract documented on
  /// SweepServerStats. Never held while computing (taken after a sweep
  /// completes), so stats replies stay wait-free in practice mid-sweep.
  mutable util::Mutex stats_mu_;
  std::size_t n_sweeps_ POPS_GUARDED_BY(stats_mu_) = 0;
  std::size_t n_points_ POPS_GUARDED_BY(stats_mu_) = 0;

  // Independent monotonic counters: each is bumped by exactly one event
  // with no invariant tying it to the others, so relaxed atomics suffice
  // (stats() documents the ordering it does and does not promise).
  std::atomic<std::size_t> n_connections_{0};
  std::atomic<std::size_t> n_rejected_{0};
  std::atomic<std::size_t> n_requests_{0};
  std::atomic<std::size_t> n_errors_{0};
};

}  // namespace pops::net
