#include "pops/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace pops::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("bad IPv4 address '" + host + "'");
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port,
                             long timeout_ms) {
  const sockaddr_in addr = make_addr(host, port);
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket");
  // The protocol is request/response lines; latency beats batching.
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  if (timeout_ms <= 0) {
    for (;;) {
      if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0)
        break;
      if (errno == EINTR) continue;
      throw_errno("connect to " + host + ":" + std::to_string(port));
    }
    return TcpStream(std::move(s));
  }

  // Bounded connect: non-blocking connect + poll(POLLOUT), then read the
  // deferred error back via SO_ERROR. The descriptor is restored to
  // blocking mode afterwards — the line framing above assumes it.
  const int flags = ::fcntl(s.fd(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(s.fd(), F_SETFL, flags | O_NONBLOCK) != 0)
    throw_errno("fcntl O_NONBLOCK");
  const std::string where = host + ":" + std::to_string(port);
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS && errno != EINTR)
      throw_errno("connect to " + where);
    pollfd pfd{};
    pfd.fd = s.fd();
    pfd.events = POLLOUT;
    int rc;
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) throw_errno("poll (connect to " + where + ")");
    if (rc == 0)
      throw std::runtime_error("connect to " + where + " timed out after " +
                               std::to_string(timeout_ms) + " ms");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0)
      throw_errno("getsockopt SO_ERROR");
    if (err != 0) {
      errno = err;
      throw_errno("connect to " + where);
    }
  }
  if (::fcntl(s.fd(), F_SETFL, flags) != 0) throw_errno("fcntl restore");
  return TcpStream(std::move(s));
}

void TcpStream::set_read_timeout_ms(long ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(socket_.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
      0)
    throw_errno("setsockopt SO_RCVTIMEO");
}

bool TcpStream::read_line(std::string& line, std::size_t max_bytes) {
  for (;;) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      line.assign(buffer_, 0, pos);
      buffer_.erase(0, pos + 1);
      return true;
    }
    if (buffer_.size() > max_bytes)
      throw std::runtime_error("line exceeds " + std::to_string(max_bytes) +
                               " bytes");
    char chunk[4096];
    ssize_t n;
    do {
      n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      // SO_RCVTIMEO (set_read_timeout_ms) surfaces as EAGAIN/EWOULDBLOCK;
      // give it a distinct message so callers can tell a dead peer from a
      // slow one.
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw std::runtime_error("recv timed out waiting for peer");
      throw_errno("recv");
    }
    if (n == 0) {
      if (buffer_.empty()) return false;  // clean EOF
      line = std::move(buffer_);          // final unterminated line
      buffer_.clear();
      return true;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void TcpStream::write_line(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  write_bytes(framed.data(), framed.size());
}

void TcpStream::write_bytes(const char* data, std::size_t len) {
  while (len > 0) {
    ssize_t n;
    do {
      n = ::send(socket_.fd(), data, len, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw_errno("send");
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void TcpStream::shutdown_write() noexcept {
  if (socket_.valid()) ::shutdown(socket_.fd(), SHUT_WR);
}

TcpListener TcpListener::bind(const std::string& host, std::uint16_t port,
                              int backlog) {
  const sockaddr_in addr = make_addr(host, port);
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket");
  const int one = 1;
  // Daemon restarts must not wait out TIME_WAIT on a fixed port.
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0)
    throw_errno("bind " + host + ":" + std::to_string(port));
  if (::listen(s.fd(), backlog) != 0) throw_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    throw_errno("getsockname");
  return TcpListener(std::move(s), ntohs(bound.sin_port));
}

Socket TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // close() shut the listener down (EINVAL) — or the descriptor became
    // unusable some other way; either way the accept loop is over.
    return Socket();
  }
}

void TcpListener::close() noexcept {
  // shutdown only — the descriptor stays allocated until destruction. An
  // acceptor thread may be entering ::accept concurrently; closing the fd
  // here could hand it a recycled descriptor opened by another thread.
  socket_.shutdown_both();
}

}  // namespace pops::net
