#include "pops/net/client.hpp"

#include <stdexcept>

namespace pops::net {

using util::Json;

SweepClient::SweepClient(const std::string& host, std::uint16_t port)
    : stream_(TcpStream::connect(host, port)) {}

Json SweepClient::read_record() {
  std::string line;
  if (!stream_.read_line(line))
    throw std::runtime_error("connection closed by server");
  return Json::parse(line);
}

Json SweepClient::control(const std::string& op) {
  Json req = Json::object();
  req["op"] = op;
  stream_.write_line(req.dump(0));
  const Json reply = read_record();
  if (event_name(reply) == "error") {
    const Json* msg = reply.find("message");
    throw std::runtime_error("server error: " +
                             (msg && msg->is_string() ? msg->as_string()
                                                      : std::string("?")));
  }
  return reply;
}

SweepSummary SweepClient::submit(const service::SweepSpec& spec,
                                 const PointSink& on_point,
                                 const std::map<std::string, std::string>& bench,
                                 double po_load_ff, bool record_runtimes) {
  stream_.write_line(
      make_sweep_request(spec, bench, po_load_ff, record_runtimes).dump(0));

  for (;;) {
    std::string line;
    if (!stream_.read_line(line))
      throw std::runtime_error("connection closed mid-sweep");
    const Json record = Json::parse(line);
    if (!is_event(record)) {
      if (on_point) on_point(record, line);
      continue;
    }
    const std::string event = event_name(record);
    if (event == "error") {
      const Json* msg = record.find("message");
      throw std::runtime_error("sweep failed: " +
                               (msg && msg->is_string() ? msg->as_string()
                                                        : std::string("?")));
    }
    if (event != "done")
      throw std::runtime_error("unexpected event '" + event +
                               "' during sweep");

    SweepSummary out;
    const auto count = [&record](const char* key) -> std::size_t {
      const Json* v = record.find(key);
      return v && v->is_number() ? static_cast<std::size_t>(v->as_number())
                                 : 0;
    };
    out.points = count("points");
    out.unmet = count("unmet");
    if (const Json* cache = record.find("cache")) {
      const auto cache_count = [cache](const char* key) -> std::size_t {
        const Json* v = cache->find(key);
        return v && v->is_number() ? static_cast<std::size_t>(v->as_number())
                                   : 0;
      };
      out.cache_hits = cache_count("hits");
      out.cache_misses = cache_count("misses");
      out.cache_entries = cache_count("entries");
    }
    if (const Json* wall = record.find("wall_ms"))
      if (wall->is_number()) out.wall_ms = wall->as_number();
    return out;
  }
}

}  // namespace pops::net
