#include "pops/net/client.hpp"

#include <stdexcept>
#include <utility>

namespace pops::net {

using util::Json;

namespace {

// Classify every socket-layer failure as ConnectionError. The socket
// layer throws plain runtime_error for both "refused" and "timed out";
// at this layer they are the same thing: the transport failed, the
// request may not have been processed, retrying is legitimate.
TcpStream connect_stream(const std::string& host, std::uint16_t port,
                         const ClientConfig& cfg) {
  try {
    TcpStream stream = TcpStream::connect(host, port, cfg.connect_timeout_ms);
    if (cfg.read_timeout_ms > 0) stream.set_read_timeout_ms(cfg.read_timeout_ms);
    return stream;
  } catch (const std::exception& e) {
    throw ConnectionError(e.what());
  }
}

}  // namespace

SweepClient::SweepClient(const std::string& host, std::uint16_t port,
                         ClientConfig cfg)
    : stream_(connect_stream(host, port, cfg)) {}

Json SweepClient::read_record() {
  std::string line;
  bool got = false;
  try {
    got = stream_.read_line(line);
  } catch (const std::exception& e) {
    throw ConnectionError(e.what());
  }
  if (!got) throw ConnectionError("connection closed by server");
  return Json::parse(line);
}

void SweepClient::write_request(const Json& req) {
  try {
    stream_.write_line(req.dump(0));
  } catch (const std::exception& e) {
    throw ConnectionError(e.what());
  }
}

Json SweepClient::roundtrip(const Json& req) {
  write_request(req);
  const Json reply = read_record();
  if (event_name(reply) == "error") {
    const Json* msg = reply.find("message");
    throw std::runtime_error("server error: " +
                             (msg && msg->is_string() ? msg->as_string()
                                                      : std::string("?")));
  }
  return reply;
}

Json SweepClient::control(const std::string& op) {
  Json req = Json::object();
  req["op"] = op;
  return roundtrip(req);
}

Json SweepClient::trace(bool start) {
  Json req = Json::object();
  req["op"] = "trace";
  if (start) req["start"] = true;
  return roundtrip(req);
}

SweepSummary SweepClient::submit(const service::SweepSpec& spec,
                                 const PointSink& on_point,
                                 const std::map<std::string, std::string>& bench,
                                 double po_load_ff, bool record_runtimes,
                                 std::uint64_t trace_id) {
  write_request(
      make_sweep_request(spec, bench, po_load_ff, record_runtimes, trace_id));

  for (;;) {
    std::string line;
    bool got = false;
    try {
      got = stream_.read_line(line);
    } catch (const std::exception& e) {
      throw ConnectionError(e.what());
    }
    if (!got) throw ConnectionError("connection closed mid-sweep");
    const Json record = Json::parse(line);
    if (!is_event(record)) {
      if (on_point) on_point(record, line);
      continue;
    }
    const std::string event = event_name(record);
    if (event == "error") {
      const Json* msg = record.find("message");
      throw std::runtime_error("sweep failed: " +
                               (msg && msg->is_string() ? msg->as_string()
                                                        : std::string("?")));
    }
    if (event != "done")
      throw std::runtime_error("unexpected event '" + event +
                               "' during sweep");

    SweepSummary out;
    const auto count = [&record](const char* key) -> std::size_t {
      const Json* v = record.find(key);
      return v && v->is_number() ? static_cast<std::size_t>(v->as_number())
                                 : 0;
    };
    out.points = count("points");
    out.unmet = count("unmet");
    if (const Json* cache = record.find("cache")) {
      const auto cache_count = [cache](const char* key) -> std::size_t {
        const Json* v = cache->find(key);
        return v && v->is_number() ? static_cast<std::size_t>(v->as_number())
                                   : 0;
      };
      out.cache_hits = cache_count("hits");
      out.cache_misses = cache_count("misses");
      out.cache_entries = cache_count("entries");
    }
    if (const Json* wall = record.find("wall_ms"))
      if (wall->is_number()) out.wall_ms = wall->as_number();
    return out;
  }
}

}  // namespace pops::net
