#pragma once
// Client side of the sweep daemon protocol.
//
// SweepClient wraps one TCP connection to a SweepServer: submit() sends a
// sweep request and invokes a callback per streamed point record while
// the sweep is still running server-side (the records are byte-identical
// to service::to_json(SweepPoint).dump(0)); the control ops (ping, stats,
// save, shutdown) are one-line request/response calls. One client may
// issue any number of requests sequentially over its connection.

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "pops/net/protocol.hpp"
#include "pops/net/socket.hpp"
#include "pops/service/sweep.hpp"
#include "pops/util/json.hpp"

namespace pops::net {

/// Summary of one submitted sweep (the server's "done" event).
struct SweepSummary {
  std::size_t points = 0;  ///< records streamed for this sweep
  std::size_t unmet = 0;   ///< points whose constraint was not met
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_entries = 0;
  double wall_ms = 0.0;
};

class SweepClient {
 public:
  /// Connect to a running SweepServer. Throws std::runtime_error when the
  /// daemon is unreachable.
  SweepClient(const std::string& host, std::uint16_t port);

  /// Called once per streamed point record, in job order, while the
  /// server is still sweeping. The Json is the parsed SweepPoint record;
  /// `raw` is the exact line as received (for byte-faithful relaying).
  using PointSink =
      std::function<void(const util::Json& point, const std::string& raw)>;

  /// Submit `spec`; optionally ship local .bench sources inline
  /// (label -> file text; spec circuits resolve against these first, then
  /// as server-side built-ins). Blocks until the server's "done" event.
  /// Throws std::runtime_error carrying the server's message when the
  /// sweep fails server-side ("error" event) or the connection drops.
  /// With record_runtimes=false the streamed records (and the summary)
  /// carry no measured fields — same spec, same bytes, run to run.
  SweepSummary submit(const service::SweepSpec& spec,
                      const PointSink& on_point = {},
                      const std::map<std::string, std::string>& bench = {},
                      double po_load_ff = 12.0, bool record_runtimes = true);

  /// Round-trip a control op; returns the event record. Throws on an
  /// "error" reply or a dropped connection.
  util::Json ping() { return control("ping"); }
  util::Json server_stats() { return control("stats"); }
  /// The daemon's obs::Registry snapshot ({"event":"metrics", counters,
  /// gauges, histograms}).
  util::Json metrics() { return control("metrics"); }
  util::Json save() { return control("save"); }
  /// Ask the daemon to shut down (it answers "bye" first).
  util::Json shutdown_server() { return control("shutdown"); }

 private:
  util::Json control(const std::string& op);
  util::Json read_record();

  TcpStream stream_;
};

}  // namespace pops::net
