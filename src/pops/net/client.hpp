#pragma once
// Client side of the sweep daemon protocol.
//
// SweepClient wraps one TCP connection to a SweepServer: submit() sends a
// sweep request and invokes a callback per streamed point record while
// the sweep is still running server-side (the records are byte-identical
// to service::to_json(SweepPoint).dump(0)); the control ops (ping, stats,
// save, shutdown, trace) are one-line request/response calls. One client
// may issue any number of requests sequentially over its connection.
//
// Failure taxonomy: TRANSPORT failures (connect refused/timed out, read
// timed out, peer closed mid-stream, send failed) throw ConnectionError —
// the worker may be dead or unreachable, and a fabric coordinator reacts
// by retrying/re-sharding. SERVER failures (an "error" event: bad spec,
// unknown circuit) throw plain std::runtime_error — the daemon is alive
// and answered; retrying the same request elsewhere would fail the same
// way, so the coordinator propagates instead of failing over.

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>

#include "pops/net/protocol.hpp"
#include "pops/net/socket.hpp"
#include "pops/service/sweep.hpp"
#include "pops/util/json.hpp"

namespace pops::net {

/// A transport-level failure: the peer is unreachable, slow past the
/// configured timeout, or the connection dropped. Retryable (possibly
/// against a different worker), unlike a server-reported error.
class ConnectionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Transport bounds for one client connection. Zeros keep the unbounded
/// blocking behaviour.
struct ClientConfig {
  long connect_timeout_ms = 0;  ///< bound on TCP connect; 0 = unbounded
  long read_timeout_ms = 0;     ///< bound on each reply read; 0 = unbounded
};

/// Summary of one submitted sweep (the server's "done" event).
struct SweepSummary {
  std::size_t points = 0;  ///< records streamed for this sweep
  std::size_t unmet = 0;   ///< points whose constraint was not met
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_entries = 0;
  double wall_ms = 0.0;
};

class SweepClient {
 public:
  /// Connect to a running SweepServer. Throws ConnectionError when the
  /// daemon is unreachable (or did not accept within
  /// cfg.connect_timeout_ms).
  SweepClient(const std::string& host, std::uint16_t port,
              ClientConfig cfg = {});

  /// Called once per streamed point record, in job order, while the
  /// server is still sweeping. The Json is the parsed SweepPoint record;
  /// `raw` is the exact line as received (for byte-faithful relaying).
  using PointSink =
      std::function<void(const util::Json& point, const std::string& raw)>;

  /// Submit `spec`; optionally ship local .bench sources inline
  /// (label -> file text; spec circuits resolve against these first, then
  /// as server-side built-ins). Blocks until the server's "done" event.
  /// Throws std::runtime_error carrying the server's message when the
  /// sweep fails server-side ("error" event), ConnectionError when the
  /// connection drops or times out. With record_runtimes=false the
  /// streamed records (and the summary) carry no measured fields — same
  /// spec, same bytes, run to run. A non-zero trace_id is attached to the
  /// request for cross-wire span correlation (see protocol.hpp).
  SweepSummary submit(const service::SweepSpec& spec,
                      const PointSink& on_point = {},
                      const std::map<std::string, std::string>& bench = {},
                      double po_load_ff = 12.0, bool record_runtimes = true,
                      std::uint64_t trace_id = 0);

  /// Round-trip a control op; returns the event record. Throws a plain
  /// std::runtime_error on an "error" reply, ConnectionError on a dropped
  /// connection.
  util::Json ping() { return control("ping"); }
  util::Json server_stats() { return control("stats"); }
  /// The daemon's obs::Registry snapshot ({"event":"metrics", counters,
  /// gauges, histograms}).
  util::Json metrics() { return control("metrics"); }
  util::Json save() { return control("save"); }
  /// Fetch the daemon's recorded trace ({"event":"trace", origin_ns,
  /// trace}); with start=true, begin recording instead.
  util::Json trace(bool start = false);
  /// Ask the daemon to shut down (it answers "bye" first).
  util::Json shutdown_server() { return control("shutdown"); }

 private:
  util::Json control(const std::string& op);
  util::Json roundtrip(const util::Json& req);
  util::Json read_record();
  void write_request(const util::Json& req);

  TcpStream stream_;
};

}  // namespace pops::net
