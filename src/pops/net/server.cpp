#include "pops/net/server.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "pops/netlist/bench_io.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/obs/clock.hpp"
#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"
#include "pops/service/serialize.hpp"
#include "pops/util/hash.hpp"

namespace pops::net {

using util::Json;

SweepServer::SweepServer(SweepServerOptions opt)
    : opt_(std::move(opt)),
      cache_(std::make_shared<service::ResultCache>(opt_.cache_capacity)),
      journal_(opt_.cache_file.empty()
                   ? nullptr
                   : std::make_unique<service::CacheJournal>(cache_,
                                                             opt_.cache_file)),
      // Every pool member installs the shared cache; new members are
      // bound to the journal before they can run a sweep, so their
      // stores are attributable to a selector from the first one.
      pool_(cache_, [this](const std::string& selector, api::OptContext& ctx) {
        if (journal_) journal_->bind_context(selector, ctx);
      }) {}

SweepServer::~SweepServer() {
  try {
    stop();
  } catch (...) {
    // Destructors must not throw; a failed final compaction leaves the
    // append-only journal as-is — still fully replayable.
  }
}

service::CacheLoadReport SweepServer::start() {
  if (listener_.valid()) throw std::logic_error("SweepServer already started");

  service::CacheLoadReport loaded;
  if (journal_) {
    // Replay an existing journal (a missing file is a cold start) and
    // attach it. A foreign/corrupt header propagates — starting cold
    // would compact-replace the persisted cache later. The resolver
    // creates pool members on demand: a journal written by a
    // multi-selector pool replays each record into the member that will
    // serve that selector's sweeps.
    loaded = journal_->open(pool_.default_entry().ctx,
                            [this](const std::string& selector) {
                              return &pool_.get(selector).ctx;
                            });
  }

  listener_ = TcpListener::bind(opt_.host, opt_.port);
  port_ = listener_.port();
  stopping_.store(false);
  // The accept loop is I/O plumbing, not deterministic product work.
  // pops-lint: allow(raw-thread) — never feeds results it could reorder
  acceptor_ = std::thread([this] { accept_loop(); });
  return loaded;
}

void SweepServer::wait() {
  util::MutexLock lock(shutdown_mu_);
  while (!shutdown_requested_) shutdown_cv_.wait(shutdown_mu_);
}

bool SweepServer::wait_for_ms(long ms) {
  const auto deadline = obs::steady_now() + std::chrono::milliseconds(ms);
  util::MutexLock lock(shutdown_mu_);
  while (!shutdown_requested_) {
    const auto now = obs::steady_now();
    if (now >= deadline) return false;
    shutdown_cv_.wait_for(shutdown_mu_, deadline - now);
  }
  return true;
}

void SweepServer::request_shutdown() {
  {
    util::MutexLock lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void SweepServer::stop() {
  if (stopping_.exchange(true)) return;
  request_shutdown();  // release wait()ers even when stop() came first

  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();

  {
    // Joining under conns_mu_ is deadlock-free: connection threads never
    // take it (they only flip their own atomic `done` flag), and the
    // acceptor — the other taker — is already joined above.
    util::MutexLock lock(conns_mu_);
    for (Connection& conn : conns_)
      if (conn.stream) conn.stream->shutdown_both();
    for (Connection& conn : conns_)
      if (conn.thread.joinable()) conn.thread.join();
    conns_.clear();
  }

  if (journal_) {
    // Final compaction bounds the on-disk size to the live entries and
    // leaves a deterministic (key-sorted) file; close() detaches before
    // the pool (and its contexts) go away.
    journal_->compact();
    journal_->close();
  }
}

std::size_t SweepServer::save_cache() {
  if (!journal_) return 0;
  // No execution lock needed: the journal header carries only the
  // immutable context characterization (never the swappable delay-model
  // backend), and each record's selector was captured at bind time — so
  // compaction can run concurrently with sweeps on any pool member.
  journal_->compact();
  return cache_->size();
}

SweepServerStats SweepServer::stats() const {
  SweepServerStats s;
  // Independent counters: relaxed is sufficient — each tracks its own
  // event stream and nothing downstream infers cross-counter ordering
  // from them (the composite sweeps/points/cache triple below is the
  // part with an invariant, published under stats_mu_).
  s.connections = n_connections_.load(std::memory_order_relaxed);
  s.rejected = n_rejected_.load(std::memory_order_relaxed);
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  util::MutexLock lock(stats_mu_);
  s.sweeps = n_sweeps_;
  s.points = n_points_;
  // Sampled under the same lock that publishes sweeps/points, so the
  // triple is one instant: a reply never pairs sweep k's count with
  // sweep k-1's points, and hits+misses only ever run AHEAD of points
  // (in-flight points touch the cache before they are counted).
  s.cache = cache_->stats();
  return s;
}

void SweepServer::accept_loop() {
  for (;;) {
    Socket peer = listener_.accept();
    if (!peer.valid()) return;  // listener closed (stop())
    if (stopping_.load()) return;
    util::MutexLock lock(conns_mu_);
    reap_finished_locked();
    if (opt_.max_connections > 0 && conns_.size() >= opt_.max_connections) {
      // Over capacity: one error event line, then close. The write is a
      // single small line into a fresh socket's send buffer — it cannot
      // block the acceptor on a slow peer.
      static const obs::Registry::Counter rejected =
          obs::Registry::global().counter("net.rejected");
      rejected.add();
      n_rejected_.fetch_add(1, std::memory_order_relaxed);
      count_error();
      try {
        TcpStream turn_away(std::move(peer));
        turn_away.write_line(
            make_error("server at connection capacity (" +
                       std::to_string(opt_.max_connections) + ")")
                .dump(0));
      } catch (const std::exception&) {
        // The peer hung up before reading the rejection; nothing owed.
      }
      continue;
    }
    static const obs::Registry::Counter connections =
        obs::Registry::global().counter("net.connections");
    connections.add();
    n_connections_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace_back();
    Connection& conn = conns_.back();
    conn.stream = std::make_unique<TcpStream>(std::move(peer));
    // One thread per accepted connection: connection plumbing only; the
    // per-sweep compute below it still goes through the pool/fan-out.
    // pops-lint: allow(raw-thread) — I/O thread, not product work
    conn.thread = std::thread([this, &conn] { serve_connection(conn); });
  }
}

void SweepServer::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    // acquire pairs with the thread's release store: everything the
    // connection thread did happens-before the join + erase.
    if (it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SweepServer::serve_connection(Connection& conn) {
  static const obs::Registry::Counter requests =
      obs::Registry::global().counter("net.requests");
  static const obs::Registry::Counter bytes_in =
      obs::Registry::global().counter("net.bytes_in");
  TcpStream& stream = *conn.stream;
  // Responses leave through one aggregating writer: a sweep streaming
  // thousands of point records coalesces them into few send() calls
  // instead of one syscall per line. Flushed after every request (the
  // client is waiting) and by the destructor on error paths.
  BufferedWriter out(stream);
  std::string line;
  try {
    while (!stopping_.load() &&
           stream.read_line(line, opt_.max_request_bytes)) {
      bytes_in.add(static_cast<double>(line.size() + 1));  // +1: framing '\n'
      if (line.empty()) continue;  // tolerate blank keep-alive lines
      requests.add();
      n_requests_.fetch_add(1, std::memory_order_relaxed);
      Request req;
      try {
        req = parse_request(Json::parse(line));
      } catch (const std::exception& e) {
        count_error();
        write_record(out, make_error(e.what()).dump(0));
        out.flush();
        continue;
      }
      {
        obs::Span span("net/", req.op);
        // The caller's correlation id (fabric dispatch): merged fleet
        // traces join this span to the coordinator side's by the id.
        if (req.trace_id != 0)
          span.arg("trace_id", static_cast<double>(req.trace_id));
        handle_request(out, req);
      }
      out.flush();
      if (req.op == "shutdown") break;
    }
  } catch (const std::exception&) {
    // Peer vanished mid-request (broken pipe / oversized line): the
    // connection is over; the sweep state it caused remains valid.
  }
  conn.done.store(true, std::memory_order_release);
}

void SweepServer::write_record(BufferedWriter& out, const std::string& line) {
  static const obs::Registry::Counter bytes_out =
      obs::Registry::global().counter("net.bytes_out");
  bytes_out.add(static_cast<double>(line.size() + 1));  // +1: framing '\n'
  out.write_line(line);
}

void SweepServer::count_error() {
  static const obs::Registry::Counter errors =
      obs::Registry::global().counter("net.errors");
  errors.add();
  n_errors_.fetch_add(1, std::memory_order_relaxed);
}

void SweepServer::handle_request(BufferedWriter& out, const Request& req) {
  if (req.op == "ping") {
    write_record(out, make_event("pong").dump(0));
    return;
  }
  if (req.op == "metrics") {
    // The process-wide registry, not a per-server window: a daemon is the
    // process, and the snapshot's counters (sta.*, cache.*, net.*) are
    // exactly what its sweeps produced.
    Json j = make_event("metrics");
    const Json snapshot = obs::Registry::global().snapshot_json();
    for (const auto& [key, value] : snapshot.members()) j[key] = value;
    write_record(out, j.dump(0));
    return;
  }
  if (req.op == "stats") {
    Json j = make_event("stats");
    // One coherent snapshot: stats() samples the cache counters under
    // the same lock that publishes sweeps/points, so a reply taken
    // mid-sweep is internally consistent.
    const SweepServerStats s = stats();
    Json cache = Json::object();
    cache["hits"] = s.cache.hits;
    cache["misses"] = s.cache.misses;
    cache["entries"] = s.cache.entries;
    cache["evictions"] = s.cache.evictions;
    cache["capacity"] = s.cache.capacity;
    j["cache"] = std::move(cache);
    j["connections"] = s.connections;
    j["rejected"] = s.rejected;
    j["requests"] = s.requests;
    j["sweeps"] = s.sweeps;
    j["points"] = s.points;
    j["errors"] = s.errors;
    j["cache_file"] = opt_.cache_file;
    write_record(out, j.dump(0));
    return;
  }
  if (req.op == "trace") {
    // Cross-wire tracing: the coordinator starts the worker recorder at
    // fleet-sweep begin, fetches the chrome doc at the end, and rebases
    // its timestamps by the origin difference (both processes read the
    // same monotonic clock).
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    Json j = make_event("trace");
    if (req.trace_start) {
      recorder.start();
      j["started"] = true;
      j["origin_ns"] = util::hex_u64(recorder.origin_ns());
    } else {
      j["origin_ns"] = util::hex_u64(recorder.origin_ns());
      j["trace"] = recorder.chrome_json();
    }
    write_record(out, j.dump(0));
    return;
  }
  if (req.op == "save") {
    try {
      const std::size_t entries = save_cache();
      Json j = make_event("saved");
      j["entries"] = entries;
      j["path"] = opt_.cache_file;
      write_record(out, j.dump(0));
    } catch (const std::exception& e) {
      count_error();
      write_record(out, make_error(e.what()).dump(0));
    }
    return;
  }
  if (req.op == "shutdown") {
    write_record(out, make_event("bye").dump(0));
    // The bye must reach the kernel before wait()ers wake: stop() closes
    // this connection and would race a still-buffered reply away.
    out.flush();
    request_shutdown();
    return;
  }
  run_sweep(out, req);
}

void SweepServer::run_sweep(BufferedWriter& out, const Request& req) {
  service::SweepSpec spec = req.spec;
  if (spec.n_threads == 0) spec.n_threads = opt_.n_threads;

  // Validate before touching the pool so a garbage delay-model selector
  // cannot mint a pool member that could never run a sweep.
  try {
    spec.ensure_valid();
  } catch (const std::exception& e) {
    count_error();
    write_record(out, make_error(e.what()).dump(0));
    return;
  }
  fabric::ContextPool::Entry& entry =
      pool_.get(spec.base.delay_model_selector());

  const auto load = [&entry, &req](const std::string& label) {
    const auto it = req.bench.find(label);
    if (it == req.bench.end())
      return netlist::make_benchmark(entry.ctx.lib(), label);
    netlist::BenchReadOptions opt;
    opt.po_load_ff = req.po_load_ff;
    opt.name = label;
    return netlist::read_bench_string(it->second, entry.ctx.lib(), opt);
  };

  std::size_t streamed = 0;
  std::size_t unmet = 0;
  // Streaming sink: runs on this thread (SweepService invokes it from the
  // scheduling thread, in job order), so socket writes need no locking.
  // The record bytes are exactly service::to_json(SweepPoint, ser).dump(0)
  // — the contract that makes daemon output diffable against in-process
  // runs and pops_sweep --jsonl (exact bytes under record_runtimes=false).
  const service::SerializeOptions ser{.measured = req.record_runtimes};
  const service::SweepService::RecordSink sink =
      [&](const service::SweepPoint& point) {
        write_record(out, service::to_json(point, ser).dump(0));
        ++streamed;
        if (!point.report.met) ++unmet;
      };

  service::SweepReport report;
  try {
    // One sweep at a time per pool member: the member's backend is
    // pinned to its selector, but run_many's cache stores and the
    // context's Flimit warm-up are designed for one driving sweep.
    // Different-selector sweeps hold different members' locks and
    // proceed concurrently.
    util::MutexLock lock(entry.exec_mu);
    report = entry.sweeps->run(spec, load, sink);
  } catch (const std::exception& e) {
    count_error();
    {
      util::MutexLock lock(stats_mu_);
      n_points_ += streamed;
    }
    write_record(out, make_error(e.what()).dump(0));
    return;
  }
  {
    // Publish the sweep and its points together (see stats()).
    util::MutexLock lock(stats_mu_);
    n_sweeps_ += 1;
    n_points_ += streamed;
  }

  Json done = make_event("done");
  done["points"] = report.points.size();
  done["unmet"] = unmet;
  Json cache = Json::object();
  cache["hits"] = report.cache_hits;
  cache["misses"] = report.cache_misses;
  cache["entries"] = report.cache_entries;
  cache["evictions"] = cache_->stats().evictions;
  done["cache"] = std::move(cache);
  if (req.record_runtimes) done["wall_ms"] = report.wall_ms;
  write_record(out, done.dump(0));

  if (journal_ && opt_.checkpoint_every > 0) {
    bool offer = false;
    {
      util::MutexLock lock(checkpoint_mu_);
      if (++sweeps_since_checkpoint_ >= opt_.checkpoint_every) {
        sweeps_since_checkpoint_ = 0;
        offer = true;
      }
    }
    if (offer) {
      try {
        // Unlike the old whole-archive rewrite, this is a no-op unless
        // garbage crossed the policy threshold — every store is already
        // durable in the journal.
        journal_->compact_if_needed();
      } catch (const std::exception& e) {
        // Compaction failure must not kill the connection: results were
        // already streamed and the journal is still replayable; the next
        // checkpoint retries.
        count_error();
        write_record(out, make_error(std::string("checkpoint failed: ") +
                                     e.what())
                              .dump(0));
      }
    }
  }
}

}  // namespace pops::net
