#include "pops/net/server.hpp"

#include <chrono>
#include <exception>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "pops/netlist/bench_io.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/service/serialize.hpp"

namespace pops::net {

using util::Json;

SweepServer::SweepServer(SweepServerOptions opt)
    : opt_(std::move(opt)),
      cache_(std::make_shared<service::ResultCache>(opt_.cache_capacity)),
      // Install the bounded cache before SweepService binds to the
      // context (the service reuses an installed cache instead of
      // creating its own unbounded one) — hence the comma expression.
      sweeps_((ctx_.set_result_cache(cache_), ctx_)) {}

SweepServer::~SweepServer() {
  try {
    stop();
  } catch (...) {
    // Destructors must not throw; a failed final checkpoint loses the
    // delta since the last successful one, nothing else.
  }
}

service::CacheLoadReport SweepServer::start() {
  if (listener_.valid()) throw std::logic_error("SweepServer already started");

  service::CacheLoadReport loaded;
  if (!opt_.cache_file.empty()) {
    // A missing file is a cold start; an existing-but-unreadable or
    // foreign file is an error (load_result_cache_file's open-failure /
    // stale-context diagnostics propagate) — starting cold would
    // rename-replace the persisted cache at the next checkpoint.
    if (std::filesystem::exists(opt_.cache_file))
      loaded = service::load_result_cache_file(*cache_, ctx_, opt_.cache_file);
  }

  listener_ = TcpListener::bind(opt_.host, opt_.port);
  port_ = listener_.port();
  stopping_.store(false);
  acceptor_ = std::thread([this] { accept_loop(); });
  return loaded;
}

void SweepServer::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

bool SweepServer::wait_for_ms(long ms) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                               [this] { return shutdown_requested_; });
}

void SweepServer::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void SweepServer::stop() {
  if (stopping_.exchange(true)) return;
  request_shutdown();  // release wait()ers even when stop() came first

  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (Connection& conn : conns_)
      if (conn.stream) conn.stream->shutdown_both();
  }
  // Join outside the registry lock: a finishing connection thread takes
  // conns_mu_ is not needed — threads never erase themselves, so the list
  // is stable here and joining cannot deadlock.
  for (Connection& conn : conns_)
    if (conn.thread.joinable()) conn.thread.join();
  conns_.clear();

  if (!opt_.cache_file.empty()) save_cache();
}

std::size_t SweepServer::save_cache() {
  if (opt_.cache_file.empty()) return 0;
  // exec_mu_, not a dedicated save mutex: archiving reads the context's
  // installed delay-model backend (the file header's informational
  // selector), and a concurrent sweep's Optimizer construction may swap
  // that backend — set_delay_model is documented unsafe against
  // unsynchronized dm() readers. Serializing saves against sweep
  // execution removes the race and orders concurrent save requests.
  std::lock_guard<std::mutex> lock(exec_mu_);
  service::save_result_cache_file(*cache_, ctx_, opt_.cache_file);
  return cache_->size();
}

SweepServerStats SweepServer::stats() const {
  SweepServerStats s;
  s.connections = n_connections_.load();
  s.requests = n_requests_.load();
  s.sweeps = n_sweeps_.load();
  s.points = n_points_.load();
  s.errors = n_errors_.load();
  return s;
}

void SweepServer::accept_loop() {
  for (;;) {
    Socket peer = listener_.accept();
    if (!peer.valid()) return;  // listener closed (stop())
    if (stopping_.load()) return;
    n_connections_.fetch_add(1);
    std::lock_guard<std::mutex> lock(conns_mu_);
    reap_finished_locked();
    conns_.emplace_back();
    Connection& conn = conns_.back();
    conn.stream = std::make_unique<TcpStream>(std::move(peer));
    conn.thread = std::thread([this, &conn] { serve_connection(conn); });
  }
}

void SweepServer::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->done.load()) {
      if (it->thread.joinable()) it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SweepServer::serve_connection(Connection& conn) {
  TcpStream& stream = *conn.stream;
  std::string line;
  try {
    while (!stopping_.load() &&
           stream.read_line(line, opt_.max_request_bytes)) {
      if (line.empty()) continue;  // tolerate blank keep-alive lines
      n_requests_.fetch_add(1);
      Request req;
      try {
        req = parse_request(Json::parse(line));
      } catch (const std::exception& e) {
        n_errors_.fetch_add(1);
        stream.write_line(make_error(e.what()).dump(0));
        continue;
      }
      handle_request(stream, req);
      if (req.op == "shutdown") break;
    }
  } catch (const std::exception&) {
    // Peer vanished mid-request (broken pipe / oversized line): the
    // connection is over; the sweep state it caused remains valid.
  }
  conn.done.store(true);
}

void SweepServer::handle_request(TcpStream& stream, const Request& req) {
  if (req.op == "ping") {
    stream.write_line(make_event("pong").dump(0));
    return;
  }
  if (req.op == "stats") {
    Json j = make_event("stats");
    const service::ResultCache::Stats cs = cache_->stats();
    Json cache = Json::object();
    cache["hits"] = cs.hits;
    cache["misses"] = cs.misses;
    cache["entries"] = cs.entries;
    cache["evictions"] = cs.evictions;
    cache["capacity"] = cs.capacity;
    j["cache"] = std::move(cache);
    const SweepServerStats s = stats();
    j["connections"] = s.connections;
    j["requests"] = s.requests;
    j["sweeps"] = s.sweeps;
    j["points"] = s.points;
    j["errors"] = s.errors;
    j["cache_file"] = opt_.cache_file;
    stream.write_line(j.dump(0));
    return;
  }
  if (req.op == "save") {
    try {
      const std::size_t entries = save_cache();
      Json j = make_event("saved");
      j["entries"] = entries;
      j["path"] = opt_.cache_file;
      stream.write_line(j.dump(0));
    } catch (const std::exception& e) {
      n_errors_.fetch_add(1);
      stream.write_line(make_error(e.what()).dump(0));
    }
    return;
  }
  if (req.op == "shutdown") {
    stream.write_line(make_event("bye").dump(0));
    request_shutdown();
    return;
  }
  run_sweep(stream, req);
}

void SweepServer::run_sweep(TcpStream& stream, const Request& req) {
  service::SweepSpec spec = req.spec;
  if (spec.n_threads == 0) spec.n_threads = opt_.n_threads;

  const auto load = [this, &req](const std::string& label) {
    const auto it = req.bench.find(label);
    if (it == req.bench.end())
      return netlist::make_benchmark(ctx_.lib(), label);
    netlist::BenchReadOptions opt;
    opt.po_load_ff = req.po_load_ff;
    opt.name = label;
    return netlist::read_bench_string(it->second, ctx_.lib(), opt);
  };

  std::size_t streamed = 0;
  std::size_t unmet = 0;
  // Streaming sink: runs on this thread (SweepService invokes it from the
  // scheduling thread, in job order), so socket writes need no locking.
  // The record bytes are exactly service::to_json(SweepPoint).dump(0) —
  // the contract that makes daemon output diffable against in-process
  // runs and pops_sweep --jsonl.
  const service::SweepService::RecordSink sink =
      [&](const service::SweepPoint& point) {
        stream.write_line(service::to_json(point).dump(0));
        ++streamed;
        if (!point.report.met) ++unmet;
      };

  service::SweepReport report;
  try {
    // One sweep at a time on the shared context: Optimizer construction
    // swaps the context's delay-model backend, which must not happen
    // while another sweep is in flight (see the class comment).
    std::lock_guard<std::mutex> lock(exec_mu_);
    report = sweeps_.run(spec, load, sink);
  } catch (const std::exception& e) {
    n_errors_.fetch_add(1);
    n_points_.fetch_add(streamed);
    stream.write_line(make_error(e.what()).dump(0));
    return;
  }
  n_sweeps_.fetch_add(1);
  n_points_.fetch_add(streamed);

  Json done = make_event("done");
  done["points"] = report.points.size();
  done["unmet"] = unmet;
  Json cache = Json::object();
  cache["hits"] = report.cache_hits;
  cache["misses"] = report.cache_misses;
  cache["entries"] = report.cache_entries;
  cache["evictions"] = cache_->stats().evictions;
  done["cache"] = std::move(cache);
  done["wall_ms"] = report.wall_ms;
  stream.write_line(done.dump(0));

  if (!opt_.cache_file.empty() && opt_.checkpoint_every > 0) {
    bool flush = false;
    {
      std::lock_guard<std::mutex> lock(exec_mu_);
      if (++sweeps_since_checkpoint_ >= opt_.checkpoint_every) {
        sweeps_since_checkpoint_ = 0;
        flush = true;
      }
    }
    if (flush) {
      try {
        save_cache();
      } catch (const std::exception& e) {
        // Checkpoint failure must not kill the connection: results were
        // already streamed; the next checkpoint retries.
        n_errors_.fetch_add(1);
        stream.write_line(make_error(std::string("checkpoint failed: ") +
                                     e.what())
                              .dump(0));
      }
    }
  }
}

}  // namespace pops::net
