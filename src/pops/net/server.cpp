#include "pops/net/server.hpp"

#include <chrono>
#include <exception>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "pops/netlist/bench_io.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/obs/clock.hpp"
#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"
#include "pops/service/serialize.hpp"

namespace pops::net {

using util::Json;

SweepServer::SweepServer(SweepServerOptions opt)
    : opt_(std::move(opt)),
      cache_(std::make_shared<service::ResultCache>(opt_.cache_capacity)),
      // Install the bounded cache before SweepService binds to the
      // context (the service reuses an installed cache instead of
      // creating its own unbounded one) — hence the comma expression.
      sweeps_((ctx_.set_result_cache(cache_), ctx_)) {}

SweepServer::~SweepServer() {
  try {
    stop();
  } catch (...) {
    // Destructors must not throw; a failed final checkpoint loses the
    // delta since the last successful one, nothing else.
  }
}

service::CacheLoadReport SweepServer::start() {
  if (listener_.valid()) throw std::logic_error("SweepServer already started");

  service::CacheLoadReport loaded;
  if (!opt_.cache_file.empty()) {
    // A missing file is a cold start; an existing-but-unreadable or
    // foreign file is an error (load_result_cache_file's open-failure /
    // stale-context diagnostics propagate) — starting cold would
    // rename-replace the persisted cache at the next checkpoint.
    if (std::filesystem::exists(opt_.cache_file))
      loaded = service::load_result_cache_file(*cache_, ctx_, opt_.cache_file);
  }

  listener_ = TcpListener::bind(opt_.host, opt_.port);
  port_ = listener_.port();
  stopping_.store(false);
  // The accept loop is I/O plumbing, not deterministic product work.
  // pops-lint: allow(raw-thread) — never feeds results it could reorder
  acceptor_ = std::thread([this] { accept_loop(); });
  return loaded;
}

void SweepServer::wait() {
  util::MutexLock lock(shutdown_mu_);
  while (!shutdown_requested_) shutdown_cv_.wait(shutdown_mu_);
}

bool SweepServer::wait_for_ms(long ms) {
  const auto deadline = obs::steady_now() + std::chrono::milliseconds(ms);
  util::MutexLock lock(shutdown_mu_);
  while (!shutdown_requested_) {
    const auto now = obs::steady_now();
    if (now >= deadline) return false;
    shutdown_cv_.wait_for(shutdown_mu_, deadline - now);
  }
  return true;
}

void SweepServer::request_shutdown() {
  {
    util::MutexLock lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void SweepServer::stop() {
  if (stopping_.exchange(true)) return;
  request_shutdown();  // release wait()ers even when stop() came first

  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();

  {
    // Joining under conns_mu_ is deadlock-free: connection threads never
    // take it (they only flip their own atomic `done` flag), and the
    // acceptor — the other taker — is already joined above.
    util::MutexLock lock(conns_mu_);
    for (Connection& conn : conns_)
      if (conn.stream) conn.stream->shutdown_both();
    for (Connection& conn : conns_)
      if (conn.thread.joinable()) conn.thread.join();
    conns_.clear();
  }

  if (!opt_.cache_file.empty()) save_cache();
}

std::size_t SweepServer::save_cache() {
  if (opt_.cache_file.empty()) return 0;
  // exec_mu_, not a dedicated save mutex: archiving reads the context's
  // installed delay-model backend (the file header's informational
  // selector), and a concurrent sweep's Optimizer construction may swap
  // that backend — set_delay_model is documented unsafe against
  // unsynchronized dm() readers. Serializing saves against sweep
  // execution removes the race and orders concurrent save requests.
  util::MutexLock lock(exec_mu_);
  return save_cache_locked();
}

std::size_t SweepServer::save_cache_locked() {
  if (opt_.cache_file.empty()) return 0;
  service::save_result_cache_file(*cache_, ctx_, opt_.cache_file);
  return cache_->size();
}

SweepServerStats SweepServer::stats() const {
  SweepServerStats s;
  // Independent counters: relaxed is sufficient — each tracks its own
  // event stream and nothing downstream infers cross-counter ordering
  // from them (the composite sweeps/points/cache triple below is the
  // part with an invariant, published under stats_mu_).
  s.connections = n_connections_.load(std::memory_order_relaxed);
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  util::MutexLock lock(stats_mu_);
  s.sweeps = n_sweeps_;
  s.points = n_points_;
  // Sampled under the same lock that publishes sweeps/points, so the
  // triple is one instant: a reply never pairs sweep k's count with
  // sweep k-1's points, and hits+misses only ever run AHEAD of points
  // (in-flight points touch the cache before they are counted).
  s.cache = cache_->stats();
  return s;
}

void SweepServer::accept_loop() {
  for (;;) {
    Socket peer = listener_.accept();
    if (!peer.valid()) return;  // listener closed (stop())
    if (stopping_.load()) return;
    static const obs::Registry::Counter connections =
        obs::Registry::global().counter("net.connections");
    connections.add();
    n_connections_.fetch_add(1, std::memory_order_relaxed);
    util::MutexLock lock(conns_mu_);
    reap_finished_locked();
    conns_.emplace_back();
    Connection& conn = conns_.back();
    conn.stream = std::make_unique<TcpStream>(std::move(peer));
    // One thread per accepted connection: connection plumbing only; the
    // per-sweep compute below it still goes through the pool/fan-out.
    // pops-lint: allow(raw-thread) — I/O thread, not product work
    conn.thread = std::thread([this, &conn] { serve_connection(conn); });
  }
}

void SweepServer::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    // acquire pairs with the thread's release store: everything the
    // connection thread did happens-before the join + erase.
    if (it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SweepServer::serve_connection(Connection& conn) {
  static const obs::Registry::Counter requests =
      obs::Registry::global().counter("net.requests");
  static const obs::Registry::Counter bytes_in =
      obs::Registry::global().counter("net.bytes_in");
  TcpStream& stream = *conn.stream;
  std::string line;
  try {
    while (!stopping_.load() &&
           stream.read_line(line, opt_.max_request_bytes)) {
      bytes_in.add(static_cast<double>(line.size() + 1));  // +1: framing '\n'
      if (line.empty()) continue;  // tolerate blank keep-alive lines
      requests.add();
      n_requests_.fetch_add(1, std::memory_order_relaxed);
      Request req;
      try {
        req = parse_request(Json::parse(line));
      } catch (const std::exception& e) {
        count_error();
        write_record(stream, make_error(e.what()).dump(0));
        continue;
      }
      obs::Span span("net/", req.op);
      handle_request(stream, req);
      if (req.op == "shutdown") break;
    }
  } catch (const std::exception&) {
    // Peer vanished mid-request (broken pipe / oversized line): the
    // connection is over; the sweep state it caused remains valid.
  }
  conn.done.store(true, std::memory_order_release);
}

void SweepServer::write_record(TcpStream& stream, const std::string& line) {
  static const obs::Registry::Counter bytes_out =
      obs::Registry::global().counter("net.bytes_out");
  bytes_out.add(static_cast<double>(line.size() + 1));  // +1: framing '\n'
  stream.write_line(line);
}

void SweepServer::count_error() {
  static const obs::Registry::Counter errors =
      obs::Registry::global().counter("net.errors");
  errors.add();
  n_errors_.fetch_add(1, std::memory_order_relaxed);
}

void SweepServer::handle_request(TcpStream& stream, const Request& req) {
  if (req.op == "ping") {
    write_record(stream, make_event("pong").dump(0));
    return;
  }
  if (req.op == "metrics") {
    // The process-wide registry, not a per-server window: a daemon is the
    // process, and the snapshot's counters (sta.*, cache.*, net.*) are
    // exactly what its sweeps produced.
    Json j = make_event("metrics");
    const Json snapshot = obs::Registry::global().snapshot_json();
    for (const auto& [key, value] : snapshot.members()) j[key] = value;
    write_record(stream, j.dump(0));
    return;
  }
  if (req.op == "stats") {
    Json j = make_event("stats");
    // One coherent snapshot: stats() samples the cache counters under
    // the same lock that publishes sweeps/points, so a reply taken
    // mid-sweep is internally consistent.
    const SweepServerStats s = stats();
    Json cache = Json::object();
    cache["hits"] = s.cache.hits;
    cache["misses"] = s.cache.misses;
    cache["entries"] = s.cache.entries;
    cache["evictions"] = s.cache.evictions;
    cache["capacity"] = s.cache.capacity;
    j["cache"] = std::move(cache);
    j["connections"] = s.connections;
    j["requests"] = s.requests;
    j["sweeps"] = s.sweeps;
    j["points"] = s.points;
    j["errors"] = s.errors;
    j["cache_file"] = opt_.cache_file;
    write_record(stream, j.dump(0));
    return;
  }
  if (req.op == "save") {
    try {
      const std::size_t entries = save_cache();
      Json j = make_event("saved");
      j["entries"] = entries;
      j["path"] = opt_.cache_file;
      write_record(stream, j.dump(0));
    } catch (const std::exception& e) {
      count_error();
      write_record(stream, make_error(e.what()).dump(0));
    }
    return;
  }
  if (req.op == "shutdown") {
    write_record(stream, make_event("bye").dump(0));
    request_shutdown();
    return;
  }
  run_sweep(stream, req);
}

void SweepServer::run_sweep(TcpStream& stream, const Request& req) {
  service::SweepSpec spec = req.spec;
  if (spec.n_threads == 0) spec.n_threads = opt_.n_threads;

  const auto load = [this, &req](const std::string& label) {
    const auto it = req.bench.find(label);
    if (it == req.bench.end())
      return netlist::make_benchmark(ctx_.lib(), label);
    netlist::BenchReadOptions opt;
    opt.po_load_ff = req.po_load_ff;
    opt.name = label;
    return netlist::read_bench_string(it->second, ctx_.lib(), opt);
  };

  std::size_t streamed = 0;
  std::size_t unmet = 0;
  // Streaming sink: runs on this thread (SweepService invokes it from the
  // scheduling thread, in job order), so socket writes need no locking.
  // The record bytes are exactly service::to_json(SweepPoint, ser).dump(0)
  // — the contract that makes daemon output diffable against in-process
  // runs and pops_sweep --jsonl (exact bytes under record_runtimes=false).
  const service::SerializeOptions ser{.measured = req.record_runtimes};
  const service::SweepService::RecordSink sink =
      [&](const service::SweepPoint& point) {
        write_record(stream, service::to_json(point, ser).dump(0));
        ++streamed;
        if (!point.report.met) ++unmet;
      };

  service::SweepReport report;
  try {
    // One sweep at a time on the shared context: Optimizer construction
    // swaps the context's delay-model backend, which must not happen
    // while another sweep is in flight (see the class comment).
    util::MutexLock lock(exec_mu_);
    report = run_sweep_locked(spec, load, sink);
  } catch (const std::exception& e) {
    count_error();
    {
      util::MutexLock lock(stats_mu_);
      n_points_ += streamed;
    }
    write_record(stream, make_error(e.what()).dump(0));
    return;
  }
  {
    // Publish the sweep and its points together (see stats()).
    util::MutexLock lock(stats_mu_);
    n_sweeps_ += 1;
    n_points_ += streamed;
  }

  Json done = make_event("done");
  done["points"] = report.points.size();
  done["unmet"] = unmet;
  Json cache = Json::object();
  cache["hits"] = report.cache_hits;
  cache["misses"] = report.cache_misses;
  cache["entries"] = report.cache_entries;
  cache["evictions"] = cache_->stats().evictions;
  done["cache"] = std::move(cache);
  if (req.record_runtimes) done["wall_ms"] = report.wall_ms;
  write_record(stream, done.dump(0));

  if (!opt_.cache_file.empty() && opt_.checkpoint_every > 0) {
    bool flush = false;
    {
      util::MutexLock lock(exec_mu_);
      if (++sweeps_since_checkpoint_ >= opt_.checkpoint_every) {
        sweeps_since_checkpoint_ = 0;
        flush = true;
      }
    }
    if (flush) {
      try {
        save_cache();
      } catch (const std::exception& e) {
        // Checkpoint failure must not kill the connection: results were
        // already streamed; the next checkpoint retries.
        count_error();
        write_record(stream, make_error(std::string("checkpoint failed: ") +
                                        e.what())
                                 .dump(0));
      }
    }
  }
}

service::SweepReport SweepServer::run_sweep_locked(
    const service::SweepSpec& spec,
    const service::SweepService::CircuitLoader& load,
    const service::SweepService::RecordSink& sink) {
  return sweeps_.run(spec, load, sink);
}

}  // namespace pops::net
