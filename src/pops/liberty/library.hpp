#pragma once
// The POPS standard-cell library for a given technology node.
//
// The library owns the Technology and the calibrated Cell set, and supplies
// the two quantities every optimisation metric is written in terms of:
//   CREF  — the minimum available drive, expressed as the input capacitance
//           of the minimum-width inverter (paper §3.1);
//   the symmetry factors S_HL/S_LH of eq. (3), which fold the technology's
//   R ratio together with each cell's k and logical weight.

#include <vector>

#include "pops/liberty/cell.hpp"
#include "pops/process/technology.hpp"

namespace pops::liberty {

class Library {
 public:
  /// Build the default calibrated library for `tech`.
  explicit Library(process::Technology tech);

  const process::Technology& tech() const noexcept { return tech_; }

  /// Cell lookup by kind; always succeeds for kinds in all_cell_kinds().
  const Cell& cell(CellKind kind) const;

  /// Cell lookup by canonical name; throws std::invalid_argument if unknown.
  const Cell& cell(const std::string& name) const;

  /// All cells, in all_cell_kinds() order.
  const std::vector<Cell>& cells() const noexcept { return cells_; }

  /// Minimum available drive: input capacitance (fF) of a minimum-width
  /// inverter. The paper normalises path sizes as ΣCIN/CREF (Fig. 1).
  double cref_ff() const noexcept { return cref_ff_; }

  /// Minimum drive (NMOS width, µm) — the same for all cells.
  double wmin_um() const noexcept { return tech_.wmin_um; }
  /// Maximum realistic drive (µm).
  double wmax_um() const noexcept { return tech_.wmax_um; }

  /// Symmetry factor of the falling output edge, S_HL = (1+k) * DW_HL
  /// (eq. 3). Dimensionless multiplier of tau * CL/CIN.
  double s_hl(const Cell& c) const noexcept {
    return (1.0 + c.k_ratio) * c.dw_hl;
  }

  /// Symmetry factor of the rising output edge,
  /// S_LH = R * (1+k)/k * DW_LH (eq. 3).
  double s_lh(const Cell& c) const noexcept {
    return tech_.r_ratio * (1.0 + c.k_ratio) / c.k_ratio * c.dw_lh;
  }

 private:
  process::Technology tech_;
  std::vector<Cell> cells_;
  double cref_ff_;
};

}  // namespace pops::liberty
