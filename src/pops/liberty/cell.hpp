#pragma once
// Standard-cell descriptions for the POPS library.
//
// A cell is characterised exactly by the quantities the paper's delay model
// (eq. 1-3, from Maurine et al., TCAD 2002) needs:
//   * DW_HL / DW_LH — the "logical weights": ratio of the current available
//     in an inverter to that of the serial transistor array of this gate,
//     for the falling / rising output edge;
//   * k — the P/N configuration (width) ratio of the cell;
//   * capacitance coefficients mapping the drive (NMOS width Wn) to the
//     input capacitance and output parasitic capacitance.
//
// A gate's *size* throughout the code base is its drive `wn` (µm of NMOS
// width); the input capacitance is CIN = (1+k) * wn * Cgate.

#include <cstddef>
#include <span>
#include <string>

#include "pops/process/technology.hpp"

namespace pops::liberty {

/// The cell kinds the library provides. All are static CMOS.
enum class CellKind {
  Inv,
  Buf,    ///< non-inverting; modelled as two cascaded inverter stages
  Nand2,
  Nand3,
  Nand4,
  Nor2,
  Nor3,
  Nor4,
  Aoi21,  ///< out = !(a&b | c)
  Oai21,  ///< out = !((a|b) & c)
  Xor2,   ///< non-inverting two-input XOR (composite, for adders)
  Xnor2,  ///< inverting two-input XNOR (composite)
};

/// Number of distinct kinds (for iteration in characterisation sweeps).
inline constexpr std::size_t kCellKindCount = 12;

/// All kinds in declaration order.
std::span<const CellKind> all_cell_kinds() noexcept;

/// Canonical lowercase cell name ("inv", "nand2", ...).
const char* to_string(CellKind kind) noexcept;

/// Parse a canonical name; throws std::invalid_argument on unknown names.
CellKind cell_kind_from_string(const std::string& name);

/// Static description of one library cell.
struct Cell {
  CellKind kind;
  std::string name;     ///< canonical name
  int fanin;            ///< number of logic inputs
  bool inverting;       ///< true if output = NOT(f(inputs))

  double dw_hl;         ///< logical weight, output falling (NMOS array)
  double dw_lh;         ///< logical weight, output rising (PMOS array)
  double k_ratio;       ///< P/N width ratio of the cell
  double stack_factor;  ///< parasitic multiplier for internal diffusion nodes

  /// Input capacitance (fF) of one input pin at drive `wn` (µm).
  double cin_ff(const process::Technology& t, double wn) const noexcept {
    return (1.0 + k_ratio) * wn * t.cgate_ff_per_um;
  }

  /// Output parasitic (drain) capacitance (fF) at drive `wn` (µm).
  double cpar_ff(const process::Technology& t, double wn) const noexcept {
    return stack_factor * (1.0 + k_ratio) * wn * t.cdiff_ff_per_um;
  }

  /// Drive `wn` (µm) that realises the input capacitance `cin` (fF).
  double wn_for_cin(const process::Technology& t, double cin) const noexcept {
    return cin / ((1.0 + k_ratio) * t.cgate_ff_per_um);
  }

  /// Total transistor width (µm) of the cell at drive `wn` — the paper's
  /// area/power metric is the sum of these over the path (ΣW).
  /// Every input pin contributes a P/N pair of total width (1+k)*wn.
  double total_width_um(double wn) const noexcept {
    return static_cast<double>(fanin) * (1.0 + k_ratio) * wn;
  }

  /// Boolean function of the cell. `inputs.size()` must equal `fanin`.
  /// Throws std::invalid_argument on arity mismatch.
  bool eval(std::span<const bool> inputs) const;
};

}  // namespace pops::liberty
