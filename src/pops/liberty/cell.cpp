#include "pops/liberty/cell.hpp"

#include <array>
#include <stdexcept>

namespace pops::liberty {

namespace {
constexpr std::array<CellKind, kCellKindCount> kAllKinds = {
    CellKind::Inv,   CellKind::Buf,   CellKind::Nand2, CellKind::Nand3,
    CellKind::Nand4, CellKind::Nor2,  CellKind::Nor3,  CellKind::Nor4,
    CellKind::Aoi21, CellKind::Oai21, CellKind::Xor2,  CellKind::Xnor2,
};
}  // namespace

std::span<const CellKind> all_cell_kinds() noexcept { return kAllKinds; }

const char* to_string(CellKind kind) noexcept {
  switch (kind) {
    case CellKind::Inv: return "inv";
    case CellKind::Buf: return "buf";
    case CellKind::Nand2: return "nand2";
    case CellKind::Nand3: return "nand3";
    case CellKind::Nand4: return "nand4";
    case CellKind::Nor2: return "nor2";
    case CellKind::Nor3: return "nor3";
    case CellKind::Nor4: return "nor4";
    case CellKind::Aoi21: return "aoi21";
    case CellKind::Oai21: return "oai21";
    case CellKind::Xor2: return "xor2";
    case CellKind::Xnor2: return "xnor2";
  }
  return "?";
}

CellKind cell_kind_from_string(const std::string& name) {
  for (CellKind k : kAllKinds)
    if (name == to_string(k)) return k;
  throw std::invalid_argument("unknown cell kind: " + name);
}

bool Cell::eval(std::span<const bool> inputs) const {
  if (static_cast<int>(inputs.size()) != fanin)
    throw std::invalid_argument(std::string("Cell::eval arity mismatch for ") +
                                name + ": got " + std::to_string(inputs.size()));
  switch (kind) {
    case CellKind::Inv:
      return !inputs[0];
    case CellKind::Buf:
      return inputs[0];
    case CellKind::Nand2:
    case CellKind::Nand3:
    case CellKind::Nand4: {
      bool conj = true;
      for (bool b : inputs) conj = conj && b;
      return !conj;
    }
    case CellKind::Nor2:
    case CellKind::Nor3:
    case CellKind::Nor4: {
      bool disj = false;
      for (bool b : inputs) disj = disj || b;
      return !disj;
    }
    case CellKind::Aoi21:
      return !((inputs[0] && inputs[1]) || inputs[2]);
    case CellKind::Oai21:
      return !((inputs[0] || inputs[1]) && inputs[2]);
    case CellKind::Xor2:
      return inputs[0] != inputs[1];
    case CellKind::Xnor2:
      return inputs[0] == inputs[1];
  }
  throw std::logic_error("Cell::eval: unreachable");
}

}  // namespace pops::liberty
