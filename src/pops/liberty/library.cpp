#include "pops/liberty/library.hpp"

#include <stdexcept>

namespace pops::liberty {

namespace {

/// Series-stack current derating: the logical weight of an n-transistor
/// serial array. Velocity saturation at 0.25µm makes the penalty milder
/// than the long-channel factor n (Maurine et al., TCAD 2002): an NMOS
/// stack of n devices behaves like ~1 + 0.75(n-1) inverters, a PMOS stack
/// (less velocity-saturated) like ~1 + 0.85(n-1).
double series_n(int n) { return 1.0 + 0.75 * (n - 1); }
double series_p(int n) { return 1.0 + 0.85 * (n - 1); }

Cell make(CellKind kind, int fanin, bool inverting, double dw_hl, double dw_lh,
          double k_ratio, double stack_factor) {
  Cell c;
  c.kind = kind;
  c.name = to_string(kind);
  c.fanin = fanin;
  c.inverting = inverting;
  c.dw_hl = dw_hl;
  c.dw_lh = dw_lh;
  c.k_ratio = k_ratio;
  c.stack_factor = stack_factor;
  return c;
}

std::vector<Cell> default_cells() {
  std::vector<Cell> cells;
  cells.reserve(kCellKindCount);
  // kind                fi inv    DW_HL        DW_LH        k     stack
  cells.push_back(make(CellKind::Inv,   1, true,  1.0,          1.0,          2.0, 1.00));
  // Buf is two cascaded inverters; its single-stage abstraction carries the
  // same weights as Inv but a doubled parasitic for the internal node.
  cells.push_back(make(CellKind::Buf,   1, false, 1.0,          1.0,          2.0, 1.60));
  cells.push_back(make(CellKind::Nand2, 2, true,  series_n(2),  1.0,          1.5, 1.25));
  cells.push_back(make(CellKind::Nand3, 3, true,  series_n(3),  1.0,          1.3, 1.50));
  cells.push_back(make(CellKind::Nand4, 4, true,  series_n(4),  1.0,          1.2, 1.75));
  cells.push_back(make(CellKind::Nor2,  2, true,  1.0,          series_p(2),  2.5, 1.25));
  cells.push_back(make(CellKind::Nor3,  3, true,  1.0,          series_p(3),  3.0, 1.50));
  cells.push_back(make(CellKind::Nor4,  4, true,  1.0,          series_p(4),  3.3, 1.75));
  cells.push_back(make(CellKind::Aoi21, 3, true,  series_n(2),  series_p(2),  1.8, 1.40));
  cells.push_back(make(CellKind::Oai21, 3, true,  series_n(2),  series_p(2),  2.0, 1.40));
  // XOR/XNOR are composite (transmission-gate or 4-NAND realisations);
  // their single-stage weights approximate the worst internal 2-stack.
  cells.push_back(make(CellKind::Xor2,  2, false, series_n(2),  series_p(2),  1.8, 1.80));
  cells.push_back(make(CellKind::Xnor2, 2, true,  series_n(2),  series_p(2),  1.8, 1.80));
  return cells;
}

}  // namespace

Library::Library(process::Technology tech)
    : tech_(std::move(tech)), cells_(default_cells()) {
  tech_.validate();
  cref_ff_ = cell(CellKind::Inv).cin_ff(tech_, tech_.wmin_um);
}

const Cell& Library::cell(CellKind kind) const {
  for (const Cell& c : cells_)
    if (c.kind == kind) return c;
  throw std::logic_error("Library: kind not populated");
}

const Cell& Library::cell(const std::string& name) const {
  return cell(cell_kind_from_string(name));
}

}  // namespace pops::liberty
