#include "pops/fabric/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "pops/service/result_cache.hpp"
#include "pops/util/hash.hpp"

namespace pops::fabric {

std::vector<PointSpec> expand_points(const service::SweepSpec& spec) {
  spec.ensure_valid();
  std::vector<PointSpec> out;
  out.reserve(spec.n_jobs());
  for (const service::BufferPolicy& policy : spec.policies)
    for (const std::string& vt_policy : spec.vt_policies)
      for (const double temperature : spec.temperatures)
        for (const double margin : spec.shield_margins)
          for (const double ratio : spec.tc_ratios)
            for (const std::string& circuit : spec.circuits) {
              PointSpec pt;
              pt.index = out.size();
              pt.circuit = circuit;
              pt.tc_ratio = ratio;
              pt.shield_margin = margin;
              pt.temperature_c = temperature;
              pt.vt_policy = vt_policy;
              pt.policy = policy;
              out.push_back(std::move(pt));
            }
  return out;
}

service::SweepSpec single_point_spec(const service::SweepSpec& base,
                                     const PointSpec& pt) {
  service::SweepSpec spec = base;
  spec.circuits = {pt.circuit};
  spec.tc_ratios = {pt.tc_ratio};
  spec.shield_margins = {pt.shield_margin};
  spec.temperatures = {pt.temperature_c};
  spec.vt_policies = {pt.vt_policy};
  spec.policies = {pt.policy};
  return spec;
}

ShardKeyer::ShardKeyer(api::OptContext& ctx, const service::SweepSpec& spec,
                       const CircuitLoader& load) {
  spec.ensure_valid();
  for (const std::string& name : spec.circuits) {
    if (circuit_hash_.count(name)) continue;
    circuit_hash_[name] = service::ResultCache::hash_netlist(load(name));
  }
  // Mirror SweepService::run's per-(policy, vt-policy, temperature,
  // margin) Optimizer set-up so the hashed (config, pipeline) tuple is
  // the one the worker will key its cache entries by.
  for (const service::BufferPolicy& policy : spec.policies)
    for (const std::string& vt_policy : spec.vt_policies)
      for (const double temperature : spec.temperatures)
        for (const double margin : spec.shield_margins) {
          api::OptimizerConfig cfg = spec.base;
          cfg.enable_shielding = policy.shielding;
          cfg.allow_restructuring = policy.restructuring;
          cfg.shield_margin = margin;
          cfg.temperature_c = temperature;
          if (vt_policy == "multi-vt") cfg.enable_multi_vt = true;
          api::Optimizer optimizer(ctx, cfg);
          if (!spec.pipeline.empty()) {
            std::vector<std::string> passes = spec.pipeline;
            if (vt_policy == "multi-vt" &&
                std::find(passes.begin(), passes.end(), "multi-vt") ==
                    passes.end())
              passes.push_back("multi-vt");
            optimizer.set_pipeline(
                api::PassRegistry::global().make_pipeline(passes));
          }
          config_hash_[{policy.name, vt_policy, temperature, margin}] =
              service::ResultCache::hash_config(ctx, cfg,
                                                optimizer.pipeline());
        }
}

std::uint64_t ShardKeyer::key_hash(const PointSpec& pt) const {
  const auto ch = circuit_hash_.find(pt.circuit);
  const auto cf = config_hash_.find(
      {pt.policy.name, pt.vt_policy, pt.temperature_c, pt.shield_margin});
  if (ch == circuit_hash_.end() || cf == config_hash_.end())
    throw std::logic_error("ShardKeyer: point '" + pt.circuit +
                           "' is not from the keyed spec");
  util::Fnv1a h;
  h.u64(ch->second);
  h.u64(cf->second);
  h.f64(pt.tc_ratio);
  return h.h;
}

HashRing::HashRing(std::vector<std::string> members, std::size_t vnodes)
    : members_(std::move(members)) {
  if (vnodes == 0) throw std::invalid_argument("HashRing: vnodes must be > 0");
  std::unordered_set<std::string> seen;
  for (const std::string& m : members_) {
    if (m.empty())
      throw std::invalid_argument("HashRing: empty member label");
    if (!seen.insert(m).second)
      throw std::invalid_argument("HashRing: duplicate member '" + m + "'");
  }
  ring_.reserve(members_.size() * vnodes);
  for (std::uint32_t i = 0; i < members_.size(); ++i)
    for (std::size_t v = 0; v < vnodes; ++v) {
      util::Fnv1a h;
      h.str(members_[i]);
      h.str("#");
      h.u64(v);
      ring_.emplace_back(h.h, i);
    }
  std::sort(ring_.begin(), ring_.end(),
            [this](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return members_[a.second] < members_[b.second];
            });
}

std::size_t HashRing::owner(std::uint64_t key_hash) const {
  if (ring_.empty()) throw std::logic_error("HashRing: no members");
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key_hash,
      [](const auto& node, std::uint64_t key) { return node.first < key; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return it->second;
}

}  // namespace pops::fabric
