#include "pops/fabric/coordinator.hpp"

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <utility>

#include "pops/netlist/bench_io.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"
#include "pops/util/hash.hpp"
#include "pops/util/thread_annotations.hpp"

namespace pops::fabric {

using util::Json;

FabricCoordinator::FabricCoordinator(std::vector<WorkerAddress> workers,
                                     FabricOptions opt)
    : workers_(std::move(workers)), opt_(opt) {
  if (workers_.empty())
    throw std::invalid_argument("FabricCoordinator: no workers");
  if (opt_.max_attempts < 1)
    throw std::invalid_argument("FabricCoordinator: max_attempts must be >= 1");
  std::unordered_set<std::string> seen;
  for (const WorkerAddress& w : workers_)
    if (!seen.insert(w.label()).second)
      throw std::invalid_argument("FabricCoordinator: duplicate worker " +
                                  w.label());
}

net::ClientConfig FabricCoordinator::client_config() const {
  net::ClientConfig cfg;
  cfg.connect_timeout_ms = opt_.connect_timeout_ms;
  cfg.read_timeout_ms = opt_.read_timeout_ms;
  return cfg;
}

namespace {

/// Shared state of one fleet run. One dispatcher thread per worker
/// drains its queue; the caller's thread is the in-order emitter.
struct RunState {
  util::Mutex mu;
  util::CondVar cv;  ///< signaled on: new work, point done, worker died
  std::size_t total = 0;
  std::vector<std::string> results POPS_GUARDED_BY(mu);  ///< raw, by index
  std::vector<char> done POPS_GUARDED_BY(mu);
  std::size_t n_done POPS_GUARDED_BY(mu) = 0;
  std::size_t unmet POPS_GUARDED_BY(mu) = 0;
  std::vector<std::deque<std::size_t>> queues POPS_GUARDED_BY(mu);
  std::vector<char> dead POPS_GUARDED_BY(mu);
  std::vector<std::size_t> completed_by POPS_GUARDED_BY(mu);  ///< per worker
  std::size_t failovers POPS_GUARDED_BY(mu) = 0;
  bool aborted POPS_GUARDED_BY(mu) = false;
  std::string abort_message POPS_GUARDED_BY(mu);
};

}  // namespace

FabricReport FabricCoordinator::run(
    const service::SweepSpec& spec,
    const std::map<std::string, std::string>& bench, const RecordSink& sink) {
  obs::Span run_span("fabric/run");

  const std::vector<PointSpec> points = expand_points(spec);
  const auto load = [this, &bench](const std::string& label) {
    const auto it = bench.find(label);
    if (it == bench.end()) return netlist::make_benchmark(ctx_.lib(), label);
    netlist::BenchReadOptions opt;
    opt.po_load_ff = opt_.po_load_ff;
    opt.name = label;
    return netlist::read_bench_string(it->second, ctx_.lib(), opt);
  };
  const ShardKeyer keyer(ctx_, spec, load);
  std::vector<std::uint64_t> hashes(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    hashes[i] = keyer.key_hash(points[i]);
  run_span.arg("points", static_cast<double>(points.size()));
  run_span.arg("workers", static_cast<double>(workers_.size()));

  std::vector<std::string> labels;
  labels.reserve(workers_.size());
  for (const WorkerAddress& w : workers_) labels.push_back(w.label());

  RunState st;
  st.total = points.size();
  {
    util::MutexLock lock(st.mu);
    st.results.resize(points.size());
    st.done.assign(points.size(), 0);
    st.queues.resize(workers_.size());
    st.dead.assign(workers_.size(), 0);
    st.completed_by.assign(workers_.size(), 0);
    const HashRing ring(labels, opt_.vnodes);
    for (std::size_t i = 0; i < points.size(); ++i)
      st.queues[ring.owner(hashes[i])].push_back(i);
  }

  // One dispatcher per worker: owns that worker's connection, drains its
  // queue, and keeps waiting after draining — a failover may re-shard
  // orphaned points onto it until the whole grid is done.
  const auto dispatcher = [&](std::size_t w) {
    std::unique_ptr<net::SweepClient> client;
    for (;;) {
      std::size_t idx = 0;
      {
        util::MutexLock lock(st.mu);
        while (st.queues[w].empty() && !st.aborted && st.n_done < st.total)
          st.cv.wait(st.mu);
        if (st.aborted || st.n_done >= st.total) return;
        idx = st.queues[w].front();
        st.queues[w].pop_front();
      }

      const std::uint64_t trace_id = points[idx].index + 1;
      bool ok = false;
      std::size_t point_unmet = 0;
      std::string raw;
      std::string failure;
      for (int attempt = 0; attempt < opt_.max_attempts && !ok; ++attempt) {
        if (attempt > 0 && opt_.retry_backoff_ms > 0)
          std::this_thread::sleep_for(
              std::chrono::milliseconds(opt_.retry_backoff_ms));
        try {
          obs::Span span("fabric/dispatch");
          span.arg("trace_id", static_cast<double>(trace_id));
          span.arg("point", static_cast<double>(idx));
          span.arg("worker", static_cast<double>(w));
          if (!client)
            client = std::make_unique<net::SweepClient>(
                workers_[w].host, workers_[w].port, client_config());
          raw.clear();
          const net::SweepClient::PointSink on_point =
              [&raw](const Json&, const std::string& line) { raw = line; };
          const net::SweepSummary summary = client->submit(
              single_point_spec(spec, points[idx]), on_point, bench,
              opt_.po_load_ff, opt_.record_runtimes, trace_id);
          if (raw.empty())
            throw std::runtime_error("worker " + workers_[w].label() +
                                     " streamed no record for point " +
                                     std::to_string(idx));
          point_unmet = summary.unmet;
          ok = true;
        } catch (const net::ConnectionError& e) {
          // Transport failure: the worker may be down. Reconnect and
          // retry; give up on it after max_attempts.
          failure = e.what();
          client.reset();
        } catch (const std::exception& e) {
          // Server-side failure (bad spec, unknown circuit): every
          // worker would answer the same, so abort the run.
          util::MutexLock lock(st.mu);
          if (!st.aborted) {
            st.aborted = true;
            st.abort_message = "worker " + workers_[w].label() + ": " +
                               std::string(e.what());
          }
          st.cv.notify_all();
          return;
        }
      }

      if (ok) {
        obs::Registry::global().counter("fabric.points").add();
        obs::Registry::global()
            .counter("fabric.shard." + workers_[w].label() + ".points")
            .add();
        util::MutexLock lock(st.mu);
        if (!st.done[idx]) {
          st.done[idx] = 1;
          st.results[idx] = std::move(raw);
          st.unmet += point_unmet;
          ++st.n_done;
          ++st.completed_by[w];
        }
        st.cv.notify_all();
        continue;
      }

      // The worker is dead: re-shard its pending points (including the
      // one in hand) onto the survivors' ring and retire this
      // dispatcher. Routing stays content-pure — survivors keep their
      // own arcs, only the dead worker's points move.
      util::MutexLock lock(st.mu);
      st.dead[w] = 1;
      std::vector<std::size_t> orphans(st.queues[w].begin(),
                                       st.queues[w].end());
      st.queues[w].clear();
      orphans.insert(orphans.begin(), idx);
      std::vector<std::string> survivor_labels;
      std::vector<std::size_t> survivor_ids;
      for (std::size_t i = 0; i < workers_.size(); ++i)
        if (!st.dead[i]) {
          survivor_labels.push_back(labels[i]);
          survivor_ids.push_back(i);
        }
      if (survivor_labels.empty()) {
        if (!st.aborted) {
          st.aborted = true;
          st.abort_message =
              "all workers dead; last transport failure: " + failure;
        }
        st.cv.notify_all();
        return;
      }
      const HashRing survivors(survivor_labels, opt_.vnodes);
      for (const std::size_t orphan : orphans) {
        st.queues[survivor_ids[survivors.owner(hashes[orphan])]].push_back(
            orphan);
        ++st.failovers;
      }
      obs::Registry::global()
          .counter("fabric.failovers")
          .add(static_cast<double>(orphans.size()));
      st.cv.notify_all();
      return;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w)
    // Dispatchers are wire plumbing: results are merged by index, so
    // thread scheduling cannot reorder the output stream.
    // pops-lint: allow(raw-thread) — I/O dispatcher, not product work
    threads.emplace_back([&dispatcher, w] { dispatcher(w); });

  // In-order emitter: stream each merged record the moment its prefix is
  // complete — byte-faithful relay of the worker's line.
  bool aborted = false;
  std::string abort_message;
  for (std::size_t next = 0; next < points.size() && !aborted; ++next) {
    std::string line;
    {
      util::MutexLock lock(st.mu);
      while (!st.done[next] && !st.aborted) st.cv.wait(st.mu);
      if (st.aborted) {
        aborted = true;
        abort_message = st.abort_message;
      } else {
        line = st.results[next];
      }
    }
    if (!aborted && sink) sink(line);
  }
  for (std::thread& t : threads) t.join();
  if (aborted) throw std::runtime_error("fabric sweep failed: " +
                                        abort_message);

  FabricReport report;
  report.points = points.size();
  {
    util::MutexLock lock(st.mu);
    report.unmet = st.unmet;
    report.failovers = st.failovers;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (st.dead[i]) report.dead_workers.push_back(labels[i]);
      if (st.completed_by[i] > 0)
        report.points_per_worker[labels[i]] = st.completed_by[i];
    }
  }
  return report;
}

void FabricCoordinator::start_worker_traces() {
  for (const WorkerAddress& w : workers_) {
    try {
      net::SweepClient client(w.host, w.port, client_config());
      client.trace(/*start=*/true);
    } catch (const net::ConnectionError&) {
      // A dead worker cannot trace; run() will fail it over anyway.
    }
  }
}

util::Json FabricCoordinator::merged_trace() {
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  Json merged = recorder.chrome_json();
  const std::uint64_t origin = recorder.origin_ns();
  Json* events = merged.find("traceEvents");
  if (!events) return merged;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    Json reply;
    try {
      net::SweepClient client(workers_[w].host, workers_[w].port,
                              client_config());
      reply = client.trace();
    } catch (const std::exception&) {
      continue;  // unreachable worker: merge what the fleet can give
    }
    const Json* origin_hex = reply.find("origin_ns");
    const Json* doc = reply.find("trace");
    std::uint64_t worker_origin = 0;
    if (!origin_hex || !origin_hex->is_string() || !doc ||
        !util::parse_hex_u64(origin_hex->as_string(), worker_origin))
      continue;
    // Both processes read the same machine's monotonic clock, so the
    // origin difference rebases worker-relative µs into our timeline.
    const double shift_us =
        static_cast<double>(
            static_cast<std::int64_t>(worker_origin - origin)) /
        1000.0;
    const Json* worker_events = doc->find("traceEvents");
    if (!worker_events || !worker_events->is_array()) continue;
    for (const Json& ev : worker_events->items()) {
      Json moved = ev;
      if (Json* ts = moved.find("ts")) *ts = ts->as_number() + shift_us;
      if (Json* pid = moved.find("pid"))
        *pid = static_cast<double>(1000 + w);
      events->push_back(std::move(moved));
    }
  }
  return merged;
}

util::Json FabricCoordinator::fleet_metrics() {
  Json out = Json::object();
  Json workers = Json::object();
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Json> histograms;

  for (const WorkerAddress& w : workers_) {
    Json reply;
    try {
      net::SweepClient client(w.host, w.port, client_config());
      reply = client.metrics();
    } catch (const std::exception&) {
      continue;
    }
    Json snapshot = Json::object();
    for (const auto& [key, value] : reply.members()) {
      if (key == "event") continue;
      snapshot[key] = value;
      if (key == "counters" || key == "gauges") {
        auto& sums = key == "counters" ? counters : gauges;
        for (const auto& [name, v] : value.members())
          if (v.is_number()) sums[name] += v.as_number();
      } else if (key == "histograms") {
        for (const auto& [name, h] : value.members()) {
          auto it = histograms.find(name);
          if (it == histograms.end()) {
            histograms.emplace(name, h);
            continue;
          }
          // Merge bucket-wise only when the bounds agree; keep the
          // first-seen histogram otherwise (mismatched bounds have no
          // meaningful sum).
          Json& merged = it->second;
          const Json* b1 = merged.find("bounds");
          const Json* b2 = h.find("bounds");
          if (!b1 || !b2 || b1->dump(0) != b2->dump(0)) continue;
          Json* c1 = merged.find("counts");
          const Json* c2 = h.find("counts");
          if (c1 && c2 && c1->size() == c2->size())
            for (std::size_t i = 0; i < c1->size(); ++i)
              c1->at(i) = c1->at(i).as_number() + c2->at(i).as_number();
          if (Json* count = merged.find("count"))
            if (const Json* other = h.find("count"))
              *count = count->as_number() + other->as_number();
          if (Json* sum = merged.find("sum"))
            if (const Json* other = h.find("sum"))
              *sum = sum->as_number() + other->as_number();
        }
      }
    }
    workers[w.label()] = std::move(snapshot);
  }

  Json aggregate = Json::object();
  Json agg_counters = Json::object();
  for (const auto& [name, v] : counters) agg_counters[name] = v;
  aggregate["counters"] = std::move(agg_counters);
  Json agg_gauges = Json::object();
  for (const auto& [name, v] : gauges) agg_gauges[name] = v;
  aggregate["gauges"] = std::move(agg_gauges);
  Json agg_hists = Json::object();
  for (const auto& [name, h] : histograms) agg_hists[name] = h;
  aggregate["histograms"] = std::move(agg_hists);

  out["workers"] = std::move(workers);
  out["aggregate"] = std::move(aggregate);
  // The coordinator's own registry rides along: fabric.points,
  // fabric.failovers, and the per-shard dispatch counters live here.
  out["coordinator"] = obs::Registry::global().snapshot_json();
  return out;
}

}  // namespace pops::fabric
