#include "pops/fabric/context_pool.hpp"

#include <utility>

namespace pops::fabric {

ContextPool::ContextPool(std::shared_ptr<service::ResultCache> cache,
                         OnCreate on_create)
    : cache_(std::move(cache)), on_create_(std::move(on_create)) {}

ContextPool::Entry& ContextPool::get(const std::string& selector) {
  util::MutexLock lock(mu_);
  auto it = entries_.find(selector);
  if (it == entries_.end()) {
    auto entry = std::make_unique<Entry>();
    if (cache_) entry->ctx.set_result_cache(cache_);
    // use_cache mirrors whether the pool has one: with no shared cache
    // the service must strip any hook rather than install a private one.
    entry->sweeps = std::make_unique<service::SweepService>(
        entry->ctx, /*use_cache=*/cache_ != nullptr);
    if (on_create_) on_create_(selector, entry->ctx);
    it = entries_.emplace(selector, std::move(entry)).first;
  }
  return *it->second;
}

ContextPool::Entry& ContextPool::default_entry() {
  return get(api::OptimizerConfig{}.delay_model_selector());
}

std::size_t ContextPool::size() const {
  util::MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace pops::fabric
