#pragma once
// OptContext pool keyed by delay-model selector.
//
// A worker daemon used to run every sweep through ONE shared OptContext
// behind one big execution lock: two sweeps that only differed in their
// delay-model backend ("closed-form" vs a "table:..." selector) still
// serialized, because swapping the context's installed backend mid-run
// is what the lock exists to prevent. The pool dissolves that bottleneck
// structurally: one lazily-created OptContext (plus its SweepService and
// per-entry execution mutex) *per selector*, so differently-backed
// sweeps run concurrently and no context ever needs its backend swapped.
//
// All members share one ResultCache. That is correct — not just
// convenient — because ResultCache::hash_config folds the delay-model
// backend identity (name + content hash) into every key: a key computed
// under selector A can never collide with one computed under selector B,
// so which pool member stored an entry is unobservable. It is also what
// lets one journal (service/cache_journal.hpp) persist the whole pool;
// the on_create callback is the hook that binds each new member to the
// journal (CacheJournal::bind_context) before it runs any sweep.
//
// All pool members are built over the same technology/Flimit/seed
// characterization (equal ResultCache::hash_context), so any member can
// serve as the reference context for journal header validation.

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "pops/api/api.hpp"
#include "pops/service/result_cache.hpp"
#include "pops/service/sweep.hpp"
#include "pops/util/thread_annotations.hpp"

namespace pops::fabric {

class ContextPool {
 public:
  /// One pool member: the context, the service bound to it, and the lock
  /// that serializes sweep execution *on this member only*.
  struct Entry {
    api::OptContext ctx;
    /// Serializes SweepService::run on this context (run_many's workers
    /// still parallelize inside one sweep). Public by design: callers
    /// lock it around entry-level execution, the pool itself never does.
    util::Mutex exec_mu;
    std::unique_ptr<service::SweepService> sweeps;
  };

  /// Called once per member, directly after construction (under the pool
  /// lock, before get() returns the member to anyone) — the journal
  /// binding hook.
  using OnCreate =
      std::function<void(const std::string& selector, api::OptContext& ctx)>;

  /// Every member installs `cache` (shared across the pool) before its
  /// SweepService is built.
  explicit ContextPool(std::shared_ptr<service::ResultCache> cache,
                       OnCreate on_create = {});

  /// The member owning `selector`, created on first use. Entries are
  /// never destroyed before the pool (cached netlists/reports point into
  /// their binding context), so the reference stays valid.
  Entry& get(const std::string& selector) POPS_EXCLUDES(mu_);

  /// The member for the default OptimizerConfig's selector — the
  /// reference context for journal validation and benchmark loading.
  Entry& default_entry() POPS_EXCLUDES(mu_);

  std::size_t size() const POPS_EXCLUDES(mu_);
  const std::shared_ptr<service::ResultCache>& cache() const noexcept {
    return cache_;
  }

 private:
  const std::shared_ptr<service::ResultCache> cache_;
  const OnCreate on_create_;
  mutable util::Mutex mu_;
  /// selector -> member; unique_ptr so Entry addresses are stable across
  /// map rehashing (ResultCacheKey::ctx_bits is the context's address).
  std::map<std::string, std::unique_ptr<Entry>> entries_ POPS_GUARDED_BY(mu_);
};

}  // namespace pops::fabric
