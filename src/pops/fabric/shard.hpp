#pragma once
// Consistent-hash sharding of sweep grids.
//
// The fabric coordinator (fabric/coordinator.hpp) splits a SweepSpec's
// point grid across a fleet of worker daemons. The split must be a pure
// function of *content* — the same point always lands on the same worker
// across runs and processes — because each worker owns a persistent
// journaled ResultCache (service/cache_journal.hpp): stable routing is
// what keeps those per-worker caches hot. This header provides the three
// pieces:
//
//   - expand_points: a SweepSpec's grid as an indexed point list in the
//     exact deterministic job order SweepService::run emits records
//     (policy > vt-policy > temperature > margin > ratio > circuit,
//     circuit fastest), so a merge that emits results by ascending index
//     reproduces the single-daemon stream byte for byte.
//   - ShardKeyer: the content-pure hash a point routes by, built from the
//     same ingredients as the ResultCacheKey the worker will compute
//     (ResultCache::hash_netlist + hash_config); see key_hash for the one
//     deliberate difference (Tc ratio bits stand in for absolute Tc).
//   - HashRing: consistent hashing over worker labels with virtual nodes,
//     so growing a fleet of N workers remaps only ~1/N of the key space
//     (a modulo shard would invalidate nearly every worker's cache).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/power/report.hpp"
#include "pops/service/sweep.hpp"

namespace pops::fabric {

/// One grid point of an expanded SweepSpec, tagged with its position in
/// deterministic job order.
struct PointSpec {
  std::size_t index = 0;  ///< position in SweepService::run record order
  std::string circuit;
  double tc_ratio = 0.0;
  double shield_margin = 1.0;
  double temperature_c = power::kDefaultTemperatureC;
  std::string vt_policy = "none";
  service::BufferPolicy policy;
};

/// Expand `spec` (validated first) into its point grid, in the job order
/// SweepService::run streams records: policies outermost, then vt
/// policies, temperatures, margins, then ratios, circuits innermost.
std::vector<PointSpec> expand_points(const service::SweepSpec& spec);

/// A single-point sub-spec: `base` with every grid axis narrowed to
/// `pt`'s coordinates. Running it on a worker produces exactly one
/// record, byte-identical to the same point inside the full sweep (the
/// record is a pure function of (circuit, config, Tc) — batch
/// composition never leaks into a point's bytes).
service::SweepSpec single_point_spec(const service::SweepSpec& base,
                                     const PointSpec& pt);

/// Computes the content-pure routing hash of each point of one spec.
/// Construction resolves every circuit through `load` once (hashing the
/// netlist content) and builds one Optimizer per (policy, vt-policy,
/// temperature, margin) — exactly as SweepService::run will — to hash
/// the effective config + pass pipeline.
class ShardKeyer {
 public:
  using CircuitLoader = service::SweepService::CircuitLoader;

  ShardKeyer(api::OptContext& ctx, const service::SweepSpec& spec,
             const CircuitLoader& load);

  /// FNV-1a over (circuit content hash, config/pipeline/context hash, Tc
  /// *ratio* bits). The worker's real ResultCacheKey carries absolute Tc
  /// picoseconds (ratio x the circuit's initial delay), which the
  /// coordinator cannot know without running STA; the ratio's bit
  /// pattern is an equally content-pure stand-in — same (circuit,
  /// config, ratio) always hashes the same, so every replay of a point
  /// routes to the worker already holding its cache entry.
  std::uint64_t key_hash(const PointSpec& pt) const;

 private:
  /// (policy name, vt policy, temperature, margin) — every config axis of
  /// the grid; ratio is per-point and enters key_hash directly.
  using ConfigKey = std::tuple<std::string, std::string, double, double>;

  std::map<std::string, std::uint64_t> circuit_hash_;
  std::map<ConfigKey, std::uint64_t> config_hash_;
};

/// Consistent-hash ring over worker labels. Each member is projected to
/// `vnodes` pseudo-random ring positions (FNV of "label#i"); a key is
/// owned by the first position clockwise from its hash. Membership
/// changes move only the arcs adjacent to the added/removed member's
/// virtual nodes — ~1/N of the key space for an N-member ring.
class HashRing {
 public:
  /// Labels must be non-empty and distinct (throws std::invalid_argument
  /// otherwise). An empty member list is allowed; owner() then throws.
  explicit HashRing(std::vector<std::string> members,
                    std::size_t vnodes = 64);

  /// Index into members() of the key's owner. Throws std::logic_error on
  /// an empty ring.
  std::size_t owner(std::uint64_t key_hash) const;

  const std::vector<std::string>& members() const noexcept {
    return members_;
  }
  bool empty() const noexcept { return members_.empty(); }

 private:
  std::vector<std::string> members_;
  /// (ring position, member index), sorted by position; ties broken by
  /// label so the order is content-stable across member orderings.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace pops::fabric
