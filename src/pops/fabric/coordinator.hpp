#pragma once
// The distributed sweep fabric: one coordinator, many worker daemons.
//
// FabricCoordinator takes the same SweepSpec a single daemon would run,
// expands it into its point grid (fabric/shard.hpp), routes every point
// to a worker by consistent hash of its content-pure key, dispatches the
// points over the PR-4 wire protocol (one single-point sweep request per
// point, net/client.hpp), and merges the per-worker record streams back
// into the exact deterministic job order — so the merged JSONL stream is
// BYTE-IDENTICAL to a single daemon (or in-process pops_sweep --jsonl)
// run of the same spec. The byte-identity holds because a point's record
// is a pure function of (circuit, config, Tc): batch composition, worker
// count, and arrival order never leak into its bytes; the merge only has
// to emit results by ascending point index.
//
// Why consistent hashing and not round-robin: each worker keeps a
// persistent journaled ResultCache (service/cache_journal.hpp). Routing
// by content hash means the same point always returns to the worker that
// already holds its entry — a warm fleet replays a repeated spec with
// zero recomputation — and growing the fleet from N to N+1 workers
// remaps only ~1/(N+1) of the key space instead of all of it.
//
// Failure handling: transport failures (net::ConnectionError — refused,
// timed out, dropped mid-stream) are retried with backoff against the
// same worker; when attempts are exhausted the worker is marked dead and
// its pending points are re-sharded onto the survivors' ring, so a
// worker killed mid-sweep costs its in-flight point a retry but the
// sweep still completes with the identical merged stream. Server-side
// errors (an "error" event: bad spec, unknown circuit) abort the run —
// every worker would fail the same way.
//
// Observability across the wire: every dispatch carries a deterministic
// trace id (point index + 1) that the worker attaches to its "net/sweep"
// span; merged_trace() fetches each worker's recorded trace over the
// "trace" op and rebases it into the coordinator's timeline (distinct
// pid per worker), and fleet_metrics() aggregates the workers'
// obs::Registry snapshots into one fleet-wide document.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "pops/fabric/shard.hpp"
#include "pops/net/client.hpp"
#include "pops/service/sweep.hpp"
#include "pops/util/json.hpp"

namespace pops::fabric {

struct WorkerAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// "host:port" — the ring member label (what routing hashes), so a
  /// worker's shard is stable across coordinator runs.
  std::string label() const { return host + ":" + std::to_string(port); }
};

struct FabricOptions {
  /// Transport bounds per worker connection (see net::ClientConfig).
  long connect_timeout_ms = 5000;
  long read_timeout_ms = 0;  ///< 0 = unbounded (sweep points can be slow)
  /// Dispatch attempts per point against one worker before it is
  /// declared dead (>= 1; each retry reconnects).
  int max_attempts = 3;
  long retry_backoff_ms = 100;  ///< fixed sleep between attempts
  std::size_t vnodes = 64;      ///< virtual nodes per ring member
  double po_load_ff = 12.0;     ///< PO load for inline .bench circuits
  bool record_runtimes = true;  ///< false = byte-stable merged stream
};

/// Outcome of one fleet sweep.
struct FabricReport {
  std::size_t points = 0;
  std::size_t unmet = 0;
  /// Point dispatches re-sharded off dead workers onto survivors.
  std::size_t failovers = 0;
  std::vector<std::string> dead_workers;  ///< labels, in worker order
  /// label -> points that worker completed.
  std::map<std::string, std::size_t> points_per_worker;
};

class FabricCoordinator {
 public:
  /// Called once per merged record, in deterministic job order, with the
  /// exact bytes the worker streamed (no re-serialization — byte
  /// fidelity survives the relay).
  using RecordSink = std::function<void(const std::string& raw_record)>;

  /// Workers must be distinct addresses; at least one. Throws
  /// std::invalid_argument otherwise. Construction does not connect.
  explicit FabricCoordinator(std::vector<WorkerAddress> workers,
                             FabricOptions opt = {});

  /// Run `spec` across the fleet. Inline .bench sources (label -> text)
  /// are shipped to workers with every dispatch, exactly like
  /// SweepClient::submit. Blocks until every point is merged. Throws
  /// std::runtime_error when a worker reports a server-side error or
  /// every worker died.
  FabricReport run(const service::SweepSpec& spec,
                   const std::map<std::string, std::string>& bench = {},
                   const RecordSink& sink = {});

  /// Begin trace recording on every live worker (the "trace" op with
  /// start=true). Call before run() to capture worker-side sweep spans.
  void start_worker_traces();

  /// One Chrome trace-event document: the coordinator's own recorded
  /// spans plus every live worker's, rebased into the coordinator's
  /// timeline (worker events keep their relative timing; each worker
  /// renders as pid 1000 + worker index). Workers whose trace cannot be
  /// fetched are skipped.
  util::Json merged_trace();

  /// {"workers": {label: {counters, gauges, histograms}}, "aggregate":
  /// {...}} — each live worker's obs::Registry snapshot plus their sum
  /// (counters and gauges added by name; histograms merged bucket-wise
  /// when their bounds agree, first-seen otherwise).
  util::Json fleet_metrics();

  const std::vector<WorkerAddress>& workers() const noexcept {
    return workers_;
  }

 private:
  net::ClientConfig client_config() const;

  std::vector<WorkerAddress> workers_;
  FabricOptions opt_;
  /// The coordinator's own context: loads circuits once to compute the
  /// content hashes routing shards (never runs an optimization).
  api::OptContext ctx_;
};

}  // namespace pops::fabric
