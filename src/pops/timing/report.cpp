#include "pops/timing/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "pops/util/fmt.hpp"
#include "pops/util/table.hpp"

namespace pops::timing {

using netlist::Netlist;
using netlist::NodeId;

std::string report_paths(const Netlist& nl, const Sta& sta,
                         const StaResult& result, const ReportOptions& opt) {
  std::ostringstream out;
  const auto paths = sta.k_critical_paths(result, opt.max_paths);
  const double tc =
      opt.tc_ps > 0.0 ? opt.tc_ps : result.critical_delay_ps;

  for (std::size_t p = 0; p < paths.size(); ++p) {
    const TimedPath& path = paths[p];
    out << "Path #" << (p + 1) << ": delay " << util::fmt(path.delay_ps, 1)
        << " ps, slack " << util::fmt(tc - path.delay_ps, 1) << " ps\n";

    util::Table t({"point", "cell", "edge", "incr (ps)", "arrival (ps)",
                   "slew (ps)", "load (fF)"});
    for (std::size_t c = 3; c < 7; ++c) t.set_align(c, util::Align::Right);

    double prev_at = 0.0;
    for (const PathPoint& pt : path.points) {
      const netlist::Node& node = nl.node(pt.node);
      const double at = node.is_input ? 0.0 : result.arrival(pt.node, pt.edge);
      t.add_row({node.name,
                 node.is_input ? "(input)" : nl.cell_of(pt.node).name,
                 to_string(pt.edge),
                 node.is_input ? "-" : util::fmt(at - prev_at, 1),
                 util::fmt(at, 1),
                 util::fmt(result.slew(pt.node, pt.edge), 1),
                 node.is_input ? "-" : util::fmt(nl.load_ff(pt.node), 1)});
      prev_at = at;
    }
    out << t.str() << "\n";
  }
  return out.str();
}

std::string report_endpoints(const Netlist& nl, const Sta& sta,
                             const StaResult& result,
                             const ReportOptions& opt) {
  const double tc = opt.tc_ps > 0.0 ? opt.tc_ps : result.critical_delay_ps;
  const std::vector<double> slack = sta.slacks(result, tc);

  struct Endpoint {
    NodeId id;
    double slack;
  };
  std::vector<Endpoint> endpoints;
  for (NodeId po : nl.outputs())
    endpoints.push_back({po, slack[static_cast<std::size_t>(po)]});
  std::sort(endpoints.begin(), endpoints.end(),
            [](const Endpoint& a, const Endpoint& b) {
              return a.slack < b.slack;
            });

  util::Table t({"endpoint", "arrival (ps)", "required (ps)", "slack (ps)",
                 "status"});
  for (std::size_t c = 1; c < 4; ++c) t.set_align(c, util::Align::Right);
  for (const Endpoint& ep : endpoints) {
    const double at = std::max(result.arrival(ep.id, Edge::Rise),
                               result.arrival(ep.id, Edge::Fall));
    t.add_row({nl.node(ep.id).name, util::fmt(at, 1), util::fmt(tc, 1),
               util::fmt(ep.slack, 1),
               ep.slack < 0.0 ? "VIOLATED" : "met"});
  }
  std::ostringstream out;
  out << "Endpoint slacks against Tc = " << util::fmt(tc, 1) << " ps:\n"
      << t.str();
  return out.str();
}

std::string report_slack_histogram(const Netlist& nl, const Sta& sta,
                                   const StaResult& result,
                                   const ReportOptions& opt) {
  const double tc = opt.tc_ps > 0.0 ? opt.tc_ps : result.critical_delay_ps;
  const std::vector<double> slack = sta.slacks(result, tc);

  std::vector<double> values;
  for (NodeId po : nl.outputs())
    values.push_back(slack[static_cast<std::size_t>(po)]);
  if (values.empty()) return "(no endpoints)\n";

  const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *mn_it, hi = *mx_it;
  const int buckets = std::max(1, opt.histogram_buckets);
  const double width = (hi - lo) / buckets > 0 ? (hi - lo) / buckets : 1.0;

  std::vector<int> count(static_cast<std::size_t>(buckets), 0);
  for (double v : values) {
    int b = static_cast<int>((v - lo) / width);
    b = std::clamp(b, 0, buckets - 1);
    ++count[static_cast<std::size_t>(b)];
  }
  const int peak = *std::max_element(count.begin(), count.end());

  std::ostringstream out;
  out << "Endpoint slack histogram (" << values.size() << " endpoints):\n";
  for (int b = 0; b < buckets; ++b) {
    const double from = lo + b * width;
    out << util::fixed(from, 1, 9) << " .. " << util::fixed(from + width, 1, 9)
        << " ps |";
    const int bar =
        peak > 0 ? count[static_cast<std::size_t>(b)] * 40 / peak : 0;
    for (int i = 0; i < bar; ++i) out << '#';
    out << " " << count[static_cast<std::size_t>(b)] << "\n";
  }
  return out.str();
}

}  // namespace pops::timing
