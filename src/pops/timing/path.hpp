#pragma once
// The *bounded combinational path* abstraction of paper §2.2:
//
//   "the path input gate capacitance is fixed by the load constraint
//    imposed on the latch supplying the path [...] the path terminal load
//    is completely determined by the total input capacitance of the gates
//    or registers controlled by this path. This guarantees the convexity
//    of the delay on this path."
//
// A BoundedPath is a chain of sized stages. Stage 0's input capacitance is
// FIXED (the latch load constraint); the terminal load is FIXED; every
// other stage's input capacitance CIN(i) is a free sizing variable. Each
// stage additionally carries a fixed off-path load (wire capacitance plus
// the input capacitance of off-path sinks frozen at their current sizes) —
// this is how the path-at-a-time optimisation of POPS sees the rest of the
// circuit.

#include <stdexcept>
#include <string>
#include <vector>

#include "pops/netlist/netlist.hpp"
#include "pops/timing/delay_model.hpp"
#include "pops/timing/sta.hpp"

namespace pops::timing {

/// One stage of a bounded path.
struct PathStage {
  liberty::CellKind kind = liberty::CellKind::Inv;
  netlist::NodeId node = netlist::kNoNode;  ///< origin node; kNoNode if synthetic
  double off_path_ff = 0.0;  ///< fixed extra load on this stage's output
  bool sizable = true;       ///< false freezes CIN during global sizing
                             ///< (e.g. locally-sized buffers, Fig. 8)
  bool shielded = false;     ///< off-path load already behind a shield buffer
};

class BoundedPath {
 public:
  /// Synthetic path: `stages` driven through a fixed input capacitance
  /// `cin_first_ff` (stage 0's CIN), ending on `terminal_ff`. The input
  /// signal arrives with edge `input_edge` and transition `input_slew_ps`
  /// (<= 0 selects the model default at evaluation time... must be > 0 here).
  BoundedPath(const liberty::Library& lib, std::vector<PathStage> stages,
              double cin_first_ff, double terminal_ff, Edge input_edge,
              double input_slew_ps);

  /// Extract the bounded path under `points` (a PI->PO STA path; the PI is
  /// dropped) from a sized netlist. Off-path loads are frozen at the
  /// netlist's current sizes; the terminal load is the last gate's
  /// off-path + PO load. Stage 0's CIN is fixed at its current value.
  static BoundedPath extract(const netlist::Netlist& nl,
                             const TimedPath& path, double input_slew_ps);

  const liberty::Library& lib() const noexcept { return *lib_; }

  // ----- structure ----------------------------------------------------------

  std::size_t size() const noexcept { return stages_.size(); }
  const PathStage& stage(std::size_t i) const { return stages_.at(i); }
  const liberty::Cell& cell(std::size_t i) const;

  /// Output edge of stage `i` for the path's input edge (phase propagated
  /// through the inverting cells; XOR counts as non-inverting).
  Edge out_edge(std::size_t i) const { return edges_.at(i); }
  Edge input_edge() const noexcept { return input_edge_; }
  /// Re-derive stage edges after structural edits or input-edge change.
  void set_input_edge(Edge e);

  double terminal_ff() const noexcept { return terminal_ff_; }
  double input_slew_ps() const noexcept { return input_slew_ps_; }

  // ----- sizing variables ----------------------------------------------------

  /// Input capacitance (fF) of stage `i`.
  double cin(std::size_t i) const { return cin_.at(i); }
  /// All input capacitances.
  const std::vector<double>& cins() const noexcept { return cin_; }

  /// Set CIN of stage i >= 1, clamped to the library's realisable range.
  /// Stage 0 is fixed by the latch constraint; throws std::invalid_argument.
  void set_cin(std::size_t i, double cin_ff);

  /// Replace all free CINs (indices 1..n-1 of `cins`; cins[0] must equal
  /// the fixed value within tolerance or std::invalid_argument is thrown).
  void set_cins(const std::vector<double>& cins);

  /// Set every free (sizable) stage to the minimum drive — the paper's
  /// Tmax sizing. Frozen stages keep their size.
  void set_all_min_drive();

  /// Smallest / largest realisable CIN (fF) of stage `i`'s cell.
  double cin_min(std::size_t i) const;
  double cin_max(std::size_t i) const;

  // ----- evaluation -----------------------------------------------------------

  /// External load (fF) on stage i's output: off_path + next stage CIN
  /// (terminal load for the last stage). The stage's own drain parasitic
  /// is NOT included (see cpar_ff / total_load_ff).
  double load_ff(std::size_t i) const;

  /// Own drain parasitic (fF) of stage i at its current size — the Cpar(i)
  /// of the paper's eq. (4). Proportional to CIN(i), so it contributes a
  /// constant to the effort term and drops out of dT/dCIN(i).
  double cpar_ff(std::size_t i) const;

  /// load_ff + cpar_ff: the capacitance the delay model discharges.
  double total_load_ff(std::size_t i) const {
    return load_ff(i) + cpar_ff(i);
  }

  /// Path delay (ps) under the full eq. (1) model with slews propagated
  /// from the path input.
  double delay_ps(const DelayModel& dm) const;

  /// Per-stage delays (ps), same traversal as delay_ps.
  std::vector<double> stage_delays_ps(const DelayModel& dm) const;

  /// The paper's area/power metric: sum of transistor widths (µm) over all
  /// stages (including the fixed stage 0).
  double area_um() const;

  /// Normalised size sum ΣCIN/CREF (the x-axis of Fig. 1).
  double normalized_size() const;

  /// Stage weight A_i of the link equations (eq. 4/6) at current sizes.
  double stage_coefficient(const DelayModel& dm, std::size_t i) const;

  /// Numerical sensitivity dT/dCIN(i) (central difference) — used by tests
  /// to verify the constant-sensitivity property, and by the baseline.
  double numeric_sensitivity(const DelayModel& dm, std::size_t i,
                             double step_ff = 1e-4) const;

  // ----- structural edits (buffer insertion / restructuring) -----------------

  /// Insert a new stage *after* stage `i` (so it drives what stage i used
  /// to drive). When `take_off_path` is true (the default, matching the
  /// paper's Fig. 5 load dilution) the new stage also takes over stage i's
  /// off-path load, so gate i afterwards drives only the buffer.
  /// Stage edges are re-derived.
  void insert_stage_after(std::size_t i, liberty::CellKind kind, double cin_ff,
                          bool take_off_path = true);

  /// Replace the cell kind of stage `i` (edges re-derived; CIN preserved).
  void replace_stage(std::size_t i, liberty::CellKind kind);

  /// Freeze / unfreeze stage `i` for the global sizing sweeps. Stage 0 is
  /// always fixed regardless of this flag.
  void set_sizable(std::size_t i, bool sizable) {
    stages_.at(i).sizable = sizable;
  }
  /// Whether the sizing sweeps may change CIN(i).
  bool sizable(std::size_t i) const {
    return i != 0 && stages_.at(i).sizable;
  }

  /// Replace stage i's off-path load (used when a shield buffer takes the
  /// off-path fanout over: the load becomes the buffer's input cap).
  void set_off_path_ff(std::size_t i, double off_ff) {
    if (off_ff < 0.0)
      throw std::invalid_argument("set_off_path_ff: negative load");
    stages_.at(i).off_path_ff = off_ff;
  }

  /// Mark stage i's off-path load as already shielded by a buffer.
  void set_shielded(std::size_t i, bool shielded) {
    stages_.at(i).shielded = shielded;
  }

  /// Write the sizes (and only the sizes) back to the origin netlist for
  /// stages that carry a valid origin node. Returns the ids of the nodes
  /// whose drive actually moved (bitwise, after the library clamp) — the
  /// dirty set for incremental re-timing; empty means the write-back was
  /// a no-op (the protocol's round loop stops instead of spinning).
  std::vector<netlist::NodeId> apply_sizes_to(netlist::Netlist& nl) const;

 private:
  void recompute_edges();

  const liberty::Library* lib_;
  std::vector<PathStage> stages_;
  std::vector<double> cin_;
  std::vector<Edge> edges_;
  double cin_first_ff_;
  double terminal_ff_;
  Edge input_edge_;
  double input_slew_ps_;
};

}  // namespace pops::timing
