#include "pops/timing/path.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pops::timing {

using netlist::Netlist;
using netlist::NodeId;

BoundedPath::BoundedPath(const liberty::Library& lib,
                         std::vector<PathStage> stages, double cin_first_ff,
                         double terminal_ff, Edge input_edge,
                         double input_slew_ps)
    : lib_(&lib),
      stages_(std::move(stages)),
      cin_first_ff_(cin_first_ff),
      terminal_ff_(terminal_ff),
      input_edge_(input_edge),
      input_slew_ps_(input_slew_ps) {
  if (stages_.empty())
    throw std::invalid_argument("BoundedPath: empty stage list");
  if (!(cin_first_ff > 0.0) || !(terminal_ff > 0.0))
    throw std::invalid_argument("BoundedPath: boundary capacitances must be > 0");
  if (!(input_slew_ps > 0.0))
    throw std::invalid_argument("BoundedPath: input slew must be > 0");
  cin_.assign(stages_.size(), 0.0);
  cin_[0] = cin_first_ff_;
  for (std::size_t i = 1; i < stages_.size(); ++i) cin_[i] = cin_min(i);
  recompute_edges();
}

BoundedPath BoundedPath::extract(const Netlist& nl, const TimedPath& path,
                                 double input_slew_ps) {
  if (path.points.size() < 2)
    throw std::invalid_argument("BoundedPath::extract: path too short");

  // Drop the leading PI.
  std::size_t first = 0;
  if (nl.node(path.points[0].node).is_input) first = 1;
  if (path.points.size() - first < 1)
    throw std::invalid_argument("BoundedPath::extract: no gates on path");

  std::vector<PathStage> stages;
  std::vector<double> cins;
  for (std::size_t p = first; p < path.points.size(); ++p) {
    const NodeId id = path.points[p].node;
    if (nl.node(id).is_input)
      throw std::invalid_argument("BoundedPath::extract: PI mid-path");
    PathStage st;
    st.kind = nl.node(id).kind;
    st.node = id;
    // Off-path load: everything on the output net except the next on-path
    // stage's input pin.
    double off = nl.load_ff(id);
    if (p + 1 < path.points.size()) off -= nl.cin_ff(path.points[p + 1].node);
    st.off_path_ff = std::max(0.0, off);
    stages.push_back(st);
    cins.push_back(nl.cin_ff(id));
  }

  // Terminal load: the last stage's own off-path (wire + PO load + off-path
  // sinks) *is* the terminal boundary; move it out of the stage record.
  const double terminal = std::max(stages.back().off_path_ff, 1e-3);
  stages.back().off_path_ff = 0.0;

  const Edge input_edge = path.points[first].edge;  // edge at first gate out
  // The stored input edge must be the edge at the *path input net*; derive
  // it by undoing the first cell's phase.
  const liberty::Cell& c0 = nl.lib().cell(stages.front().kind);
  const Edge net_edge = c0.inverting ? flip(input_edge) : input_edge;

  BoundedPath bp(nl.lib(), std::move(stages), cins.front(), terminal, net_edge,
                 input_slew_ps);
  for (std::size_t i = 1; i < cins.size(); ++i) bp.set_cin(i, cins[i]);
  return bp;
}

const liberty::Cell& BoundedPath::cell(std::size_t i) const {
  return lib_->cell(stages_.at(i).kind);
}

void BoundedPath::set_input_edge(Edge e) {
  input_edge_ = e;
  recompute_edges();
}

void BoundedPath::recompute_edges() {
  edges_.resize(stages_.size());
  Edge e = input_edge_;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const liberty::Cell& c = lib_->cell(stages_[i].kind);
    if (c.inverting) e = flip(e);
    edges_[i] = e;
  }
}

void BoundedPath::set_cin(std::size_t i, double cin_ff) {
  if (i == 0)
    throw std::invalid_argument(
        "BoundedPath::set_cin: stage 0 is fixed by the latch constraint");
  cin_.at(i) = std::clamp(cin_ff, cin_min(i), cin_max(i));
}

void BoundedPath::set_cins(const std::vector<double>& cins) {
  if (cins.size() != cin_.size())
    throw std::invalid_argument("BoundedPath::set_cins: arity mismatch");
  if (std::abs(cins[0] - cin_first_ff_) > 1e-9 * std::max(1.0, cin_first_ff_))
    throw std::invalid_argument("BoundedPath::set_cins: cins[0] must keep the fixed value");
  for (std::size_t i = 1; i < cins.size(); ++i) set_cin(i, cins[i]);
}

void BoundedPath::set_all_min_drive() {
  for (std::size_t i = 1; i < stages_.size(); ++i)
    if (sizable(i)) cin_[i] = cin_min(i);
}

double BoundedPath::cin_min(std::size_t i) const {
  return cell(i).cin_ff(lib_->tech(), lib_->wmin_um());
}

double BoundedPath::cin_max(std::size_t i) const {
  return cell(i).cin_ff(lib_->tech(), lib_->wmax_um());
}

double BoundedPath::load_ff(std::size_t i) const {
  const double next =
      i + 1 < stages_.size() ? cin_[i + 1] : terminal_ff_;
  return stages_.at(i).off_path_ff + next;
}

double BoundedPath::cpar_ff(std::size_t i) const {
  const liberty::Cell& c = cell(i);
  return c.cpar_ff(lib_->tech(), c.wn_for_cin(lib_->tech(), cin_.at(i)));
}

double BoundedPath::delay_ps(const DelayModel& dm) const {
  double total = 0.0;
  double tin = input_slew_ps_;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const StageTiming st =
        dm.stage(cell(i), edges_[i], tin, cin_[i], total_load_ff(i));
    total += st.delay_ps;
    tin = st.tout_ps;
  }
  return total;
}

std::vector<double> BoundedPath::stage_delays_ps(const DelayModel& dm) const {
  std::vector<double> delays(stages_.size());
  double tin = input_slew_ps_;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const StageTiming st =
        dm.stage(cell(i), edges_[i], tin, cin_[i], total_load_ff(i));
    delays[i] = st.delay_ps;
    tin = st.tout_ps;
  }
  return delays;
}

double BoundedPath::area_um() const {
  double area = 0.0;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const liberty::Cell& c = cell(i);
    area += c.total_width_um(c.wn_for_cin(lib_->tech(), cin_[i]));
  }
  return area;
}

double BoundedPath::normalized_size() const {
  double sum = 0.0;
  for (double c : cin_) sum += c;
  return sum / lib_->cref_ff();
}

double BoundedPath::stage_coefficient(const DelayModel& dm,
                                      std::size_t i) const {
  const bool has_next = i + 1 < stages_.size();
  const Edge next_edge = has_next ? edges_[i + 1] : edges_[i];
  return dm.stage_coefficient(cell(i), edges_[i], cin_[i], total_load_ff(i),
                              has_next, next_edge);
}

double BoundedPath::numeric_sensitivity(const DelayModel& dm, std::size_t i,
                                        double step_ff) const {
  if (i == 0 || i >= stages_.size())
    throw std::invalid_argument("numeric_sensitivity: bad free-stage index");
  BoundedPath plus = *this;
  BoundedPath minus = *this;
  plus.cin_[i] += step_ff;   // bypass clamping for a clean derivative
  minus.cin_[i] -= step_ff;
  return (plus.delay_ps(dm) - minus.delay_ps(dm)) / (2.0 * step_ff);
}

void BoundedPath::insert_stage_after(std::size_t i, liberty::CellKind kind,
                                     double cin_ff, bool take_off_path) {
  if (i >= stages_.size())
    throw std::invalid_argument("insert_stage_after: bad index");
  PathStage st;
  st.kind = kind;
  st.node = netlist::kNoNode;
  st.off_path_ff = 0.0;
  if (take_off_path) {
    st.off_path_ff = stages_[i].off_path_ff;
    stages_[i].off_path_ff = 0.0;
  }
  stages_.insert(stages_.begin() + static_cast<long>(i) + 1, st);
  cin_.insert(cin_.begin() + static_cast<long>(i) + 1, cin_ff);
  set_cin(i + 1, cin_ff);  // clamp into range
  recompute_edges();
}

void BoundedPath::replace_stage(std::size_t i, liberty::CellKind kind) {
  stages_.at(i).kind = kind;
  if (i > 0) set_cin(i, cin_[i]);  // re-clamp for the new cell
  recompute_edges();
}

std::vector<netlist::NodeId> BoundedPath::apply_sizes_to(Netlist& nl) const {
  std::vector<netlist::NodeId> changed;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const netlist::NodeId id = stages_[i].node;
    if (id == netlist::kNoNode) continue;
    const liberty::Cell& c = nl.lib().cell(nl.node(id).kind);
    const double before = nl.drive(id);
    nl.set_drive(id, c.wn_for_cin(nl.lib().tech(), cin_[i]));
    if (nl.drive(id) != before) changed.push_back(id);
  }
  return changed;
}

}  // namespace pops::timing
