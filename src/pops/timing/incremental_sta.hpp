#pragma once
// Incremental static timing analysis.
//
// The Fig. 7 protocol re-verifies circuit timing after every path-sizing
// round, and the shield pass re-runs STA after every inserted buffer; on
// big netlists those full O(E) re-runs dominate pipeline cost (the
// ROADMAP's "Batch STA" item). A sizing round, however, only touches a
// handful of gates, and timing changes propagate from exactly two places:
//
//   * forward  — arrivals/slews of the resized gates, their fanin drivers
//     (whose load includes the resized input capacitance), and the fanout
//     cone of whatever actually moved;
//   * backward — the "downstream longest delay" bound values that the
//     K-critical-paths enumeration prunes with, over the fan-in cone of
//     the same neighbourhood.
//
// IncrementalSta keeps the last StaResult (arrivals, slews, `prev`
// backtracking state) plus the downstream bound vector alive between
// rounds, accepts the set of nodes whose sizes/loads/structure changed,
// and repropagates only the affected cones — with results **bit-identical**
// to a cold Sta::run() / Sta::downstream_delays(). Identity holds because
// update() replays the exact per-node kernels of Sta (compute_node /
// compute_down: same operations, same operand order) on neighbourhoods
// whose inputs changed, and skips nodes whose inputs are provably
// untouched; it is assert-checked against a cold run in debug builds and
// fuzz-proven in tests/test_incremental_sta.cpp under both delay-model
// backends.
//
// Dirty-set contract (see update()): the caller lists every node whose
//   * drive (size) changed,
//   * fanin list changed (rewired sinks),
//   * fanout set changed (a driver whose sinks were captured by a buffer),
//   * wire cap / PO-load / PO-flag changed, or
//   * that was newly appended (inserted buffers).
// IncrementalSta expands the set with the fanin drivers itself; edits
// that renumber or remove nodes (sweep_dead rebuilds) need a fresh
// run_full().

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pops/netlist/netlist.hpp"
#include "pops/timing/sta.hpp"

namespace pops::timing {

class IncrementalSta {
 public:
  IncrementalSta(const netlist::Netlist& nl, const DelayModel& dm,
                 StaOptions opt = {});

  /// Cold full propagation (exactly Sta::run; the downstream bounds are
  /// materialized on their first query); resets all incremental state.
  /// The returned reference stays valid — and is kept current — across
  /// subsequent update() calls.
  const StaResult& run_full();

  /// Re-propagate after netlist edits. `dirty` lists the changed nodes
  /// (see the dirty-set contract above; duplicates and PIs are fine).
  /// `structure_changed` must be true when connectivity changed (inserted
  /// buffers, rewired fanins) so the cached topological positions are
  /// refreshed; pure resizes may leave it false. Runs run_full() when no
  /// result exists yet.
  const StaResult& update(std::span<const netlist::NodeId> dirty,
                          bool structure_changed = false);

  /// Drop all maintained state: the next update()/result-producing query
  /// falls back to a cold run_full(). For edits outside the dirty-set
  /// contract (sweep_dead renumbers ids) and for rebinding the engine to
  /// a rebuilt netlist at the same address.
  void invalidate() noexcept;

  /// Monotone counter bumped by run_full()/update()/invalidate(). Lets an
  /// owner sharing this engine across passes detect whether a pass
  /// reported its edits (revision moved) or left the engine stale.
  std::uint64_t revision() const noexcept { return revision_; }

  /// The maintained result. Throws std::logic_error before the first run.
  const StaResult& result() const;
  bool has_result() const noexcept { return valid_; }

  /// The downstream bound vector, == Sta::downstream_delays(result())
  /// (vertex = 2*node + StaResult::idx(edge)). Computed lazily on the
  /// first query — consumers that never enumerate paths (the shield
  /// pass, initial-delay measurements) skip the O(E) bound sweep — and
  /// maintained incrementally by update() from then on.
  const std::vector<double>& downstream() const;

  // ----- queries over the maintained state ------------------------------------

  TimedPath critical_path() const { return sta_.critical_path(result()); }

  /// K-critical-paths enumeration reusing the maintained downstream
  /// values, gated against re-enumeration: the previous path list is
  /// replayed verbatim when no update()/run_full() intervened and the
  /// same k is requested. The gate is exact, not heuristic — between
  /// reports the netlist is untouched by the dirty-set contract, and any
  /// reported edit can move an enumeration edge weight (through a sink's
  /// cin/cload) even when every maintained arrival/slew/bound stayed
  /// bit-identical, so "a report happened" is the precise invalidation
  /// condition. The returned reference stays valid (and untouched)
  /// across update() calls; the next actual enumeration overwrites it.
  const std::vector<TimedPath>& k_critical_paths(std::size_t k) const;

  /// Per-node slacks against `tc_ps`, == Sta::slacks(result(), tc_ps)
  /// bitwise. The first query (or a query at a different tc) materializes
  /// required times + slacks with one full backward sweep; afterwards
  /// update() maintains both over dirty cones only, so per-candidate
  /// queries in the shield pass cost O(dirty cone) instead of O(E).
  const std::vector<double>& slacks(double tc_ps) const;

  /// The maintained required-time vector backing slacks(tc_ps), ==
  /// Sta::required_times(result(), tc_ps) bitwise (same materialization
  /// and maintenance as slacks()).
  const std::vector<std::array<double, 2>>& required_times(
      double tc_ps) const;

  /// The underlying (stateless) analyzer, for queries not wrapped above.
  const Sta& sta() const noexcept { return sta_; }

  // ----- verification ---------------------------------------------------------

  /// Compare the maintained state against a cold Sta::run() +
  /// downstream_delays(); throws std::logic_error on any bitwise
  /// difference. update() calls this automatically in debug builds
  /// (NDEBUG off); fuzz tests call it explicitly in release builds.
  void check_against_full() const;

 private:
  void rebuild_positions();
  void grow_arrays(std::size_t n);
  void materialize_slacks(double tc_ps) const;

  const netlist::Netlist* nl_;
  const DelayModel* dm_;
  Sta sta_;
  double pi_slew_ps_;

  StaResult res_;
  // Lazily materialized on the first downstream() query (mutable: the
  // query is logically const). Single-threaded by design, like Netlist's
  // lazy caches.
  mutable std::vector<double> down_;
  mutable bool down_valid_ = false;

  // Required times + slacks, lazily materialized by the first
  // slacks()/required_times() query and keyed on the tc bit pattern (a
  // different tc re-materializes); maintained by update() while valid.
  mutable std::vector<std::array<double, 2>> req_;
  mutable std::vector<double> slack_;
  mutable bool slack_valid_ = false;
  mutable double slack_tc_ps_ = 0.0;

  // Last enumeration, replayed while no update()/run_full() intervenes
  // (see k_critical_paths).
  mutable std::vector<TimedPath> paths_;
  mutable std::size_t paths_k_ = 0;
  mutable bool paths_valid_ = false;

  std::vector<std::size_t> topo_pos_;  ///< node -> position in topo order
  bool positions_valid_ = false;       ///< rebuilt by the first update()

  // Scratch, reused across updates (all-false between calls); sized
  // together with topo_pos_.
  std::vector<char> in_heap_;
  std::vector<char> seed_mark_;

  bool valid_ = false;
  std::uint64_t revision_ = 0;
};

}  // namespace pops::timing
