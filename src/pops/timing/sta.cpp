#include "pops/timing/sta.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "pops/obs/trace.hpp"
#include "pops/util/parallel.hpp"

namespace pops::timing {

using netlist::Netlist;
using netlist::NodeId;

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

Sta::Sta(const Netlist& nl, const DelayModel& dm, StaOptions opt)
    : nl_(&nl), dm_(&dm), opt_(opt) {
  if (opt_.pi_slew_ps <= 0.0) opt_.pi_slew_ps = dm_->default_input_slew_ps();
}

std::vector<Edge> Sta::cause_edges(const liberty::Cell& cell, Edge out) {
  using liberty::CellKind;
  if (cell.kind == CellKind::Xor2 || cell.kind == CellKind::Xnor2)
    return {Edge::Rise, Edge::Fall};
  return {cell.inverting ? flip(out) : out};
}

void Sta::compute_node(NodeId id, StaResult& r) const {
  const Netlist& nl = *nl_;
  const netlist::Node& node = nl.node(id);
  const liberty::Cell& cell = nl.cell_of(id);
  const double cin = nl.cin_ff(id);
  const double cload = nl.load_ff(id) + nl.cpar_ff(id);

  for (Edge out : {Edge::Rise, Edge::Fall}) {
    // High-Vt cells switch slower; the derate (exactly 1.0 on the default
    // class) scales both the stage's slew and its delays uniformly.
    const double derate = dm_->vt_derate(node.vt, out);
    // Slew is a property of the stage alone (eq. 2).
    r.slew_ps[static_cast<std::size_t>(id)][StaResult::idx(out)] =
        dm_->transition_ps(cell, out, cin, cload) * derate;

    double best = kNegInf;
    PathPoint best_prev;
    for (NodeId f : node.fanins) {
      for (Edge ein : cause_edges(cell, out)) {
        const double at_f = r.arrival(f, ein);
        if (at_f == kNegInf) continue;
        const double d =
            dm_->delay_ps(cell, out, r.slew(f, ein), cin, cload) * derate;
        if (at_f + d > best) {
          best = at_f + d;
          best_prev = {f, ein};
        }
      }
    }
    r.arrival_ps[static_cast<std::size_t>(id)][StaResult::idx(out)] = best;
    r.prev[static_cast<std::size_t>(id)][StaResult::idx(out)] = best_prev;
  }
}

void Sta::finalize_critical(StaResult& r) const {
  r.critical_delay_ps = kNegInf;
  r.critical_endpoint = PathPoint{};
  for (NodeId po : nl_->outputs()) {
    for (Edge e : {Edge::Rise, Edge::Fall}) {
      if (r.arrival(po, e) > r.critical_delay_ps) {
        r.critical_delay_ps = r.arrival(po, e);
        r.critical_endpoint = {po, e};
      }
    }
  }
  if (r.critical_delay_ps == kNegInf)
    throw std::logic_error("Sta: no PO reachable from any PI");
}

bool Sta::level_parallel() const noexcept {
  return opt_.level_parallel_workers > 1 &&
         nl_->size() >= opt_.level_parallel_min_nodes;
}

std::vector<std::vector<NodeId>> Sta::depth_levels() const {
  const Netlist& nl = *nl_;
  const std::vector<int> depth = nl.depths();
  int max_depth = 0;
  for (int d : depth) max_depth = std::max(max_depth, d);
  std::vector<std::vector<NodeId>> levels(
      static_cast<std::size_t>(max_depth) + 1);
  // Bucket in topo order: level construction (and therefore chunking) is
  // a pure function of the netlist, independent of worker scheduling.
  for (NodeId id : nl.topo_order())
    levels[static_cast<std::size_t>(depth[static_cast<std::size_t>(id)])]
        .push_back(id);
  return levels;
}

StaResult Sta::run() const {
  const Netlist& nl = *nl_;
  const std::size_t n = nl.size();

  StaResult r;
  r.arrival_ps.assign(n, {kNegInf, kNegInf});
  r.slew_ps.assign(n, {opt_.pi_slew_ps, opt_.pi_slew_ps});
  r.prev.assign(n, {PathPoint{}, PathPoint{}});

  for (NodeId pi : nl.inputs()) {
    r.arrival_ps[static_cast<std::size_t>(pi)] = {0.0, 0.0};
  }

  if (!level_parallel()) {
    for (NodeId id : nl.topo_order()) {
      if (nl.node(id).is_input) continue;
      compute_node(id, r);
    }
  } else {
    // Nodes of one level have disjoint outputs and read only arrivals /
    // slews of strictly shallower levels (a gate's depth exceeds every
    // fanin's), all finalized by the preceding level barriers — so the
    // fan-out is bitwise-equal to the sequential loop at any worker
    // count. depth_levels() walked topo_order() above, which also
    // materialized the netlist's lazy fanout/topo caches before any
    // worker can race to build them.
    const std::vector<std::vector<NodeId>> levels = depth_levels();
    obs::Span span("sta/level_sweep");
    span.arg("nodes", static_cast<double>(n));
    span.arg("levels", static_cast<double>(levels.size()));
    span.arg("workers", static_cast<double>(opt_.level_parallel_workers));
    util::ThreadPool& pool = util::ThreadPool::global();
    for (const std::vector<NodeId>& level : levels) {
      pool.for_chunks(level.size(), opt_.level_parallel_workers,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          const NodeId id = level[i];
                          if (nl.node(id).is_input) continue;
                          compute_node(id, r);
                        }
                      });
    }
  }

  finalize_critical(r);
  return r;
}

TimedPath Sta::critical_path(const StaResult& result) const {
  TimedPath path;
  path.delay_ps = result.critical_delay_ps;
  PathPoint p = result.critical_endpoint;
  while (p.node != netlist::kNoNode) {
    path.points.push_back(p);
    if (nl_->node(p.node).is_input) break;
    p = result.prev[static_cast<std::size_t>(p.node)][StaResult::idx(p.edge)];
  }
  std::reverse(path.points.begin(), path.points.end());
  return path;
}

double Sta::compute_down(NodeId id, Edge e, const StaResult& result,
                         const std::vector<double>& down) const {
  const Netlist& nl = *nl_;
  auto vid = [](NodeId node, Edge edge) {
    return 2 * static_cast<std::size_t>(node) + StaResult::idx(edge);
  };
  double best = nl.node(id).is_output ? 0.0 : kNegInf;
  for (NodeId g : nl.fanouts(id)) {
    const liberty::Cell& cell = nl.cell_of(g);
    const double cin = nl.cin_ff(g);
    const double cload = nl.load_ff(g) + nl.cpar_ff(g);
    for (Edge eout : {Edge::Rise, Edge::Fall}) {
      const auto causes = cause_edges(cell, eout);
      if (std::find(causes.begin(), causes.end(), e) == causes.end())
        continue;
      const double w = dm_->delay_ps(cell, eout, result.slew(id, e), cin,
                                     cload) *
                       dm_->vt_derate(nl.node(g).vt, eout);
      const double cand = w + down[vid(g, eout)];
      best = std::max(best, cand);
    }
  }
  return best;
}

std::vector<double> Sta::downstream_delays(const StaResult& result) const {
  const Netlist& nl = *nl_;

  // Longest remaining delay from each vertex to any PO (0 at a PO vertex
  // itself, since paths terminate there; -inf if no PO is reachable).
  std::vector<double> down(2 * nl.size(), kNegInf);
  if (!level_parallel()) {
    const auto& topo = nl.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const NodeId id = *it;
      for (Edge e : {Edge::Rise, Edge::Fall}) {
        down[2 * static_cast<std::size_t>(id) + StaResult::idx(e)] =
            compute_down(id, e, result, down);
      }
    }
  } else {
    // Backward mirror of run()'s level fan-out: a vertex reads only its
    // fanouts' `down` values, all at strictly deeper levels, finalized
    // by the preceding (descending) level barriers.
    const std::vector<std::vector<NodeId>> levels = depth_levels();
    obs::Span span("sta/level_sweep");
    span.arg("nodes", static_cast<double>(nl.size()));
    span.arg("levels", static_cast<double>(levels.size()));
    span.arg("workers", static_cast<double>(opt_.level_parallel_workers));
    util::ThreadPool& pool = util::ThreadPool::global();
    for (auto lit = levels.rbegin(); lit != levels.rend(); ++lit) {
      const std::vector<NodeId>& level = *lit;
      pool.for_chunks(level.size(), opt_.level_parallel_workers,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          const NodeId id = level[i];
                          for (Edge e : {Edge::Rise, Edge::Fall}) {
                            down[2 * static_cast<std::size_t>(id) +
                                 StaResult::idx(e)] =
                                compute_down(id, e, result, down);
                          }
                        }
                      });
    }
  }
  return down;
}

std::vector<TimedPath> Sta::k_critical_paths(const StaResult& result,
                                             std::size_t k) const {
  return k_critical_paths(result, k, downstream_delays(result));
}

std::vector<TimedPath> Sta::k_critical_paths(
    const StaResult& result, std::size_t k,
    const std::vector<double>& down) const {
  const Netlist& nl = *nl_;
  const std::size_t n = nl.size();

  // Timing-graph vertex v = 2*node + idx(edge). Static edge weight
  // w((f,ein) -> (g,eout)) = delay(g, eout, slew(f,ein)).
  auto vid = [](NodeId node, Edge e) {
    return 2 * static_cast<std::size_t>(node) + StaResult::idx(e);
  };

  // Best-first (A*-style) enumeration: items are popped in non-increasing
  // bound order; a *terminal* item's bound equals its exact path delay, so
  // complete paths are emitted in exact non-increasing delay order.
  constexpr std::size_t kTerminal = static_cast<std::size_t>(-1);
  struct Item {
    double bound;       // prefix + down(vertex); == prefix for terminals
    double prefix;      // accumulated delay up to (and including) vertex
    std::size_t vertex; // kTerminal marks a completed path
    int chain;          // arena index of this item's own vertex entry
  };
  struct ArenaEntry {
    std::size_t vertex;
    int parent;
  };
  auto cmp = [](const Item& a, const Item& b) { return a.bound < b.bound; };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> heap(cmp);
  std::vector<ArenaEntry> arena;

  for (NodeId pi : nl.inputs()) {
    for (Edge e : {Edge::Rise, Edge::Fall}) {
      const std::size_t v = vid(pi, e);
      if (down[v] == kNegInf) continue;
      arena.push_back({v, -1});
      heap.push({down[v], 0.0, v, static_cast<int>(arena.size()) - 1});
    }
  }

  std::vector<TimedPath> out;
  // Guard against pathological blowup: each pop does O(fanout) work.
  std::size_t pops = 0;
  const std::size_t pop_limit = 4096 * std::max<std::size_t>(k, 1) + 16 * n;

  while (!heap.empty() && out.size() < k && pops++ < pop_limit) {
    const Item item = heap.top();
    heap.pop();

    if (item.vertex == kTerminal) {
      TimedPath path;
      path.delay_ps = item.prefix;
      for (int a = item.chain; a != -1;
           a = arena[static_cast<std::size_t>(a)].parent) {
        const auto& entry = arena[static_cast<std::size_t>(a)];
        path.points.push_back(
            {static_cast<NodeId>(entry.vertex / 2),
             entry.vertex % 2 == 0 ? Edge::Rise : Edge::Fall});
      }
      std::reverse(path.points.begin(), path.points.end());
      out.push_back(std::move(path));
      continue;
    }

    const NodeId node = static_cast<NodeId>(item.vertex / 2);
    const Edge e = item.vertex % 2 == 0 ? Edge::Rise : Edge::Fall;

    // Terminating at a PO is one of the item's continuations.
    if (nl.node(node).is_output)
      heap.push({item.prefix, item.prefix, kTerminal, item.chain});

    // A gate that consumes `node` on two pins appears twice in fanouts();
    // expand it once or the enumeration emits duplicate paths.
    std::vector<NodeId> sinks = nl.fanouts(node);
    std::sort(sinks.begin(), sinks.end());
    sinks.erase(std::unique(sinks.begin(), sinks.end()), sinks.end());
    for (NodeId g : sinks) {
      const liberty::Cell& cell = nl.cell_of(g);
      const double cin = nl.cin_ff(g);
      const double cload = nl.load_ff(g) + nl.cpar_ff(g);
      for (Edge eout : {Edge::Rise, Edge::Fall}) {
        const auto causes = cause_edges(cell, eout);
        if (std::find(causes.begin(), causes.end(), e) == causes.end())
          continue;
        const std::size_t v2 = vid(g, eout);
        if (down[v2] == kNegInf) continue;
        const double w =
            dm_->delay_ps(cell, eout, result.slew(node, e), cin, cload) *
            dm_->vt_derate(nl.node(g).vt, eout);
        arena.push_back({v2, item.chain});
        heap.push({item.prefix + w + down[v2], item.prefix + w, v2,
                   static_cast<int>(arena.size()) - 1});
      }
    }
  }
  return out;
}

void Sta::compute_required(NodeId id, const StaResult& result, double tc_ps,
                           std::vector<std::array<double, 2>>& required)
    const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const Netlist& nl = *nl_;

  // Init, then min-accumulate over the fanouts' finalized values — the
  // exact operation order (fanouts, then eout, then causing ein, one
  // chained std::min per term) of the historical monolithic backward
  // sweep, so IncrementalSta can replay this kernel bit-identically.
  auto& req = required[static_cast<std::size_t>(id)];
  req = nl.node(id).is_output ? std::array<double, 2>{tc_ps, tc_ps}
                              : std::array<double, 2>{kInf, kInf};
  for (NodeId g : nl.fanouts(id)) {
    const liberty::Cell& cell = nl.cell_of(g);
    const double cin = nl.cin_ff(g);
    const double cload = nl.load_ff(g) + nl.cpar_ff(g);
    for (Edge eout : {Edge::Rise, Edge::Fall}) {
      for (Edge ein : cause_edges(cell, eout)) {
        const double w =
            dm_->delay_ps(cell, eout, result.slew(id, ein), cin, cload) *
            dm_->vt_derate(nl.node(g).vt, eout);
        double& cell_req = req[StaResult::idx(ein)];
        cell_req = std::min(
            cell_req,
            required[static_cast<std::size_t>(g)][StaResult::idx(eout)] - w);
      }
    }
  }
}

double Sta::compute_slack(
    NodeId id, const StaResult& result,
    const std::vector<std::array<double, 2>>& required) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto i = static_cast<std::size_t>(id);
  double slack = kInf;
  for (Edge e : {Edge::Rise, Edge::Fall}) {
    const double at = result.arrival_ps[i][StaResult::idx(e)];
    if (at == kNegInf) continue;
    slack = std::min(slack, required[i][StaResult::idx(e)] - at);
  }
  return slack;
}

std::vector<std::array<double, 2>> Sta::required_times(const StaResult& result,
                                                       double tc_ps) const {
  const Netlist& nl = *nl_;
  std::vector<std::array<double, 2>> required(nl.size());
  if (!level_parallel()) {
    const auto& topo = nl.topo_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it)
      compute_required(*it, result, tc_ps, required);
  } else {
    // Same descending-level fan-out as downstream_delays(): a node reads
    // only its fanouts' required times, all strictly deeper.
    const std::vector<std::vector<NodeId>> levels = depth_levels();
    obs::Span span("sta/level_sweep");
    span.arg("nodes", static_cast<double>(nl.size()));
    span.arg("levels", static_cast<double>(levels.size()));
    span.arg("workers", static_cast<double>(opt_.level_parallel_workers));
    util::ThreadPool& pool = util::ThreadPool::global();
    for (auto lit = levels.rbegin(); lit != levels.rend(); ++lit) {
      const std::vector<NodeId>& level = *lit;
      pool.for_chunks(level.size(), opt_.level_parallel_workers,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i)
                          compute_required(level[i], result, tc_ps, required);
                      });
    }
  }
  return required;
}

std::vector<double> Sta::slacks(const StaResult& result, double tc_ps) const {
  const std::size_t n = nl_->size();
  const std::vector<std::array<double, 2>> required =
      required_times(result, tc_ps);
  std::vector<double> slack(n);
  for (std::size_t i = 0; i < n; ++i)
    slack[i] = compute_slack(static_cast<NodeId>(i), result, required);
  return slack;
}

}  // namespace pops::timing
