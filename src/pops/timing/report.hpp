#pragma once
// Textual timing reports — the analysis half of POPS ("a tool for
// analyzing and optimizing combinatorial circuit paths").
//
// Produces the familiar STA report artifacts:
//   * a path report: per-stage arrival/delay/slew/load breakdown of the
//     K most critical paths;
//   * an endpoint summary: slack per primary output against a constraint;
//   * a histogram of endpoint slacks (text buckets).
//
// These are plain strings so examples, the CLI and tests can consume them
// uniformly.

#include <string>

#include "pops/netlist/netlist.hpp"
#include "pops/timing/sta.hpp"

namespace pops::timing {

struct ReportOptions {
  std::size_t max_paths = 3;      ///< paths in the path report
  double tc_ps = -1.0;            ///< constraint; < 0 uses the critical delay
  int histogram_buckets = 8;
};

/// Per-stage breakdown of the K most critical paths.
std::string report_paths(const netlist::Netlist& nl, const Sta& sta,
                         const StaResult& result,
                         const ReportOptions& opt = {});

/// Slack per primary output, worst first.
std::string report_endpoints(const netlist::Netlist& nl, const Sta& sta,
                             const StaResult& result,
                             const ReportOptions& opt = {});

/// Text histogram of endpoint slacks.
std::string report_slack_histogram(const netlist::Netlist& nl, const Sta& sta,
                                   const StaResult& result,
                                   const ReportOptions& opt = {});

}  // namespace pops::timing
