#pragma once
// NLDM-style lookup-table delay-model backend.
//
// The closed-form model of eq. (1-3) is only valid in the fast-input-
// control range; industrial low-power flows characterize cells into
// (input-slew x load) tables instead and interpolate. TableModel is that
// backend: per cell per output edge, a delay table and a transition table
// over an (input slew, normalized load) grid, evaluated with bilinear
// interpolation and clamped (NLDM-style saturation) outside the grid.
//
// The load axis is the *normalized* load CL/CIN — the effort variable of
// the whole code base. Gates here are continuously sized (CIN is the free
// sizing variable), so absolute-capacitance tables would need a third
// axis; under the eq. (2) scaling delay and transition depend on the
// (slew, CL/CIN) pair only, which makes the normalized axis exact for the
// closed form and the natural generalization for any backend.
//
// A TableModel is built by `characterize(src, opt)`: sample any other
// DelayModel backend on the grid, per cell per edge — the "library
// characterization" step of a table-driven flow. At grid points the table
// reproduces the source bit-for-bit; between points bilinear interpolation
// bounds the error by the source model's curvature over one grid cell
// (the closed form is linear in slew and nearly linear in CL/CIN, so
// errors concentrate in the Miller term; see tests/test_table_model.cpp
// for the stated parity tolerances).

#include <cstdint>
#include <string>
#include <vector>

#include "pops/timing/delay_model.hpp"

namespace pops::timing {

/// One 2-D characterization table: values over (slew x normalized load),
/// slew-major. Axes are strictly ascending; evaluation clamps to the grid
/// envelope and interpolates bilinearly inside it (exact at grid points).
/// An axis may be collapsed to a single point (a dimension the arc does
/// not depend on — the slew axis of transition tables, since the generic
/// contract's transition is slew-independent).
struct Table2D {
  std::vector<double> slew_ps;     ///< input-slew axis (ps)
  std::vector<double> load_ratio;  ///< CL/CIN axis (dimensionless)
  std::vector<double> values;      ///< slew_ps.size() * load_ratio.size()

  double at(double slew, double ratio) const;
};

/// Characterization grid of a TableModel.
struct TableModelOptions {
  /// Input-slew sample points (ps), strictly ascending, > 0.
  std::vector<double> slew_grid_ps = {1.0,  2.0,  5.0,   10.0,  20.0,
                                      40.0, 80.0, 160.0, 320.0, 640.0};
  /// Normalized-load (CL/CIN) sample points, strictly ascending, > 0.
  std::vector<double> load_grid = {0.1, 0.25, 0.5, 1.0,  2.0,  4.0,
                                   8.0, 16.0, 32.0, 64.0, 128.0};

  /// Every violated invariant, as human-readable diagnostics.
  std::vector<std::string> problems() const;

  /// Stable identity of this grid ("table#<hash>") — the selector of any
  /// TableModel characterized with it (see DelayModel::selector()).
  std::string selector() const;
};

/// Lookup-table backend. Immutable after characterization; cheap to copy
/// relative to an optimization run (a few thousand doubles).
class TableModel final : public DelayModel {
 public:
  /// Characterize from `src` by sampling its delay/transition per cell per
  /// edge over the grid of `opt`. Throws std::invalid_argument on an
  /// invalid grid.
  static TableModel characterize(const DelayModel& src,
                                 const TableModelOptions& opt = {});

  // ----- DelayModel -----------------------------------------------------------

  std::string_view name() const noexcept override { return "table"; }
  std::uint64_t content_hash() const noexcept override {
    return content_hash_;
  }
  std::string selector() const override { return selector_; }

  double transition_ps(const liberty::Cell& cell, Edge out_edge, double cin_ff,
                       double cload_ff) const override;
  double delay_ps(const liberty::Cell& cell, Edge out_edge, double tin_ps,
                  double cin_ff, double cload_ff) const override;
  double default_input_slew_ps() const override {
    return default_slew_ps_;  // precomputed: tables are hot-loop lookups
  }
  double slope_sensitivity(Edge next_out_edge) const override {
    return slope_sens_[next_out_edge == Edge::Rise ? 0 : 1];
  }

  // ----- introspection --------------------------------------------------------

  const TableModelOptions& options() const noexcept { return opt_; }
  /// The tables of one (cell kind, output edge) arc.
  const Table2D& delay_table(liberty::CellKind kind, Edge e) const;
  const Table2D& transition_table(liberty::CellKind kind, Edge e) const;

 private:
  explicit TableModel(const liberty::Library& lib) : DelayModel(lib) {}

  struct CellTables {
    Table2D delay[2];       ///< [rise, fall]
    Table2D transition[2];  ///< [rise, fall]
  };
  static std::size_t edge_index(Edge e) noexcept {
    return e == Edge::Rise ? 0 : 1;
  }

  TableModelOptions opt_;
  std::vector<CellTables> cells_;  ///< indexed by CellKind value
  double default_slew_ps_ = 0.0;
  double slope_sens_[2] = {0.0, 0.0};  ///< [rise, fall]
  std::uint64_t content_hash_ = 0;
  std::string selector_;
};

}  // namespace pops::timing
