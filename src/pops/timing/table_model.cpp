#include "pops/timing/table_model.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "pops/util/hash.hpp"

namespace pops::timing {

using util::Fnv1a;

namespace {

void check_axis(const std::vector<double>& axis, const char* name,
                std::vector<std::string>& out) {
  if (axis.size() < 2) {
    out.push_back(std::string(name) + " needs at least 2 points");
    return;
  }
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (!(axis[i] > 0.0)) {
      out.push_back(std::string(name) + " points must be > 0");
      return;
    }
    if (i > 0 && !(axis[i] > axis[i - 1])) {
      out.push_back(std::string(name) + " must be strictly ascending");
      return;
    }
  }
}

/// Index i with axis[i] <= v < axis[i+1], clamped to [0, n-2]; `t` the
/// interpolation weight in [0, 1] (0 at axis[i] — grid points are exact).
/// A single-point axis (a collapsed dimension, e.g. the slew axis of a
/// transition table) always selects its one point with t = 0.
std::size_t segment(const std::vector<double>& axis, double v, double& t) {
  if (axis.size() == 1 || v <= axis.front()) {
    t = 0.0;
    return 0;
  }
  if (v >= axis.back()) {
    t = 1.0;
    return axis.size() - 2;
  }
  const std::size_t hi = static_cast<std::size_t>(
      std::upper_bound(axis.begin(), axis.end(), v) - axis.begin());
  const std::size_t i = hi - 1;
  t = (v - axis[i]) / (axis[i + 1] - axis[i]);
  return i;
}

}  // namespace

namespace {

/// Endpoint-exact linear interpolation: t == 0/1 return a/b bit-for-bit
/// (a + 1.0*(b-a) may round), so every grid point — including the axis
/// maxima — reproduces its characterized value exactly.
double lerp(double a, double b, double t) {
  if (t == 0.0) return a;
  if (t == 1.0) return b;
  return a + t * (b - a);
}

}  // namespace

double Table2D::at(double slew, double ratio) const {
  double ts = 0.0, tr = 0.0;
  const std::size_t i = segment(slew_ps, slew, ts);
  const std::size_t j = segment(load_ratio, ratio, tr);
  const std::size_t nl = load_ratio.size();
  // Corner reads are gated on the weights so collapsed (single-point)
  // axes never index a row/column that does not exist.
  const auto interp_row = [&](std::size_t row) {
    const double a = values[row * nl + j];
    return tr == 0.0 ? a : lerp(a, values[row * nl + j + 1], tr);
  };
  const double lo = interp_row(i);
  return ts == 0.0 ? lo : lerp(lo, interp_row(i + 1), ts);
}

std::vector<std::string> TableModelOptions::problems() const {
  std::vector<std::string> out;
  check_axis(slew_grid_ps, "table_model.slew_grid_ps", out);
  check_axis(load_grid, "table_model.load_grid", out);
  return out;
}

std::string TableModelOptions::selector() const {
  Fnv1a h;
  h.f64s(slew_grid_ps);
  h.f64s(load_grid);
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h.h));
  return std::string("table#") + buf;
}

TableModel TableModel::characterize(const DelayModel& src,
                                    const TableModelOptions& opt) {
  {
    const std::vector<std::string> problems = opt.problems();
    if (!problems.empty()) {
      std::string msg = "TableModel::characterize: invalid grid:";
      for (const std::string& p : problems) msg += "\n  - " + p;
      throw std::invalid_argument(msg);
    }
  }

  const liberty::Library& lib = src.lib();
  TableModel tm(lib);
  tm.opt_ = opt;
  tm.selector_ = opt.selector();
  tm.cells_.resize(liberty::kCellKindCount);

  const std::size_t ns = opt.slew_grid_ps.size();
  const std::size_t nl = opt.load_grid.size();

  Fnv1a hash;
  hash.f64s(opt.slew_grid_ps);
  hash.f64s(opt.load_grid);

  for (const liberty::Cell& cell : lib.cells()) {
    CellTables& ct = tm.cells_[static_cast<std::size_t>(cell.kind)];
    // Any positive operating point works (the generic contract scales in
    // CL/CIN); the unit point makes cload == ratio bit-for-bit, so
    // re-characterizing a table on the same grid is content-identical.
    const double cin = 1.0;
    for (const Edge e : {Edge::Rise, Edge::Fall}) {
      Table2D& dt = ct.delay[edge_index(e)];
      dt.slew_ps = opt.slew_grid_ps;
      dt.load_ratio = opt.load_grid;
      dt.values.reserve(ns * nl);
      for (const double s : opt.slew_grid_ps)
        for (const double r : opt.load_grid)
          dt.values.push_back(src.delay_ps(cell, e, s, cin, r * cin));
      hash.f64s(dt.values);

      // The generic contract's transition takes no input slew (eq. 2
      // shape), so the transition table's slew axis collapses to one
      // point — one characterized row, not ns identical copies.
      Table2D& tt = ct.transition[edge_index(e)];
      tt.slew_ps = {opt.slew_grid_ps.front()};
      tt.load_ratio = opt.load_grid;
      tt.values.reserve(nl);
      for (const double r : opt.load_grid)
        tt.values.push_back(src.transition_ps(cell, e, cin, r * cin));
      hash.f64s(tt.values);
    }
  }
  tm.content_hash_ = hash.h;

  // Precompute the hot-loop scalars through the *table* evaluation (the
  // base-class implementations), so a characterized backend is internally
  // consistent even where it deviates from its source between grid points.
  tm.default_slew_ps_ = tm.DelayModel::default_input_slew_ps();
  tm.slope_sens_[0] = tm.DelayModel::slope_sensitivity(Edge::Rise);
  tm.slope_sens_[1] = tm.DelayModel::slope_sensitivity(Edge::Fall);
  return tm;
}

double TableModel::transition_ps(const liberty::Cell& cell, Edge out_edge,
                                 double cin_ff, double cload_ff) const {
  if (!(cin_ff > 0.0))
    throw std::invalid_argument("TableModel::transition_ps: cin must be > 0");
  // The generic contract's transition is slew-independent (eq. 2 shape);
  // the transition table's slew axis is collapsed to a single point.
  const Table2D& t = transition_table(cell.kind, out_edge);
  return t.at(t.slew_ps.front(), cload_ff / cin_ff);
}

double TableModel::delay_ps(const liberty::Cell& cell, Edge out_edge,
                            double tin_ps, double cin_ff,
                            double cload_ff) const {
  if (tin_ps < 0.0)
    throw std::invalid_argument("TableModel::delay_ps: negative input slew");
  if (!(cin_ff > 0.0))
    throw std::invalid_argument("TableModel::delay_ps: cin must be > 0");
  return delay_table(cell.kind, out_edge).at(tin_ps, cload_ff / cin_ff);
}

const Table2D& TableModel::delay_table(liberty::CellKind kind, Edge e) const {
  return cells_.at(static_cast<std::size_t>(kind)).delay[edge_index(e)];
}

const Table2D& TableModel::transition_table(liberty::CellKind kind,
                                            Edge e) const {
  return cells_.at(static_cast<std::size_t>(kind)).transition[edge_index(e)];
}

}  // namespace pops::timing
