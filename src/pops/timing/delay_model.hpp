#pragma once
// Delay-model backends.
//
// DelayModel is the polymorphic evaluation contract every timing consumer
// (Sta, BoundedPath, the core solvers, the liberty writer) is written
// against: transition time and delay of one stage given the cell, the
// output edge, the input slew and the (CIN, CL) operating point. Two
// backends implement it:
//
//   * ClosedFormModel — the paper's closed-form CMOS timing model
//     (eq. 1-3), after Maurine/Rezzoug/Azemard/Auvergne, IEEE TCAD 21(11),
//     2002 and Jeppson, JSSC 29, 1994 for the input-to-output coupling:
//
//       Transition time (eq. 2-3):
//         tau_outHL = S_HL * tau * CL/CIN      S_HL = (1+k) * DW_HL
//         tau_outLH = S_LH * tau * CL/CIN      S_LH = R * (1+k)/k * DW_LH
//
//       Delay (eq. 1) for a falling output (rising input), and dually:
//         t_HL = (v_TN/2) * tau_inLH + (1/2) * (1 + 2*CM/(CM+CL)) * tau_outHL
//
//       CM is the input-output coupling capacitance, evaluated as one half
//       of the input capacitance of the P (resp. N) transistor for a
//       rising (resp. falling) input edge. The model is valid in the *fast
//       input control range*.
//
//   * TableModel (table_model.hpp) — an NLDM-style lookup-table backend:
//     per cell per edge, delay and transition over an (input-slew x
//     normalized-load) grid with bilinear interpolation, characterized
//     from any other backend.
//
// The generic contract is deliberately small; the closed-form-only
// queries the protocol's link equations exploit (symmetry_factor,
// miller_factor, reduced_vt, coupling_ff) live on ClosedFormModel, and
// consumers that want them ask for the downcast via closed_form() —
// falling back to the numeric estimates the base class provides when the
// backend is not closed-form.

#include <cstdint>
#include <string>
#include <string_view>

#include "pops/liberty/library.hpp"

namespace pops::timing {

class ClosedFormModel;

/// Signal transition direction at a gate *output*.
enum class Edge { Rise, Fall };

/// The opposite edge; for an inverting cell, the input edge that causes an
/// output `e` is flip(e).
constexpr Edge flip(Edge e) noexcept {
  return e == Edge::Rise ? Edge::Fall : Edge::Rise;
}

const char* to_string(Edge e) noexcept;

/// Delay and output transition of one evaluated stage.
struct StageTiming {
  double delay_ps = 0.0;  ///< 50%-to-50% propagation delay
  double tout_ps = 0.0;   ///< output transition time
};

/// Polymorphic delay-model backend over a Library.
///
/// Lifetime: a backend keeps a non-owning pointer to the library it was
/// built over; the library must outlive the backend. api::OptContext owns
/// one backend next to its library with the lifetimes tied together (and
/// rejects backends built over a foreign library).
class DelayModel {
 public:
  explicit DelayModel(const liberty::Library& lib) : lib_(&lib) {}
  virtual ~DelayModel() = default;

  const liberty::Library& lib() const noexcept { return *lib_; }

  // ----- backend identity -----------------------------------------------------

  /// Stable backend family name ("closed-form", "table"); reported in
  /// sweep records and folded into result-cache keys.
  virtual std::string_view name() const noexcept = 0;

  /// Hash of everything (beyond the shared library/technology) that
  /// determines this backend's numbers — for a table backend, the grid and
  /// every tabulated value. Two backends with equal (name, content_hash)
  /// over the same library evaluate identically, so result caches key on
  /// the pair to keep backends from ever aliasing.
  virtual std::uint64_t content_hash() const noexcept = 0;

  /// Identity of the *selection* that produced this backend (family name
  /// plus construction parameters). api::Optimizer compares it against
  /// OptimizerConfig::delay_model_selector() to decide whether the
  /// context's installed backend already satisfies a config.
  virtual std::string selector() const { return std::string(name()); }

  /// Downcast query: non-null iff this backend is the closed-form model,
  /// giving consumers access to the eq. (1-3)-only queries. Callers must
  /// handle nullptr by using the generic numeric fallbacks.
  virtual const ClosedFormModel* closed_form() const noexcept {
    return nullptr;
  }

  // ----- generic evaluation contract ------------------------------------------

  /// Output transition time (ps) of `cell` at drive `cin_ff` discharging
  /// `cload_ff`. Requires cin_ff > 0 (std::invalid_argument otherwise).
  virtual double transition_ps(const liberty::Cell& cell, Edge out_edge,
                               double cin_ff, double cload_ff) const = 0;

  /// Gate delay (ps). `tin_ps` is the transition time of the *input*
  /// signal (the output transition of the previous stage); negative slews
  /// throw std::invalid_argument.
  virtual double delay_ps(const liberty::Cell& cell, Edge out_edge,
                          double tin_ps, double cin_ff,
                          double cload_ff) const = 0;

  /// Delay and output transition together.
  StageTiming stage(const liberty::Cell& cell, Edge out_edge, double tin_ps,
                    double cin_ff, double cload_ff) const;

  /// Multiplicative timing derate of a gate on Vt class `vt_class`
  /// (Technology::vt_classes index) for the given output edge: the
  /// alpha-power-law drive-current ratio
  ///   ((VDD - Vt_base) / (VDD - Vt_class))^alpha
  /// with the NMOS (vtn, alpha_n) pair for a falling output and the PMOS
  /// (vtp, alpha_p) pair for a rising one. Exactly 1.0 for the default
  /// class 0, so single-Vt netlists are timed bit-identically. Sta applies
  /// it uniformly on every backend's transition/delay numbers — a table
  /// backend characterized at base Vt is derated the same way the closed
  /// form is. Throws std::out_of_range for a class the technology lacks.
  double vt_derate(int vt_class, Edge out_edge) const;

  /// Default input transition (ps) assumed at a path input: the output
  /// transition of a reference inverter driving an equal-size load (FO1),
  /// i.e. the latch/driver is neither very fast nor degraded. The base
  /// implementation measures it through transition_ps.
  virtual double default_input_slew_ps() const;

  /// Sensitivity d(delay)/d(input slew) of a downstream stage whose output
  /// makes `next_out_edge`, measured on the reference inverter at FO1. For
  /// the closed form this is exactly v_T/2 — the slope coefficient of
  /// eq. (1); the base implementation differentiates delay_ps numerically
  /// so any backend supplies a consistent estimate.
  virtual double slope_sensitivity(Edge next_out_edge) const;

  /// The stage weight A_i of the link equations (eq. 4/6): with the path
  /// delay written as  T = sum_i A_i * CL_i / CIN_i + const,  stage i's
  /// output transition contributes to its own delay through the Miller
  /// term and to stage i+1's delay through the slope term. The closed form
  /// overrides this with the analytic
  ///   A_i = tau * S_i(edge) * [ miller_factor/2 + v_T(i+1)/2 ]
  /// (Miller factor frozen at the current sizes, re-evaluated between
  /// fixed-point sweeps, exactly as the paper's "A_i correspond to the
  /// design parameters involved in (1,2)"). The base implementation is the
  /// numeric fallback for non-closed-form backends: a central difference
  /// of [own delay + slope coupling into the next stage] in the load at
  /// fixed CIN.
  virtual double stage_coefficient(const liberty::Cell& cell, Edge out_edge,
                                   double cin_ff, double cload_ff,
                                   bool has_successor,
                                   Edge next_out_edge) const;

 private:
  const liberty::Library* lib_;
};

/// Evaluator for eq. (1-3) over a Library. Stateless and cheap to copy.
class ClosedFormModel final : public DelayModel {
 public:
  explicit ClosedFormModel(const liberty::Library& lib) : DelayModel(lib) {}

  // ----- DelayModel -----------------------------------------------------------

  std::string_view name() const noexcept override { return "closed-form"; }
  std::uint64_t content_hash() const noexcept override;
  const ClosedFormModel* closed_form() const noexcept override {
    return this;
  }

  double transition_ps(const liberty::Cell& cell, Edge out_edge, double cin_ff,
                       double cload_ff) const override;
  double delay_ps(const liberty::Cell& cell, Edge out_edge, double tin_ps,
                  double cin_ff, double cload_ff) const override;
  double default_input_slew_ps() const override;
  double slope_sensitivity(Edge next_out_edge) const override;
  double stage_coefficient(const liberty::Cell& cell, Edge out_edge,
                           double cin_ff, double cload_ff, bool has_successor,
                           Edge next_out_edge) const override;

  // ----- closed-form-only queries (eq. 1-3 structure) -------------------------

  /// Symmetry factor S_edge of eq. (3) for `cell`.
  double symmetry_factor(const liberty::Cell& cell,
                         Edge out_edge) const noexcept;

  /// Input-to-output coupling capacitance CM (fF): half the input
  /// capacitance of the transistor that is being driven through —
  /// P for a rising input (falling output), N for a falling input.
  double coupling_ff(const liberty::Cell& cell, Edge out_edge,
                     double cin_ff) const noexcept;

  /// Miller amplification factor (1 + 2*CM/(CM+CL)) of eq. (1).
  double miller_factor(const liberty::Cell& cell, Edge out_edge, double cin_ff,
                       double cload_ff) const noexcept;

  /// Reduced threshold voltage entering the slope term of eq. (1):
  /// v_TN for a falling output (rising input), v_TP for a rising output.
  double reduced_vt(Edge out_edge) const noexcept;
};

}  // namespace pops::timing
