#pragma once
// The paper's closed-form CMOS timing model (eq. 1-3), after
// Maurine/Rezzoug/Azemard/Auvergne, IEEE TCAD 21(11), 2002 and
// Jeppson, JSSC 29, 1994 for the input-to-output coupling.
//
//   Transition time (eq. 2-3):
//     tau_outHL = S_HL * tau * CL/CIN      S_HL = (1+k) * DW_HL
//     tau_outLH = S_LH * tau * CL/CIN      S_LH = R * (1+k)/k * DW_LH
//
//   Delay (eq. 1) for a falling output (rising input), and dually:
//     t_HL = (v_TN/2) * tau_inLH + (1/2) * (1 + 2*CM/(CM+CL)) * tau_outHL
//
//   CM is the input-output coupling capacitance, evaluated as one half of
//   the input capacitance of the P (resp. N) transistor for a rising
//   (resp. falling) input edge.
//
// The model is valid in the *fast input control range*; all optimisation
// metrics in the paper (and here) assume it.

#include "pops/liberty/library.hpp"

namespace pops::timing {

/// Signal transition direction at a gate *output*.
enum class Edge { Rise, Fall };

/// The opposite edge; for an inverting cell, the input edge that causes an
/// output `e` is flip(e).
constexpr Edge flip(Edge e) noexcept {
  return e == Edge::Rise ? Edge::Fall : Edge::Rise;
}

const char* to_string(Edge e) noexcept;

/// Delay and output transition of one evaluated stage.
struct StageTiming {
  double delay_ps = 0.0;  ///< 50%-to-50% propagation delay
  double tout_ps = 0.0;   ///< output transition time
};

/// Evaluator for eq. (1-3) over a Library. Stateless and cheap to copy.
class DelayModel {
 public:
  explicit DelayModel(const liberty::Library& lib) : lib_(&lib) {}

  const liberty::Library& lib() const noexcept { return *lib_; }

  /// Symmetry factor S_edge of eq. (3) for `cell`.
  double symmetry_factor(const liberty::Cell& cell, Edge out_edge) const noexcept;

  /// Output transition time (ps), eq. (2): S_edge * tau * CL/CIN.
  /// Requires cin_ff > 0.
  double transition_ps(const liberty::Cell& cell, Edge out_edge, double cin_ff,
                       double cload_ff) const;

  /// Input-to-output coupling capacitance CM (fF): half the input
  /// capacitance of the transistor that is being driven through —
  /// P for a rising input (falling output), N for a falling input.
  double coupling_ff(const liberty::Cell& cell, Edge out_edge,
                     double cin_ff) const noexcept;

  /// Miller amplification factor (1 + 2*CM/(CM+CL)) of eq. (1).
  double miller_factor(const liberty::Cell& cell, Edge out_edge, double cin_ff,
                       double cload_ff) const noexcept;

  /// Reduced threshold voltage entering the slope term of eq. (1):
  /// v_TN for a falling output (rising input), v_TP for a rising output.
  double reduced_vt(Edge out_edge) const noexcept;

  /// Gate delay (ps), eq. (1). `tin_ps` is the transition time of the
  /// *input* signal (the output transition of the previous stage).
  double delay_ps(const liberty::Cell& cell, Edge out_edge, double tin_ps,
                  double cin_ff, double cload_ff) const;

  /// Delay and output transition together.
  StageTiming stage(const liberty::Cell& cell, Edge out_edge, double tin_ps,
                    double cin_ff, double cload_ff) const;

  /// The stage weight A_i of the link equations (eq. 4/6): with the path
  /// delay written as  T = sum_i A_i * CL_i / CIN_i + const,  stage i's
  /// output transition contributes to its own delay through the Miller
  /// term and to stage i+1's delay through the slope term, so
  ///   A_i = tau * S_i(edge) * [ miller_factor/2 + v_T(i+1)/2 ]
  /// where v_T(i+1) is the reduced threshold of the next stage's output
  /// edge, or 0 for the last stage of the path.
  /// The weak dependence of the Miller factor on the sizes is re-evaluated
  /// between fixed-point sweeps, exactly as the paper's "A_i correspond to
  /// the design parameters involved in (1,2)".
  double stage_coefficient(const liberty::Cell& cell, Edge out_edge,
                           double cin_ff, double cload_ff,
                           bool has_successor, Edge next_out_edge) const;

  /// Default input transition (ps) assumed at a path input: the output
  /// transition of a reference inverter driving an equal-size load (FO1),
  /// i.e. the latch/driver is neither very fast nor degraded.
  double default_input_slew_ps() const noexcept;

 private:
  const liberty::Library* lib_;
};

}  // namespace pops::timing
