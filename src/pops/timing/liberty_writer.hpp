#pragma once
// Liberty (.lib) export of the characterised library.
//
// Generates an NLDM-style Liberty view from any delay-model backend:
// for every cell and every pin-to-output arc, `cell_rise`/`cell_fall`
// delay tables and `rise_transition`/`fall_transition` slew tables over an
// (input transition x output load) grid, evaluated through the backend
// (eq. 1-3 closed form or a characterized TableModel) at a reference
// drive. This is the artifact a downstream synthesis/STA tool
// would consume, and it doubles as a tabulated snapshot of the model that
// external tools can diff against.
//
// The format targets the widely-parsed Liberty subset (library-level
// units, lu_table_template, cell/pin/timing groups); it is not a complete
// Liberty implementation.

#include <iosfwd>
#include <string>
#include <vector>

#include "pops/liberty/library.hpp"
#include "pops/timing/delay_model.hpp"

namespace pops::timing {

struct LibertyWriterOptions {
  std::string library_name = "pops_cmos025";
  /// Drive (NMOS width multiple of wmin) at which cells are tabulated.
  double drive_x = 4.0;
  /// Input transition grid (ps).
  std::vector<double> slew_grid_ps = {10.0, 25.0, 50.0, 100.0, 200.0, 400.0};
  /// Output load grid, in multiples of the cell's own input capacitance
  /// (fanout); converted to fF per cell.
  std::vector<double> fanout_grid = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
};

/// Write the Liberty text for all cells of `dm.lib()`.
/// Throws std::invalid_argument on an empty grid.
void write_liberty(std::ostream& out, const DelayModel& dm,
                   const LibertyWriterOptions& opt = {});

/// Convenience: to a string.
std::string write_liberty_string(const DelayModel& dm,
                                 const LibertyWriterOptions& opt = {});

}  // namespace pops::timing
