#pragma once
// Static timing analysis over a Netlist with the closed-form delay model.
//
// Per-edge (rise/fall) arrival times and transition times are propagated in
// topological order; phase-definite cells (INV/NAND/NOR/AOI/OAI invert,
// BUF does not) constrain which input edge causes which output edge, and
// XOR/XNOR conservatively consider both. Backtracking pointers reconstruct
// the critical path, and a K-longest-paths enumeration (in the spirit of
// Yen/Du/Ghanta, DAC'89 — ref [11] of the paper) supplies the "user
// specified limited number of paths" POPS optimises.

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "pops/netlist/netlist.hpp"
#include "pops/timing/delay_model.hpp"

namespace pops::timing {

/// A (node, output-edge) pair — one vertex of the timing graph.
struct PathPoint {
  netlist::NodeId node = netlist::kNoNode;
  Edge edge = Edge::Rise;
  bool operator==(const PathPoint&) const = default;
};

/// One complete PI->PO path with its total delay.
struct TimedPath {
  std::vector<PathPoint> points;  ///< PI first, PO last
  double delay_ps = 0.0;
};

/// Options for the analysis.
struct StaOptions {
  /// Transition time assumed at every primary input; <= 0 selects the
  /// model's default (FO1 reference inverter).
  double pi_slew_ps = -1.0;

  /// Level-parallel sweeps: > 1 partitions forward/backward propagation
  /// by topological level and fans each level out across
  /// util::ThreadPool workers. Per-node writes are disjoint and a level
  /// reads only finished earlier (forward) / deeper (backward) levels,
  /// so results are bitwise-identical to the sequential path at any
  /// worker count (test-enforced).
  std::size_t level_parallel_workers = 1;

  /// Netlists below this node count keep the sequential path even when
  /// workers > 1: per-level fan-out overhead dominates on small circuits
  /// (all ISCAS benchmarks stay sequential at the default).
  std::size_t level_parallel_min_nodes = 50000;
};

/// Full analysis result.
struct StaResult {
  /// Arrival time per node per edge (index with `idx(Edge)`); -inf if the
  /// (node, edge) vertex is unreachable.
  std::vector<std::array<double, 2>> arrival_ps;
  /// Output transition time per node per edge.
  std::vector<std::array<double, 2>> slew_ps;
  /// Which (fanin, fanin-edge) realised the max arrival, for backtracking.
  std::vector<std::array<PathPoint, 2>> prev;

  double critical_delay_ps = 0.0;
  PathPoint critical_endpoint;

  static std::size_t idx(Edge e) noexcept { return e == Edge::Rise ? 0 : 1; }

  double arrival(netlist::NodeId n, Edge e) const {
    return arrival_ps[static_cast<std::size_t>(n)][idx(e)];
  }
  double slew(netlist::NodeId n, Edge e) const {
    return slew_ps[static_cast<std::size_t>(n)][idx(e)];
  }
};

class IncrementalSta;

class Sta {
 public:
  Sta(const netlist::Netlist& nl, const DelayModel& dm, StaOptions opt = {});

  /// Run forward propagation; O(E) in the netlist size.
  StaResult run() const;

  /// Reconstruct the critical path from a completed result.
  TimedPath critical_path(const StaResult& result) const;

  /// The K longest PI->PO paths, in non-increasing delay order. Edge delays
  /// are frozen at the slews of `result` (standard K-critical-paths
  /// approximation). Returns fewer than k paths if the graph has fewer.
  std::vector<TimedPath> k_critical_paths(const StaResult& result,
                                          std::size_t k) const;

  /// Longest remaining delay (ps) from each timing-graph vertex
  /// (vertex = 2*node + StaResult::idx(edge)) to any PO, at the slews of
  /// `result`: 0 at a PO vertex itself, -inf where no PO is reachable.
  /// This is the bound function of the K-paths enumeration; IncrementalSta
  /// maintains these values across netlist edits instead of recomputing
  /// the whole vector per round.
  std::vector<double> downstream_delays(const StaResult& result) const;

  /// K-paths enumeration with a precomputed bound vector (must equal
  /// downstream_delays(result) — bit-identical results are only guaranteed
  /// then). The two-argument overload computes `down` and forwards here.
  std::vector<TimedPath> k_critical_paths(const StaResult& result,
                                          std::size_t k,
                                          const std::vector<double>& down) const;

  /// Required time per node per edge against a required arrival `tc_ps`
  /// at every PO: the backward min-propagation of slacks(), exposed so
  /// consumers (and IncrementalSta's maintained vectors) share one
  /// bit-exact definition. +inf where no PO constrains the vertex.
  std::vector<std::array<double, 2>> required_times(const StaResult& result,
                                                    double tc_ps) const;

  /// Per-node slack against a required time `tc_ps` at every PO, for the
  /// worse edge: slack(n) = min over edges of (required - arrival).
  std::vector<double> slacks(const StaResult& result, double tc_ps) const;

 private:
  friend class IncrementalSta;  // reuses the per-node kernels below

  /// Input edges of `cell` that can cause output edge `out`:
  /// returns one edge for phase-definite cells, both for XOR/XNOR.
  static std::vector<Edge> cause_edges(const liberty::Cell& cell, Edge out);

  /// Recompute slew/arrival/prev of gate `id` (both edges) from the fanin
  /// values in `r` — the per-node kernel of run(). Deterministic in its
  /// inputs, so replaying it on an unchanged neighbourhood is bit-identical.
  void compute_node(netlist::NodeId id, StaResult& r) const;

  /// Downstream longest delay of one vertex from its fanouts' `down`
  /// values — the per-vertex kernel of downstream_delays().
  double compute_down(netlist::NodeId id, Edge e, const StaResult& result,
                      const std::vector<double>& down) const;

  /// Recompute required[id] (both edges) from the fanouts' finalized
  /// `required` values — the per-node kernel of required_times(). Same
  /// operation order as the historical monolithic sweep, so replaying it
  /// on an unchanged neighbourhood is bit-identical.
  void compute_required(netlist::NodeId id, const StaResult& result,
                        double tc_ps,
                        std::vector<std::array<double, 2>>& required) const;

  /// slack(id) from finalized arrivals and required times — the per-node
  /// kernel of slacks().
  double compute_slack(netlist::NodeId id, const StaResult& result,
                       const std::vector<std::array<double, 2>>& required)
      const;

  /// Scan POs for the critical delay/endpoint; throws when no PO is
  /// reachable (same contract as run()).
  void finalize_critical(StaResult& r) const;

  /// True when this netlist/options pair takes the level-parallel path.
  bool level_parallel() const noexcept;

  /// All nodes bucketed by gate depth (depth 0 = PIs), each bucket in
  /// topo order. Forward sweeps walk buckets ascending, backward sweeps
  /// descending; within a bucket nodes are independent.
  std::vector<std::vector<netlist::NodeId>> depth_levels() const;

  const netlist::Netlist* nl_;
  const DelayModel* dm_;
  StaOptions opt_;
};

}  // namespace pops::timing
