#include "pops/timing/incremental_sta.hpp"

#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"

namespace pops::timing {

using netlist::Netlist;
using netlist::NodeId;

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Bitwise double comparison: the identity guarantee is "same bits as a
/// cold run", so the change test must distinguish what == would conflate
/// (±0.0) and not conflate what == would split (NaN never propagates as
/// "unchanged").
inline bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

IncrementalSta::IncrementalSta(const Netlist& nl, const DelayModel& dm,
                               StaOptions opt)
    : nl_(&nl), dm_(&dm), sta_(nl, dm, opt) {
  // Sta's constructor resolved a non-positive pi_slew to the model
  // default; mirror the resolved value for array initialization.
  pi_slew_ps_ = sta_.opt_.pi_slew_ps;
}

const StaResult& IncrementalSta::result() const {
  if (!valid_)
    throw std::logic_error("IncrementalSta: no result yet (call run_full)");
  return res_;
}

void IncrementalSta::invalidate() noexcept {
  valid_ = false;
  down_valid_ = false;
  slack_valid_ = false;
  paths_valid_ = false;
  positions_valid_ = false;
  ++revision_;
}

const std::vector<TimedPath>& IncrementalSta::k_critical_paths(
    std::size_t k) const {
  static const obs::Registry::Counter enumerated =
      obs::Registry::global().counter("sta.kpaths_enumerated");
  static const obs::Registry::Counter cached =
      obs::Registry::global().counter("sta.kpaths_cached");
  // Exact gate: update()/run_full() drop paths_valid_; between reports
  // the netlist is untouched (dirty-set contract), so the enumeration
  // inputs — structure, cin/cload, slews, bounds — are bit-identical and
  // the previous list IS the enumeration result. A different k is not
  // servable from the cache: the enumeration's pop budget scales with k,
  // so a k-prefix of a larger enumeration is not provably the k-run.
  if (paths_valid_ && paths_k_ == k) {
    cached.add();
    return paths_;
  }
  paths_ = sta_.k_critical_paths(result(), k, downstream());
  paths_k_ = k;
  paths_valid_ = true;
  enumerated.add();
  return paths_;
}

void IncrementalSta::materialize_slacks(double tc_ps) const {
  // One full backward sweep (the historical per-query cost), after which
  // update() maintains both vectors over dirty cones.
  obs::Span span("sta/slack_full");
  req_ = sta_.required_times(res_, tc_ps);
  const std::size_t n = nl_->size();
  slack_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    slack_[i] = sta_.compute_slack(static_cast<NodeId>(i), res_, req_);
  slack_valid_ = true;
  slack_tc_ps_ = tc_ps;
}

const std::vector<double>& IncrementalSta::slacks(double tc_ps) const {
  (void)result();  // throws before the first run
  if (!slack_valid_ || !same_bits(tc_ps, slack_tc_ps_))
    materialize_slacks(tc_ps);
  return slack_;
}

const std::vector<std::array<double, 2>>& IncrementalSta::required_times(
    double tc_ps) const {
  (void)result();
  if (!slack_valid_ || !same_bits(tc_ps, slack_tc_ps_))
    materialize_slacks(tc_ps);
  return req_;
}

const std::vector<double>& IncrementalSta::downstream() const {
  if (!valid_)
    throw std::logic_error("IncrementalSta: no result yet (call run_full)");
  // Lazily computed on first query: consumers that never enumerate paths
  // (the shield pass, initial-delay measurements) skip the O(E) bound
  // sweep entirely; once queried, update() maintains the vector.
  if (!down_valid_) {
    down_ = sta_.downstream_delays(res_);
    down_valid_ = true;
  }
  return down_;
}

void IncrementalSta::rebuild_positions() {
  const auto& topo = nl_->topo_order();
  topo_pos_.assign(nl_->size(), 0);
  for (std::size_t i = 0; i < topo.size(); ++i)
    topo_pos_[static_cast<std::size_t>(topo[i])] = i;
}

void IncrementalSta::grow_arrays(std::size_t n) {
  // Appended nodes start exactly like run_full initializes them: gates
  // get computed before they are read (they are in the dirty set), and an
  // appended PI gets the zero arrival a cold run assigns to inputs.
  const std::size_t old = res_.arrival_ps.size();
  res_.arrival_ps.resize(n, {kNegInf, kNegInf});
  res_.slew_ps.resize(n, {pi_slew_ps_, pi_slew_ps_});
  res_.prev.resize(n, {PathPoint{}, PathPoint{}});
  for (std::size_t i = old; i < n; ++i)
    if (nl_->node(static_cast<NodeId>(i)).is_input)
      res_.arrival_ps[i] = {0.0, 0.0};
  if (down_valid_) down_.resize(2 * n, kNegInf);
  if (slack_valid_) {
    // The "unconstrained" defaults; appended nodes are in the dirty set,
    // so the backward worklist computes their real values below — these
    // inits only show through for vertices a cold sweep leaves at +inf.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    req_.resize(n, {kInf, kInf});
    slack_.resize(n, kInf);
  }
  // in_heap_/seed_mark_ are re-assigned by update() whenever the netlist
  // grew (the positions_valid_ branch), so they are not resized here.
}

const StaResult& IncrementalSta::run_full() {
  static const obs::Registry::Counter full_runs =
      obs::Registry::global().counter("sta.full_runs");
  full_runs.add();
  obs::Span span("sta/full");
  // Exactly a cold Sta::run(): the bound vector and the worklist
  // bookkeeping (positions, scratch flags) are materialized on first use,
  // so one-shot consumers (initial-delay measurements) pay nothing extra.
  res_ = sta_.run();
  down_valid_ = false;
  slack_valid_ = false;
  paths_valid_ = false;
  positions_valid_ = false;
  valid_ = true;
  ++revision_;
  return res_;
}

const StaResult& IncrementalSta::update(std::span<const NodeId> dirty,
                                        bool structure_changed) {
  if (!valid_) return run_full();

  // Cold-vs-incremental visibility: every update is counted and its
  // dirty-cone size binned, so a daemon's metrics snapshot shows how
  // much of the hot loop the incremental engine actually absorbs.
  static const obs::Registry::Counter updates =
      obs::Registry::global().counter("sta.updates");
  static const obs::Registry::Histogram cone = obs::Registry::global()
      .histogram("sta.dirty_cone",
                 {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  updates.add();
  cone.observe(static_cast<double>(dirty.size()));
  obs::Span span("sta/update");
  span.arg("dirty", static_cast<double>(dirty.size()));

  // Any reported edit can move an enumeration edge weight (through a
  // dirty sink's cin/cload) even when no maintained value changes bits,
  // so the path cache gates exactly on "a report happened".
  paths_valid_ = false;
  ++revision_;

  const std::size_t n = nl_->size();
  const bool grew = res_.arrival_ps.size() != n;
  if (grew) grow_arrays(n);
  if (grew || structure_changed || !positions_valid_) {
    rebuild_positions();
    in_heap_.assign(n, 0);
    seed_mark_.assign(n, 0);
    positions_valid_ = true;
  }

  // ----- seed set F = dirty ∪ fanins(dirty) ---------------------------------
  // A resize of d changes cin(d) and cpar(d); cin(d) loads every fanin
  // driver (their slew AND delay change), cpar(d) is part of d's own
  // load. So the nodes whose stage inputs (cin, cload) may have moved are
  // exactly F. Structural edits are covered by the dirty-set contract
  // (both endpoints of every rewire are listed).
  std::vector<NodeId> seeds;
  auto add_seed = [&](NodeId id) {
    const auto i = static_cast<std::size_t>(id);
    if (seed_mark_[i]) return;
    seed_mark_[i] = 1;
    seeds.push_back(id);
  };
  for (NodeId d : dirty) {
    add_seed(d);
    for (NodeId f : nl_->node(d).fanins) add_seed(f);
  }

  // ----- forward pass: arrivals / slews / prev ------------------------------
  // Worklist ordered by topological position, so every recomputed node
  // reads fanin values that are final for this update — recomputation
  // then replays Sta::compute_node on bit-identical inputs.
  using Pos = std::pair<std::size_t, NodeId>;
  std::priority_queue<Pos, std::vector<Pos>, std::greater<Pos>> fwd;
  auto push_fwd = [&](NodeId id) {
    const auto i = static_cast<std::size_t>(id);
    if (in_heap_[i] || nl_->node(id).is_input) return;
    in_heap_[i] = 1;
    fwd.emplace(topo_pos_[i], id);
  };
  for (NodeId id : seeds) push_fwd(id);

  std::vector<NodeId> slew_changed;
  std::vector<NodeId> arrival_changed;  // slack(n) reads arrival(n)
  while (!fwd.empty()) {
    const NodeId id = fwd.top().second;
    fwd.pop();
    const auto i = static_cast<std::size_t>(id);
    in_heap_[i] = 0;

    const std::array<double, 2> old_arrival = res_.arrival_ps[i];
    const std::array<double, 2> old_slew = res_.slew_ps[i];
    sta_.compute_node(id, res_);

    const bool slew_diff = !same_bits(res_.slew_ps[i][0], old_slew[0]) ||
                           !same_bits(res_.slew_ps[i][1], old_slew[1]);
    const bool arrival_diff =
        !same_bits(res_.arrival_ps[i][0], old_arrival[0]) ||
        !same_bits(res_.arrival_ps[i][1], old_arrival[1]);
    if (slew_diff) slew_changed.push_back(id);
    if (arrival_diff) arrival_changed.push_back(id);
    if (slew_diff || arrival_diff)
      for (NodeId g : nl_->fanouts(id)) push_fwd(g);
  }
  sta_.finalize_critical(res_);

  // ----- backward pass: downstream bounds -----------------------------------
  // down[f] reads, per fanout g of f: cin(g), cload(g) (changed ⊆ F, so
  // the readers are fanins(F)), slew(f) (changed = slew_changed), f's own
  // fanout set / PO flag (changed nodes are in the dirty set ⊆ F), and
  // down[g] (propagated below). Only maintained once a consumer has asked
  // for the bounds (down_valid_); never-enumerating users skip it.
  if (down_valid_) {
    std::priority_queue<Pos> bwd;  // max position first = reverse topo
    auto push_bwd = [&](NodeId id) {
      const auto i = static_cast<std::size_t>(id);
      if (in_heap_[i]) return;
      in_heap_[i] = 1;
      bwd.emplace(topo_pos_[i], id);
    };
    for (NodeId id : seeds) {
      push_bwd(id);
      for (NodeId f : nl_->node(id).fanins) push_bwd(f);
    }
    for (NodeId id : slew_changed) push_bwd(id);

    while (!bwd.empty()) {
      const NodeId id = bwd.top().second;
      bwd.pop();
      const auto i = static_cast<std::size_t>(id);
      in_heap_[i] = 0;

      bool changed = false;
      for (Edge e : {Edge::Rise, Edge::Fall}) {
        const std::size_t v = 2 * i + StaResult::idx(e);
        const double fresh = sta_.compute_down(id, e, res_, down_);
        if (!same_bits(fresh, down_[v])) {
          down_[v] = fresh;
          changed = true;
        }
      }
      if (changed)
        for (NodeId f : nl_->node(id).fanins) push_bwd(f);
    }
  }

  // ----- backward pass: required times + slacks -----------------------------
  // req[id] reads, per fanout g: cin(g)/cload(g) (changed g ∈ seeds ⇒
  // readers ⊆ fanins(seeds)), slew(id) (slew_changed), id's own PO flag /
  // fanout set (dirty ⊆ seeds), and req[g] (propagated) — the same seed
  // set as the bound pass above. slack(id) then reads only (arrival(id),
  // req(id)), so recomputing it for the union of arrival-changed and
  // req-changed nodes is exhaustive. Only maintained once a consumer has
  // queried slacks()/required_times() at some tc.
  if (slack_valid_) {
    obs::Span slack_span("sta/slack_update");
    std::priority_queue<Pos> bwd;  // max position first = reverse topo
    auto push_bwd = [&](NodeId id) {
      const auto i = static_cast<std::size_t>(id);
      if (in_heap_[i]) return;
      in_heap_[i] = 1;
      bwd.emplace(topo_pos_[i], id);
    };
    for (NodeId id : seeds) {
      push_bwd(id);
      for (NodeId f : nl_->node(id).fanins) push_bwd(f);
    }
    for (NodeId id : slew_changed) push_bwd(id);

    std::vector<NodeId> req_changed;
    while (!bwd.empty()) {
      const NodeId id = bwd.top().second;
      bwd.pop();
      const auto i = static_cast<std::size_t>(id);
      in_heap_[i] = 0;

      const std::array<double, 2> old_req = req_[i];
      sta_.compute_required(id, res_, slack_tc_ps_, req_);
      if (!same_bits(req_[i][0], old_req[0]) ||
          !same_bits(req_[i][1], old_req[1])) {
        req_changed.push_back(id);
        for (NodeId f : nl_->node(id).fanins) push_bwd(f);
      }
    }

    slack_span.arg("req_changed", static_cast<double>(req_changed.size()));
    for (NodeId id : arrival_changed)
      slack_[static_cast<std::size_t>(id)] =
          sta_.compute_slack(id, res_, req_);
    for (NodeId id : req_changed)
      slack_[static_cast<std::size_t>(id)] =
          sta_.compute_slack(id, res_, req_);
  }

  for (NodeId id : seeds) seed_mark_[static_cast<std::size_t>(id)] = 0;

#ifndef NDEBUG
  check_against_full();  // the exactness guarantee, paid only in debug
#endif
  return res_;
}

void IncrementalSta::check_against_full() const {
  if (!valid_)
    throw std::logic_error("IncrementalSta: no result to check");
  const StaResult cold = sta_.run();
  // The bound / required / slack vectors only exist once a consumer
  // queried them; compare them only then (the forward state is always
  // checked).
  const std::vector<double> cold_down =
      down_valid_ ? sta_.downstream_delays(cold) : std::vector<double>{};
  const std::vector<std::array<double, 2>> cold_req =
      slack_valid_ ? sta_.required_times(cold, slack_tc_ps_)
                   : std::vector<std::array<double, 2>>{};
  const std::vector<double> cold_slack =
      slack_valid_ ? sta_.slacks(cold, slack_tc_ps_) : std::vector<double>{};

  auto fail = [&](const std::string& what, NodeId id) {
    throw std::logic_error(
        "IncrementalSta: incremental state diverged from cold run (" + what +
        " at node " +
        (id == netlist::kNoNode ? std::string("<global>") : nl_->node(id).name) +
        ")");
  };

  const std::size_t n = nl_->size();
  if (res_.arrival_ps.size() != n || cold.arrival_ps.size() != n)
    fail("result size", netlist::kNoNode);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t e = 0; e < 2; ++e) {
      const NodeId id = static_cast<NodeId>(i);
      if (!same_bits(res_.arrival_ps[i][e], cold.arrival_ps[i][e]))
        fail("arrival", id);
      if (!same_bits(res_.slew_ps[i][e], cold.slew_ps[i][e])) fail("slew", id);
      if (!(res_.prev[i][e] == cold.prev[i][e])) fail("prev", id);
      if (down_valid_ && !same_bits(down_[2 * i + e], cold_down[2 * i + e]))
        fail("downstream", id);
      if (slack_valid_ && !same_bits(req_[i][e], cold_req[i][e]))
        fail("required", id);
    }
    if (slack_valid_ && !same_bits(slack_[i], cold_slack[i]))
      fail("slack", static_cast<NodeId>(i));
  }
  if (!same_bits(res_.critical_delay_ps, cold.critical_delay_ps) ||
      !(res_.critical_endpoint == cold.critical_endpoint))
    fail("critical delay/endpoint", netlist::kNoNode);
}

}  // namespace pops::timing
