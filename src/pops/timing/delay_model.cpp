#include "pops/timing/delay_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pops::timing {

const char* to_string(Edge e) noexcept {
  return e == Edge::Rise ? "rise" : "fall";
}

// ----- DelayModel (generic contract + numeric fallbacks) ----------------------

StageTiming DelayModel::stage(const liberty::Cell& cell, Edge out_edge,
                              double tin_ps, double cin_ff,
                              double cload_ff) const {
  StageTiming st;
  st.delay_ps = delay_ps(cell, out_edge, tin_ps, cin_ff, cload_ff);
  st.tout_ps = transition_ps(cell, out_edge, cin_ff, cload_ff);
  return st;
}

double DelayModel::default_input_slew_ps() const {
  // FO1 inverter: CL == CIN, average of both edges, measured through the
  // backend's own transition evaluation (CREF is an arbitrary positive
  // operating point; eq. (2)-shaped backends only see the CL/CIN ratio).
  const liberty::Cell& inv = lib().cell(liberty::CellKind::Inv);
  const double c = lib().cref_ff();
  return 0.5 * (transition_ps(inv, Edge::Fall, c, c) +
                transition_ps(inv, Edge::Rise, c, c));
}

double DelayModel::slope_sensitivity(Edge next_out_edge) const {
  const liberty::Cell& inv = lib().cell(liberty::CellKind::Inv);
  const double c = lib().cref_ff();
  const double tin = default_input_slew_ps();
  const double h = 0.25 * tin;
  const double lo = tin - h;  // tin > 0 keeps both probes in range
  return (delay_ps(inv, next_out_edge, tin + h, c, c) -
          delay_ps(inv, next_out_edge, lo, c, c)) /
         (2.0 * h);
}

double DelayModel::vt_derate(int vt_class, Edge out_edge) const {
  // Class 0 is the base device the backend was calibrated/characterized
  // for: return exactly 1.0 so default-class timing stays bit-identical.
  if (vt_class == 0) return 1.0;
  const process::Technology& t = lib().tech();
  const process::VtClass cls =
      t.vt_class(static_cast<std::size_t>(vt_class));
  // Alpha-power law: the switching transistor array's drive current goes
  // as (VDD - Vt)^alpha, so delay and output transition scale by the
  // inverse ratio against the base threshold of the same network.
  const double vt_base = out_edge == Edge::Fall ? t.vtn : t.vtp;
  const double vt_cls = out_edge == Edge::Fall ? cls.vtn : cls.vtp;
  const double alpha = out_edge == Edge::Fall ? t.alpha_n : t.alpha_p;
  return std::pow((t.vdd - vt_base) / (t.vdd - vt_cls), alpha);
}

double DelayModel::stage_coefficient(const liberty::Cell& cell, Edge out_edge,
                                     double cin_ff, double cload_ff,
                                     bool has_successor,
                                     Edge next_out_edge) const {
  // Numeric A_i: central difference of the stage's contribution to the
  // path delay in CL at fixed CIN, scaled by CIN so the derivative is in
  // the effort variable CL/CIN of eq. (4).
  const double tin = default_input_slew_ps();
  const double slope_next =
      has_successor ? slope_sensitivity(next_out_edge) : 0.0;
  auto contrib = [&](double cl) {
    double v = delay_ps(cell, out_edge, tin, cin_ff, cl);
    if (has_successor)
      v += slope_next * transition_ps(cell, out_edge, cin_ff, cl);
    return v;
  };
  const double h = std::max(1e-3, 1e-3 * cload_ff);
  const double lo = std::max(0.5 * cload_ff, cload_ff - h);
  const double hi = cload_ff + h;
  return cin_ff * (contrib(hi) - contrib(lo)) / (hi - lo);
}

// ----- ClosedFormModel (eq. 1-3, behavior-preserving) -------------------------

std::uint64_t ClosedFormModel::content_hash() const noexcept {
  // The closed form has no state beyond the shared library/technology
  // (hashed separately by cache keys); a fixed tag identifies the family.
  return 0x636c6f7365642d66ull;  // "closed-f"
}

double ClosedFormModel::symmetry_factor(const liberty::Cell& cell,
                                        Edge out_edge) const noexcept {
  return out_edge == Edge::Fall ? lib().s_hl(cell) : lib().s_lh(cell);
}

double ClosedFormModel::transition_ps(const liberty::Cell& cell, Edge out_edge,
                                      double cin_ff, double cload_ff) const {
  if (!(cin_ff > 0.0))
    throw std::invalid_argument("DelayModel::transition_ps: cin must be > 0");
  return symmetry_factor(cell, out_edge) * lib().tech().tau_ps * cload_ff /
         cin_ff;
}

double ClosedFormModel::coupling_ff(const liberty::Cell& cell, Edge out_edge,
                                    double cin_ff) const noexcept {
  const double k = cell.k_ratio;
  // Input cap splits (1 : k) between the N and P devices.
  const double fraction =
      out_edge == Edge::Fall ? k / (1.0 + k)   // rising input -> P device
                             : 1.0 / (1.0 + k);  // falling input -> N device
  return 0.5 * fraction * cin_ff;
}

double ClosedFormModel::miller_factor(const liberty::Cell& cell, Edge out_edge,
                                      double cin_ff,
                                      double cload_ff) const noexcept {
  const double cm = coupling_ff(cell, out_edge, cin_ff);
  return 1.0 + 2.0 * cm / (cm + cload_ff);
}

double ClosedFormModel::reduced_vt(Edge out_edge) const noexcept {
  return out_edge == Edge::Fall ? lib().tech().vtn_reduced()
                                : lib().tech().vtp_reduced();
}

double ClosedFormModel::slope_sensitivity(Edge next_out_edge) const {
  // Exactly the slope coefficient of eq. (1).
  return 0.5 * reduced_vt(next_out_edge);
}

double ClosedFormModel::delay_ps(const liberty::Cell& cell, Edge out_edge,
                                 double tin_ps, double cin_ff,
                                 double cload_ff) const {
  if (tin_ps < 0.0)
    throw std::invalid_argument("DelayModel::delay_ps: negative input slew");
  const double slope_term = 0.5 * reduced_vt(out_edge) * tin_ps;
  const double own_term =
      0.5 * miller_factor(cell, out_edge, cin_ff, cload_ff) *
      transition_ps(cell, out_edge, cin_ff, cload_ff);
  return slope_term + own_term;
}

double ClosedFormModel::stage_coefficient(const liberty::Cell& cell,
                                          Edge out_edge, double cin_ff,
                                          double cload_ff, bool has_successor,
                                          Edge next_out_edge) const {
  const double miller = miller_factor(cell, out_edge, cin_ff, cload_ff);
  const double vt_next = has_successor ? reduced_vt(next_out_edge) : 0.0;
  return lib().tech().tau_ps * symmetry_factor(cell, out_edge) *
         0.5 * (miller + vt_next);
}

double ClosedFormModel::default_input_slew_ps() const {
  const liberty::Cell& inv = lib().cell(liberty::CellKind::Inv);
  // FO1 inverter: CL == CIN, average of both edges.
  return 0.5 * (lib().s_hl(inv) + lib().s_lh(inv)) * lib().tech().tau_ps;
}

}  // namespace pops::timing
