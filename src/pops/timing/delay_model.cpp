#include "pops/timing/delay_model.hpp"

#include <stdexcept>

namespace pops::timing {

const char* to_string(Edge e) noexcept {
  return e == Edge::Rise ? "rise" : "fall";
}

double DelayModel::symmetry_factor(const liberty::Cell& cell,
                                   Edge out_edge) const noexcept {
  return out_edge == Edge::Fall ? lib_->s_hl(cell) : lib_->s_lh(cell);
}

double DelayModel::transition_ps(const liberty::Cell& cell, Edge out_edge,
                                 double cin_ff, double cload_ff) const {
  if (!(cin_ff > 0.0))
    throw std::invalid_argument("DelayModel::transition_ps: cin must be > 0");
  return symmetry_factor(cell, out_edge) * lib_->tech().tau_ps * cload_ff /
         cin_ff;
}

double DelayModel::coupling_ff(const liberty::Cell& cell, Edge out_edge,
                               double cin_ff) const noexcept {
  const double k = cell.k_ratio;
  // Input cap splits (1 : k) between the N and P devices.
  const double fraction =
      out_edge == Edge::Fall ? k / (1.0 + k)   // rising input -> P device
                             : 1.0 / (1.0 + k);  // falling input -> N device
  return 0.5 * fraction * cin_ff;
}

double DelayModel::miller_factor(const liberty::Cell& cell, Edge out_edge,
                                 double cin_ff, double cload_ff) const noexcept {
  const double cm = coupling_ff(cell, out_edge, cin_ff);
  return 1.0 + 2.0 * cm / (cm + cload_ff);
}

double DelayModel::reduced_vt(Edge out_edge) const noexcept {
  return out_edge == Edge::Fall ? lib_->tech().vtn_reduced()
                                : lib_->tech().vtp_reduced();
}

double DelayModel::delay_ps(const liberty::Cell& cell, Edge out_edge,
                            double tin_ps, double cin_ff,
                            double cload_ff) const {
  if (tin_ps < 0.0)
    throw std::invalid_argument("DelayModel::delay_ps: negative input slew");
  const double slope_term = 0.5 * reduced_vt(out_edge) * tin_ps;
  const double own_term =
      0.5 * miller_factor(cell, out_edge, cin_ff, cload_ff) *
      transition_ps(cell, out_edge, cin_ff, cload_ff);
  return slope_term + own_term;
}

StageTiming DelayModel::stage(const liberty::Cell& cell, Edge out_edge,
                              double tin_ps, double cin_ff,
                              double cload_ff) const {
  StageTiming st;
  st.delay_ps = delay_ps(cell, out_edge, tin_ps, cin_ff, cload_ff);
  st.tout_ps = transition_ps(cell, out_edge, cin_ff, cload_ff);
  return st;
}

double DelayModel::stage_coefficient(const liberty::Cell& cell, Edge out_edge,
                                     double cin_ff, double cload_ff,
                                     bool has_successor,
                                     Edge next_out_edge) const {
  const double miller = miller_factor(cell, out_edge, cin_ff, cload_ff);
  const double vt_next = has_successor ? reduced_vt(next_out_edge) : 0.0;
  return lib_->tech().tau_ps * symmetry_factor(cell, out_edge) *
         0.5 * (miller + vt_next);
}

double DelayModel::default_input_slew_ps() const noexcept {
  const liberty::Cell& inv = lib_->cell(liberty::CellKind::Inv);
  // FO1 inverter: CL == CIN, average of both edges.
  return 0.5 * (lib_->s_hl(inv) + lib_->s_lh(inv)) * lib_->tech().tau_ps;
}

}  // namespace pops::timing
