#pragma once
// Technology node description.
//
// The paper evaluates on a 0.25µm CMOS foundry process. The proprietary kit
// is not available, so `Technology::cmos025()` provides a generic parameter
// set with textbook-accurate magnitudes for that node (VDD 2.5 V,
// VTN ~ 0.5 V, tau ~ 18 ps, N/P mobility ratio ~ 2.4). The 0.18µm and
// 0.13µm sets support scaling studies beyond the paper.
//
// Unit discipline (used across the whole code base):
//   time          picoseconds (ps)
//   capacitance   femtofarads (fF)
//   width/length  micrometers (µm)
//   voltage       volts (V)
//   current       milliamperes (mA)   [note: fF*V/mA = ps, so units close]

#include <string>

namespace pops::process {

/// Process parameters consumed by the delay model (eq. 1-3 of the paper),
/// the cell library, and the alpha-power transient simulator.
struct Technology {
  std::string name;        ///< e.g. "generic-cmos025"
  double feature_um;       ///< drawn feature size, e.g. 0.25

  // Supply and thresholds.
  double vdd;              ///< supply voltage (V)
  double vtn;              ///< NMOS threshold (V, positive)
  double vtp;              ///< PMOS threshold magnitude (V, positive)

  // First-order timing calibration (eq. 2-3).
  double tau_ps;           ///< process metric time unit tau (ps)
  double r_ratio;          ///< N/P current ratio at equal width (R in eq. 3)

  // Capacitance calibration.
  double cgate_ff_per_um;  ///< gate capacitance per µm of transistor width
  double cdiff_ff_per_um;  ///< drain junction + overlap cap per µm of width

  // Geometry limits.
  double wmin_um;          ///< minimum transistor width (defines CREF drive)
  double wmax_um;          ///< maximum realistic transistor width

  // Alpha-power-law MOSFET parameters for the transient simulator
  // (Sakurai-Newton model), per µm of width.
  double alpha_n;          ///< velocity saturation index, NMOS (~1.3 at 0.25µm)
  double alpha_p;          ///< velocity saturation index, PMOS (~1.45)
  double idsat_n_ma_um;    ///< NMOS saturation current at VGS=VDD (mA/µm)
  double idsat_p_ma_um;    ///< PMOS saturation current magnitude (mA/µm)

  /// Reduced thresholds v_T = V_T / V_DD used directly in eq. (1).
  double vtn_reduced() const noexcept { return vtn / vdd; }
  double vtp_reduced() const noexcept { return vtp / vdd; }

  /// Throws std::invalid_argument if any parameter is non-physical
  /// (non-positive, thresholds above VDD/2, wmin >= wmax, ...).
  void validate() const;

  /// Generic 0.25µm process — the node used throughout the paper.
  static Technology cmos025();
  /// Generic 0.18µm process (extension / scaling studies).
  static Technology cmos018();
  /// Generic 0.13µm process (extension / scaling studies).
  static Technology cmos013();
};

}  // namespace pops::process
