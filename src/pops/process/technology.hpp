#pragma once
// Technology node description.
//
// The paper evaluates on a 0.25µm CMOS foundry process. The proprietary kit
// is not available, so `Technology::cmos025()` provides a generic parameter
// set with textbook-accurate magnitudes for that node (VDD 2.5 V,
// VTN ~ 0.5 V, tau ~ 18 ps, N/P mobility ratio ~ 2.4). The 0.18µm and
// 0.13µm sets support scaling studies beyond the paper.
//
// Unit discipline (used across the whole code base):
//   time          picoseconds (ps)
//   capacitance   femtofarads (fF)
//   width/length  micrometers (µm)
//   voltage       volts (V)
//   current       milliamperes (mA)   [note: fF*V/mA = ps, so units close]

#include <cstddef>
#include <string>
#include <vector>

namespace pops::process {

/// One threshold-voltage implant option of the process. Multi-Vt
/// fabrication offers the same cell layouts at several thresholds: a
/// higher Vt cuts sub-threshold leakage by orders of magnitude at the
/// cost of drive current (and therefore speed). Class 0 is always the
/// standard-Vt device the base `vtn`/`vtp` fields describe — every
/// netlist node defaults to it, which keeps single-Vt flows bit-identical.
struct VtClass {
  std::string name;       ///< "svt", "hvt", "lvt"
  double vtn;             ///< NMOS threshold of this class (V, positive)
  double vtp;             ///< PMOS threshold magnitude (V, positive)
  double ioff_na_per_um;  ///< sub-threshold off current at 25 degC (nA/µm)
};

/// Process parameters consumed by the delay model (eq. 1-3 of the paper),
/// the cell library, and the alpha-power transient simulator.
struct Technology {
  std::string name;        ///< e.g. "generic-cmos025"
  double feature_um;       ///< drawn feature size, e.g. 0.25

  // Supply and thresholds.
  double vdd;              ///< supply voltage (V)
  double vtn;              ///< NMOS threshold (V, positive)
  double vtp;              ///< PMOS threshold magnitude (V, positive)

  // First-order timing calibration (eq. 2-3).
  double tau_ps;           ///< process metric time unit tau (ps)
  double r_ratio;          ///< N/P current ratio at equal width (R in eq. 3)

  // Capacitance calibration.
  double cgate_ff_per_um;  ///< gate capacitance per µm of transistor width
  double cdiff_ff_per_um;  ///< drain junction + overlap cap per µm of width

  // Geometry limits.
  double wmin_um;          ///< minimum transistor width (defines CREF drive)
  double wmax_um;          ///< maximum realistic transistor width

  // Alpha-power-law MOSFET parameters for the transient simulator
  // (Sakurai-Newton model), per µm of width.
  double alpha_n;          ///< velocity saturation index, NMOS (~1.3 at 0.25µm)
  double alpha_p;          ///< velocity saturation index, PMOS (~1.45)
  double idsat_n_ma_um;    ///< NMOS saturation current at VGS=VDD (mA/µm)
  double idsat_p_ma_um;    ///< PMOS saturation current magnitude (mA/µm)

  // Threshold-voltage implant options (multi-Vt) and leakage calibration,
  // consumed by pops::power. An empty vt_classes vector means the process
  // offers only the base device (legacy single-Vt description); the
  // factories below always populate svt/hvt/lvt triples.
  std::vector<VtClass> vt_classes;
  /// Sub-threshold leakage doubles every this many degC above 25 degC
  /// (the classic ~8-12 degC/decade-of-e rule of thumb).
  double ioff_doubling_c = 10.0;
  /// Gate (tunnelling) leakage per µm of transistor width (nA/µm);
  /// temperature-insensitive to first order. Negligible at 0.25µm, grows
  /// steeply as oxides thin toward 0.13µm.
  double igate_na_per_um = 0.0;

  /// Reduced thresholds v_T = V_T / V_DD used directly in eq. (1).
  double vtn_reduced() const noexcept { return vtn / vdd; }
  double vtp_reduced() const noexcept { return vtp / vdd; }

  /// Number of Vt classes (at least 1: a legacy description without
  /// vt_classes still has the implicit base device).
  std::size_t n_vt_classes() const noexcept {
    return vt_classes.empty() ? 1 : vt_classes.size();
  }

  /// The Vt class at `idx`. Index 0 works for any Technology (it
  /// synthesizes the base device when vt_classes is empty); other indices
  /// throw std::out_of_range when absent.
  VtClass vt_class(std::size_t idx) const;

  /// Index of the class named `name`, or -1 when the process has no such
  /// implant option.
  int find_vt_class(const std::string& name) const noexcept;

  /// Throws std::invalid_argument if any parameter is non-physical
  /// (non-positive, thresholds above VDD/2, wmin >= wmax, ...).
  void validate() const;

  /// Generic 0.25µm process — the node used throughout the paper.
  static Technology cmos025();
  /// Generic 0.18µm process (extension / scaling studies).
  static Technology cmos018();
  /// Generic 0.13µm process (extension / scaling studies).
  static Technology cmos013();
};

}  // namespace pops::process
