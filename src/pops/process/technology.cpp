#include "pops/process/technology.hpp"

#include <stdexcept>

namespace pops::process {

void Technology::validate() const {
  auto positive = [&](double v, const char* what) {
    if (!(v > 0.0))
      throw std::invalid_argument("Technology " + name + ": " + what +
                                  " must be positive");
  };
  positive(feature_um, "feature_um");
  positive(vdd, "vdd");
  positive(vtn, "vtn");
  positive(vtp, "vtp");
  positive(tau_ps, "tau_ps");
  positive(r_ratio, "r_ratio");
  positive(cgate_ff_per_um, "cgate_ff_per_um");
  positive(cdiff_ff_per_um, "cdiff_ff_per_um");
  positive(wmin_um, "wmin_um");
  positive(wmax_um, "wmax_um");
  positive(alpha_n, "alpha_n");
  positive(alpha_p, "alpha_p");
  positive(idsat_n_ma_um, "idsat_n_ma_um");
  positive(idsat_p_ma_um, "idsat_p_ma_um");

  if (vtn >= vdd / 2.0 || vtp >= vdd / 2.0)
    throw std::invalid_argument("Technology " + name +
                                ": thresholds must be below VDD/2 for the "
                                "fast-input-range delay model to hold");
  if (wmin_um >= wmax_um)
    throw std::invalid_argument("Technology " + name + ": wmin >= wmax");
  if (r_ratio < 1.0)
    throw std::invalid_argument("Technology " + name +
                                ": r_ratio is defined as N-over-P and must be >= 1");

  // Multi-Vt implant options: every class must be a usable device under
  // the same fast-input-range constraint as the base thresholds, and
  // class 0 must BE the base device so default-class netlists stay
  // bit-identical to a single-Vt description.
  positive(ioff_doubling_c, "ioff_doubling_c");
  if (igate_na_per_um < 0.0)
    throw std::invalid_argument("Technology " + name +
                                ": igate_na_per_um must be >= 0");
  for (std::size_t i = 0; i < vt_classes.size(); ++i) {
    const VtClass& c = vt_classes[i];
    if (c.name.empty())
      throw std::invalid_argument("Technology " + name +
                                  ": vt class without a name");
    for (std::size_t j = 0; j < i; ++j)
      if (vt_classes[j].name == c.name)
        throw std::invalid_argument("Technology " + name +
                                    ": duplicate vt class '" + c.name + "'");
    if (!(c.vtn > 0.0) || !(c.vtp > 0.0) || !(c.ioff_na_per_um > 0.0))
      throw std::invalid_argument("Technology " + name + ": vt class '" +
                                  c.name +
                                  "' needs positive thresholds and ioff");
    if (c.vtn >= vdd / 2.0 || c.vtp >= vdd / 2.0)
      throw std::invalid_argument("Technology " + name + ": vt class '" +
                                  c.name +
                                  "' thresholds must be below VDD/2 for the "
                                  "fast-input-range delay model to hold");
  }
  if (!vt_classes.empty() &&
      (vt_classes[0].vtn != vtn || vt_classes[0].vtp != vtp))
    throw std::invalid_argument(
        "Technology " + name +
        ": vt class 0 must match the base vtn/vtp exactly (it is the "
        "default device every node starts on)");
}

VtClass Technology::vt_class(std::size_t idx) const {
  if (vt_classes.empty()) {
    if (idx != 0)
      throw std::out_of_range("Technology " + name + ": no vt class " +
                              std::to_string(idx));
    // Legacy single-Vt description: synthesize the base device with the
    // generic 0.25µm off-current magnitude (kIoffNaPerUm's historical
    // value, kept here so power::ProxyModel stays bit-identical).
    return VtClass{"svt", vtn, vtp, 0.03};
  }
  if (idx >= vt_classes.size())
    throw std::out_of_range("Technology " + name + ": no vt class " +
                            std::to_string(idx));
  return vt_classes[idx];
}

int Technology::find_vt_class(const std::string& cls) const noexcept {
  if (vt_classes.empty()) return cls == "svt" ? 0 : -1;
  for (std::size_t i = 0; i < vt_classes.size(); ++i)
    if (vt_classes[i].name == cls) return static_cast<int>(i);
  return -1;
}

Technology Technology::cmos025() {
  Technology t;
  t.name = "generic-cmos025";
  t.feature_um = 0.25;
  t.vdd = 2.5;
  t.vtn = 0.50;
  t.vtp = 0.55;
  // Internally consistent with the alpha-power devices below:
  // tau = VDD * Cgate / Idsat_n  (2.5 * 1.8 / 0.55 ~ 8.2 ps); yields the
  // textbook ~90 ps FO4 inverter delay at this node.
  t.tau_ps = 8.0;
  t.r_ratio = 2.4;
  t.cgate_ff_per_um = 1.80;
  t.cdiff_ff_per_um = 1.60;
  t.wmin_um = 0.60;
  t.wmax_um = 12.0;   // X20 drive: realistic std-cell library ceiling
  t.alpha_n = 1.30;
  t.alpha_p = 1.45;
  t.idsat_n_ma_um = 0.55;
  t.idsat_p_ma_um = 0.23;
  // Implant menu: class 0 is the base device (0.03 nA/µm is the generic
  // 0.25µm off current the flat leakage estimate always used); the hvt
  // option trades ~10x lower leakage for a higher threshold, lvt the dual.
  t.vt_classes = {{"svt", t.vtn, t.vtp, 0.03},
                  {"hvt", 0.65, 0.70, 0.003},
                  {"lvt", 0.38, 0.42, 0.30}};
  t.ioff_doubling_c = 10.0;
  t.igate_na_per_um = 0.0005;
  t.validate();
  return t;
}

Technology Technology::cmos018() {
  Technology t = cmos025();
  t.name = "generic-cmos018";
  t.feature_um = 0.18;
  t.vdd = 1.8;
  t.vtn = 0.42;
  t.vtp = 0.45;
  t.tau_ps = 4.5;   // VDD*Cg/Idsat, see cmos025
  t.r_ratio = 2.3;
  t.cgate_ff_per_um = 1.50;
  t.cdiff_ff_per_um = 1.25;
  t.wmin_um = 0.44;
  t.wmax_um = 9.0;
  t.alpha_n = 1.25;
  t.alpha_p = 1.40;
  t.idsat_n_ma_um = 0.60;
  t.idsat_p_ma_um = 0.26;
  t.vt_classes = {{"svt", t.vtn, t.vtp, 0.08},
                  {"hvt", 0.55, 0.58, 0.008},
                  {"lvt", 0.32, 0.34, 0.80}};
  t.ioff_doubling_c = 10.0;
  t.igate_na_per_um = 0.005;
  t.validate();
  return t;
}

Technology Technology::cmos013() {
  Technology t = cmos025();
  t.name = "generic-cmos013";
  t.feature_um = 0.13;
  t.vdd = 1.2;
  t.vtn = 0.33;
  t.vtp = 0.35;
  t.tau_ps = 2.4;   // VDD*Cg/Idsat, see cmos025
  t.r_ratio = 2.2;
  t.cgate_ff_per_um = 1.20;
  t.cdiff_ff_per_um = 0.95;
  t.wmin_um = 0.32;
  t.wmax_um = 6.5;
  t.alpha_n = 1.20;
  t.alpha_p = 1.35;
  t.idsat_n_ma_um = 0.62;
  t.idsat_p_ma_um = 0.28;
  t.vt_classes = {{"svt", t.vtn, t.vtp, 0.25},
                  {"hvt", 0.44, 0.46, 0.025},
                  {"lvt", 0.25, 0.27, 2.50}};
  t.ioff_doubling_c = 10.0;
  t.igate_na_per_um = 0.05;
  t.validate();
  return t;
}

}  // namespace pops::process
