#pragma once
// Stable JSON projections of the optimization result types.
//
// Sweep records must be machine-readable and diffable across runs: the
// same result serializes to the same bytes (util::Json keeps key insertion
// order and round-trip number formatting). Schema (all delays ps, areas
// um, the paper's units):
//
//   OptimizerConfig  -> {hard_ratio, weak_ratio, allow_restructuring,
//                        max_paths, max_rounds, tc_margin, pi_slew_ps,
//                        shield_margin, max_shield_buffers, shield_fanout,
//                        enable_shielding, enable_cleanup, enable_protocol}
//   PassReport       -> {pass, changed, delay_before_ps, delay_after_ps,
//                        area_before_um, area_after_um, runtime_ms,
//                        buffers_inserted, sinks_rewired, gates_removed,
//                        paths_optimized, protocol?}
//   CircuitResult    -> {tc_ps, achieved_delay_ps, area_um, met,
//                        paths_optimized, per_path: [{domain, method,
//                        tmin_ps, tmax_ps, delay_ps, area_um,
//                        buffers_inserted, gates_restructured}]}
//   PipelineReport   -> {tc_ps, met, from_cache, initial/final delay+area,
//                        totals..., passes: [PassReport]}
//   SweepPoint       -> {circuit, tc_ratio, shield_margin, policy,
//                        report: PipelineReport}
//   SweepReport      -> {points: [SweepPoint], cache: {hits, misses,
//                        entries}, wall_ms}

#include "pops/api/api.hpp"
#include "pops/core/protocol.hpp"
#include "pops/service/sweep.hpp"
#include "pops/util/json.hpp"

namespace pops::service {

util::Json to_json(const api::OptimizerConfig& cfg);
util::Json to_json(const api::PassReport& report);
util::Json to_json(const core::ProtocolResult& result);
util::Json to_json(const core::CircuitResult& result);
util::Json to_json(const api::PipelineReport& report);
util::Json to_json(const BufferPolicy& policy);
util::Json to_json(const SweepSpec& spec);
util::Json to_json(const SweepPoint& point);
util::Json to_json(const SweepReport& report);

}  // namespace pops::service
