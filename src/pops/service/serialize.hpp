#pragma once
// Stable JSON projections of the optimization result types.
//
// Sweep records must be machine-readable and diffable across runs: the
// same result serializes to the same bytes (util::Json keeps key insertion
// order and round-trip number formatting). Schema (all delays ps, areas
// um, the paper's units):
//
//   OptimizerConfig  -> {hard_ratio, weak_ratio, allow_restructuring,
//                        max_paths, max_rounds, tc_margin, pi_slew_ps,
//                        shield_margin, max_shield_buffers, shield_fanout,
//                        enable_shielding, enable_cleanup, enable_protocol,
//                        delay_model, table_model: {slew_grid_ps,
//                        load_grid}}
//   PassReport       -> {pass, changed, delay_before_ps, delay_after_ps,
//                        area_before_um, area_after_um, buffers_inserted,
//                        sinks_rewired, gates_removed, paths_optimized,
//                        protocol?}
//   CircuitResult    -> {tc_ps, achieved_delay_ps, area_um, met,
//                        paths_optimized, per_path: [{domain, method,
//                        tmin_ps, tmax_ps, delay_ps, area_um,
//                        buffers_inserted, gates_restructured}]}
//   PipelineReport   -> {tc_ps, met, delay_model,
//                        initial/final delay+area, totals...,
//                        passes: [PassReport],
//                        measured?: {from_cache, runtime_ms,
//                        pass_runtimes_ms: [per pass]}}
//   SweepPoint       -> {circuit, tc_ratio, shield_margin, policy,
//                        report: PipelineReport}
//   SweepReport      -> {points: [SweepPoint], cache: {hits, misses,
//                        entries}, wall_ms?}
//
// Every field OUTSIDE the trailing "measured" section (and the report's
// wall_ms) is a pure function of the inputs: same spec, same bytes, run
// to run. The measured fields — runtimes and cache provenance — are the
// only run-dependent ones, quarantined so consumers can diff record
// streams byte-exactly by serializing with SerializeOptions{.measured =
// false} (pops_sweep/pops_serve --no-runtimes) instead of scrubbing.
//
// The inverse direction exists for the *input* types only (sweep specs
// enter as files through pops_sweep --spec): config_from_json /
// sweep_spec_from_json accept exactly the projections above (policies may
// be names or {name, shielding, restructuring} objects) and reject
// unknown keys with diagnostics listing every problem.

#include "pops/api/api.hpp"
#include "pops/core/protocol.hpp"
#include "pops/service/sweep.hpp"
#include "pops/util/json.hpp"

namespace pops::service {

/// Controls whether run-dependent fields (the "measured" section, the
/// sweep report's wall_ms) are emitted. Everything else is deterministic.
struct SerializeOptions {
  bool measured = true;
};

util::Json to_json(const api::OptimizerConfig& cfg);
util::Json to_json(const api::PassReport& report);
util::Json to_json(const core::ProtocolResult& result);
util::Json to_json(const core::CircuitResult& result);
util::Json to_json(const api::PipelineReport& report,
                   const SerializeOptions& opt = {});
util::Json to_json(const BufferPolicy& policy);
util::Json to_json(const SweepSpec& spec);
util::Json to_json(const SweepPoint& point, const SerializeOptions& opt = {});
util::Json to_json(const SweepReport& report, const SerializeOptions& opt = {});

/// Overlay the members of `j` onto a default-constructed OptimizerConfig.
/// Accepts the to_json(OptimizerConfig) schema; unknown keys or
/// wrong-kinded values throw std::invalid_argument listing every problem.
/// The result is NOT validated here — SweepSpec::validate() (or
/// Optimizer construction) owns that, so file input and programmatic
/// input share one validation path.
api::OptimizerConfig config_from_json(const util::Json& j);

/// Parse a SweepSpec from its JSON projection. Same conventions as
/// config_from_json; "policies" entries may be policy names (resolved via
/// buffer_policy) or full {name, shielding, restructuring} objects.
SweepSpec sweep_spec_from_json(const util::Json& j);

}  // namespace pops::service
