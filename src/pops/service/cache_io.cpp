#include "pops/service/cache_io.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"
#include "pops/timing/path.hpp"
#include "pops/util/hash.hpp"

namespace pops::service {

using util::Json;

namespace {

constexpr const char* kFormat = "pops-result-cache";
// v2: CircuitResult entries carry the `rounds` counter (the protocol's
// no-op-round fix made round counts meaningful and reportable).
// v3: reports carry the power section + Vt mix, pass reports the multi-vt
// counters, and netlist nodes an optional per-node "vt" class.
constexpr int kVersion = 3;

// ----- strict readers ---------------------------------------------------------
// Archives are machine-written; any deviation is corruption, so readers
// throw std::invalid_argument naming the offending key (load_result_cache
// catches per entry and skips).

const Json& member(const Json& j, const char* key) {
  const Json* v = j.find(key);
  if (!v) throw std::invalid_argument(std::string("missing key '") + key + "'");
  return *v;
}

double num(const Json& j, const char* key) {
  const Json& v = member(j, key);
  if (!v.is_number())
    throw std::invalid_argument(std::string("'") + key + "' must be a number");
  return v.as_number();
}

/// Archive form of a double that may legitimately be non-finite: report
/// fields like the sensitivity coefficient are -inf on the weak-
/// constraint path (size_for_constraint's a -> -inf limit), and JSON
/// numbers cannot carry that (Json serializes non-finite as null, which
/// would silently drop the entry at load). Finite values stay plain
/// numbers; non-finite ones become the strings "inf" / "-inf" / "nan"
/// (NaN loses its payload bits — no optimizer result carries a payload).
Json archive_f64(double v) {
  if (std::isfinite(v)) return Json(v);
  if (std::isnan(v)) return Json("nan");
  return Json(v > 0 ? "inf" : "-inf");
}

double restore_f64(const Json& j, const char* key) {
  const Json& v = member(j, key);
  if (v.is_number()) return v.as_number();
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  throw std::invalid_argument(std::string("'") + key +
                              "' must be a number (or inf/-inf/nan)");
}

bool boolean(const Json& j, const char* key) {
  const Json& v = member(j, key);
  if (!v.is_bool())
    throw std::invalid_argument(std::string("'") + key + "' must be a boolean");
  return v.as_bool();
}

const std::string& str(const Json& j, const char* key) {
  const Json& v = member(j, key);
  if (!v.is_string())
    throw std::invalid_argument(std::string("'") + key + "' must be a string");
  return v.as_string();
}

std::uint64_t hex(const Json& j, const char* key) {
  std::uint64_t out = 0;
  if (!util::parse_hex_u64(str(j, key), out))
    throw std::invalid_argument(std::string("'") + key +
                                "' must be a hex u64 string");
  return out;
}

const std::vector<Json>& array(const Json& j, const char* key) {
  const Json& v = member(j, key);
  if (!v.is_array())
    throw std::invalid_argument(std::string("'") + key + "' must be an array");
  return v.items();
}

std::size_t count(const Json& j, const char* key) {
  const double d = num(j, key);
  if (!(d >= 0.0 && d <= 9007199254740992.0) || d != static_cast<double>(
          static_cast<std::uint64_t>(d)))
    throw std::invalid_argument(std::string("'") + key +
                                "' must be a non-negative integer");
  return static_cast<std::size_t>(d);
}

// ----- enum spellings ---------------------------------------------------------

core::ConstraintDomain domain_from_string(const std::string& s) {
  for (const core::ConstraintDomain d :
       {core::ConstraintDomain::Infeasible, core::ConstraintDomain::Hard,
        core::ConstraintDomain::Medium, core::ConstraintDomain::Weak})
    if (s == core::to_string(d)) return d;
  throw std::invalid_argument("unknown constraint domain '" + s + "'");
}

core::Method method_from_string(const std::string& s) {
  for (const core::Method m :
       {core::Method::Sizing, core::Method::LocalBufferSizing,
        core::Method::GlobalBufferSizing, core::Method::Restructure})
    if (s == core::to_string(m)) return m;
  throw std::invalid_argument("unknown protocol method '" + s + "'");
}

const char* edge_to_string(timing::Edge e) {
  return e == timing::Edge::Rise ? "rise" : "fall";
}

timing::Edge edge_from_string(const std::string& s) {
  if (s == "rise") return timing::Edge::Rise;
  if (s == "fall") return timing::Edge::Fall;
  throw std::invalid_argument("unknown edge '" + s + "'");
}

// ----- BoundedPath ------------------------------------------------------------

Json archive_path(const timing::BoundedPath& path) {
  Json j = Json::object();
  j["input_edge"] = edge_to_string(path.input_edge());
  j["input_slew_ps"] = path.input_slew_ps();
  j["terminal_ff"] = path.terminal_ff();
  Json stages = Json::array();
  for (std::size_t i = 0; i < path.size(); ++i) {
    const timing::PathStage& st = path.stage(i);
    Json s = Json::object();
    s["kind"] = liberty::to_string(st.kind);
    s["node"] = static_cast<long long>(st.node);
    s["off_path_ff"] = st.off_path_ff;
    s["sizable"] = st.sizable;
    s["shielded"] = st.shielded;
    stages.push_back(std::move(s));
  }
  j["stages"] = std::move(stages);
  Json cins = Json::array();
  for (const double c : path.cins()) cins.push_back(c);
  j["cins"] = std::move(cins);
  return j;
}

timing::BoundedPath restore_path(const Json& j, const liberty::Library& lib) {
  std::vector<timing::PathStage> stages;
  for (const Json& s : array(j, "stages")) {
    timing::PathStage st;
    st.kind = liberty::cell_kind_from_string(str(s, "kind"));
    const double node = num(s, "node");
    st.node = static_cast<netlist::NodeId>(node);
    if (static_cast<double>(st.node) != node)
      throw std::invalid_argument("stage 'node' out of range");
    st.off_path_ff = num(s, "off_path_ff");
    st.sizable = boolean(s, "sizable");
    st.shielded = boolean(s, "shielded");
    stages.push_back(st);
  }
  std::vector<double> cins;
  for (const Json& c : array(j, "cins")) {
    if (!c.is_number())
      throw std::invalid_argument("'cins' must contain only numbers");
    cins.push_back(c.as_number());
  }
  if (cins.size() != stages.size())
    throw std::invalid_argument("'cins' arity does not match 'stages'");
  if (cins.empty()) throw std::invalid_argument("'stages' is empty");
  timing::BoundedPath path(lib, std::move(stages), cins[0],
                           num(j, "terminal_ff"),
                           edge_from_string(str(j, "input_edge")),
                           num(j, "input_slew_ps"));
  // set_cin clamps to the realisable range; archived CINs were produced
  // through set_cin over an identical library, so the clamp is an identity
  // and the restored values are bit-exact.
  for (std::size_t i = 1; i < cins.size(); ++i) path.set_cin(i, cins[i]);
  return path;
}

// ----- protocol / circuit results ---------------------------------------------

Json archive_protocol_result(const core::ProtocolResult& r) {
  Json j = Json::object();
  j["domain"] = core::to_string(r.domain);
  j["method"] = core::to_string(r.method);
  j["tmin_ps"] = archive_f64(r.tmin_ps);
  j["tmax_ps"] = archive_f64(r.tmax_ps);
  j["buffers_inserted"] = r.buffers_inserted;
  j["gates_restructured"] = r.gates_restructured;
  j["extra_area_um"] = archive_f64(r.extra_area_um);
  Json s = Json::object();
  s["delay_ps"] = archive_f64(r.sizing.delay_ps);
  s["area_um"] = archive_f64(r.sizing.area_um);
  // The weak-constraint path (Tc >= Tmax) realizes a = -inf.
  s["a"] = archive_f64(r.sizing.a);
  s["feasible"] = r.sizing.feasible;
  s["sweeps"] = r.sizing.sweeps;
  s["path"] = archive_path(r.sizing.path);
  j["sizing"] = std::move(s);
  return j;
}

core::ProtocolResult restore_protocol_result(const Json& j,
                                             const liberty::Library& lib) {
  const Json& s = member(j, "sizing");
  core::SizingResult sizing{restore_path(member(s, "path"), lib),
                            restore_f64(s, "delay_ps"),
                            restore_f64(s, "area_um"),
                            restore_f64(s, "a"),
                            boolean(s, "feasible"),
                            static_cast<int>(num(s, "sweeps"))};
  core::ProtocolResult r(std::move(sizing));
  r.domain = domain_from_string(str(j, "domain"));
  r.method = method_from_string(str(j, "method"));
  r.tmin_ps = restore_f64(j, "tmin_ps");
  r.tmax_ps = restore_f64(j, "tmax_ps");
  r.buffers_inserted = count(j, "buffers_inserted");
  r.gates_restructured = count(j, "gates_restructured");
  r.extra_area_um = restore_f64(j, "extra_area_um");
  return r;
}

Json archive_circuit_result(const core::CircuitResult& r) {
  Json j = Json::object();
  j["tc_ps"] = archive_f64(r.tc_ps);
  j["achieved_delay_ps"] = archive_f64(r.achieved_delay_ps);
  j["area_um"] = archive_f64(r.area_um);
  j["met"] = r.met;
  j["paths_optimized"] = r.paths_optimized;
  j["rounds"] = r.rounds;
  Json paths = Json::array();
  for (const core::ProtocolResult& p : r.per_path)
    paths.push_back(archive_protocol_result(p));
  j["per_path"] = std::move(paths);
  return j;
}

core::CircuitResult restore_circuit_result(const Json& j,
                                           const liberty::Library& lib) {
  core::CircuitResult r;
  r.tc_ps = restore_f64(j, "tc_ps");
  r.achieved_delay_ps = restore_f64(j, "achieved_delay_ps");
  r.area_um = restore_f64(j, "area_um");
  r.met = boolean(j, "met");
  r.paths_optimized = count(j, "paths_optimized");
  r.rounds = count(j, "rounds");
  for (const Json& p : array(j, "per_path"))
    r.per_path.push_back(restore_protocol_result(p, lib));
  return r;
}

// ----- pass / pipeline reports ------------------------------------------------

Json archive_pass_report(const api::PassReport& r) {
  Json j = Json::object();
  j["pass"] = r.pass_name;
  j["delay_before_ps"] = archive_f64(r.delay_before_ps);
  j["delay_after_ps"] = archive_f64(r.delay_after_ps);
  j["area_before_um"] = archive_f64(r.area_before_um);
  j["area_after_um"] = archive_f64(r.area_after_um);
  j["runtime_ms"] = archive_f64(r.runtime_ms);
  j["changed"] = r.changed;
  j["buffers_inserted"] = r.buffers_inserted;
  j["sinks_rewired"] = r.sinks_rewired;
  j["gates_removed"] = r.gates_removed;
  j["paths_optimized"] = r.paths_optimized;
  j["cells_high_vt"] = r.cells_high_vt;
  j["leakage_saved_uw"] = archive_f64(r.leakage_saved_uw);
  if (r.circuit) j["protocol"] = archive_circuit_result(*r.circuit);
  return j;
}

api::PassReport restore_pass_report(const Json& j,
                                    const liberty::Library& lib) {
  api::PassReport r;
  r.pass_name = str(j, "pass");
  r.delay_before_ps = restore_f64(j, "delay_before_ps");
  r.delay_after_ps = restore_f64(j, "delay_after_ps");
  r.area_before_um = restore_f64(j, "area_before_um");
  r.area_after_um = restore_f64(j, "area_after_um");
  r.runtime_ms = restore_f64(j, "runtime_ms");
  r.changed = boolean(j, "changed");
  r.buffers_inserted = count(j, "buffers_inserted");
  r.sinks_rewired = count(j, "sinks_rewired");
  r.gates_removed = count(j, "gates_removed");
  r.paths_optimized = count(j, "paths_optimized");
  r.cells_high_vt = count(j, "cells_high_vt");
  r.leakage_saved_uw = restore_f64(j, "leakage_saved_uw");
  if (const Json* protocol = j.find("protocol"))
    r.circuit = restore_circuit_result(*protocol, lib);
  return r;
}

Json archive_power_report(const power::PowerReport& p) {
  Json j = Json::object();
  j["model"] = p.model;
  j["temperature_c"] = archive_f64(p.temperature_c);
  j["frequency_mhz"] = archive_f64(p.frequency_mhz);
  j["area_um"] = archive_f64(p.area_um);
  j["switched_cap_ff"] = archive_f64(p.switched_cap_ff);
  j["dynamic_uw"] = archive_f64(p.dynamic_uw);
  j["subthreshold_uw"] = archive_f64(p.subthreshold_uw);
  j["gate_leak_uw"] = archive_f64(p.gate_leak_uw);
  j["leakage_uw"] = archive_f64(p.leakage_uw);
  j["total_uw"] = archive_f64(p.total_uw);
  return j;
}

power::PowerReport restore_power_report(const Json& j) {
  power::PowerReport p;
  p.model = str(j, "model");
  p.temperature_c = restore_f64(j, "temperature_c");
  p.frequency_mhz = restore_f64(j, "frequency_mhz");
  p.area_um = restore_f64(j, "area_um");
  p.switched_cap_ff = restore_f64(j, "switched_cap_ff");
  p.dynamic_uw = restore_f64(j, "dynamic_uw");
  p.subthreshold_uw = restore_f64(j, "subthreshold_uw");
  p.gate_leak_uw = restore_f64(j, "gate_leak_uw");
  p.leakage_uw = restore_f64(j, "leakage_uw");
  p.total_uw = restore_f64(j, "total_uw");
  return p;
}

}  // namespace

Json archive_report(const api::PipelineReport& report) {
  Json j = Json::object();
  j["tc_ps"] = archive_f64(report.tc_ps);
  j["initial_delay_ps"] = archive_f64(report.initial_delay_ps);
  j["final_delay_ps"] = archive_f64(report.final_delay_ps);
  j["initial_area_um"] = archive_f64(report.initial_area_um);
  j["final_area_um"] = archive_f64(report.final_area_um);
  j["met"] = report.met;
  j["from_cache"] = report.from_cache;
  j["delay_model"] = report.delay_model;
  j["power"] = archive_power_report(report.power);
  Json vt_mix = Json::array();
  for (const std::size_t n : report.vt_mix)
    vt_mix.push_back(static_cast<double>(n));
  j["vt_mix"] = std::move(vt_mix);
  Json passes = Json::array();
  for (const api::PassReport& p : report.passes)
    passes.push_back(archive_pass_report(p));
  j["passes"] = std::move(passes);
  return j;
}

api::PipelineReport restore_report(const Json& j,
                                   const liberty::Library& lib) {
  api::PipelineReport r;
  r.tc_ps = restore_f64(j, "tc_ps");
  r.initial_delay_ps = restore_f64(j, "initial_delay_ps");
  r.final_delay_ps = restore_f64(j, "final_delay_ps");
  r.initial_area_um = restore_f64(j, "initial_area_um");
  r.final_area_um = restore_f64(j, "final_area_um");
  r.met = boolean(j, "met");
  r.from_cache = boolean(j, "from_cache");
  r.delay_model = str(j, "delay_model");
  r.power = restore_power_report(member(j, "power"));
  for (const Json& v : array(j, "vt_mix")) {
    if (!v.is_number())
      throw std::invalid_argument("'vt_mix' must contain only numbers");
    r.vt_mix.push_back(static_cast<std::size_t>(v.as_number()));
  }
  for (const Json& p : array(j, "passes"))
    r.passes.push_back(restore_pass_report(p, lib));
  return r;
}

Json archive_netlist(const netlist::Netlist& nl) {
  Json j = Json::object();
  j["name"] = nl.name();
  j["fresh_counter"] = nl.fresh_counter();
  Json nodes = Json::array();
  for (netlist::NodeId id = 0; id < static_cast<netlist::NodeId>(nl.size());
       ++id) {
    const netlist::Node& n = nl.node(id);
    Json node = Json::object();
    node["name"] = n.name;
    if (n.is_input) {
      node["input"] = true;
    } else {
      node["kind"] = liberty::to_string(n.kind);
      Json fanins = Json::array();
      for (const netlist::NodeId f : n.fanins)
        fanins.push_back(static_cast<long long>(f));
      node["fanins"] = std::move(fanins);
      node["wn_um"] = n.wn_um;
      // Default-class gates stay implicit so single-Vt archives keep
      // their historical bytes.
      if (n.vt != 0) node["vt"] = static_cast<long long>(n.vt);
    }
    node["wire_cap_ff"] = n.wire_cap_ff;
    if (n.is_output) node["po_load_ff"] = n.po_load_ff;
    nodes.push_back(std::move(node));
  }
  j["nodes"] = std::move(nodes);
  return j;
}

netlist::Netlist restore_netlist(const Json& j, const liberty::Library& lib) {
  std::vector<netlist::Node> nodes;
  for (const Json& v : array(j, "nodes")) {
    netlist::Node n;
    n.name = str(v, "name");
    if (const Json* input = v.find("input")) {
      if (!input->is_bool() || !input->as_bool())
        throw std::invalid_argument("'input' must be true when present");
      n.is_input = true;
    } else {
      n.kind = liberty::cell_kind_from_string(str(v, "kind"));
      for (const Json& f : array(v, "fanins")) {
        if (!f.is_number())
          throw std::invalid_argument("'fanins' must contain only numbers");
        const double id = f.as_number();
        n.fanins.push_back(static_cast<netlist::NodeId>(id));
        if (static_cast<double>(n.fanins.back()) != id)
          throw std::invalid_argument("'fanins' id out of range");
      }
      n.wn_um = num(v, "wn_um");
      if (const Json* vt = v.find("vt")) {
        if (!vt->is_number())
          throw std::invalid_argument("'vt' must be a number");
        n.vt = static_cast<int>(vt->as_number());
        if (static_cast<double>(n.vt) != vt->as_number() || n.vt < 0)
          throw std::invalid_argument("'vt' must be a non-negative integer");
      }
    }
    n.wire_cap_ff = num(v, "wire_cap_ff");
    if (const Json* po = v.find("po_load_ff")) {
      if (!po->is_number())
        throw std::invalid_argument("'po_load_ff' must be a number");
      n.is_output = true;
      n.po_load_ff = po->as_number();
    }
    nodes.push_back(std::move(n));
  }
  const double fresh = num(j, "fresh_counter");
  return netlist::Netlist::from_nodes(lib, str(j, "name"), std::move(nodes),
                                      static_cast<int>(fresh));
}

Json save_result_cache(const ResultCache& cache, const api::OptContext& ctx) {
  obs::Span span("cache/save");
  Json doc = Json::object();
  doc["format"] = kFormat;
  doc["version"] = kVersion;

  Json context = Json::object();
  context["signature"] = util::hex_u64(ResultCache::hash_context(ctx));
  context["technology"] = ctx.tech().name;
  context["rng_seed"] = util::hex_u64(ctx.rng_seed());
  // The backend installed at save time — informational only (entries key
  // their own backend through config_hash and may span several).
  context["delay_model"] = ctx.dm().selector();
  doc["context"] = std::move(context);

  struct Keyed {
    std::string sort_key;
    Json value;
  };
  std::vector<Keyed> entries;
  cache.for_each_entry([&](const api::ResultCacheKey& key,
                           const netlist::Netlist& nl,
                           const api::PipelineReport& report) {
    Json e = Json::object();
    Json k = Json::object();
    k["circuit"] = util::hex_u64(key.circuit_hash);
    k["config"] = util::hex_u64(key.config_hash);
    k["tc"] = util::hex_u64(key.tc_bits);
    e["key"] = std::move(k);
    // Integrity hash of the archived (optimized) netlist — NOT the same as
    // key.circuit (which hashes the pre-optimization input); lets load
    // detect truncated/bit-rotted records before installing them.
    e["netlist_hash"] = util::hex_u64(ResultCache::hash_netlist(nl));
    e["delay_model"] = report.delay_model;
    e["netlist"] = archive_netlist(nl);
    e["report"] = archive_report(report);
    entries.push_back(Keyed{util::hex_u64(key.circuit_hash) +
                                util::hex_u64(key.config_hash) +
                                util::hex_u64(key.tc_bits),
                            std::move(e)});
  });
  // Sorted by key, not by LRU recency: the same resident state must
  // serialize to the same bytes regardless of access history.
  std::sort(entries.begin(), entries.end(),
            [](const Keyed& a, const Keyed& b) {
              return a.sort_key < b.sort_key;
            });
  Json entries_json = Json::array();
  for (Keyed& e : entries) entries_json.push_back(std::move(e.value));
  doc["entries"] = std::move(entries_json);

  std::vector<Keyed> delays;
  cache.for_each_initial_delay(
      [&](const api::ResultCacheKey& key, double delay_ps) {
        Json e = Json::object();
        Json k = Json::object();
        k["circuit"] = util::hex_u64(key.circuit_hash);
        k["config"] = util::hex_u64(key.config_hash);
        e["key"] = std::move(k);
        e["delay_ps"] = delay_ps;
        delays.push_back(Keyed{util::hex_u64(key.circuit_hash) +
                                   util::hex_u64(key.config_hash),
                               std::move(e)});
      });
  std::sort(delays.begin(), delays.end(), [](const Keyed& a, const Keyed& b) {
    return a.sort_key < b.sort_key;
  });
  Json delays_json = Json::array();
  for (Keyed& e : delays) delays_json.push_back(std::move(e.value));
  doc["initial_delays"] = std::move(delays_json);
  return doc;
}

CacheLoadReport load_result_cache(ResultCache& cache, api::OptContext& ctx,
                                  const Json& doc) {
  obs::Span span("cache/load");
  if (!doc.is_object() || !doc.find("format") ||
      !member(doc, "format").is_string() ||
      member(doc, "format").as_string() != kFormat)
    throw std::invalid_argument(
        "not a pops-result-cache document (missing/wrong 'format')");
  if (static_cast<int>(num(doc, "version")) != kVersion)
    // Old-version entries cannot be admitted (replays must stay
    // bit-identical to fresh runs, and older schemas lack fields fresh
    // reports carry), and silently cold-starting would rename-destroy
    // the file at the next checkpoint — so name the recovery instead.
    throw std::invalid_argument(
        "unsupported pops-result-cache version " +
        Json::number_to_string(num(doc, "version")) + " (expected " +
        std::to_string(kVersion) +
        "); move the file aside (or delete it) to cold-start and let the "
        "server rebuild its cache");

  const Json& context = member(doc, "context");
  const std::uint64_t stored_sig = hex(context, "signature");
  const std::uint64_t live_sig = ResultCache::hash_context(ctx);
  if (stored_sig != live_sig) {
    // Stale-context rejection: entries are only replayable under the exact
    // characterization that produced them. Name what differs where we can.
    std::string msg =
        "result-cache document was saved under a different context "
        "characterization (stored signature " +
        util::hex_u64(stored_sig) + ", live " + util::hex_u64(live_sig) + ")";
    msg += "; stored technology '" + str(context, "technology") +
           "' vs live '" + ctx.tech().name + "'";
    msg += ", stored rng_seed " + str(context, "rng_seed") + " vs live " +
           util::hex_u64(ctx.rng_seed());
    msg += " — refusing to load (results would not replay bit-identically)";
    throw std::invalid_argument(msg);
  }

  CacheLoadReport out;
  // Re-binding persisted entries to the loading context's live identity
  // (mirrors ResultCache::make_key).
  // pops-lint: allow(address-identity)
  const std::uint64_t ctx_bits = reinterpret_cast<std::uintptr_t>(&ctx);
  const std::vector<Json>& entries = array(doc, "entries");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    try {
      const Json& e = entries[i];
      const Json& k = member(e, "key");
      api::ResultCacheKey key;
      key.circuit_hash = hex(k, "circuit");
      key.config_hash = hex(k, "config");
      key.tc_bits = hex(k, "tc");
      key.ctx_bits = ctx_bits;
      netlist::Netlist nl = restore_netlist(member(e, "netlist"), ctx.lib());
      const std::uint64_t want = hex(e, "netlist_hash");
      const std::uint64_t got = ResultCache::hash_netlist(nl);
      if (want != got)
        throw std::invalid_argument("netlist integrity hash mismatch (stored " +
                                    util::hex_u64(want) + ", restored " +
                                    util::hex_u64(got) + ")");
      api::PipelineReport report =
          restore_report(member(e, "report"), ctx.lib());
      cache.store(key, nl, report);
      ++out.entries_loaded;
    } catch (const std::exception& err) {
      out.problems.push_back("entry " + std::to_string(i) + " skipped: " +
                             err.what());
    }
  }

  const std::vector<Json>& delays = array(doc, "initial_delays");
  for (std::size_t i = 0; i < delays.size(); ++i) {
    try {
      const Json& e = delays[i];
      const Json& k = member(e, "key");
      api::ResultCacheKey key;
      key.circuit_hash = hex(k, "circuit");
      key.config_hash = hex(k, "config");
      key.ctx_bits = ctx_bits;
      cache.store_initial_delay(key, num(e, "delay_ps"));
      ++out.initial_delays_loaded;
    } catch (const std::exception& err) {
      out.problems.push_back("initial_delay " + std::to_string(i) +
                             " skipped: " + err.what());
    }
  }
  return out;
}

void save_result_cache_file(const ResultCache& cache,
                            const api::OptContext& ctx,
                            const std::string& path) {
  static const obs::Registry::Counter checkpoints =
      obs::Registry::global().counter("cache.checkpoints");
  checkpoints.add();
  obs::Span span("cache/checkpoint");
  const std::string text = save_result_cache(cache, ctx).dump(2) + "\n";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write '" + tmp + "'");
    out << text;
    if (!out.flush())
      throw std::runtime_error("short write to '" + tmp + "'");
  }
  // Atomic replace: a crash mid-checkpoint leaves the previous snapshot
  // intact, never a half-written file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

CacheLoadReport load_result_cache_file(ResultCache& cache,
                                       api::OptContext& ctx,
                                       const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return load_result_cache(cache, ctx, Json::parse(text.str()));
}

}  // namespace pops::service
