#include "pops/service/serialize.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "pops/obs/trace.hpp"

namespace pops::service {

using util::Json;

namespace {

Json to_json_axis(const std::vector<double>& axis) {
  Json arr = Json::array();
  for (const double v : axis) arr.push_back(v);
  return arr;
}

Json to_json_power(const power::PowerReport& p) {
  Json j = Json::object();
  j["model"] = p.model;
  j["temperature_c"] = p.temperature_c;
  j["frequency_mhz"] = p.frequency_mhz;
  j["area_um"] = p.area_um;
  j["switched_cap_ff"] = p.switched_cap_ff;
  j["dynamic_uw"] = p.dynamic_uw;
  j["subthreshold_uw"] = p.subthreshold_uw;
  j["gate_leak_uw"] = p.gate_leak_uw;
  j["leakage_uw"] = p.leakage_uw;
  j["total_uw"] = p.total_uw;
  return j;
}

}  // namespace

Json to_json(const api::OptimizerConfig& cfg) {
  Json j = Json::object();
  j["hard_ratio"] = cfg.hard_ratio;
  j["weak_ratio"] = cfg.weak_ratio;
  j["allow_restructuring"] = cfg.allow_restructuring;
  j["max_paths"] = cfg.max_paths;
  j["max_rounds"] = cfg.max_rounds;
  j["tc_margin"] = cfg.tc_margin;
  j["pi_slew_ps"] = cfg.pi_slew_ps;
  j["sta_workers"] = cfg.sta_workers;
  j["sta_parallel_min_nodes"] = cfg.sta_parallel_min_nodes;
  j["shield_margin"] = cfg.shield_margin;
  j["max_shield_buffers"] = cfg.max_shield_buffers;
  j["shield_fanout"] = cfg.shield_fanout;
  j["enable_shielding"] = cfg.enable_shielding;
  j["enable_cleanup"] = cfg.enable_cleanup;
  j["enable_protocol"] = cfg.enable_protocol;
  j["enable_multi_vt"] = cfg.enable_multi_vt;
  j["delay_model"] = cfg.delay_model;
  j["power_model"] = cfg.power_model;
  j["temperature_c"] = cfg.temperature_c;
  Json vt = Json::array();
  for (const std::string& cls : cfg.vt_library) vt.push_back(cls);
  j["vt_library"] = std::move(vt);
  // Always archived, not gated on delay_model == "table": a closed-form
  // base can still carry a custom grid that a --delay-model table run
  // uses, and the dumped spec must reproduce those results.
  Json tm = Json::object();
  tm["slew_grid_ps"] = to_json_axis(cfg.table_model.slew_grid_ps);
  tm["load_grid"] = to_json_axis(cfg.table_model.load_grid);
  j["table_model"] = std::move(tm);
  return j;
}

Json to_json(const core::ProtocolResult& result) {
  Json j = Json::object();
  j["domain"] = core::to_string(result.domain);
  j["method"] = core::to_string(result.method);
  j["tmin_ps"] = result.tmin_ps;
  j["tmax_ps"] = result.tmax_ps;
  j["delay_ps"] = result.sizing.delay_ps;
  j["area_um"] = result.total_area_um();
  j["buffers_inserted"] = result.buffers_inserted;
  j["gates_restructured"] = result.gates_restructured;
  return j;
}

Json to_json(const core::CircuitResult& result) {
  Json j = Json::object();
  j["tc_ps"] = result.tc_ps;
  j["achieved_delay_ps"] = result.achieved_delay_ps;
  j["area_um"] = result.area_um;
  j["met"] = result.met;
  j["paths_optimized"] = result.paths_optimized;
  j["rounds"] = result.rounds;
  Json paths = Json::array();
  for (const core::ProtocolResult& p : result.per_path)
    paths.push_back(to_json(p));
  j["per_path"] = std::move(paths);
  return j;
}

Json to_json(const api::PassReport& report) {
  Json j = Json::object();
  j["pass"] = report.pass_name;
  j["changed"] = report.changed;
  j["delay_before_ps"] = report.delay_before_ps;
  j["delay_after_ps"] = report.delay_after_ps;
  j["area_before_um"] = report.area_before_um;
  j["area_after_um"] = report.area_after_um;
  j["buffers_inserted"] = report.buffers_inserted;
  j["sinks_rewired"] = report.sinks_rewired;
  j["gates_removed"] = report.gates_removed;
  j["paths_optimized"] = report.paths_optimized;
  j["cells_high_vt"] = report.cells_high_vt;
  j["leakage_saved_uw"] = report.leakage_saved_uw;
  if (report.circuit) j["protocol"] = to_json(*report.circuit);
  return j;
}

Json to_json(const api::PipelineReport& report, const SerializeOptions& opt) {
  Json j = Json::object();
  j["tc_ps"] = report.tc_ps;
  j["met"] = report.met;
  j["delay_model"] = report.delay_model;
  j["initial_delay_ps"] = report.initial_delay_ps;
  j["final_delay_ps"] = report.final_delay_ps;
  j["initial_area_um"] = report.initial_area_um;
  j["final_area_um"] = report.final_area_um;
  j["buffers_inserted"] = report.total_buffers_inserted();
  j["sinks_rewired"] = report.total_sinks_rewired();
  j["gates_removed"] = report.total_gates_removed();
  j["paths_optimized"] = report.total_paths_optimized();
  j["cells_high_vt"] = report.total_cells_high_vt();
  j["leakage_saved_uw"] = report.total_leakage_saved_uw();
  j["power"] = to_json_power(report.power);
  Json vt_mix = Json::array();
  for (const std::size_t n : report.vt_mix) vt_mix.push_back(n);
  j["vt_mix"] = std::move(vt_mix);
  Json passes = Json::array();
  for (const api::PassReport& p : report.passes) passes.push_back(to_json(p));
  j["passes"] = std::move(passes);
  // The run-dependent tail: everything above is a pure function of the
  // inputs; these fields vary run to run and are droppable for exact-byte
  // stream diffs (see SerializeOptions).
  if (opt.measured) {
    Json m = Json::object();
    m["from_cache"] = report.from_cache;
    m["runtime_ms"] = report.total_runtime_ms();
    Json pass_ms = Json::array();
    for (const api::PassReport& p : report.passes)
      pass_ms.push_back(p.runtime_ms);
    m["pass_runtimes_ms"] = std::move(pass_ms);
    j["measured"] = std::move(m);
  }
  return j;
}

Json to_json(const BufferPolicy& policy) {
  Json j = Json::object();
  j["name"] = policy.name;
  j["shielding"] = policy.shielding;
  j["restructuring"] = policy.restructuring;
  return j;
}

Json to_json(const SweepSpec& spec) {
  Json j = Json::object();
  Json circuits = Json::array();
  for (const std::string& c : spec.circuits) circuits.push_back(c);
  j["circuits"] = std::move(circuits);
  Json ratios = Json::array();
  for (const double r : spec.tc_ratios) ratios.push_back(r);
  j["tc_ratios"] = std::move(ratios);
  Json margins = Json::array();
  for (const double m : spec.shield_margins) margins.push_back(m);
  j["shield_margins"] = std::move(margins);
  Json temps = Json::array();
  for (const double t : spec.temperatures) temps.push_back(t);
  j["temperatures"] = std::move(temps);
  Json vt_policies = Json::array();
  for (const std::string& p : spec.vt_policies) vt_policies.push_back(p);
  j["vt_policies"] = std::move(vt_policies);
  Json policies = Json::array();
  for (const BufferPolicy& p : spec.policies) policies.push_back(to_json(p));
  j["policies"] = std::move(policies);
  if (!spec.pipeline.empty()) {
    Json pipeline = Json::array();
    for (const std::string& p : spec.pipeline) pipeline.push_back(p);
    j["pipeline"] = std::move(pipeline);
  }
  j["n_threads"] = spec.n_threads;
  j["base"] = to_json(spec.base);
  return j;
}

Json to_json(const SweepPoint& point, const SerializeOptions& opt) {
  obs::Span span("serialize/point");
  Json j = Json::object();
  j["circuit"] = point.circuit;
  j["tc_ratio"] = point.tc_ratio;
  j["shield_margin"] = point.shield_margin;
  j["temperature_c"] = point.temperature_c;
  j["policy"] = point.policy;
  j["vt_policy"] = point.vt_policy;
  j["report"] = to_json(point.report, opt);
  return j;
}

// ----- parsing (spec-file input) ----------------------------------------------

namespace {

/// Collects schema problems while walking a parsed document, so a bad spec
/// file reports every mistake at once (mirroring OptimizerConfig /
/// SweepSpec validation style).
struct ReadErrors {
  std::vector<std::string> problems;

  [[nodiscard]] bool check(bool ok, const std::string& msg) {
    if (!ok) problems.push_back(msg);
    return ok;
  }
  void throw_if_any(const char* what) const {
    if (problems.empty()) return;
    std::string msg = std::string(what) + " (" +
                      std::to_string(problems.size()) + " problem" +
                      (problems.size() == 1 ? "" : "s") + "):";
    for (const std::string& p : problems) msg += "\n  - " + p;
    throw std::invalid_argument(msg);
  }
};

bool read_number(ReadErrors& err, const util::Json& v, const std::string& key,
                 double& out) {
  if (!err.check(v.is_number(), "'" + key + "' must be a number")) return false;
  out = v.as_number();
  return true;
}

bool read_count(ReadErrors& err, const util::Json& v, const std::string& key,
                std::size_t& out) {
  double d = 0.0;
  if (!read_number(err, v, key, d)) return false;
  // Range-check BEFORE casting: float-to-integer conversion outside the
  // destination range is UB, and spec files are untrusted input. The
  // 2^53 bound keeps the value exactly representable as a double too.
  if (!err.check(d >= 0.0 && d <= 9007199254740992.0 && d == std::floor(d),
                 "'" + key + "' must be a non-negative integer"))
    return false;
  out = static_cast<std::size_t>(d);
  return true;
}

bool read_bool(ReadErrors& err, const util::Json& v, const std::string& key,
               bool& out) {
  if (!err.check(v.is_bool(), "'" + key + "' must be a boolean")) return false;
  out = v.as_bool();
  return true;
}

bool read_string(ReadErrors& err, const util::Json& v, const std::string& key,
                 std::string& out) {
  if (!err.check(v.is_string(), "'" + key + "' must be a string"))
    return false;
  out = v.as_string();
  return true;
}

bool read_numbers(ReadErrors& err, const util::Json& v, const std::string& key,
                  std::vector<double>& out) {
  if (!err.check(v.is_array(), "'" + key + "' must be an array of numbers"))
    return false;
  std::vector<double> values;
  for (const util::Json& item : v.items()) {
    if (!err.check(item.is_number(),
                   "'" + key + "' must contain only numbers"))
      return false;
    values.push_back(item.as_number());
  }
  out = std::move(values);
  return true;
}

bool read_strings(ReadErrors& err, const util::Json& v, const std::string& key,
                  std::vector<std::string>& out) {
  if (!err.check(v.is_array(), "'" + key + "' must be an array of strings"))
    return false;
  std::vector<std::string> values;
  for (const util::Json& item : v.items()) {
    if (!err.check(item.is_string(),
                   "'" + key + "' must contain only strings"))
      return false;
    values.push_back(item.as_string());
  }
  out = std::move(values);
  return true;
}

void read_table_model(ReadErrors& err, const util::Json& v,
                      timing::TableModelOptions& out) {
  if (!err.check(v.is_object(), "'table_model' must be an object")) return;
  for (const auto& [key, value] : v.members()) {
    if (key == "slew_grid_ps") {
      read_numbers(err, value, "table_model.slew_grid_ps", out.slew_grid_ps);
    } else if (key == "load_grid") {
      read_numbers(err, value, "table_model.load_grid", out.load_grid);
    } else {
      err.problems.push_back("unknown 'table_model' key '" + key + "'");
    }
  }
}

void read_config(ReadErrors& err, const util::Json& j,
                 api::OptimizerConfig& cfg) {
  if (!err.check(j.is_object(), "config must be an object")) return;
  for (const auto& [key, v] : j.members()) {
    if (key == "hard_ratio") read_number(err, v, key, cfg.hard_ratio);
    else if (key == "weak_ratio") read_number(err, v, key, cfg.weak_ratio);
    else if (key == "allow_restructuring")
      read_bool(err, v, key, cfg.allow_restructuring);
    else if (key == "max_paths") read_count(err, v, key, cfg.max_paths);
    else if (key == "max_rounds") {
      std::size_t n = 0;
      if (read_count(err, v, key, n)) {
        // Bound before narrowing: 2^32+1 would otherwise wrap to a wrong
        // but positive round count that passes validation.
        if (err.check(n <= static_cast<std::size_t>(
                               std::numeric_limits<int>::max()),
                      "'max_rounds' is out of range"))
          cfg.max_rounds = static_cast<int>(n);
      }
    } else if (key == "tc_margin") read_number(err, v, key, cfg.tc_margin);
    else if (key == "pi_slew_ps") read_number(err, v, key, cfg.pi_slew_ps);
    else if (key == "sta_workers") read_count(err, v, key, cfg.sta_workers);
    else if (key == "sta_parallel_min_nodes")
      read_count(err, v, key, cfg.sta_parallel_min_nodes);
    else if (key == "shield_margin")
      read_number(err, v, key, cfg.shield_margin);
    else if (key == "max_shield_buffers")
      read_count(err, v, key, cfg.max_shield_buffers);
    else if (key == "shield_fanout")
      read_number(err, v, key, cfg.shield_fanout);
    else if (key == "enable_shielding")
      read_bool(err, v, key, cfg.enable_shielding);
    else if (key == "enable_cleanup")
      read_bool(err, v, key, cfg.enable_cleanup);
    else if (key == "enable_protocol")
      read_bool(err, v, key, cfg.enable_protocol);
    else if (key == "enable_multi_vt")
      read_bool(err, v, key, cfg.enable_multi_vt);
    else if (key == "delay_model") read_string(err, v, key, cfg.delay_model);
    else if (key == "table_model") read_table_model(err, v, cfg.table_model);
    else if (key == "power_model") read_string(err, v, key, cfg.power_model);
    else if (key == "temperature_c")
      read_number(err, v, key, cfg.temperature_c);
    else if (key == "vt_library") read_strings(err, v, key, cfg.vt_library);
    else err.problems.push_back("unknown config key '" + key + "'");
  }
}

}  // namespace

api::OptimizerConfig config_from_json(const util::Json& j) {
  api::OptimizerConfig cfg;
  ReadErrors err;
  read_config(err, j, cfg);
  err.throw_if_any("invalid OptimizerConfig JSON");
  return cfg;
}

SweepSpec sweep_spec_from_json(const util::Json& j) {
  SweepSpec spec;
  ReadErrors err;
  if (!err.check(j.is_object(), "sweep spec must be a JSON object")) {
    err.throw_if_any("invalid SweepSpec JSON");
  }
  for (const auto& [key, v] : j.members()) {
    if (key == "circuits") {
      read_strings(err, v, key, spec.circuits);
    } else if (key == "tc_ratios") {
      read_numbers(err, v, key, spec.tc_ratios);
    } else if (key == "shield_margins") {
      read_numbers(err, v, key, spec.shield_margins);
    } else if (key == "temperatures") {
      read_numbers(err, v, key, spec.temperatures);
    } else if (key == "vt_policies") {
      read_strings(err, v, key, spec.vt_policies);
    } else if (key == "policies") {
      if (!err.check(v.is_array(), "'policies' must be an array")) continue;
      std::vector<BufferPolicy> policies;
      for (const util::Json& item : v.items()) {
        if (item.is_string()) {
          try {
            policies.push_back(buffer_policy(item.as_string()));
          } catch (const std::invalid_argument& e) {
            err.problems.push_back(e.what());
          }
        } else if (item.is_object()) {
          BufferPolicy p;
          for (const auto& [pk, pv] : item.members()) {
            if (pk == "name") read_string(err, pv, "policies[].name", p.name);
            else if (pk == "shielding")
              read_bool(err, pv, "policies[].shielding", p.shielding);
            else if (pk == "restructuring")
              read_bool(err, pv, "policies[].restructuring", p.restructuring);
            else
              err.problems.push_back("unknown policy key '" + pk + "'");
          }
          policies.push_back(std::move(p));
        } else {
          err.problems.push_back(
              "'policies' entries must be names or policy objects");
        }
      }
      // Overwrite even when empty: an explicit "policies": [] must reach
      // SweepSpec::validate ("policies is empty") like every other axis,
      // not silently keep the default policy.
      spec.policies = std::move(policies);
    } else if (key == "pipeline") {
      read_strings(err, v, key, spec.pipeline);
    } else if (key == "n_threads") {
      read_count(err, v, key, spec.n_threads);
    } else if (key == "base") {
      read_config(err, v, spec.base);
    } else {
      err.problems.push_back("unknown sweep-spec key '" + key + "'");
    }
  }
  err.throw_if_any("invalid SweepSpec JSON");
  return spec;
}

Json to_json(const SweepReport& report, const SerializeOptions& opt) {
  Json j = Json::object();
  Json points = Json::array();
  for (const SweepPoint& p : report.points) points.push_back(to_json(p, opt));
  j["points"] = std::move(points);
  // Hit/miss split depends on cache residency (run-dependent), but entry
  // count after a deterministic sweep is reproducible — keep the whole
  // block: consumers diff point streams, not summaries. wall_ms is pure
  // measurement and drops with the measured section.
  Json cache = Json::object();
  cache["hits"] = report.cache_hits;
  cache["misses"] = report.cache_misses;
  cache["entries"] = report.cache_entries;
  j["cache"] = std::move(cache);
  if (opt.measured) j["wall_ms"] = report.wall_ms;
  return j;
}

}  // namespace pops::service
