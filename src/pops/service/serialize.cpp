#include "pops/service/serialize.hpp"

namespace pops::service {

using util::Json;

Json to_json(const api::OptimizerConfig& cfg) {
  Json j = Json::object();
  j["hard_ratio"] = cfg.hard_ratio;
  j["weak_ratio"] = cfg.weak_ratio;
  j["allow_restructuring"] = cfg.allow_restructuring;
  j["max_paths"] = cfg.max_paths;
  j["max_rounds"] = cfg.max_rounds;
  j["tc_margin"] = cfg.tc_margin;
  j["pi_slew_ps"] = cfg.pi_slew_ps;
  j["shield_margin"] = cfg.shield_margin;
  j["max_shield_buffers"] = cfg.max_shield_buffers;
  j["shield_fanout"] = cfg.shield_fanout;
  j["enable_shielding"] = cfg.enable_shielding;
  j["enable_cleanup"] = cfg.enable_cleanup;
  j["enable_protocol"] = cfg.enable_protocol;
  return j;
}

Json to_json(const core::ProtocolResult& result) {
  Json j = Json::object();
  j["domain"] = core::to_string(result.domain);
  j["method"] = core::to_string(result.method);
  j["tmin_ps"] = result.tmin_ps;
  j["tmax_ps"] = result.tmax_ps;
  j["delay_ps"] = result.sizing.delay_ps;
  j["area_um"] = result.total_area_um();
  j["buffers_inserted"] = result.buffers_inserted;
  j["gates_restructured"] = result.gates_restructured;
  return j;
}

Json to_json(const core::CircuitResult& result) {
  Json j = Json::object();
  j["tc_ps"] = result.tc_ps;
  j["achieved_delay_ps"] = result.achieved_delay_ps;
  j["area_um"] = result.area_um;
  j["met"] = result.met;
  j["paths_optimized"] = result.paths_optimized;
  Json paths = Json::array();
  for (const core::ProtocolResult& p : result.per_path)
    paths.push_back(to_json(p));
  j["per_path"] = std::move(paths);
  return j;
}

Json to_json(const api::PassReport& report) {
  Json j = Json::object();
  j["pass"] = report.pass_name;
  j["changed"] = report.changed;
  j["delay_before_ps"] = report.delay_before_ps;
  j["delay_after_ps"] = report.delay_after_ps;
  j["area_before_um"] = report.area_before_um;
  j["area_after_um"] = report.area_after_um;
  j["runtime_ms"] = report.runtime_ms;
  j["buffers_inserted"] = report.buffers_inserted;
  j["sinks_rewired"] = report.sinks_rewired;
  j["gates_removed"] = report.gates_removed;
  j["paths_optimized"] = report.paths_optimized;
  if (report.circuit) j["protocol"] = to_json(*report.circuit);
  return j;
}

Json to_json(const api::PipelineReport& report) {
  Json j = Json::object();
  j["tc_ps"] = report.tc_ps;
  j["met"] = report.met;
  j["from_cache"] = report.from_cache;
  j["initial_delay_ps"] = report.initial_delay_ps;
  j["final_delay_ps"] = report.final_delay_ps;
  j["initial_area_um"] = report.initial_area_um;
  j["final_area_um"] = report.final_area_um;
  j["buffers_inserted"] = report.total_buffers_inserted();
  j["sinks_rewired"] = report.total_sinks_rewired();
  j["gates_removed"] = report.total_gates_removed();
  j["paths_optimized"] = report.total_paths_optimized();
  j["runtime_ms"] = report.total_runtime_ms();
  Json passes = Json::array();
  for (const api::PassReport& p : report.passes) passes.push_back(to_json(p));
  j["passes"] = std::move(passes);
  return j;
}

Json to_json(const BufferPolicy& policy) {
  Json j = Json::object();
  j["name"] = policy.name;
  j["shielding"] = policy.shielding;
  j["restructuring"] = policy.restructuring;
  return j;
}

Json to_json(const SweepSpec& spec) {
  Json j = Json::object();
  Json circuits = Json::array();
  for (const std::string& c : spec.circuits) circuits.push_back(c);
  j["circuits"] = std::move(circuits);
  Json ratios = Json::array();
  for (const double r : spec.tc_ratios) ratios.push_back(r);
  j["tc_ratios"] = std::move(ratios);
  Json margins = Json::array();
  for (const double m : spec.shield_margins) margins.push_back(m);
  j["shield_margins"] = std::move(margins);
  Json policies = Json::array();
  for (const BufferPolicy& p : spec.policies) policies.push_back(to_json(p));
  j["policies"] = std::move(policies);
  if (!spec.pipeline.empty()) {
    Json pipeline = Json::array();
    for (const std::string& p : spec.pipeline) pipeline.push_back(p);
    j["pipeline"] = std::move(pipeline);
  }
  j["n_threads"] = spec.n_threads;
  j["base"] = to_json(spec.base);
  return j;
}

Json to_json(const SweepPoint& point) {
  Json j = Json::object();
  j["circuit"] = point.circuit;
  j["tc_ratio"] = point.tc_ratio;
  j["shield_margin"] = point.shield_margin;
  j["policy"] = point.policy;
  j["report"] = to_json(point.report);
  return j;
}

Json to_json(const SweepReport& report) {
  Json j = Json::object();
  Json points = Json::array();
  for (const SweepPoint& p : report.points) points.push_back(to_json(p));
  j["points"] = std::move(points);
  Json cache = Json::object();
  cache["hits"] = report.cache_hits;
  cache["misses"] = report.cache_misses;
  cache["entries"] = report.cache_entries;
  j["cache"] = std::move(cache);
  j["wall_ms"] = report.wall_ms;
  return j;
}

}  // namespace pops::service
