#pragma once
// Constraint sweeps as a service.
//
// The protocol is a design-time tool only when swept: the paper's own
// evaluation is a grid of (circuit, constraint, policy) points (Tables
// 2-4, Figs. 6/8). SweepService turns a long-lived OptContext/Optimizer
// into exactly that batch server: a declarative SweepSpec describes the
// grid (circuits x Tc ratios x Flimit shield margins x buffer policies),
// the service expands it into jobs, schedules every constraint group onto
// Optimizer::run_many's work-queue workers, memoizes converged points
// through the context's ResultCache (repeated points are O(lookup) and
// bit-identical), and streams one structured record per completed point.
//
// The pops_sweep CLI (tools/pops_sweep.cpp) is a thin front-end: .bench
// files in, one JSON report out (schema in service/serialize.hpp).

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/power/report.hpp"
#include "pops/service/result_cache.hpp"

namespace pops::service {

/// One buffering regime of the sweep grid (the Table 3/4 axis): which
/// structural alternatives the optimizer may use.
struct BufferPolicy {
  std::string name = "standard";
  bool shielding = true;      ///< run the circuit-wide shield pass
  bool restructuring = true;  ///< allow De Morgan restructuring
};

/// Look up a named policy: "standard" (shield + restructure), "no-shield",
/// "no-restructure", "minimal" (neither). Throws std::invalid_argument
/// listing the known names otherwise.
BufferPolicy buffer_policy(const std::string& name);

/// Declarative description of a sweep grid. The expansion is the full
/// cross product policies x vt_policies x temperatures x shield_margins x
/// tc_ratios x circuits, in that nesting order (circuit fastest), so job
/// order — and therefore record order — is deterministic.
struct SweepSpec {
  std::vector<std::string> circuits;  ///< names resolved by the loader
  std::vector<double> tc_ratios;      ///< Tc as a fraction of initial delay
  std::vector<double> shield_margins{1.0};  ///< Flimit bound sweep (Table 2)
  /// Junction temperatures (degC) the power section is evaluated at.
  std::vector<double> temperatures{power::kDefaultTemperatureC};
  /// Vt assignment regimes: "none" (single-Vt) or "multi-vt" (append the
  /// slack-driven high-Vt pass to each job's pipeline).
  std::vector<std::string> vt_policies{"none"};
  std::vector<BufferPolicy> policies{BufferPolicy{}};

  /// Base configuration; each job overrides enable_shielding /
  /// allow_restructuring (policy) and shield_margin (margin axis).
  api::OptimizerConfig base;

  /// Optional declarative pipeline (PassRegistry names). Empty = the
  /// standard pipeline of each job's config. When set, it replaces the
  /// pass sequence for every job, so the policies' `shielding` flag no
  /// longer selects passes (restructuring still applies: it is a config
  /// knob, not a pass).
  std::vector<std::string> pipeline;

  std::size_t n_threads = 0;  ///< workers per batch; 0 = hardware threads

  /// Jobs the spec expands to.
  std::size_t n_jobs() const noexcept {
    return circuits.size() * tc_ratios.size() * shield_margins.size() *
           temperatures.size() * vt_policies.size() * policies.size();
  }

  /// Every violated invariant (empty axes, non-positive ratios/margins,
  /// duplicate policy names, unknown pipeline passes, base config
  /// problems), as human-readable diagnostics.
  std::vector<std::string> validate() const;

  /// Throws std::invalid_argument listing every problem; no-op when valid.
  void ensure_valid() const;
};

/// One completed grid point.
struct SweepPoint {
  std::string circuit;
  double tc_ratio = 0.0;
  double shield_margin = 1.0;
  double temperature_c = power::kDefaultTemperatureC;
  std::string policy;
  std::string vt_policy = "none";
  api::PipelineReport report;
};

/// Outcome of one SweepService::run.
struct SweepReport {
  std::vector<SweepPoint> points;  ///< in deterministic job order
  std::size_t cache_hits = 0;      ///< cache hits during this run
  std::size_t cache_misses = 0;    ///< cache misses during this run
  std::size_t cache_entries = 0;   ///< entries resident after this run
  double wall_ms = 0.0;
};

class SweepService {
 public:
  /// Resolves a spec circuit name to a netlist (called once per name; the
  /// service copies the prototype for every job touching it).
  using CircuitLoader =
      std::function<netlist::Netlist(const std::string& name)>;

  /// Invoked after each completed point, in job order (from the scheduling
  /// thread, so sinks need no locking). Used by the CLI to stream JSONL
  /// records while the sweep is still running.
  using RecordSink = std::function<void(const SweepPoint&)>;

  /// Bind to a context. With `use_cache`, installs a ResultCache on the
  /// context (reusing one already installed by a previous SweepService),
  /// so repeated sweeps over the same context share memoized points.
  /// With `use_cache = false`, any installed cache is *removed* from the
  /// context — the service's runs must really be uncached.
  explicit SweepService(api::OptContext& ctx, bool use_cache = true);

  /// Expand `spec` and run every job. Throws on an invalid spec or a
  /// loader failure; per-point optimization errors propagate like
  /// Optimizer::run_many's.
  SweepReport run(const SweepSpec& spec, const CircuitLoader& load,
                  const RecordSink& sink = {}) const;

  /// The cache this service memoizes through; nullptr when constructed
  /// with use_cache = false (or the context carries a foreign hook).
  ResultCache* cache() const noexcept { return cache_.get(); }

  api::OptContext& context() const noexcept { return *ctx_; }

 private:
  api::OptContext* ctx_;
  std::shared_ptr<ResultCache> cache_;
};

}  // namespace pops::service
