#include "pops/service/cache_journal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>
#include <vector>

#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"
#include "pops/util/hash.hpp"

namespace pops::service {

using util::Json;

namespace {

constexpr const char* kJournalFormat = "pops-cache-journal";
// v2: records embed the v3 archive schema (power section + Vt mix in
// reports, per-node "vt" on netlists) — older journals lack fields fresh
// replays carry.
constexpr int kJournalVersion = 2;

// Strict readers (journal-local twins of cache_io's file-local set):
// records are machine-written, any deviation is corruption, and the
// replay loop catches per record and skips.

const Json& member(const Json& j, const char* key) {
  const Json* v = j.find(key);
  if (!v) throw std::invalid_argument(std::string("missing key '") + key + "'");
  return *v;
}

const std::string& str(const Json& j, const char* key) {
  const Json& v = member(j, key);
  if (!v.is_string())
    throw std::invalid_argument(std::string("'") + key + "' must be a string");
  return v.as_string();
}

double num(const Json& j, const char* key) {
  const Json& v = member(j, key);
  if (!v.is_number())
    throw std::invalid_argument(std::string("'") + key + "' must be a number");
  return v.as_number();
}

std::uint64_t hex(const Json& j, const char* key) {
  std::uint64_t out = 0;
  if (!util::parse_hex_u64(str(j, key), out))
    throw std::invalid_argument(std::string("'") + key +
                                "' must be a hex u64 string");
  return out;
}

// Content identity of a record — the persisted (process-independent)
// words of the key, hex-concatenated. One journal may carry records
// stored by several pool contexts; two contexts never produce the same
// content key for different results (config_hash folds in the backend).
std::string entry_content_key(const api::ResultCacheKey& key) {
  return util::hex_u64(key.circuit_hash) + util::hex_u64(key.config_hash) +
         util::hex_u64(key.tc_bits);
}

std::string delay_content_key(const api::ResultCacheKey& key) {
  return util::hex_u64(key.circuit_hash) + util::hex_u64(key.config_hash);
}

std::string entry_record_line(const api::ResultCacheKey& key,
                              const netlist::Netlist& nl,
                              const api::PipelineReport& report,
                              const std::string& selector) {
  Json rec = Json::object();
  rec["kind"] = "entry";
  Json k = Json::object();
  k["circuit"] = util::hex_u64(key.circuit_hash);
  k["config"] = util::hex_u64(key.config_hash);
  k["tc"] = util::hex_u64(key.tc_bits);
  rec["key"] = std::move(k);
  // Integrity hash of the archived (optimized) netlist — replay detects
  // bit-rot before installing the entry (same contract as cache_io).
  rec["netlist_hash"] = util::hex_u64(ResultCache::hash_netlist(nl));
  rec["delay_model"] = selector;
  rec["netlist"] = archive_netlist(nl);
  rec["report"] = archive_report(report);
  return rec.dump(0);
}

std::string delay_record_line(const api::ResultCacheKey& key, double delay_ps,
                              const std::string& selector) {
  Json rec = Json::object();
  rec["kind"] = "initial_delay";
  Json k = Json::object();
  k["circuit"] = util::hex_u64(key.circuit_hash);
  k["config"] = util::hex_u64(key.config_hash);
  rec["key"] = std::move(k);
  rec["delay_model"] = selector;
  rec["delay_ps"] = delay_ps;
  return rec.dump(0);
}

std::string header_line_for(const api::OptContext& ctx) {
  Json header = Json::object();
  header["format"] = kJournalFormat;
  header["version"] = kJournalVersion;
  Json context = Json::object();
  context["signature"] = util::hex_u64(ResultCache::hash_context(ctx));
  context["technology"] = ctx.tech().name;
  context["rng_seed"] = util::hex_u64(ctx.rng_seed());
  header["context"] = std::move(context);
  return header.dump(0);
}

void validate_header(const Json& doc, const api::OptContext& ctx) {
  if (!doc.is_object() || !doc.find("format") ||
      !member(doc, "format").is_string() ||
      member(doc, "format").as_string() != kJournalFormat)
    throw std::invalid_argument(
        "not a pops-cache-journal file (missing/wrong 'format' in the "
        "header line)");
  if (static_cast<int>(num(doc, "version")) != kJournalVersion)
    throw std::invalid_argument(
        "unsupported pops-cache-journal version " +
        Json::number_to_string(num(doc, "version")) + " (expected " +
        std::to_string(kJournalVersion) +
        "); move the file aside (or delete it) to cold-start and let the "
        "server rebuild its cache");
  const Json& context = member(doc, "context");
  const std::uint64_t stored_sig = hex(context, "signature");
  const std::uint64_t live_sig = ResultCache::hash_context(ctx);
  if (stored_sig != live_sig)
    throw std::invalid_argument(
        "cache journal was written under a different context "
        "characterization (stored signature " +
        util::hex_u64(stored_sig) + ", live " + util::hex_u64(live_sig) +
        "); stored technology '" + str(context, "technology") + "' vs live '" +
        ctx.tech().name + "', stored rng_seed " + str(context, "rng_seed") +
        " vs live " + util::hex_u64(ctx.rng_seed()) +
        " — refusing to replay (results would not be bit-identical)");
}

void publish_gauges(std::size_t live, std::size_t garbage) {
  static const obs::Registry::Gauge live_gauge =
      obs::Registry::global().gauge("cache.journal.live_bytes");
  static const obs::Registry::Gauge garbage_gauge =
      obs::Registry::global().gauge("cache.journal.garbage_bytes");
  live_gauge.set(static_cast<double>(live));
  garbage_gauge.set(static_cast<double>(garbage));
}

}  // namespace

CacheJournal::CacheJournal(std::shared_ptr<ResultCache> cache,
                           std::string path)
    : CacheJournal(std::move(cache), std::move(path), Options()) {}

CacheJournal::CacheJournal(std::shared_ptr<ResultCache> cache,
                           std::string path, Options opt)
    : cache_(std::move(cache)), path_(std::move(path)), opt_(opt) {}

CacheJournal::~CacheJournal() { close(); }

void CacheJournal::bind_context(const std::string& selector,
                                const api::OptContext& ctx) {
  util::MutexLock lock(mu_);
  // Process-local routing only (never persisted): records store the
  // selector, this map just attributes live stores back to it.
  // pops-lint: allow(address-identity)
  selectors_[reinterpret_cast<std::uintptr_t>(&ctx)] = selector;
}

std::string CacheJournal::selector_for_locked(std::uint64_t ctx_bits) const {
  const auto it = selectors_.find(ctx_bits);
  return it == selectors_.end() ? std::string() : it->second;
}

CacheLoadReport CacheJournal::open(api::OptContext& ref_ctx,
                                   const ContextResolver& resolver) {
  obs::Span span("cache/journal_replay");
  // A stale mid-compaction temp means the atomic rename never happened:
  // the original journal is intact and the temp is garbage.
  std::remove((path_ + ".compact.tmp").c_str());

  // A crash mid-append leaves a torn final record with no terminating
  // newline. Replay skips it below (with a diagnostic); the torn bytes
  // are then truncated away, so the append stream starts on a clean line
  // boundary — otherwise the next record would glue onto the torn bytes
  // and corrupt itself too — and the next open replays a clean file.
  bool torn_tail = false;
  std::size_t durable_end = 0;     ///< offset just past the last '\n'
  std::size_t torn_counted = 0;    ///< bytes replay will charge the tear
  {
    std::ifstream tail(path_, std::ios::binary | std::ios::ate);
    const auto size = tail ? tail.tellg() : std::ifstream::pos_type(0);
    if (tail && size > 0) {
      tail.seekg(-1, std::ios::end);
      char last = '\n';
      tail.get(last);
      if (last != '\n') {
        torn_tail = true;
        // Scan back to the last newline; everything after it is the tear.
        std::string buf(static_cast<std::size_t>(size), '\0');
        tail.seekg(0);
        tail.read(buf.data(), size);
        const std::size_t nl = buf.rfind('\n');
        durable_end = nl == std::string::npos ? 0 : nl + 1;
        // getline() charges the torn line as if newline-terminated.
        torn_counted = buf.size() - durable_end + 1;
      }
    }
  }

  const std::string header = header_line_for(ref_ctx);

  // Replay runs unlocked (startup is single-producer; bind_context may
  // be called re-entrantly by the resolver creating pool contexts), into
  // local accounting that one short locked section installs at the end.
  CacheLoadReport out;
  std::map<std::string, std::size_t> entry_bytes;
  std::map<std::string, std::size_t> delay_bytes;
  std::size_t live = 0;
  std::size_t garbage = 0;
  std::size_t total = 0;
  bool have_header = false;

  std::ifstream in(path_, std::ios::binary);
  if (in) {
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const std::size_t bytes = line.size() + 1;
      total += bytes;
      if (!have_header) {
        // A malformed header rejects the file wholesale — replaying
        // records of unknown provenance could poison the cache.
        validate_header(Json::parse(line), ref_ctx);
        have_header = true;
        continue;
      }
      try {
        const Json rec = Json::parse(line);
        const std::string& kind = str(rec, "kind");
        const std::string& selector = str(rec, "delay_model");
        api::OptContext* ctx = resolver(selector);
        if (ctx == nullptr)
          throw std::invalid_argument("no context for delay-model selector '" +
                                      selector + "'");
        const Json& k = member(rec, "key");
        api::ResultCacheKey key;
        key.circuit_hash = hex(k, "circuit");
        key.config_hash = hex(k, "config");
        // Rebind to the resolved context's live identity (mirrors
        // ResultCache::make_key / cache_io's load).
        // pops-lint: allow(address-identity)
        key.ctx_bits = reinterpret_cast<std::uintptr_t>(ctx);
        if (kind == "entry") {
          key.tc_bits = hex(k, "tc");
          netlist::Netlist nl =
              restore_netlist(member(rec, "netlist"), ctx->lib());
          const std::uint64_t want = hex(rec, "netlist_hash");
          const std::uint64_t got = ResultCache::hash_netlist(nl);
          if (want != got)
            throw std::invalid_argument(
                "netlist integrity hash mismatch (stored " +
                util::hex_u64(want) + ", restored " + util::hex_u64(got) + ")");
          api::PipelineReport report =
              restore_report(member(rec, "report"), ctx->lib());
          cache_->store(key, nl, report);
          const std::string ck = entry_content_key(key);
          const auto it = entry_bytes.find(ck);
          if (it != entry_bytes.end()) {
            garbage += it->second;
            live -= it->second;
            it->second = bytes;
          } else {
            entry_bytes.emplace(ck, bytes);
          }
          live += bytes;
          ++out.entries_loaded;
        } else if (kind == "initial_delay") {
          cache_->store_initial_delay(key, num(rec, "delay_ps"));
          const std::string ck = delay_content_key(key);
          const auto it = delay_bytes.find(ck);
          if (it != delay_bytes.end()) {
            garbage += it->second;
            live -= it->second;
            it->second = bytes;
          } else {
            delay_bytes.emplace(ck, bytes);
          }
          live += bytes;
          ++out.initial_delays_loaded;
        } else {
          throw std::invalid_argument("unknown record kind '" + kind + "'");
        }
      } catch (const std::exception& err) {
        // Per-record recovery: a torn tail record (crash mid-append) or
        // bit-rotted line is skipped with a diagnostic; every durable
        // record before and after it is replayed.
        garbage += bytes;
        out.problems.push_back("record at line " + std::to_string(line_no) +
                               " skipped: " + err.what());
      }
    }
  }

  if (torn_tail) {
    std::error_code ec;
    std::filesystem::resize_file(path_, durable_end, ec);
    if (!ec && total >= torn_counted) {
      total -= torn_counted;
      garbage -= torn_counted <= garbage ? torn_counted : garbage;
    }
  }

  util::MutexLock lock(mu_);
  header_line_ = header;
  entry_bytes_ = std::move(entry_bytes);
  delay_bytes_ = std::move(delay_bytes);
  live_bytes_ = live;
  garbage_bytes_ = garbage;
  total_bytes_ = total;
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_)
    throw std::runtime_error("cannot open journal '" + path_ +
                             "' for append");
  if (!have_header) {
    out_ << header_line_ << '\n';
    out_.flush();
    if (!out_)
      throw std::runtime_error("cannot write journal header to '" + path_ +
                               "'");
    total_bytes_ += header_line_.size() + 1;
  }
  publish_gauges(live_bytes_, garbage_bytes_);
  attached_ = true;
  cache_->set_store_listener(this);
  return out;
}

void CacheJournal::on_store(const api::ResultCacheKey& key,
                            const netlist::Netlist& nl,
                            const api::PipelineReport& report) {
  obs::Span span("cache/journal_append");
  std::string selector;
  {
    util::MutexLock lock(mu_);
    if (!attached_) return;
    selector = selector_for_locked(key.ctx_bits);
    if (selector.empty()) {
      ++io_errors_;  // unattributable store: no context bound for this key
      return;
    }
  }
  // Serialization (whole netlist + report) happens outside the lock so a
  // big record doesn't stall concurrent appends behind CPU work.
  const std::string line = entry_record_line(key, nl, report, selector);
  util::MutexLock lock(mu_);
  if (!attached_) return;
  append_locked(entry_content_key(key), line, entry_bytes_);
  if (garbage_policy_met_locked()) compact_locked();
}

void CacheJournal::on_store_initial_delay(const api::ResultCacheKey& key,
                                          double delay_ps) {
  std::string selector;
  {
    util::MutexLock lock(mu_);
    if (!attached_) return;
    selector = selector_for_locked(key.ctx_bits);
    if (selector.empty()) {
      ++io_errors_;
      return;
    }
  }
  const std::string line = delay_record_line(key, delay_ps, selector);
  util::MutexLock lock(mu_);
  if (!attached_) return;
  append_locked(delay_content_key(key), line, delay_bytes_);
  if (garbage_policy_met_locked()) compact_locked();
}

void CacheJournal::on_evict(const api::ResultCacheKey& key) {
  util::MutexLock lock(mu_);
  if (!attached_) return;
  retire_locked(entry_content_key(key), entry_bytes_);
  if (garbage_policy_met_locked()) compact_locked();
}

void CacheJournal::on_evict_initial_delay(const api::ResultCacheKey& key) {
  util::MutexLock lock(mu_);
  if (!attached_) return;
  retire_locked(delay_content_key(key), delay_bytes_);
  if (garbage_policy_met_locked()) compact_locked();
}

void CacheJournal::append_locked(const std::string& content_key,
                                 const std::string& line,
                                 std::map<std::string, std::size_t>& bytes_map) {
  static const obs::Registry::Counter append_count =
      obs::Registry::global().counter("cache.journal.appends");
  const std::size_t bytes = line.size() + 1;
  out_ << line << '\n';
  out_.flush();  // durability boundary: one record, whole or absent
  if (!out_) {
    ++io_errors_;
    out_.clear();
    return;
  }
  ++appends_;
  append_count.add();
  const auto it = bytes_map.find(content_key);
  if (it != bytes_map.end()) {
    // Superseded duplicate (e.g. the same content stored by a second
    // context after a replay): the older record is garbage now.
    garbage_bytes_ += it->second;
    live_bytes_ -= it->second;
    it->second = bytes;
  } else {
    bytes_map.emplace(content_key, bytes);
  }
  live_bytes_ += bytes;
  total_bytes_ += bytes;
  publish_gauges(live_bytes_, garbage_bytes_);
}

void CacheJournal::retire_locked(const std::string& content_key,
                                 std::map<std::string, std::size_t>& bytes_map) {
  const auto it = bytes_map.find(content_key);
  if (it == bytes_map.end()) return;
  garbage_bytes_ += it->second;
  live_bytes_ -= it->second;
  bytes_map.erase(it);
  publish_gauges(live_bytes_, garbage_bytes_);
}

bool CacheJournal::garbage_policy_met_locked() const {
  return total_bytes_ >= opt_.min_compact_bytes &&
         static_cast<double>(garbage_bytes_) >
             opt_.max_garbage_ratio * static_cast<double>(total_bytes_);
}

void CacheJournal::compact() {
  util::MutexLock lock(mu_);
  if (!attached_) return;
  compact_locked();
}

bool CacheJournal::compact_if_needed() {
  util::MutexLock lock(mu_);
  if (!attached_ || !garbage_policy_met_locked()) return false;
  compact_locked();
  return true;
}

void CacheJournal::compact_locked() {
  obs::Span span("cache/journal_compact");
  static const obs::Registry::Counter compact_count =
      obs::Registry::global().counter("cache.journal.compactions");

  // Snapshot the live cache into sorted record lines — sorted by content
  // key, so the same resident state compacts to the same bytes
  // regardless of store order. The selector map is copied first: the
  // snapshot lambdas run as plain functions and cannot carry the lock
  // annotation.
  const std::map<std::uint64_t, std::string> selectors = selectors_;
  struct Rec {
    std::string ck;
    std::string line;
  };
  std::vector<Rec> entries;
  cache_->for_each_entry([&](const api::ResultCacheKey& key,
                             const netlist::Netlist& nl,
                             const api::PipelineReport& report) {
    const auto it = selectors.find(key.ctx_bits);
    if (it == selectors.end()) return;  // unattributable: not persistable
    entries.push_back(
        {entry_content_key(key), entry_record_line(key, nl, report, it->second)});
  });
  std::sort(entries.begin(), entries.end(),
            [](const Rec& a, const Rec& b) { return a.ck < b.ck; });
  std::vector<Rec> delays;
  cache_->for_each_initial_delay(
      [&](const api::ResultCacheKey& key, double delay_ps) {
        const auto it = selectors.find(key.ctx_bits);
        if (it == selectors.end()) return;
        delays.push_back({delay_content_key(key),
                          delay_record_line(key, delay_ps, it->second)});
      });
  std::sort(delays.begin(), delays.end(),
            [](const Rec& a, const Rec& b) { return a.ck < b.ck; });

  // Write the replacement journal beside the live one, then atomically
  // swap: a crash at any point leaves either the old complete journal
  // (rename not reached; the temp is discarded at the next open) or the
  // new complete one.
  const std::string tmp = path_ + ".compact.tmp";
  {
    std::ofstream tout(tmp, std::ios::binary | std::ios::trunc);
    if (!tout) {
      ++io_errors_;
      return;
    }
    tout << header_line_ << '\n';
    for (const Rec& r : entries) tout << r.line << '\n';
    for (const Rec& r : delays) tout << r.line << '\n';
    tout.flush();
    if (!tout) {
      ++io_errors_;
      std::remove(tmp.c_str());
      return;
    }
  }
  out_.close();
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    ++io_errors_;
    std::remove(tmp.c_str());
    out_.open(path_, std::ios::binary | std::ios::app);
    return;
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) ++io_errors_;

  // Rebuild the accounting from what was actually written: garbage is
  // zero by construction, total is live + the header.
  entry_bytes_.clear();
  delay_bytes_.clear();
  live_bytes_ = 0;
  for (const Rec& r : entries) {
    entry_bytes_[r.ck] = r.line.size() + 1;
    live_bytes_ += r.line.size() + 1;
  }
  for (const Rec& r : delays) {
    delay_bytes_[r.ck] = r.line.size() + 1;
    live_bytes_ += r.line.size() + 1;
  }
  garbage_bytes_ = 0;
  total_bytes_ = live_bytes_ + header_line_.size() + 1;
  ++compactions_;
  compact_count.add();
  publish_gauges(live_bytes_, garbage_bytes_);
}

void CacheJournal::close() {
  util::MutexLock lock(mu_);
  if (!attached_) return;
  cache_->set_store_listener(nullptr);
  attached_ = false;
  out_.flush();
  out_.close();
}

CacheJournal::Stats CacheJournal::stats() const {
  util::MutexLock lock(mu_);
  Stats s;
  s.appends = appends_;
  s.compactions = compactions_;
  s.live_bytes = live_bytes_;
  s.garbage_bytes = garbage_bytes_;
  s.total_bytes = total_bytes_;
  s.io_errors = io_errors_;
  return s;
}

}  // namespace pops::service
