#pragma once
// Persistence of ResultCache across processes.
//
// A long-lived sweep daemon (pops::net::SweepServer) should not lose its
// memoized optimization points on restart: the cache is pure content once
// the process-local context binding is stripped (ResultCacheKey keeps the
// live-context identity in ctx_bits, everything else is deterministic
// hashes + full value copies). save_result_cache archives every entry —
// key, the optimized netlist, and the complete PipelineReport down to the
// per-path BoundedPath sizing state — as one util::Json document;
// load_result_cache rebuilds the entries against the *loading* context's
// library and re-binds them to that context, so a warm restart replays
// bit-identically.
//
// Compatibility: the document records the saving context's
// characterization (ResultCache::hash_context — technology, Flimit
// set-up, RNG seed). Loading into a differently characterized context is
// rejected wholesale with a diagnostic naming the mismatch; per-entry
// corruption (bad node records, integrity-hash mismatch) skips the entry
// and is reported in CacheLoadReport::problems. Delay-model backends are
// *per entry* (folded into config_hash), so one file may carry
// closed-form and table entries side by side; an entry stored under a
// backend the loading process never selects simply never hits.
//
// The document layout (version 2 — v2 added CircuitResult::rounds to
// archived protocol reports):
//
//   {format: "pops-result-cache", version: 2,
//    context: {signature, technology, rng_seed, delay_model},
//    entries: [{key: {circuit, config, tc}, netlist_hash, delay_model,
//               netlist: {...}, report: {...}}],
//    initial_delays: [{key: {circuit, config}, delay_ps}]}
//
// All 64-bit hashes/key words travel as fixed-width hex strings
// (util::hex_u64) — JSON numbers are doubles and cannot carry them.
// Report-side doubles that may legitimately be non-finite (the weak-
// constraint sensitivity coefficient is -inf) are archived as the
// strings "inf"/"-inf"/"nan" instead of unrepresentable JSON numbers.
// Entries are sorted by key, so the same cache state serializes to the
// same bytes regardless of access history.

#include <cstddef>
#include <string>
#include <vector>

#include "pops/api/pipeline.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/service/result_cache.hpp"
#include "pops/util/json.hpp"

namespace pops::service {

/// Outcome of load_result_cache: what was restored and every entry-level
/// problem (skipped entries), in file order.
struct CacheLoadReport {
  std::size_t entries_loaded = 0;
  std::size_t initial_delays_loaded = 0;
  std::vector<std::string> problems;
};

/// Archive the whole cache (entries + initial-delay memos) for `ctx`.
util::Json save_result_cache(const ResultCache& cache,
                             const api::OptContext& ctx);

/// Restore a save_result_cache document into `cache`, rebinding every
/// entry to `ctx` (merge semantics: existing entries stay; duplicate keys
/// keep the resident entry). Throws std::invalid_argument when the
/// document as a whole is unusable: wrong format/version, or a context
/// signature that does not match `ctx` (stale-context rejection — the
/// diagnostic names the stored vs live technology and RNG seed).
/// Individually corrupt entries are skipped and reported.
CacheLoadReport load_result_cache(ResultCache& cache, api::OptContext& ctx,
                                  const util::Json& doc);

/// save_result_cache to `path`, atomically (write to path + ".tmp", then
/// rename). Throws std::runtime_error on I/O failure.
void save_result_cache_file(const ResultCache& cache,
                            const api::OptContext& ctx,
                            const std::string& path);

/// Parse `path` and load_result_cache it. Throws std::runtime_error when
/// the file cannot be read, std::invalid_argument on parse/compatibility
/// failure.
CacheLoadReport load_result_cache_file(ResultCache& cache,
                                       api::OptContext& ctx,
                                       const std::string& path);

// ----- building blocks (exposed for tests and other archival consumers) ------

/// Full-fidelity netlist archive: name, fresh-name counter, and every raw
/// node record. restore_netlist rebuilds via Netlist::from_nodes (fanins
/// may point forward in an optimized netlist) and validates structure.
util::Json archive_netlist(const netlist::Netlist& nl);
netlist::Netlist restore_netlist(const util::Json& j,
                                 const liberty::Library& lib);

/// Full-fidelity PipelineReport archive, including each protocol pass's
/// per-path ProtocolResults down to the BoundedPath sizing state (stages,
/// CINs, boundary loads) — a restored report is bit-identical to the
/// stored one, field by field. Throws std::invalid_argument on schema
/// violations.
util::Json archive_report(const api::PipelineReport& report);
api::PipelineReport restore_report(const util::Json& j,
                                   const liberty::Library& lib);

}  // namespace pops::service
