#include "pops/service/sweep.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "pops/obs/clock.hpp"
#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"

namespace pops::service {

BufferPolicy buffer_policy(const std::string& name) {
  if (name == "standard") return BufferPolicy{"standard", true, true};
  if (name == "no-shield") return BufferPolicy{"no-shield", false, true};
  if (name == "no-restructure")
    return BufferPolicy{"no-restructure", true, false};
  if (name == "minimal") return BufferPolicy{"minimal", false, false};
  throw std::invalid_argument(
      "unknown buffer policy '" + name +
      "' (known: minimal no-restructure no-shield standard)");
}

std::vector<std::string> SweepSpec::validate() const {
  std::vector<std::string> out;
  auto require = [&out](bool ok, const std::string& msg) {
    if (!ok) out.push_back(msg);
  };

  require(!circuits.empty(), "circuits is empty");
  std::set<std::string> seen_circuits;
  for (const std::string& c : circuits) {
    require(!c.empty(), "circuits contains an empty name");
    require(seen_circuits.insert(c).second, "duplicate circuit '" + c + "'");
  }

  require(!tc_ratios.empty(), "tc_ratios is empty");
  for (const double r : tc_ratios)
    require(r > 0.0, "tc_ratio " + std::to_string(r) + " must be > 0");

  require(!shield_margins.empty(), "shield_margins is empty");
  for (const double m : shield_margins)
    require(m > 0.0, "shield_margin " + std::to_string(m) + " must be > 0");

  require(!temperatures.empty(), "temperatures is empty");
  for (const double t : temperatures)
    require(t > -273.15 && t < 300.0,
            "temperature " + std::to_string(t) +
                " must be a physical junction temperature (-273.15, 300)");

  require(!vt_policies.empty(), "vt_policies is empty");
  std::set<std::string> seen_vt;
  for (const std::string& v : vt_policies) {
    require(v == "none" || v == "multi-vt",
            "unknown vt policy '" + v + "' (known: multi-vt none)");
    require(seen_vt.insert(v).second, "duplicate vt policy '" + v + "'");
  }

  require(!policies.empty(), "policies is empty");
  std::set<std::string> seen_policies;
  for (const BufferPolicy& p : policies) {
    require(!p.name.empty(), "policies contains an unnamed policy");
    require(seen_policies.insert(p.name).second,
            "duplicate policy '" + p.name + "'");
  }

  for (const std::string& pass : pipeline)
    if (!api::PassRegistry::global().contains(pass))
      out.push_back("pipeline names unknown pass '" + pass + "'");

  // Materialize every policy's overrides onto the base and validate the
  // resulting *job* config — a valid base does not imply valid jobs (a
  // shield-only base under a no-shield policy empties the pipeline).
  // Margins only enter as cfg.shield_margin, already checked above, so a
  // neutral value keeps axis problems from being re-reported per policy.
  for (const BufferPolicy& p : policies) {
    api::OptimizerConfig cfg = base;
    cfg.enable_shielding = p.shielding;
    cfg.allow_restructuring = p.restructuring;
    cfg.shield_margin = 1.0;
    for (const std::string& prob : cfg.validate())
      out.push_back("job config (policy '" + p.name + "'): " + prob);
  }
  return out;
}

void SweepSpec::ensure_valid() const {
  const std::vector<std::string> problems = validate();
  if (problems.empty()) return;
  std::ostringstream os;
  os << "invalid SweepSpec (" << problems.size() << " problem"
     << (problems.size() == 1 ? "" : "s") << "):";
  for (const std::string& p : problems) os << "\n  - " << p;
  throw std::invalid_argument(os.str());
}

SweepService::SweepService(api::OptContext& ctx, bool use_cache)
    : ctx_(&ctx) {
  if (!use_cache) {
    // Uncached means uncached: drop any hook a previous service
    // installed, or the points would still be replayed from cache while
    // this service reports zero hits/misses.
    ctx.set_result_cache(nullptr);
    return;
  }
  if (ctx.result_cache() == nullptr)
    ctx.set_result_cache(std::make_shared<ResultCache>());
  // Reuse the installed cache when it is ours (repeated sweeps share
  // memoized points); a foreign hook stays in place untouched — the
  // service then just has no stats window (cache() == nullptr).
  cache_ = std::dynamic_pointer_cast<ResultCache>(ctx.result_cache_shared());
}

SweepReport SweepService::run(const SweepSpec& spec, const CircuitLoader& load,
                              const RecordSink& sink) const {
  spec.ensure_valid();
  if (!load) throw std::invalid_argument("SweepService::run: null loader");

  static const obs::Registry::Counter runs =
      obs::Registry::global().counter("sweep.runs");
  static const obs::Registry::Counter points_total =
      obs::Registry::global().counter("sweep.points");
  runs.add();
  obs::Span span("sweep/run");
  span.arg("jobs", static_cast<double>(spec.n_jobs()));
  const obs::StopWatch watch;

  std::vector<netlist::Netlist> prototypes;
  prototypes.reserve(spec.circuits.size());
  for (const std::string& name : spec.circuits)
    prototypes.push_back(load(name));

  const ResultCache::Stats before =
      cache_ ? cache_->stats() : ResultCache::Stats{};

  SweepReport out;
  out.points.reserve(spec.n_jobs());

  // One constraint group per (policy, vt-policy, temperature, margin,
  // ratio): all circuits of the group fan out across Optimizer::run_many's
  // dynamic work queue. The nesting here IS the record order contract
  // (mirrored exactly by fabric::expand_points — a fleet must shard the
  // same stream a local sweep emits).
  for (const BufferPolicy& policy : spec.policies) {
    for (const std::string& vt_policy : spec.vt_policies) {
      for (const double temperature : spec.temperatures) {
        for (const double margin : spec.shield_margins) {
          api::OptimizerConfig cfg = spec.base;
          cfg.enable_shielding = policy.shielding;
          cfg.allow_restructuring = policy.restructuring;
          cfg.shield_margin = margin;
          cfg.temperature_c = temperature;
          if (vt_policy == "multi-vt") cfg.enable_multi_vt = true;

          api::Optimizer optimizer(*ctx_, cfg);
          if (!spec.pipeline.empty()) {
            // An explicit pipeline replaces standard()'s flag-driven pass
            // selection, so the vt axis appends its pass by name instead.
            std::vector<std::string> passes = spec.pipeline;
            if (vt_policy == "multi-vt" &&
                std::find(passes.begin(), passes.end(), "multi-vt") ==
                    passes.end())
              passes.push_back("multi-vt");
            optimizer.set_pipeline(
                api::PassRegistry::global().make_pipeline(passes));
          }

          for (const double ratio : spec.tc_ratios) {
            std::vector<netlist::Netlist> batch = prototypes;  // deep copies
            std::vector<api::PipelineReport> reports =
                optimizer.run_many_relative(batch, ratio, spec.n_threads);

            for (std::size_t i = 0; i < reports.size(); ++i) {
              SweepPoint point;
              point.circuit = spec.circuits[i];
              point.tc_ratio = ratio;
              point.shield_margin = margin;
              point.temperature_c = temperature;
              point.policy = policy.name;
              point.vt_policy = vt_policy;
              point.report = std::move(reports[i]);
              points_total.add();
              if (sink) sink(point);
              out.points.push_back(std::move(point));
            }
          }
        }
      }
    }
  }

  if (cache_) {
    const ResultCache::Stats after = cache_->stats();
    out.cache_hits = after.hits - before.hits;
    out.cache_misses = after.misses - before.misses;
    out.cache_entries = after.entries;
  }
  out.wall_ms = watch.elapsed_ms();
  return out;
}

}  // namespace pops::service
