#include "pops/service/result_cache.hpp"

#include <bit>
#include <string_view>
#include <utility>
#include <vector>

#include "pops/obs/metrics.hpp"
#include "pops/obs/trace.hpp"
#include "pops/util/hash.hpp"

namespace pops::service {

using util::Fnv1a;

std::uint64_t ResultCache::hash_netlist(const netlist::Netlist& nl) {
  Fnv1a h;
  // The top-level name is content too: a hit overwrites the caller's
  // netlist wholesale, so structurally identical circuits with different
  // names must not share entries (the replay would silently rename).
  h.str(nl.name());
  h.str(nl.lib().tech().name);
  h.u64(nl.size());
  for (netlist::NodeId id = 0; id < static_cast<netlist::NodeId>(nl.size());
       ++id) {
    const netlist::Node& n = nl.node(id);
    h.str(n.name);
    h.b(n.is_input);
    h.i(static_cast<long long>(n.kind));
    h.u64(n.fanins.size());
    for (const netlist::NodeId f : n.fanins) h.i(f);
    h.f64(n.wn_um);
    h.f64(n.wire_cap_ff);
    h.b(n.is_output);
    h.f64(n.po_load_ff);
    h.i(n.vt);
  }
  return h.h;
}

std::uint64_t ResultCache::hash_context(const api::OptContext& ctx) {
  Fnv1a h;
  // Every Technology parameter (two contexts may carry same-named but
  // differently calibrated nodes), the Fig. 5 Flimit set-up, and the RNG
  // seed handed to stochastic consumers. Deliberately NOT the delay-model
  // backend: it is swapped per Optimizer on a live context and keyed per
  // entry (hash_config), so it is no part of the context's persistent
  // identity.
  const process::Technology& tech = ctx.tech();
  h.str(tech.name);
  h.f64(tech.feature_um);
  h.f64(tech.vdd);
  h.f64(tech.vtn);
  h.f64(tech.vtp);
  h.f64(tech.tau_ps);
  h.f64(tech.r_ratio);
  h.f64(tech.cgate_ff_per_um);
  h.f64(tech.cdiff_ff_per_um);
  h.f64(tech.wmin_um);
  h.f64(tech.wmax_um);
  h.f64(tech.alpha_n);
  h.f64(tech.alpha_p);
  h.f64(tech.idsat_n_ma_um);
  h.f64(tech.idsat_p_ma_um);
  // Leakage characterization: the Vt-class table and the temperature/gate
  // leakage calibration feed both power reports and Vt-derated timing.
  h.f64(tech.ioff_doubling_c);
  h.f64(tech.igate_na_per_um);
  h.u64(tech.vt_classes.size());
  for (const process::VtClass& cls : tech.vt_classes) {
    h.str(cls.name);
    h.f64(cls.vtn);
    h.f64(cls.vtp);
    h.f64(cls.ioff_na_per_um);
  }
  const core::FlimitOptions& fo = ctx.flimits().options();
  h.f64(fo.driver_drive_x);
  h.f64(fo.gate_drive_x);
  h.f64(fo.f_lo);
  h.f64(fo.f_hi);
  h.f64(fo.tol);
  h.i(static_cast<long long>(fo.aggregate));
  h.u64(ctx.rng_seed());
  return h.h;
}

std::uint64_t ResultCache::hash_config(const api::OptContext& ctx,
                                       const api::OptimizerConfig& cfg,
                                       const api::PassPipeline& pipeline) {
  Fnv1a h;
  // Context characterization — pure content (the binding to the live
  // context *instance* lives in ResultCacheKey::ctx_bits, set by make_key,
  // so config hashes can be persisted and compared across processes).
  h.u64(hash_context(ctx));

  // Delay-model backend identity: family name plus content hash (for a
  // table backend, the grid and every tabulated value), so closed-form and
  // table runs — or two differently characterized tables — never alias.
  h.str(ctx.dm().name());
  h.u64(ctx.dm().content_hash());

  // The pass sequence actually run — names plus each pass's cache salt
  // (custom passes encode constructor parameters there). The enable_*
  // flags are NOT hashed: they only select passes for standard(), and the
  // realized pass list captures that already.
  bool has_shield = false;
  bool has_protocol = false;
  bool has_multi_vt = false;
  bool has_custom = false;
  for (std::size_t i = 0; i < pipeline.size(); ++i) {
    const api::Pass& pass = pipeline.pass(i);
    const std::string_view name = pass.name();
    h.str(name);
    h.str(pass.cache_salt());
    if (name == "shield") has_shield = true;
    else if (name == "protocol") has_protocol = true;
    else if (name == "multi-vt") has_multi_vt = true;
    else if (name != "cancel-inverters" && name != "sweep-dead")
      has_custom = true;
  }

  // Power-model backend identity + evaluation temperature: every pipeline
  // report carries a power section evaluated under these, so they key
  // every entry (unlike the Vt library below, which only the multi-vt
  // pass reads).
  h.str(cfg.power_model);
  h.f64(cfg.temperature_c);

  // Normalized constraint tuple: only knobs a pass of this pipeline can
  // read contribute, so e.g. a shield-margin sweep under a no-shield
  // policy collapses to one cache entry per (circuit, Tc). An unknown
  // (custom) pass may read any knob — hash everything then.
  //
  // Deliberately NOT hashed: sta_workers / sta_parallel_min_nodes. The
  // level-parallel STA sweeps are bitwise-identical to sequential at any
  // worker count (test-enforced), so runs differing only in those knobs
  // produce the same reports and must share one cache entry.
  h.f64(cfg.pi_slew_ps);  // STA envelope measurement: affects every report
  if (has_shield || has_custom) {
    h.f64(cfg.shield_margin);
    h.u64(cfg.max_shield_buffers);
    h.f64(cfg.shield_fanout);
  }
  if (has_protocol || has_custom) {
    h.f64(cfg.hard_ratio);
    h.f64(cfg.weak_ratio);
    h.b(cfg.allow_restructuring);
    h.u64(cfg.max_paths);
    h.i(cfg.max_rounds);
    h.f64(cfg.tc_margin);
    h.i(cfg.bounds.max_sweeps);
    h.f64(cfg.bounds.tol);
    h.f64(cfg.bounds.init_scale);
    h.i(cfg.sensitivity.max_sweeps);
    h.f64(cfg.sensitivity.tol);
    h.i(cfg.sensitivity.max_bisect);
    h.f64(cfg.sensitivity.tc_rel_tol);
  }
  if (has_multi_vt || has_custom) {
    h.u64(cfg.vt_library.size());
    for (const std::string& cls : cfg.vt_library) h.str(cls);
  }
  return h.h;
}

api::ResultCacheKey ResultCache::make_key(const api::OptContext& ctx,
                                          const netlist::Netlist& nl,
                                          const api::OptimizerConfig& cfg,
                                          const api::PassPipeline& pipeline,
                                          double tc_ps) const {
  api::ResultCacheKey key;
  key.circuit_hash = hash_netlist(nl);
  key.config_hash = hash_config(ctx, cfg, pipeline);
  key.tc_bits = std::bit_cast<std::uint64_t>(tc_ps);
  // Entries hold pointers into the storing context (the cached netlist's
  // library, BoundedPaths inside reports), so replaying them on another
  // context would be unsafe. Binding the context address into the key
  // makes cross-context lookups structural misses: one cache may be
  // installed on several contexts, but points only hit within the
  // context that stored them. Address reuse (a context destroyed and a
  // new one constructed at the same address) is benign: key equality
  // also requires an identical hash_context, the library is a by-value
  // member deterministically derived from it, and the caller holds a
  // live context at this address — so an address-reusing hit
  // dereferences a live, bit-identical library.
  // Deliberately process-local; persistence strips and re-binds it.
  // pops-lint: allow(address-identity)
  key.ctx_bits = reinterpret_cast<std::uintptr_t>(&ctx);
  return key;
}

bool ResultCache::lookup(const api::ResultCacheKey& key, netlist::Netlist& nl,
                         api::PipelineReport& report) {
  static const obs::Registry::Counter hit_count =
      obs::Registry::global().counter("cache.hits");
  static const obs::Registry::Counter miss_count =
      obs::Registry::global().counter("cache.misses");
  obs::Span span("cache/lookup");
  std::shared_ptr<const Entry> entry;
  {
    util::MutexLock lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      miss_count.add();
      span.arg("hit", 0.0);
      return false;
    }
    ++hits_;
    hit_count.add();
    entry = it->second.entry;  // shared: survives a concurrent eviction
    lru_.splice(lru_.begin(), lru_, it->second.lru);  // mark most recent
  }
  span.arg("hit", 1.0);
  // Entries are immutable after insertion, so the copies may proceed
  // outside the lock while holding shared ownership.
  nl = entry->result;
  report = entry->report;
  return true;
}

void ResultCache::set_store_listener(StoreListener* listener) {
  util::MutexLock lock(mu_);
  listener_ = listener;
}

void ResultCache::store(const api::ResultCacheKey& key,
                        const netlist::Netlist& nl,
                        const api::PipelineReport& report) {
  obs::Span span("cache/store");
  auto entry = std::make_shared<const Entry>(Entry{report, nl});
  bool inserted = false;
  StoreListener* listener = nullptr;
  std::vector<api::ResultCacheKey> evicted;
  std::vector<api::ResultCacheKey> evicted_delays;
  {
    util::MutexLock lock(mu_);
    inserted = store_locked(key, std::move(entry), evicted, evicted_delays);
    listener = listener_;
  }
  // Listener callbacks run outside mu_: the journal takes its own lock
  // and writes to disk — neither may stall concurrent lookups, and the
  // journal's compaction walks the cache (for_each_entry takes mu_).
  if (listener == nullptr) return;
  if (inserted) listener->on_store(key, nl, report);
  for (const api::ResultCacheKey& k : evicted) listener->on_evict(k);
  for (const api::ResultCacheKey& k : evicted_delays)
    listener->on_evict_initial_delay(k);
}

bool ResultCache::store_locked(const api::ResultCacheKey& key,
                               std::shared_ptr<const Entry> entry,
                               std::vector<api::ResultCacheKey>& evicted,
                               std::vector<api::ResultCacheKey>& evicted_delays) {
  const auto [it, inserted] = map_.try_emplace(key);
  if (!inserted) return false;  // first writer wins; racing run_many
                                // workers computed bit-identical results
  lru_.push_front(key);
  it->second = Slot{std::move(entry), lru_.begin()};
  evict_over_capacity_locked(evicted, evicted_delays);
  return true;
}

void ResultCache::evict_over_capacity_locked(
    std::vector<api::ResultCacheKey>& evicted,
    std::vector<api::ResultCacheKey>& evicted_delays) {
  if (capacity_ == 0) return;
  static const obs::Registry::Counter evict_count =
      obs::Registry::global().counter("cache.evictions");
  while (map_.size() > capacity_) {
    evicted.push_back(lru_.back());
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    evict_count.add();
  }
  while (initial_delays_.size() > capacity_) {
    evicted_delays.push_back(initial_delay_order_.front());
    initial_delays_.erase(initial_delay_order_.front());
    initial_delay_order_.pop_front();
  }
}

std::optional<double> ResultCache::initial_delay_ps(
    const api::ResultCacheKey& key) const {
  api::ResultCacheKey memo_key = key;
  memo_key.tc_bits = 0;  // the initial delay precedes any constraint
  util::MutexLock lock(mu_);
  const auto it = initial_delays_.find(memo_key);
  if (it == initial_delays_.end()) return std::nullopt;
  return it->second;
}

void ResultCache::store_initial_delay(const api::ResultCacheKey& key,
                                      double delay_ps) {
  api::ResultCacheKey memo_key = key;
  memo_key.tc_bits = 0;
  StoreListener* listener = nullptr;
  bool inserted = false;
  std::vector<api::ResultCacheKey> evicted;
  std::vector<api::ResultCacheKey> evicted_delays;
  {
    util::MutexLock lock(mu_);
    inserted = initial_delays_.try_emplace(memo_key, delay_ps).second;
    if (inserted) {
      initial_delay_order_.push_back(memo_key);
      evict_over_capacity_locked(evicted, evicted_delays);
    }
    listener = listener_;
  }
  if (listener == nullptr) return;
  if (inserted) listener->on_store_initial_delay(memo_key, delay_ps);
  for (const api::ResultCacheKey& k : evicted) listener->on_evict(k);
  for (const api::ResultCacheKey& k : evicted_delays)
    listener->on_evict_initial_delay(k);
}

ResultCache::Stats ResultCache::stats() const {
  util::MutexLock lock(mu_);
  return Stats{hits_, misses_, map_.size(), evictions_, capacity_};
}

void ResultCache::set_capacity(std::size_t capacity) {
  StoreListener* listener = nullptr;
  std::vector<api::ResultCacheKey> evicted;
  std::vector<api::ResultCacheKey> evicted_delays;
  {
    util::MutexLock lock(mu_);
    capacity_ = capacity;
    evict_over_capacity_locked(evicted, evicted_delays);
    listener = listener_;
  }
  if (listener == nullptr) return;
  for (const api::ResultCacheKey& k : evicted) listener->on_evict(k);
  for (const api::ResultCacheKey& k : evicted_delays)
    listener->on_evict_initial_delay(k);
}

std::size_t ResultCache::capacity() const {
  util::MutexLock lock(mu_);
  return capacity_;
}

void ResultCache::clear() {
  util::MutexLock lock(mu_);
  map_.clear();
  lru_.clear();
  initial_delays_.clear();
  initial_delay_order_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

void ResultCache::for_each_entry(
    const std::function<void(const api::ResultCacheKey&,
                             const netlist::Netlist&,
                             const api::PipelineReport&)>& fn) const {
  // Snapshot the (key, entry) pairs under the lock, then invoke fn
  // outside it: a checkpoint serializes every resident netlist/report
  // (O(cache size)), and holding mu_ for that long would stall every
  // concurrent sweep's lookup/store. Entries are immutable shared_ptrs,
  // so the snapshot stays valid even if an eviction races the visit.
  std::vector<std::pair<api::ResultCacheKey, std::shared_ptr<const Entry>>>
      snapshot;
  {
    util::MutexLock lock(mu_);
    snapshot.reserve(lru_.size());
    for (const api::ResultCacheKey& key : lru_)
      snapshot.emplace_back(key, map_.at(key).entry);
  }
  for (const auto& [key, entry] : snapshot)
    fn(key, entry->result, entry->report);
}

void ResultCache::for_each_initial_delay(
    const std::function<void(const api::ResultCacheKey&, double)>& fn) const {
  std::vector<std::pair<api::ResultCacheKey, double>> snapshot;
  {
    util::MutexLock lock(mu_);
    snapshot.reserve(initial_delay_order_.size());
    for (const api::ResultCacheKey& key : initial_delay_order_)
      snapshot.emplace_back(key, initial_delays_.at(key));
  }
  for (const auto& [key, delay_ps] : snapshot) fn(key, delay_ps);
}

std::size_t ResultCache::KeyHash::operator()(
    const api::ResultCacheKey& k) const noexcept {
  // splitmix64-style mix of the four words.
  std::uint64_t x = k.circuit_hash;
  x ^= k.config_hash + 0x9E3779B97F4A7C15ull + (x << 6) + (x >> 2);
  x ^= k.tc_bits + 0x9E3779B97F4A7C15ull + (x << 6) + (x >> 2);
  x ^= k.ctx_bits + 0x9E3779B97F4A7C15ull + (x << 6) + (x >> 2);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return static_cast<std::size_t>(x);
}

}  // namespace pops::service
