#pragma once
// Keyed memoization of converged optimization runs.
//
// A constraint sweep (Tables 2-4, Figs. 6/8) re-optimizes the same
// circuits at overlapping constraint points; every repeated (circuit,
// config, Tc) point re-runs the whole pipeline from scratch. ResultCache
// memoizes the converged outcome — the optimized netlist plus its
// PipelineReport — keyed by (circuit content hash, normalized constraint
// tuple), so a repeated point is an O(lookup) replay that is bit-identical
// to the fresh run (entries store full copies, nothing is re-derived).
//
// The cache implements api::ResultCacheHook and is installed on an
// OptContext (set_result_cache); from then on every Optimizer bound to
// that context memoizes through it, including run_many workers (all
// methods are mutex-guarded). Hit/miss counters are surfaced in sweep
// reports (service/sweep.hpp) and in the pops_sweep JSON output.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "pops/api/context.hpp"
#include "pops/api/pipeline.hpp"
#include "pops/netlist/netlist.hpp"

namespace pops::service {

class ResultCache final : public api::ResultCacheHook {
 public:
  /// Counter snapshot (taken atomically with respect to cache updates).
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
  };

  ResultCache() = default;

  // ----- api::ResultCacheHook -------------------------------------------------

  /// Key = (content hash of `nl`, hash of everything else that determines
  /// the result: config knobs, pipeline pass sequence, technology, Flimit
  /// characterization options, RNG seed, exact Tc bits).
  api::ResultCacheKey make_key(const api::OptContext& ctx,
                               const netlist::Netlist& nl,
                               const api::OptimizerConfig& cfg,
                               const api::PassPipeline& pipeline,
                               double tc_ps) const override;

  bool lookup(const api::ResultCacheKey& key, netlist::Netlist& nl,
              api::PipelineReport& report) override;

  void store(const api::ResultCacheKey& key, const netlist::Netlist& nl,
             const api::PipelineReport& report) override;

  /// Initial-delay memo keyed by (circuit_hash, config_hash) — tc_bits is
  /// ignored, the initial delay precedes any constraint. Not counted in
  /// hits/misses (those track full result replays).
  double initial_delay_ps(const api::ResultCacheKey& key) const override;
  void store_initial_delay(const api::ResultCacheKey& key,
                           double delay_ps) override;

  // ----- introspection --------------------------------------------------------

  Stats stats() const;
  std::size_t hits() const { return stats().hits; }
  std::size_t misses() const { return stats().misses; }
  std::size_t size() const { return stats().entries; }

  /// Drop all entries and reset the counters. Not safe to call while
  /// optimizations are in flight on this cache (lookups copy from entries
  /// outside the lock).
  void clear();

  // ----- hashing building blocks (exposed for tests) --------------------------

  /// FNV-1a content hash over the netlist: technology name, node count,
  /// and per node its name, role, cell kind, fanins, drive, wire cap and
  /// PO load (doubles hashed by bit pattern — "normalized" means exact).
  static std::uint64_t hash_netlist(const netlist::Netlist& nl);

  /// Hash of the non-circuit half of the key: the pipeline's pass
  /// sequence (name + Pass::cache_salt per pass), the context
  /// characterization (technology, FlimitOptions, RNG seed, delay-model
  /// backend identity = name + content hash), and the
  /// *normalized* config tuple — only knobs a pass of this pipeline can
  /// read contribute (shield knobs require the shield pass, protocol/
  /// solver knobs the protocol pass; an unknown custom pass hashes
  /// everything), so sweeping a knob no pass consumes cannot force
  /// redundant recomputes.
  static std::uint64_t hash_config(const api::OptContext& ctx,
                                   const api::OptimizerConfig& cfg,
                                   const api::PassPipeline& pipeline);

 private:
  struct Entry {
    api::PipelineReport report;
    netlist::Netlist result;  ///< the optimized netlist, full copy
  };
  struct KeyHash {
    std::size_t operator()(const api::ResultCacheKey& k) const noexcept;
  };

  mutable std::mutex mu_;
  // unique_ptr values: entries are immutable after insertion and
  // node-based, so concurrent lookups may copy from an entry while other
  // keys are being inserted.
  std::unordered_map<api::ResultCacheKey, std::unique_ptr<const Entry>,
                     KeyHash>
      map_;
  std::unordered_map<api::ResultCacheKey, double, KeyHash> initial_delays_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace pops::service
