#pragma once
// Keyed memoization of converged optimization runs.
//
// A constraint sweep (Tables 2-4, Figs. 6/8) re-optimizes the same
// circuits at overlapping constraint points; every repeated (circuit,
// config, Tc) point re-runs the whole pipeline from scratch. ResultCache
// memoizes the converged outcome — the optimized netlist plus its
// PipelineReport — keyed by (circuit content hash, normalized constraint
// tuple), so a repeated point is an O(lookup) replay that is bit-identical
// to the fresh run (entries store full copies, nothing is re-derived).
//
// The cache implements api::ResultCacheHook and is installed on an
// OptContext (set_result_cache); from then on every Optimizer bound to
// that context memoizes through it, including run_many workers (all
// methods are mutex-guarded). Hit/miss counters are surfaced in sweep
// reports (service/sweep.hpp) and in the pops_sweep JSON output.
//
// Long-lived servers (pops::net::SweepServer) bound the cache with an LRU
// capacity (least-recently-used entries evicted on insert, counted in
// stats().evictions) and persist it across processes through
// service/cache_io.hpp — entries are pure content once the process-local
// context binding (ResultCacheKey::ctx_bits) is stripped.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pops/api/context.hpp"
#include "pops/api/pipeline.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/util/thread_annotations.hpp"

namespace pops::service {

class ResultCache final : public api::ResultCacheHook {
 public:
  /// Counter snapshot (taken atomically with respect to cache updates).
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
    std::size_t evictions = 0;  ///< entries dropped by the LRU bound
    std::size_t capacity = 0;   ///< 0 = unbounded
  };

  /// `capacity` bounds the number of resident entries (LRU eviction on
  /// insert); 0 keeps the cache unbounded — the default, so short-lived
  /// batch runs stay bit-identical to the uncapped behaviour. The
  /// initial-delay memo is bounded by the same capacity (FIFO).
  explicit ResultCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Observer of cache mutations — the append-only journal's hook
  /// (service/cache_journal.hpp). Callbacks fire on the mutating thread
  /// *after* the cache released its lock (a listener may take its own
  /// locks, do IO, or call back into cache accessors without deadlock),
  /// and only for mutations that actually happened: on_store only for a
  /// first insertion (first-writer-wins duplicates are silent), on_evict
  /// only for entries the LRU bound dropped.
  class StoreListener {
   public:
    virtual ~StoreListener() = default;
    virtual void on_store(const api::ResultCacheKey& key,
                          const netlist::Netlist& nl,
                          const api::PipelineReport& report) = 0;
    virtual void on_store_initial_delay(const api::ResultCacheKey& key,
                                        double delay_ps) = 0;
    virtual void on_evict(const api::ResultCacheKey& key) { (void)key; }
    virtual void on_evict_initial_delay(const api::ResultCacheKey& key) {
      (void)key;
    }
  };

  /// Attach (or detach, with nullptr) the single mutation listener. Not
  /// owned. Attach before traffic: stores racing the attachment may or
  /// may not be observed.
  void set_store_listener(StoreListener* listener) POPS_EXCLUDES(mu_);

  // ----- api::ResultCacheHook -------------------------------------------------

  /// Key = (content hash of `nl`, hash of everything else that determines
  /// the result: config knobs, pipeline pass sequence, technology, Flimit
  /// characterization options, RNG seed, exact Tc bits) plus the identity
  /// of `ctx` in ctx_bits (entries are context-bound; see ResultCacheKey).
  api::ResultCacheKey make_key(const api::OptContext& ctx,
                               const netlist::Netlist& nl,
                               const api::OptimizerConfig& cfg,
                               const api::PassPipeline& pipeline,
                               double tc_ps) const override;

  bool lookup(const api::ResultCacheKey& key, netlist::Netlist& nl,
              api::PipelineReport& report) override POPS_EXCLUDES(mu_);

  void store(const api::ResultCacheKey& key, const netlist::Netlist& nl,
             const api::PipelineReport& report) override POPS_EXCLUDES(mu_);

  /// Initial-delay memo keyed by (circuit_hash, config_hash) — tc_bits is
  /// ignored, the initial delay precedes any constraint. Any stored value
  /// (including 0.0) is returned; nullopt means "never stored". Not
  /// counted in hits/misses (those track full result replays).
  std::optional<double> initial_delay_ps(
      const api::ResultCacheKey& key) const override POPS_EXCLUDES(mu_);
  void store_initial_delay(const api::ResultCacheKey& key,
                           double delay_ps) override POPS_EXCLUDES(mu_);

  // ----- introspection --------------------------------------------------------

  Stats stats() const POPS_EXCLUDES(mu_);
  std::size_t hits() const { return stats().hits; }
  std::size_t misses() const { return stats().misses; }
  std::size_t size() const { return stats().entries; }

  /// Change the LRU bound; 0 = unbounded. Shrinking below the resident
  /// count evicts the excess least-recently-used entries immediately.
  void set_capacity(std::size_t capacity) POPS_EXCLUDES(mu_);
  std::size_t capacity() const POPS_EXCLUDES(mu_);

  /// Drop all entries and reset the counters. Safe for concurrent calls
  /// (in-flight lookups hold shared ownership of their entry).
  void clear() POPS_EXCLUDES(mu_);

  // ----- persistence support (service/cache_io.hpp) ---------------------------

  /// Visit every resident entry / initial-delay memo, in most-recently-
  /// used-first order. The visit runs over a consistent snapshot taken
  /// under the lock; `fn` itself runs *outside* it (it may be expensive —
  /// checkpoints serialize whole netlists — without stalling concurrent
  /// lookups), so entries evicted mid-visit are still delivered.
  void for_each_entry(
      const std::function<void(const api::ResultCacheKey&,
                               const netlist::Netlist&,
                               const api::PipelineReport&)>& fn) const
      POPS_EXCLUDES(mu_);
  void for_each_initial_delay(
      const std::function<void(const api::ResultCacheKey&, double)>& fn) const
      POPS_EXCLUDES(mu_);

  // ----- hashing building blocks (exposed for tests) --------------------------

  /// FNV-1a content hash over the netlist: technology name, node count,
  /// and per node its name, role, cell kind, fanins, drive, wire cap and
  /// PO load (doubles hashed by bit pattern — "normalized" means exact).
  static std::uint64_t hash_netlist(const netlist::Netlist& nl);

  /// Hash of the non-circuit half of the key: the pipeline's pass
  /// sequence (name + Pass::cache_salt per pass), the context
  /// characterization (hash_context plus the delay-model backend identity
  /// = name + content hash), and the *normalized* config tuple — only
  /// knobs a pass of this pipeline can read contribute (shield knobs
  /// require the shield pass, protocol/solver knobs the protocol pass; an
  /// unknown custom pass hashes everything), so sweeping a knob no pass
  /// consumes cannot force redundant recomputes. Pure content: stable
  /// across processes (the live-instance binding lives in
  /// ResultCacheKey::ctx_bits instead).
  static std::uint64_t hash_config(const api::OptContext& ctx,
                                   const api::OptimizerConfig& cfg,
                                   const api::PassPipeline& pipeline);

  /// The *immutable* characterization of a context: every Technology
  /// parameter, the Fig. 5 Flimit set-up, and the RNG seed. Excludes the
  /// delay-model backend (swappable per Optimizer; it is keyed per entry
  /// through hash_config). Two contexts with equal hash_context produce
  /// bit-identical results for equal (circuit, config, pipeline, Tc) —
  /// the compatibility check for loading a persisted cache.
  static std::uint64_t hash_context(const api::OptContext& ctx);

 private:
  struct Entry {
    api::PipelineReport report;
    netlist::Netlist result;  ///< the optimized netlist, full copy
  };
  struct KeyHash {
    std::size_t operator()(const api::ResultCacheKey& k) const noexcept;
  };
  struct Slot {
    // shared_ptr: an in-flight lookup copies from its entry outside the
    // lock while an LRU eviction may drop the map's reference.
    std::shared_ptr<const Entry> entry;
    std::list<api::ResultCacheKey>::iterator lru;  ///< position in lru_
  };

  /// Returns true when the key was actually inserted (first writer).
  /// Keys evicted to make room are appended to the out-vectors so the
  /// caller can report them to the listener outside the lock.
  bool store_locked(const api::ResultCacheKey& key,
                    std::shared_ptr<const Entry> entry,
                    std::vector<api::ResultCacheKey>& evicted,
                    std::vector<api::ResultCacheKey>& evicted_delays)
      POPS_REQUIRES(mu_);
  void evict_over_capacity_locked(
      std::vector<api::ResultCacheKey>& evicted,
      std::vector<api::ResultCacheKey>& evicted_delays) POPS_REQUIRES(mu_);

  // mu_ guards the whole mutable state: the entry map + its LRU order,
  // the initial-delay memo + its FIFO order, the capacity bound, and the
  // hit/miss/eviction counters. Compiler-checked (POPS_GUARDED_BY): an
  // access outside the lock is a -Wthread-safety error under Clang.
  mutable util::Mutex mu_;
  std::unordered_map<api::ResultCacheKey, Slot, KeyHash> map_
      POPS_GUARDED_BY(mu_);
  /// front = most recently used
  std::list<api::ResultCacheKey> lru_ POPS_GUARDED_BY(mu_);
  std::unordered_map<api::ResultCacheKey, double, KeyHash> initial_delays_
      POPS_GUARDED_BY(mu_);
  /// FIFO, front = oldest
  std::list<api::ResultCacheKey> initial_delay_order_ POPS_GUARDED_BY(mu_);
  std::size_t capacity_ POPS_GUARDED_BY(mu_) = 0;
  StoreListener* listener_ POPS_GUARDED_BY(mu_) = nullptr;
  std::size_t hits_ POPS_GUARDED_BY(mu_) = 0;
  std::size_t misses_ POPS_GUARDED_BY(mu_) = 0;
  std::size_t evictions_ POPS_GUARDED_BY(mu_) = 0;
};

}  // namespace pops::service
