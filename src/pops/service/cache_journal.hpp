#pragma once
// Append-only ResultCache persistence with compaction.
//
// cache_io.hpp checkpoints by rewriting the *whole* archive — O(cache
// size) per checkpoint, which is fine for a batch CLI but wrong for a
// long-lived worker daemon whose cache grows for days: every
// checkpoint_every sweeps it re-serializes thousands of unchanged
// entries. CacheJournal replaces the rewrite with a journal: it attaches
// to the cache as a ResultCache::StoreListener and appends one record
// per *mutation* (entry stored, initial delay memoized) as it lands,
// flushed on the record boundary. A restart replays the journal line by
// line; a crash at any byte offset loses at most the final partial
// record (the truncated tail is skipped with a diagnostic, every record
// before it is recovered).
//
// Garbage — records whose entry was since LRU-evicted, or superseded
// duplicates — accumulates in the file but not in the cache. The journal
// tracks live vs garbage bytes exactly and compacts (rewrites the file
// from the live cache contents, sorted by key for deterministic bytes)
// when the garbage ratio crosses Options::max_garbage_ratio, via an
// atomic tmp+rename: interruption mid-compaction leaves the original
// journal intact (a stale ".compact.tmp" is removed at the next open).
// Post-compaction file size is bounded by the live entries' bytes plus
// one header line.
//
// On-disk format (version 1): newline-delimited compact JSON. Line 1 is
// the header; every subsequent line is one record:
//
//   {"format": "pops-cache-journal", "version": 1,
//    "context": {"signature": hex, "technology": name, "rng_seed": hex}}
//   {"kind": "entry", "key": {"circuit": hex, "config": hex, "tc": hex},
//    "netlist_hash": hex, "delay_model": selector,
//    "netlist": {...}, "report": {...}}
//   {"kind": "initial_delay", "key": {"circuit": hex, "config": hex},
//    "delay_model": selector, "delay_ps": n}
//
// Netlist/report payloads are cache_io's archive_netlist/archive_report
// documents (same fidelity and integrity hash as the v2 archive); hex
// fields are util::hex_u64 strings. The header deliberately records only
// the *immutable* context characterization (ResultCache::hash_context) —
// no delay-model field — so appends and compactions never read a
// swappable backend and need no execution lock; each record instead
// carries the full delay-model *selector* of the context that stored it,
// which is how replay routes records to the right member of a
// fabric::ContextPool (selectors are content: the same journal replays
// into any process that can build the same backends).
//
// Versioning: like cache_io, an unknown version or foreign context
// signature rejects the whole file with a recovery hint; per-record
// corruption skips the record and is reported in CacheLoadReport.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "pops/service/cache_io.hpp"
#include "pops/service/result_cache.hpp"
#include "pops/util/thread_annotations.hpp"

namespace pops::service {

class CacheJournal final : public ResultCache::StoreListener {
 public:
  struct Options {
    /// Compact when garbage bytes exceed this fraction of the file (and
    /// the file is at least min_compact_bytes — tiny files aren't worth
    /// rewriting). 0.5 = at most half the journal is dead weight.
    double max_garbage_ratio = 0.5;
    std::size_t min_compact_bytes = 16u << 10;
  };

  struct Stats {
    std::size_t appends = 0;      ///< records appended since open
    std::size_t compactions = 0;  ///< rewrites since open
    std::size_t live_bytes = 0;   ///< bytes of records still backing the cache
    std::size_t garbage_bytes = 0;  ///< bytes of evicted/superseded records
    std::size_t total_bytes = 0;    ///< file size (header + all records)
    std::size_t io_errors = 0;      ///< appends dropped by write failures
  };

  /// Maps a delay-model selector from a replayed record to the context
  /// that should own the entry (nullptr = cannot build it; the record is
  /// skipped with a diagnostic). fabric::ContextPool::get is the
  /// intended resolver; a single-context caller returns its one context
  /// unconditionally.
  using ContextResolver = std::function<api::OptContext*(const std::string&)>;

  /// The journal observes (and persists into `path`) every mutation of
  /// `cache` once open() has attached it. Construction does no IO.
  CacheJournal(std::shared_ptr<ResultCache> cache, std::string path);
  CacheJournal(std::shared_ptr<ResultCache> cache, std::string path,
               Options opt);

  /// Detaches from the cache and flushes.
  ~CacheJournal() override;

  CacheJournal(const CacheJournal&) = delete;
  CacheJournal& operator=(const CacheJournal&) = delete;

  /// Open the journal: discard a stale mid-compaction temp file, replay
  /// every durable record of an existing journal into the cache (routing
  /// each record's selector through `resolver`, rebinding ctx_bits to the
  /// resolved context), then attach to the cache as its store listener
  /// and start appending. `ref_ctx` provides the context characterization
  /// for header validation — in a pool all members share hash_context, so
  /// any member serves. Throws std::invalid_argument on a wrong-format /
  /// wrong-version / foreign-signature header, std::runtime_error when
  /// the file cannot be opened for append. Per-record problems (garbage
  /// lines, unknown selectors, integrity mismatches) are skipped and
  /// reported, never fatal.
  CacheLoadReport open(api::OptContext& ref_ctx,
                       const ContextResolver& resolver) POPS_EXCLUDES(mu_);

  /// Register `ctx` as the owner of `selector`-keyed entries: records
  /// appended for keys bound to `ctx` carry this selector. Call once per
  /// pool context before it runs sweeps (fabric::ContextPool's on_create
  /// does). Stores from an unregistered context cannot be attributed and
  /// are dropped (counted in Stats::io_errors).
  void bind_context(const std::string& selector, const api::OptContext& ctx)
      POPS_EXCLUDES(mu_);

  /// Rewrite the journal from the live cache contents (sorted by key —
  /// deterministic bytes), atomically. Resets garbage to zero. Safe
  /// concurrent with sweeps: appends block for the duration, cache
  /// lookups do not.
  void compact() POPS_EXCLUDES(mu_);

  /// compact() iff the garbage policy (Options) says so. Returns whether
  /// a compaction ran. (Appends also auto-compact under the same policy;
  /// this is the explicit checkpoint/shutdown hook.)
  bool compact_if_needed() POPS_EXCLUDES(mu_);

  /// Flush and detach from the cache; further mutations are not
  /// journaled. Idempotent (the destructor calls it).
  void close() POPS_EXCLUDES(mu_);

  Stats stats() const POPS_EXCLUDES(mu_);
  const std::string& path() const noexcept { return path_; }

  // ----- ResultCache::StoreListener (called by the cache, off-lock) -----------

  void on_store(const api::ResultCacheKey& key, const netlist::Netlist& nl,
                const api::PipelineReport& report) override POPS_EXCLUDES(mu_);
  void on_store_initial_delay(const api::ResultCacheKey& key,
                              double delay_ps) override POPS_EXCLUDES(mu_);
  void on_evict(const api::ResultCacheKey& key) override POPS_EXCLUDES(mu_);
  void on_evict_initial_delay(const api::ResultCacheKey& key) override
      POPS_EXCLUDES(mu_);

 private:
  void append_locked(const std::string& content_key, const std::string& line,
                     std::map<std::string, std::size_t>& bytes_map)
      POPS_REQUIRES(mu_);
  void retire_locked(const std::string& content_key,
                     std::map<std::string, std::size_t>& bytes_map)
      POPS_REQUIRES(mu_);
  bool garbage_policy_met_locked() const POPS_REQUIRES(mu_);
  void compact_locked() POPS_REQUIRES(mu_);
  std::string selector_for_locked(std::uint64_t ctx_bits) const
      POPS_REQUIRES(mu_);

  const std::shared_ptr<ResultCache> cache_;
  const std::string path_;
  const Options opt_;

  // mu_ guards the stream, the byte accounting, and the context/selector
  // bindings. Lock order: mu_ before the cache's internal lock (compact
  // snapshots the cache while holding mu_); the cache never calls the
  // listener while holding its own lock, so the order is acyclic.
  mutable util::Mutex mu_;
  std::ofstream out_ POPS_GUARDED_BY(mu_);
  bool attached_ POPS_GUARDED_BY(mu_) = false;
  std::string header_line_ POPS_GUARDED_BY(mu_);
  /// ctx_bits -> delay-model selector of the bound context.
  std::map<std::uint64_t, std::string> selectors_ POPS_GUARDED_BY(mu_);
  /// content key (hex concat) -> bytes of its most recent record.
  std::map<std::string, std::size_t> entry_bytes_ POPS_GUARDED_BY(mu_);
  std::map<std::string, std::size_t> delay_bytes_ POPS_GUARDED_BY(mu_);
  std::size_t live_bytes_ POPS_GUARDED_BY(mu_) = 0;
  std::size_t garbage_bytes_ POPS_GUARDED_BY(mu_) = 0;
  std::size_t total_bytes_ POPS_GUARDED_BY(mu_) = 0;
  std::size_t appends_ POPS_GUARDED_BY(mu_) = 0;
  std::size_t compactions_ POPS_GUARDED_BY(mu_) = 0;
  std::size_t io_errors_ POPS_GUARDED_BY(mu_) = 0;
};

}  // namespace pops::service
