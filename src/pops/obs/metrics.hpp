#pragma once
// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with coherent point-in-time snapshots.
//
// Instruments count *events* (cache hits, protocol rounds, STA dirty-cone
// sizes); they never read clocks and never feed back into optimization,
// so they are always on and cannot perturb the bit-identical replay
// contract. The intended call-site pattern binds the handle once:
//
//   static obs::Registry::Counter hits =
//       obs::Registry::global().counter("cache.hits");
//   hits.add();
//
// One registry-wide mutex guards all cells. That makes snapshot_json() a
// single coherent instant (no counter pair can be observed mid-update,
// e.g. hits sampled after a lookup but misses before it) and keeps the
// maps std::map — sorted, so snapshots serialize to deterministic bytes.
// Contention is a non-issue at the instrumented granularity (per round /
// per point / per request, never per node). Compiler-checked under
// Clang's -Wthread-safety like every other concurrent surface; the TSan
// CI job exercises concurrent writers + snapshotters (test_obs.cpp).
//
// Snapshots travel as the daemon's "metrics" wire op
// (net/protocol.hpp) and serialize as:
//
//   {"counters": {name: value, ...},
//    "gauges": {name: value, ...},
//    "histograms": {name: {"bounds": [...], "counts": [...],
//                          "count": n, "sum": s}, ...}}
//
// Histogram counts have bounds.size() + 1 entries; counts[i] tallies
// observations <= bounds[i], the last entry everything above the largest
// bound.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pops/util/json.hpp"
#include "pops/util/thread_annotations.hpp"

namespace pops::obs {

class Registry {
 public:
  static Registry& global();

  /// Monotonically increasing event count.
  class Counter {
   public:
    void add(double delta = 1.0) const;

   private:
    friend class Registry;
    Counter(Registry* reg, double* cell) : reg_(reg), cell_(cell) {}
    Registry* reg_;
    double* cell_;  ///< stable std::map slot, guarded by reg_->mu_
  };

  /// Last-written value (queue depths, resident entries).
  class Gauge {
   public:
    void set(double value) const;
    void add(double delta) const;

   private:
    friend class Registry;
    Gauge(Registry* reg, double* cell) : reg_(reg), cell_(cell) {}
    Registry* reg_;
    double* cell_;
  };

  struct HistogramCell {
    std::vector<double> bounds;        ///< ascending upper bucket bounds
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  /// Fixed-bucket distribution; bucket bounds are set at first creation.
  class Histogram {
   public:
    void observe(double value) const;

   private:
    friend class Registry;
    Histogram(Registry* reg, HistogramCell* cell) : reg_(reg), cell_(cell) {}
    Registry* reg_;
    HistogramCell* cell_;
  };

  /// Get-or-create by name. Handles are cheap value types bound to the
  /// cell's stable address; re-requesting a name returns a handle to the
  /// same cell (a histogram's bounds are fixed by its first creation —
  /// later `bounds` arguments for the same name are ignored).
  Counter counter(const std::string& name) POPS_EXCLUDES(mu_);
  Gauge gauge(const std::string& name) POPS_EXCLUDES(mu_);
  Histogram histogram(const std::string& name, std::vector<double> bounds)
      POPS_EXCLUDES(mu_);

  /// One coherent instant of every metric, deterministic bytes (sorted
  /// names, fixed schema — see the file header).
  util::Json snapshot_json() const POPS_EXCLUDES(mu_);

  /// Zero every value while keeping all registered cells alive (handles
  /// bound before the reset stay valid) — for tests that need absolute
  /// counts from a process-wide registry.
  void reset() POPS_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  // std::map: stable mapped addresses across inserts (handles keep raw
  // pointers) and sorted iteration (deterministic snapshots).
  std::map<std::string, double> counters_ POPS_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ POPS_GUARDED_BY(mu_);
  std::map<std::string, HistogramCell> histograms_ POPS_GUARDED_BY(mu_);
};

}  // namespace pops::obs
