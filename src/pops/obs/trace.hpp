#pragma once
// Structured tracing: RAII spans drained into Chrome trace-event JSON.
//
// A Span marks one timed region ("pass/protocol", "cache/lookup").
// Completed spans land in a per-thread buffer; TraceRecorder::global()
// drains every thread's buffer into either
//
//   chrome_json()  — the Chrome trace-event format ({"traceEvents":
//                    [{"name", "ph": "X", "ts", "dur", "pid", "tid",
//                    "args"}]}), loadable in chrome://tracing and
//                    Perfetto, timestamps in microseconds relative to
//                    start(); or
//   jsonl()        — a deterministic one-record-per-line form with NO
//                    timestamps (name, tid, per-thread completion seq,
//                    nesting depth, args), ordered by (tid, seq) — what
//                    tests assert on, byte-stable across runs.
//
// Zero cost when off: tracing is a single relaxed atomic flag; a Span
// constructed while it is clear reads no clock, allocates nothing, and
// stores one bool. Results are therefore bit-identical with tracing on or
// off — spans observe, they never feed back (tests/test_obs.cpp proves
// the replay equivalence end to end).
//
// Concurrency: each thread appends to its own chunked buffer. Appends are
// lock-free with respect to the drainer — the writer publishes each event
// with a release store of the count, the drainer reads with an acquire
// load and only consumes published events; only chunk-list growth and the
// drain itself take the buffer's mutex. Buffers are registered with the
// recorder as shared_ptr, so spans recorded by short-lived worker threads
// (Optimizer::run_many) survive thread exit and still appear in the
// drain.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pops/obs/clock.hpp"
#include "pops/util/json.hpp"
#include "pops/util/thread_annotations.hpp"

namespace pops::obs {

/// One completed span. `arg_names` must point at string literals (static
/// storage) — Span::arg takes const char* and stores it unowned.
struct TraceEvent {
  std::string name;
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::uint64_t seq = 0;    ///< per-thread completion sequence
  std::uint32_t tid = 0;    ///< buffer registration index, not an OS id
  std::uint32_t depth = 0;  ///< nesting depth at entry (outermost = 1)
  std::array<const char*, 3> arg_names{};
  std::array<double, 3> arg_values{};
  std::uint32_t n_args = 0;
};

class TraceRecorder {
 public:
  static TraceRecorder& global();

  /// Discard any previously recorded spans and enable tracing. Records
  /// the trace origin (chrome_json timestamps are relative to it).
  void start() POPS_EXCLUDES(mu_);

  /// Disable tracing. Recorded spans stay drainable until the next
  /// start().
  void stop() noexcept { enabled_.store(false, std::memory_order_relaxed); }

  /// The global tracing flag — the only thing a disabled Span touches.
  static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Everything recorded since start(), as a Chrome trace-event document.
  /// Non-destructive: calling twice returns the same events (plus any
  /// recorded in between).
  util::Json chrome_json() const POPS_EXCLUDES(mu_);

  /// The deterministic form: one compact JSON record per line, ordered by
  /// (tid, seq), no timestamps.
  std::string jsonl() const POPS_EXCLUDES(mu_);

  /// Parsed records of jsonl(), for programmatic assertions.
  std::vector<util::Json> jsonl_records() const POPS_EXCLUDES(mu_);

  /// The absolute (monotonic-clock) nanosecond origin recorded by the
  /// last start(); 0 before any start(). chrome_json timestamps are
  /// microseconds relative to this, so a fabric coordinator merging a
  /// worker's trace over the wire rebases worker events by the origin
  /// difference (both processes read the same machine's clock).
  std::uint64_t origin_ns() const POPS_EXCLUDES(mu_);

 private:
  friend class Span;

  /// Fixed-size chunks give events stable addresses: the writer may
  /// append to a fresh chunk while the drainer copies earlier ones.
  struct Chunk {
    static constexpr std::size_t kSize = 256;
    std::array<TraceEvent, kSize> events;
  };

  struct ThreadBuffer {
    std::uint32_t tid = 0;
    /// Writer-only fields (no lock): the appending thread owns them.
    std::uint64_t next_seq = 0;
    std::uint32_t depth = 0;
    /// Events [0, count_) are published; the writer stores with release
    /// after filling the slot, the drainer loads with acquire.
    std::atomic<std::uint64_t> count{0};
    /// Writer-only cache of chunks.back() (avoids locking per append).
    Chunk* tail = nullptr;
    util::Mutex mu;  ///< guards chunk-list growth vs. drain
    std::vector<std::unique_ptr<Chunk>> chunks POPS_GUARDED_BY(mu);

    void append(TraceEvent ev) POPS_EXCLUDES(mu);
  };

  ThreadBuffer& local_buffer() POPS_EXCLUDES(mu_);
  std::vector<TraceEvent> collect() const POPS_EXCLUDES(mu_);

  static std::atomic<bool> enabled_;

  mutable util::Mutex mu_;
  /// All registered buffers (one per thread that ever emitted a span);
  /// shared_ptr keeps a buffer alive past its thread's exit.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ POPS_GUARDED_BY(mu_);
  /// Per-buffer count at the last start(): events below it belong to a
  /// previous trace session and are excluded from drains.
  std::vector<std::uint64_t> baseline_ POPS_GUARDED_BY(mu_);
  std::uint64_t origin_ns_ POPS_GUARDED_BY(mu_) = 0;
};

/// RAII timed region. Construct with static name parts; the optional
/// suffix covers dynamic names ("pass/" + pass->name()) without paying
/// a concatenation when tracing is off:
///
///   obs::Span span("cache/lookup");
///   obs::Span span("pass/", pass->name());
///   span.arg("round", round);           // up to 3 numeric args
///
/// Not movable/copyable: a span is a lexical scope.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view suffix = {}) {
    if (!TraceRecorder::enabled()) return;
    begin(name, suffix);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (active_) end();
  }

  /// True when this span is recording — guard any *extra* computation
  /// done only to feed arg() (e.g. a netlist-wide area sum).
  bool active() const noexcept { return active_; }

  /// Attach a numeric argument (shown in the trace viewer / jsonl).
  /// `name` must be a string literal; at most 3 args, extras dropped.
  void arg(const char* name, double value) noexcept {
    if (!active_ || ev_.n_args >= ev_.arg_names.size()) return;
    ev_.arg_names[ev_.n_args] = name;
    ev_.arg_values[ev_.n_args] = value;
    ++ev_.n_args;
  }

 private:
  void begin(std::string_view name, std::string_view suffix);
  void end();

  TraceEvent ev_;
  bool active_ = false;
};

}  // namespace pops::obs
