#pragma once
// The one blessed clock home.
//
// The determinism lint (tools/pops_lint, rule "raw-clock") rejects
// steady_clock/system_clock/high_resolution_clock everywhere under src/
// except this directory: optimization results must derive only from
// inputs, and the few places that legitimately measure time (report
// runtimes, server wait deadlines, trace spans) must be auditable in one
// spot. Everything here is a thin veneer over std::chrono::steady_clock —
// monotonic, unaffected by wall-clock adjustments — and none of it feeds
// back into any optimization decision.

#include <chrono>
#include <cstdint>

namespace pops::obs {

/// Monotonic nanoseconds since an arbitrary (per-process) origin.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The raw monotonic time point, for callers that need to build deadlines
/// (`obs::steady_now() + std::chrono::milliseconds(ms)`) rather than
/// measure durations.
inline std::chrono::steady_clock::time_point steady_now() noexcept {
  return std::chrono::steady_clock::now();
}

/// Scoped duration measurement for *product* timing fields (PassReport
/// runtime_ms, SweepReport wall_ms, bench tables). These are report data,
/// deliberately always-on — the bit-identical replay contract excludes
/// them by serializing measured fields into their own non-compared
/// section (service/serialize.hpp, SerializeOptions).
class StopWatch {
 public:
  StopWatch() noexcept : t0_ns_(now_ns()) {}

  void reset() noexcept { t0_ns_ = now_ns(); }

  double elapsed_ms() const noexcept {
    return static_cast<double>(now_ns() - t0_ns_) * 1e-6;
  }

 private:
  std::uint64_t t0_ns_;
};

}  // namespace pops::obs
