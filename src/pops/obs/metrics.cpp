#include "pops/obs/metrics.hpp"

#include <algorithm>
#include <utility>

namespace pops::obs {

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void Registry::Counter::add(double delta) const {
  util::MutexLock lock(reg_->mu_);
  *cell_ += delta;
}

void Registry::Gauge::set(double value) const {
  util::MutexLock lock(reg_->mu_);
  *cell_ = value;
}

void Registry::Gauge::add(double delta) const {
  util::MutexLock lock(reg_->mu_);
  *cell_ += delta;
}

void Registry::Histogram::observe(double value) const {
  util::MutexLock lock(reg_->mu_);
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(cell_->bounds.begin(), cell_->bounds.end(), value) -
      cell_->bounds.begin());
  ++cell_->counts[bucket];
  ++cell_->count;
  cell_->sum += value;
}

Registry::Counter Registry::counter(const std::string& name) {
  util::MutexLock lock(mu_);
  return Counter(this, &counters_.try_emplace(name, 0.0).first->second);
}

Registry::Gauge Registry::gauge(const std::string& name) {
  util::MutexLock lock(mu_);
  return Gauge(this, &gauges_.try_emplace(name, 0.0).first->second);
}

Registry::Histogram Registry::histogram(const std::string& name,
                                        std::vector<double> bounds) {
  std::sort(bounds.begin(), bounds.end());
  HistogramCell cell;
  cell.counts.assign(bounds.size() + 1, 0);
  cell.bounds = std::move(bounds);
  util::MutexLock lock(mu_);
  return Histogram(
      this, &histograms_.try_emplace(name, std::move(cell)).first->second);
}

util::Json Registry::snapshot_json() const {
  util::MutexLock lock(mu_);
  util::Json doc = util::Json::object();
  util::Json counters = util::Json::object();
  for (const auto& [name, value] : counters_) counters[name] = value;
  doc["counters"] = std::move(counters);
  util::Json gauges = util::Json::object();
  for (const auto& [name, value] : gauges_) gauges[name] = value;
  doc["gauges"] = std::move(gauges);
  util::Json histograms = util::Json::object();
  for (const auto& [name, cell] : histograms_) {
    util::Json h = util::Json::object();
    util::Json bounds = util::Json::array();
    for (const double b : cell.bounds) bounds.push_back(b);
    h["bounds"] = std::move(bounds);
    util::Json counts = util::Json::array();
    for (const std::uint64_t c : cell.counts)
      counts.push_back(static_cast<double>(c));
    h["counts"] = std::move(counts);
    h["count"] = static_cast<double>(cell.count);
    h["sum"] = cell.sum;
    histograms[name] = std::move(h);
  }
  doc["histograms"] = std::move(histograms);
  return doc;
}

void Registry::reset() {
  util::MutexLock lock(mu_);
  for (auto& [name, value] : counters_) value = 0.0;
  for (auto& [name, value] : gauges_) value = 0.0;
  for (auto& [name, cell] : histograms_) {
    std::fill(cell.counts.begin(), cell.counts.end(), 0);
    cell.count = 0;
    cell.sum = 0.0;
  }
}

}  // namespace pops::obs
