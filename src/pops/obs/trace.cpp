#include "pops/obs/trace.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

namespace pops::obs {

std::atomic<bool> TraceRecorder::enabled_{false};

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::ThreadBuffer::append(TraceEvent ev) {
  const std::uint64_t n = count.load(std::memory_order_relaxed);
  const std::size_t slot = static_cast<std::size_t>(n % Chunk::kSize);
  if (slot == 0) {
    // New chunk: the only append step that takes the lock (once per
    // kSize events), and only against a concurrent drain's chunk-list
    // snapshot — never against another writer (the buffer is
    // thread-local).
    auto chunk = std::make_unique<Chunk>();
    Chunk* fresh = chunk.get();
    util::MutexLock lock(mu);
    chunks.push_back(std::move(chunk));
    tail = fresh;
  }
  tail->events[slot] = std::move(ev);
  // Publish: pairs with the drainer's acquire load of `count`, so the
  // event write above happens-before any read of the slot.
  count.store(n + 1, std::memory_order_release);
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf;
  if (!buf) {
    buf = std::make_shared<ThreadBuffer>();
    util::MutexLock lock(mu_);
    buf->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(buf);
    baseline_.push_back(0);
  }
  return *buf;
}

void TraceRecorder::start() {
  {
    util::MutexLock lock(mu_);
    // Previous sessions' events stay in the buffers (a writer may still
    // be appending; only it may touch `count`) — the baseline simply
    // excludes them from every drain of this session.
    for (std::size_t b = 0; b < buffers_.size(); ++b)
      baseline_[b] = buffers_[b]->count.load(std::memory_order_acquire);
    origin_ns_ = now_ns();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> bufs;
  std::vector<std::uint64_t> base;
  {
    util::MutexLock lock(mu_);
    bufs = buffers_;
    base = baseline_;
  }
  std::vector<TraceEvent> out;
  for (std::size_t b = 0; b < bufs.size(); ++b) {
    ThreadBuffer& tb = *bufs[b];
    const std::uint64_t n = tb.count.load(std::memory_order_acquire);
    std::vector<Chunk*> chunks;
    {
      util::MutexLock lock(tb.mu);
      chunks.reserve(tb.chunks.size());
      for (const std::unique_ptr<Chunk>& c : tb.chunks)
        chunks.push_back(c.get());
    }
    for (std::uint64_t i = base[b]; i < n; ++i)
      out.push_back(chunks[static_cast<std::size_t>(i / Chunk::kSize)]
                        ->events[static_cast<std::size_t>(i % Chunk::kSize)]);
  }
  return out;
}

namespace {

util::Json args_json(const TraceEvent& ev) {
  util::Json args = util::Json::object();
  for (std::uint32_t a = 0; a < ev.n_args; ++a)
    args[ev.arg_names[a]] = ev.arg_values[a];
  return args;
}

}  // namespace

std::uint64_t TraceRecorder::origin_ns() const {
  util::MutexLock lock(mu_);
  return origin_ns_;
}

util::Json TraceRecorder::chrome_json() const {
  std::uint64_t origin = 0;
  {
    util::MutexLock lock(mu_);
    origin = origin_ns_;
  }
  std::vector<TraceEvent> events = collect();
  // Stable file layout: the viewer does not care, but diffing two trace
  // files of the same single-threaded run should work.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.t0_ns, a.tid, a.seq) <
                     std::tie(b.t0_ns, b.tid, b.seq);
            });

  util::Json trace = util::Json::array();
  for (const TraceEvent& ev : events) {
    util::Json e = util::Json::object();
    e["name"] = ev.name;
    e["ph"] = "X";  // complete event: ts + dur in one record
    e["ts"] = static_cast<double>(ev.t0_ns - origin) * 1e-3;  // microseconds
    e["dur"] = static_cast<double>(ev.t1_ns - ev.t0_ns) * 1e-3;
    e["pid"] = 1;
    e["tid"] = ev.tid;
    if (ev.n_args > 0) e["args"] = args_json(ev);
    trace.push_back(std::move(e));
  }
  util::Json doc = util::Json::object();
  doc["traceEvents"] = std::move(trace);
  return doc;
}

std::vector<util::Json> TraceRecorder::jsonl_records() const {
  std::vector<TraceEvent> events = collect();
  // No timestamps: (tid, seq) is the deterministic completion order a
  // repeated run reproduces exactly.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.tid, a.seq) < std::tie(b.tid, b.seq);
            });
  std::vector<util::Json> out;
  out.reserve(events.size());
  for (const TraceEvent& ev : events) {
    util::Json e = util::Json::object();
    e["name"] = ev.name;
    e["tid"] = ev.tid;
    e["seq"] = ev.seq;
    e["depth"] = ev.depth;
    if (ev.n_args > 0) e["args"] = args_json(ev);
    out.push_back(std::move(e));
  }
  return out;
}

std::string TraceRecorder::jsonl() const {
  std::string out;
  for (const util::Json& record : jsonl_records()) {
    out += record.dump(0);
    out += '\n';
  }
  return out;
}

void Span::begin(std::string_view name, std::string_view suffix) {
  active_ = true;
  ev_.name.reserve(name.size() + suffix.size());
  ev_.name.assign(name);
  ev_.name.append(suffix);
  TraceRecorder::ThreadBuffer& buf = TraceRecorder::global().local_buffer();
  ev_.depth = ++buf.depth;
  ev_.t0_ns = now_ns();
}

void Span::end() {
  ev_.t1_ns = now_ns();
  TraceRecorder::ThreadBuffer& buf = TraceRecorder::global().local_buffer();
  ev_.tid = buf.tid;
  ev_.seq = buf.next_seq++;
  if (buf.depth > 0) --buf.depth;
  buf.append(std::move(ev_));
}

}  // namespace pops::obs
