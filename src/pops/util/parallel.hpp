#pragma once
// Shared worker-thread pool for deterministic data-parallel sweeps.
//
// The level-parallel STA sweeps (timing/sta.cpp) fan the nodes of one
// topological level out across threads. Spawning std::threads per level
// would cost a syscall storm per STA run, so this pool keeps its workers
// alive for the process lifetime and hands them contiguous index chunks.
//
// Determinism contract: for_chunks() imposes NO ordering of its own — it
// only partitions [0, n) into fixed contiguous chunks (a pure function of
// n_items and the requested worker count, never of thread scheduling) and
// runs every chunk exactly once, returning after all complete. A caller
// whose chunk bodies write disjoint outputs and read only data finished
// before the call therefore gets bitwise-identical results at any worker
// count, on any host, under any scheduler — the property the STA sweeps
// are tested for. Callers needing a reduction must merge the per-chunk
// outputs themselves in chunk order after for_chunks() returns.
//
// The calling thread participates: `workers == k` means the caller plus
// at most k-1 pool threads, so `workers == 1` runs entirely inline (no
// locking, no pool wakeup) and a 1-core host still exercises real
// cross-thread execution at k > 1 — which is exactly what the TSan
// determinism suites need.
//
// This is the ONE place (besides api::Optimizer::run_many and net's
// connection threads) allowed to spawn raw threads; pops_lint's
// raw-thread rule points offenders here.

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "pops/util/thread_annotations.hpp"

namespace pops::util {

class ThreadPool {
 public:
  /// The process-wide pool (lazily constructed, grows on demand up to
  /// max_threads()). Worker threads are joined at process exit.
  static ThreadPool& global();

  explicit ThreadPool(std::size_t max_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Partition [0, n_items) into min(workers, n_items) contiguous chunks
  /// and run fn(begin, end) once per chunk, blocking until all complete.
  /// The calling thread executes chunks too (workers <= 1 runs inline).
  /// fn must be safe to call concurrently from multiple threads; chunk
  /// boundaries depend only on (n_items, workers).
  ///
  /// Nested calls from inside fn are not supported (a pool worker
  /// blocking in for_chunks could deadlock the pool); the STA sweeps
  /// never nest.
  void for_chunks(std::size_t n_items, std::size_t workers,
                  const std::function<void(std::size_t, std::size_t)>& fn)
      POPS_EXCLUDES(mu_);

  /// Upper bound on pool threads (the cap passed at construction).
  std::size_t max_threads() const noexcept { return max_threads_; }

 private:
  /// One for_chunks() invocation in flight. Lives on the submitter's
  /// stack; workers only reach it through batches_ under mu_, and the
  /// submitter removes it before returning (it waits for active == 0
  /// first, so no worker can hold a dangling pointer).
  struct Batch {
    const std::function<void(std::size_t, std::size_t)>* fn;
    std::size_t n_items;
    std::size_t n_chunks;
    std::size_t next = 0;    ///< first unclaimed chunk
    std::size_t active = 0;  ///< chunks claimed but not yet finished
  };

  void worker_loop();
  void ensure_threads(std::size_t wanted) POPS_REQUIRES(mu_);

  const std::size_t max_threads_;
  mutable Mutex mu_;
  CondVar work_cv_;  ///< a batch arrived / stop requested
  CondVar done_cv_;  ///< a chunk finished (submitters re-check their batch)
  std::vector<Batch*> batches_ POPS_GUARDED_BY(mu_);
  std::vector<std::thread> threads_ POPS_GUARDED_BY(mu_);
  bool stop_ POPS_GUARDED_BY(mu_) = false;
};

}  // namespace pops::util
