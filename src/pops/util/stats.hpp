#pragma once
// Small numeric helpers shared across modules: running statistics,
// relative-error comparison, golden-section scalar minimisation, and
// robust scalar root bracketing/bisection. These are the numeric kernels
// behind Flimit characterisation and the constraint-satisfaction search.

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <vector>

namespace pops::util {

/// Streaming mean/min/max/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// |a-b| <= tol * max(1, |a|, |b|)
bool approx_equal(double a, double b, double tol = 1e-9) noexcept;

/// Relative difference |a-b| / max(|a|,|b|,eps).
double rel_diff(double a, double b) noexcept;

/// Minimise a unimodal function on [lo, hi] by golden-section search.
/// Returns the abscissa of the minimum with absolute tolerance `tol`.
double golden_section_min(const std::function<double(double)>& f, double lo,
                          double hi, double tol = 1e-6);

/// Find x in [lo, hi] with f(x) = 0 by bisection. Requires a sign change
/// over the bracket; throws std::invalid_argument otherwise.
double bisect_root(const std::function<double(double)>& f, double lo, double hi,
                   double tol = 1e-9, int max_iter = 200);

/// Arithmetic mean of a vector; throws on empty input.
double mean_of(const std::vector<double>& xs);

}  // namespace pops::util
