#include "pops/util/parallel.hpp"

#include <algorithm>
#include <utility>

namespace pops::util {

namespace {

/// Chunk c of n items split into k chunks: [c*n/k, (c+1)*n/k). Pure in
/// (n, k, c) — the determinism contract of for_chunks rests on this.
std::pair<std::size_t, std::size_t> chunk_range(std::size_t n, std::size_t k,
                                                std::size_t c) {
  return {c * n / k, (c + 1) * n / k};
}

}  // namespace

ThreadPool& ThreadPool::global() {
  // At least 4 so single-core hosts still run real multi-threaded sweeps
  // (the 1/2/4-worker determinism and TSan suites need actual threads);
  // capped so a many-core host doesn't idle dozens of workers for
  // level-sized work items.
  static ThreadPool pool(std::clamp<std::size_t>(
      std::thread::hardware_concurrency(), 4, 16));
  return pool;
}

ThreadPool::ThreadPool(std::size_t max_threads)
    : max_threads_(std::max<std::size_t>(max_threads, 1)) {}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> threads;
  {
    MutexLock lock(mu_);
    stop_ = true;
    threads.swap(threads_);
  }
  work_cv_.notify_all();
  for (std::thread& t : threads) t.join();
}

void ThreadPool::ensure_threads(std::size_t wanted) {
  const std::size_t target = std::min(wanted, max_threads_);
  while (threads_.size() < target)
    threads_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::for_chunks(
    std::size_t n_items, std::size_t workers,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n_items == 0) return;
  const std::size_t k = std::min(workers, n_items);
  if (k <= 1) {
    fn(0, n_items);
    return;
  }

  Batch batch{&fn, n_items, k};
  {
    MutexLock lock(mu_);
    ensure_threads(k - 1);
    batches_.push_back(&batch);
  }
  work_cv_.notify_all();

  // The submitter claims chunks alongside the workers, then waits for
  // the stragglers. Claim bookkeeping is under mu_; the chunk body runs
  // unlocked.
  for (;;) {
    std::size_t c = 0;
    bool claimed = false;
    {
      MutexLock lock(mu_);
      if (batch.next < batch.n_chunks) {
        c = batch.next++;
        ++batch.active;
        claimed = true;
      }
    }
    if (!claimed) break;
    const auto [begin, end] = chunk_range(batch.n_items, batch.n_chunks, c);
    (*batch.fn)(begin, end);
    {
      MutexLock lock(mu_);
      --batch.active;
    }
  }

  {
    MutexLock lock(mu_);
    while (batch.active != 0) done_cv_.wait(mu_);
    batches_.erase(std::find(batches_.begin(), batches_.end(), &batch));
  }
}

void ThreadPool::worker_loop() {
  mu_.lock();
  while (!stop_) {
    Batch* b = nullptr;
    for (Batch* cand : batches_) {
      if (cand->next < cand->n_chunks) {
        b = cand;
        break;
      }
    }
    if (b == nullptr) {
      work_cv_.wait(mu_);
      continue;
    }
    const std::size_t c = b->next++;
    ++b->active;
    const auto [begin, end] = chunk_range(b->n_items, b->n_chunks, c);
    const auto* fn = b->fn;
    mu_.unlock();

    (*fn)(begin, end);

    mu_.lock();
    // The batch outlives this access: its submitter cannot return (and
    // pop the stack frame) until active drops to 0, which happens here,
    // under the same lock the submitter re-checks under.
    if (--b->active == 0 && b->next >= b->n_chunks) done_cv_.notify_all();
  }
  mu_.unlock();
}

}  // namespace pops::util
