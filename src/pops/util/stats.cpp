#include "pops/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pops::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

bool approx_equal(double a, double b, double tol) noexcept {
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

double rel_diff(double a, double b) noexcept {
  const double denom = std::max({std::abs(a), std::abs(b), 1e-300});
  return std::abs(a - b) / denom;
}

double golden_section_min(const std::function<double(double)>& f, double lo,
                          double hi, double tol) {
  if (!(lo < hi)) throw std::invalid_argument("golden_section_min: bad bracket");
  constexpr double invphi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - invphi * (b - a);
  double d = a + invphi * (b - a);
  double fc = f(c), fd = f(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - invphi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + invphi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

double bisect_root(const std::function<double(double)>& f, double lo, double hi,
                   double tol, int max_iter) {
  double flo = f(lo), fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0))
    throw std::invalid_argument("bisect_root: no sign change over bracket");
  for (int i = 0; i < max_iter && hi - lo > tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean_of: empty");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace pops::util
