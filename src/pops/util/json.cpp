#include "pops/util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pops::util {

Json& Json::push_back(Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array)
    throw std::logic_error("Json::push_back on a non-array value");
  arr_.push_back(std::move(v));
  return *this;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object)
    throw std::logic_error("Json::operator[] on a non-object value");
  for (auto& [k, v] : obj_)
    if (k == key) return v;
  obj_.emplace_back(key, Json{});
  return obj_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(std::size_t i) const {
  if (kind_ != Kind::Array)
    throw std::invalid_argument("Json::at: not an array");
  return arr_.at(i);
}

std::size_t Json::size() const noexcept {
  switch (kind_) {
    case Kind::Array:
      return arr_.size();
    case Kind::Object:
      return obj_.size();
    default:
      return 0;
  }
}

std::string Json::number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  // std::to_chars is locale-independent (snprintf %g is not: a de_DE
  // LC_NUMERIC would emit "0,8" — invalid JSON) and gives the shortest
  // representation that round-trips to the same bits.
  char buf[40];
  // Integers within the exactly-representable range print without a
  // fraction — "24", not "2.4e1" — matching what every JSON consumer
  // emits for counts.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    const auto r =
        std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed, 0);
    return std::string(buf, r.ptr);
  }
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, r.ptr);
}

void Json::write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };

  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Number:
      out += number_to_string(num_);
      break;
    case Kind::String:
      write_escaped(out, str_);
      break;
    case Kind::Array:
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr_[i].write(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    case Kind::Object:
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        write_escaped(out, obj_[i].first);
        out += pretty ? ": " : ":";
        obj_[i].second.write(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// ----- typed access -----------------------------------------------------------

namespace {

[[noreturn]] void wrong_kind(const char* want, Json::Kind got) {
  const char* name = "?";
  switch (got) {
    case Json::Kind::Null: name = "null"; break;
    case Json::Kind::Bool: name = "bool"; break;
    case Json::Kind::Number: name = "number"; break;
    case Json::Kind::String: name = "string"; break;
    case Json::Kind::Array: name = "array"; break;
    case Json::Kind::Object: name = "object"; break;
  }
  throw std::invalid_argument(std::string("Json: expected ") + want +
                              ", got " + name);
}

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) wrong_kind("bool", kind_);
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::Number) wrong_kind("number", kind_);
  return num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) wrong_kind("string", kind_);
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::Array) wrong_kind("array", kind_);
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::Object) wrong_kind("object", kind_);
  return obj_;
}

// ----- parsing ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json document() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    // line:column of pos_, 1-based.
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::invalid_argument("Json::parse: " + std::to_string(line) + ":" +
                                std::to_string(col) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    // Containers recurse once per nesting level; a cap turns adversarial
    // input (spec files are untrusted) into a diagnostic instead of stack
    // exhaustion. 200 levels is far beyond any real spec/report.
    struct DepthGuard {
      Parser& p;
      explicit DepthGuard(Parser& parser) : p(parser) {
        if (++p.depth_ > kMaxDepth) p.fail("nesting deeper than 200 levels");
      }
      ~DepthGuard() { --p.depth_; }
    } guard(*this);
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return number();
    }
  }

  Json object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = string();
      skip_ws();
      expect(':');
      if (out.find(key)) fail("duplicate object key \"" + key + "\"");
      out[key] = value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          // Combine a high surrogate with the following \uXXXX low half.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    // Integer part: "0" or nonzero-leading digit run (RFC 8259 grammar).
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (digits() == 0) {
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected digits after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail("expected digits in exponent");
    }
    double v = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto r = std::from_chars(first, last, v);
    if (r.ec != std::errc{} || r.ptr != last) fail("invalid number");
    return Json(v);
  }

  static constexpr int kMaxDepth = 200;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).document(); }

}  // namespace pops::util
