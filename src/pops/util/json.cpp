#include "pops/util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pops::util {

Json& Json::push_back(Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array)
    throw std::logic_error("Json::push_back on a non-array value");
  arr_.push_back(std::move(v));
  return *this;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object)
    throw std::logic_error("Json::operator[] on a non-object value");
  for (auto& [k, v] : obj_)
    if (k == key) return v;
  obj_.emplace_back(key, Json{});
  return obj_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

std::size_t Json::size() const noexcept {
  switch (kind_) {
    case Kind::Array:
      return arr_.size();
    case Kind::Object:
      return obj_.size();
    default:
      return 0;
  }
}

std::string Json::number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  // std::to_chars is locale-independent (snprintf %g is not: a de_DE
  // LC_NUMERIC would emit "0,8" — invalid JSON) and gives the shortest
  // representation that round-trips to the same bits.
  char buf[40];
  // Integers within the exactly-representable range print without a
  // fraction — "24", not "2.4e1" — matching what every JSON consumer
  // emits for counts.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    const auto r =
        std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::fixed, 0);
    return std::string(buf, r.ptr);
  }
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, r.ptr);
}

void Json::write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };

  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Number:
      out += number_to_string(num_);
      break;
    case Kind::String:
      write_escaped(out, str_);
      break;
    case Kind::Array:
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr_[i].write(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    case Kind::Object:
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        write_escaped(out, obj_[i].first);
        out += pretty ? ": " : ":";
        obj_[i].second.write(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace pops::util
