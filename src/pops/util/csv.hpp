#pragma once
// Minimal CSV writer so that bench binaries can optionally dump their series
// (figure data) to files for external plotting, in addition to the ASCII
// tables printed on stdout.

#include <fstream>
#include <string>
#include <vector>

namespace pops::util {

/// Streams rows of comma-separated values to a file.
/// Cells containing commas or quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Write one row. Numeric convenience overload included.
  void row(const std::vector<std::string>& cells);
  void row(const std::vector<double>& cells, int digits = 6);

 private:
  std::ofstream out_;
  static std::string escape(const std::string& cell);
};

}  // namespace pops::util
