#include "pops/util/csv.hpp"

#include <stdexcept>

#include "pops/util/fmt.hpp"

namespace pops::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& cells, int digits) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.emplace_back(general(v, digits));
  row(text);
}

}  // namespace pops::util
