#include "pops/util/fmt.hpp"

#include <charconv>
#include <system_error>

namespace pops::util {

namespace {

std::string to_chars_str(double v, std::chars_format fmt, int precision) {
  // 64 covers fixed notation of any double with sane precisions; the
  // ec check catches the pathological ones (huge precision + huge
  // magnitude) instead of returning truncated digits.
  char buf[64];
  const std::to_chars_result r =
      std::to_chars(buf, buf + sizeof buf, v, fmt, precision);
  if (r.ec != std::errc{}) {
    char big[1088];  // 1024-char max fixed double + precision + slack
    const std::to_chars_result r2 =
        std::to_chars(big, big + sizeof big, v, fmt, precision);
    return std::string(big, r2.ptr);
  }
  return std::string(buf, r.ptr);
}

}  // namespace

std::string fixed(double v, int precision) {
  return to_chars_str(v, std::chars_format::fixed, precision);
}

std::string fixed(double v, int precision, int width) {
  std::string s = fixed(v, precision);
  if (s.size() < static_cast<std::size_t>(width))
    s.insert(0, static_cast<std::size_t>(width) - s.size(), ' ');
  return s;
}

std::string general(double v, int precision) {
  return to_chars_str(v, std::chars_format::general, precision);
}

}  // namespace pops::util
