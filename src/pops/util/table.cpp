#include "pops/util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "pops/util/fmt.hpp"

namespace pops::util {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header)), aligns_(header_.size(), Align::Left) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table: row arity " + std::to_string(row.size()) +
                                " != header arity " + std::to_string(header_.size()));
  rows_.push_back(std::move(row));
  ++n_data_rows_;
}

void Table::add_rule() { rows_.push_back({std::string{}}); }

void Table::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) throw std::out_of_range("Table: bad column");
  aligns_[column] = align;
}

namespace {
bool is_rule(const std::vector<std::string>& row) {
  return row.size() == 1 && row[0].empty();
}
}  // namespace

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (is_rule(row)) continue;
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      if (aligns_[c] == Align::Right)
        s += " " + std::string(pad, ' ') + row[c] + " |";
      else
        s += " " + row[c] + std::string(pad, ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::string out = hline() + emit(header_) + hline();
  for (const auto& row : rows_) out += is_rule(row) ? hline() : emit(row);
  out += hline();
  return out;
}

std::string fmt(double value, int digits) {
  return fixed(value, digits);
}

std::string fmt_percent(double fraction, int digits) {
  return fixed(fraction * 100.0, digits) + "%";
}

}  // namespace pops::util
