#include "pops/util/rng.hpp"

namespace pops::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 significant bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>((*this)() % span);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

}  // namespace pops::util
