#pragma once
// ASCII table rendering used by the benchmark harness to print paper-style
// tables (Table 1..4) and figure series (Fig. 1..8) to stdout.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pops::util {

/// Column alignment inside a rendered table cell.
enum class Align { Left, Right };

/// A simple monospace table builder.
///
/// Usage:
///   Table t({"Circuit", "POPS (ms)", "AMPS (ms)"});
///   t.add_row({"c432", "29", "9950"});
///   std::cout << t.str();
///
/// The widths adapt to the widest cell per column; numeric columns are
/// right-aligned when requested via `set_align`.
class Table {
 public:
  /// Construct a table with the given header labels.
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must have exactly as many cells as the header.
  /// Throws std::invalid_argument on arity mismatch.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator rule between the rows added so far and
  /// the ones added later (used for grouped tables like Table 3/4).
  void add_rule();

  /// Set the alignment for one column (default: Left).
  void set_align(std::size_t column, Align align);

  /// Number of data rows added so far (separators excluded).
  std::size_t row_count() const noexcept { return n_data_rows_; }

  /// Render to a string, ready for stdout.
  std::string str() const;

 private:
  std::vector<std::string> header_;
  // A row with exactly one empty sentinel cell marks a separator.
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
  std::size_t n_data_rows_ = 0;
};

/// Format a double with `digits` digits after the decimal point.
std::string fmt(double value, int digits = 2);

/// Format a value as a percentage string, e.g. 0.13 -> "13%".
std::string fmt_percent(double fraction, int digits = 0);

}  // namespace pops::util
