#pragma once
// Minimal JSON value tree + writer.
//
// The service layer (pops/service) and the bench binaries need *stable*
// machine-readable output: the same inputs must serialize to the same
// bytes so sweep reports can be diffed across runs and the perf
// trajectory (BENCH_*.json) tracked across PRs. Hence a deliberately
// small value type with deterministic formatting:
//
//   * object keys keep insertion order (no hash-map iteration order);
//   * doubles print via shortest round-trip formatting (%.17g tightened
//     to the shortest representation that parses back bit-identically);
//   * strings are escaped per RFC 8259 (control chars, quotes, \).
//
// Reading is provided by Json::parse — a strict RFC 8259 recursive-descent
// parser used by the sweep front-ends to accept SweepSpec files
// (tools/pops_sweep --spec). Diagnostics carry line:column positions.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pops::util {

/// One JSON value: null, bool, number, string, array, or object.
/// Build with the static makers / operator[] and serialize with dump().
class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() : kind_(Kind::Null) {}

  // Implicit conversions make object/array building terse.
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double v) : kind_(Kind::Number), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(unsigned v) : Json(static_cast<double>(v)) {}
  Json(long v) : Json(static_cast<double>(v)) {}
  Json(unsigned long v) : Json(static_cast<double>(v)) {}
  Json(long long v) : Json(static_cast<double>(v)) {}
  Json(unsigned long long v) : Json(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  bool is_number() const noexcept { return kind_ == Kind::Number; }
  bool is_string() const noexcept { return kind_ == Kind::String; }
  bool is_array() const noexcept { return kind_ == Kind::Array; }
  bool is_object() const noexcept { return kind_ == Kind::Object; }

  // ----- typed access (parsing side) ------------------------------------------
  // Each accessor throws std::invalid_argument when the value is of a
  // different kind, so consumers surface schema mismatches as diagnostics
  // instead of reading garbage.

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  /// Elements of an array (empty vector reference for an empty array).
  const std::vector<Json>& items() const;
  /// Members of an object, in insertion/parse order.
  const std::vector<std::pair<std::string, Json>>& members() const;

  // ----- array ----------------------------------------------------------------

  /// Append to an array (a null value becomes an array first).
  Json& push_back(Json v);

  // ----- object ---------------------------------------------------------------

  /// Member access for objects; inserts a null member on first use (a null
  /// value becomes an object first). Insertion order is serialization order.
  Json& operator[](const std::string& key);

  /// Set (or overwrite) a member; returns *this for chaining.
  Json& set(const std::string& key, Json v) {
    (*this)[key] = std::move(v);
    return *this;
  }

  /// Lookup without insertion; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;
  /// Mutable lookup without insertion (edit-in-place of parsed documents).
  Json* find(const std::string& key) {
    return const_cast<Json*>(static_cast<const Json*>(this)->find(key));
  }

  /// The i-th array element; throws std::invalid_argument for non-arrays,
  /// std::out_of_range past the end.
  const Json& at(std::size_t i) const;
  Json& at(std::size_t i) {
    return const_cast<Json&>(static_cast<const Json*>(this)->at(i));
  }

  std::size_t size() const noexcept;

  // ----- serialization --------------------------------------------------------

  /// Serialize. `indent` <= 0 gives the compact single-line form (used for
  /// streaming JSONL records); > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 2) const;

  /// The deterministic number formatting used by dump(): the shortest
  /// decimal string that round-trips to the same double. Non-finite
  /// values (not representable in JSON) serialize as null.
  static std::string number_to_string(double v);

  // ----- parsing --------------------------------------------------------------

  /// Parse one JSON document (strict RFC 8259: no comments, no trailing
  /// commas; trailing garbage after the document is an error). Throws
  /// std::invalid_argument with a "line:column: message" diagnostic.
  static Json parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;
  static void write_escaped(std::string& out, const std::string& s);

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace pops::util
