#pragma once
// Clang Thread Safety Analysis support for the concurrent sweep stack.
//
// Every locking invariant in this codebase used to live in comments
// ("guarded by mu_", "requires exec_mu_"). These macros turn those
// comments into declarations the compiler checks: under Clang with
// -Wthread-safety (the CI clang job builds with it promoted to an
// error), reading a POPS_GUARDED_BY(mu_) member without holding mu_,
// or calling a POPS_REQUIRES(mu_) function outside the lock, fails the
// build. Under GCC (which has no such analysis) every macro expands to
// nothing, so the annotated tree builds identically.
//
// libstdc++'s std::mutex carries no capability attribute, so it cannot
// appear in these annotations directly. util::Mutex wraps it as an
// annotated capability (same layout, same cost — the wrapper is just
// attribute carrier plus forwarding), util::MutexLock is the annotated
// scoped guard, and util::CondVar is a condition variable that waits on
// a util::Mutex (std::condition_variable_any over the BasicLockable
// surface). Use them wherever a mutex guards data the analysis should
// check; the annotation vocabulary:
//
//   util::Mutex mu_;
//   int counter_ POPS_GUARDED_BY(mu_);        // access requires mu_
//   void bump_locked() POPS_REQUIRES(mu_);    // caller must hold mu_
//   void bump() POPS_EXCLUDES(mu_);           // caller must NOT hold mu_
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// (the macro set below is the documented mutex.h vocabulary with a
// POPS_ prefix).

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define POPS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef POPS_THREAD_ANNOTATION
#define POPS_THREAD_ANNOTATION(x)  // no-op: GCC / MSVC / old Clang
#endif

/// Class attribute: instances of this type are lockable capabilities.
#define POPS_CAPABILITY(x) POPS_THREAD_ANNOTATION(capability(x))

/// Class attribute: RAII type that acquires a capability in its
/// constructor and releases it in its destructor.
#define POPS_SCOPED_CAPABILITY POPS_THREAD_ANNOTATION(scoped_lockable)

/// Data member: access requires holding the named capability.
#define POPS_GUARDED_BY(x) POPS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: dereferencing requires holding the named capability
/// (the pointer itself may be read freely).
#define POPS_PT_GUARDED_BY(x) POPS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function: the caller must hold the capability (exclusively).
#define POPS_REQUIRES(...) \
  POPS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function: the caller must hold the capability at least shared.
#define POPS_REQUIRES_SHARED(...) \
  POPS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function: acquires the capability (caller must not already hold it).
#define POPS_ACQUIRE(...) \
  POPS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function: releases the capability (caller must hold it).
#define POPS_RELEASE(...) \
  POPS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function: acquires the capability when returning the given value.
#define POPS_TRY_ACQUIRE(...) \
  POPS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function: the caller must NOT hold the capability (the function
/// acquires it itself; holding it would deadlock or double-lock).
#define POPS_EXCLUDES(...) POPS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function: returns a reference to the named capability.
#define POPS_RETURN_CAPABILITY(x) POPS_THREAD_ANNOTATION(lock_returned(x))

/// Lock-ordering declaration between capabilities (deadlock detection).
#define POPS_ACQUIRED_BEFORE(...) \
  POPS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define POPS_ACQUIRED_AFTER(...) \
  POPS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Escape hatch: disable the analysis for one function. Use only with a
/// comment explaining why the invariant holds anyway.
#define POPS_NO_THREAD_SAFETY_ANALYSIS \
  POPS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace pops::util {

/// std::mutex as an annotated capability. Drop-in for members that guard
/// POPS_GUARDED_BY data; lock()/unlock() carry the acquire/release
/// attributes so both manual locking and MutexLock are analyzed.
class POPS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() POPS_ACQUIRE() { mu_.lock(); }
  void unlock() POPS_RELEASE() { mu_.unlock(); }
  bool try_lock() POPS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::lock_guard over a util::Mutex, annotated so the analysis knows
/// the capability is held for the guard's scope.
class POPS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) POPS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() POPS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with util::Mutex. The wait overloads take
/// the Mutex the caller already holds (enforced by POPS_REQUIRES), park
/// on it, and return with it re-held — so guarded predicate reads in the
/// caller stay inside the analyzed critical section:
///
///   util::MutexLock lock(mu_);
///   while (!ready_) cv_.wait(mu_);   // ready_ POPS_GUARDED_BY(mu_)
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) POPS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // still locked: ownership returns to the caller
  }

  /// Returns std::cv_status::timeout when `dur` elapsed first.
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      POPS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, dur);
    lock.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace pops::util
