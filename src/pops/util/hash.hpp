#pragma once
// FNV-1a (64-bit) content hashing.
//
// One hasher shared by every layer that derives identity from content:
// service::ResultCache keys (netlist + config + context tuples) and
// timing::TableModel's content/selector hashes. Cache correctness depends
// on these staying byte-compatible — content_hash feeds hash_config — so
// the primitive lives here once instead of per-layer copies.
//
// Doubles are hashed by bit pattern ("equal content" means exact); the
// multi-byte helpers feed native byte order, so hashes are stable within
// a process/platform (they are never persisted across machines).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace pops::util {

/// FNV-1a, the offset-basis/prime pair of the 64-bit variant.
struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ull;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void i(long long v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u64(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void f64s(const std::vector<double>& vs) {
    u64(vs.size());
    for (const double v : vs) f64(v);
  }
};

}  // namespace pops::util
