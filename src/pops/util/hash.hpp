#pragma once
// FNV-1a (64-bit) content hashing.
//
// One hasher shared by every layer that derives identity from content:
// service::ResultCache keys (netlist + config + context tuples) and
// timing::TableModel's content/selector hashes. Cache correctness depends
// on these staying byte-compatible — content_hash feeds hash_config — so
// the primitive lives here once instead of per-layer copies.
//
// Doubles are hashed by bit pattern ("equal content" means exact); the
// multi-byte helpers feed native byte order, so hashes are stable within
// a process/platform (they are never persisted across machines).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pops::util {

/// Fixed-width lowercase hex of a 64-bit word ("00000000000000ff").
/// JSON numbers are doubles — they cannot carry a full uint64_t — so
/// persisted hashes/keys (service/cache_io.hpp) travel as hex strings.
inline std::string hex_u64(std::uint64_t v) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) out[static_cast<std::size_t>(i)] =
      digits[v & 0xF];
  return out;
}

/// Inverse of hex_u64; accepts 1..16 lowercase/uppercase hex digits.
/// Returns false (leaving `out` untouched) on anything else.
inline bool parse_hex_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    int digit = 0;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  out = v;
  return true;
}

/// FNV-1a, the offset-basis/prime pair of the 64-bit variant.
struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ull;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void i(long long v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u64(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void f64s(const std::vector<double>& vs) {
    u64(vs.size());
    for (const double v : vs) f64(v);
  }
};

}  // namespace pops::util
