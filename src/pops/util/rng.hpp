#pragma once
// Deterministic pseudo-random number generation.
//
// Every stochastic component of the reproduction (synthetic benchmark
// generation, random-vector logic simulation, the pseudo-random sizing mode
// of the AMPS baseline) draws from this engine so that runs are exactly
// repeatable across machines: results in EXPERIMENTS.md are reproducible
// bit-for-bit.

#include <cstdint>
#include <limits>

namespace pops::util {

/// xoshiro256** — small, fast, high-quality PRNG with a splitmix64 seeder.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed deterministically; the default seed is arbitrary but fixed.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace pops::util
