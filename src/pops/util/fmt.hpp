#pragma once
// Locale-independent numeric formatting.
//
// The printf family ("%f", "%g") and std::to_string(double) spell the
// decimal separator per the process locale: a host running under de_DE
// prints "3,14", silently corrupting anything machine-parsed (liberty
// tables, CSV) and making byte-level goldens locale-dependent. Every
// float that leaves the library as text goes through these helpers
// instead — they are built on std::to_chars, which is specified to
// format as printf would under the "C" locale, always. util::Json has
// its own shortest-round-trip variant (Json::number_to_string); this
// header covers the fixed/general-precision styles reports and writers
// need. The determinism lint (tools/pops_lint) rejects printf float
// conversions anywhere else in src/.

#include <string>

namespace pops::util {

/// `v` in fixed notation with exactly `precision` digits after the
/// decimal point — what "%.<precision>f" prints under the "C" locale.
std::string fixed(double v, int precision);

/// fixed(), right-aligned with spaces to at least `width` characters
/// ("%<width>.<precision>f").
std::string fixed(double v, int precision, int width);

/// `v` in general notation with `precision` significant digits,
/// trailing zeros trimmed — what "%.<precision>g" prints under the "C"
/// locale.
std::string general(double v, int precision);

}  // namespace pops::util
