#pragma once
// Alpha-power-law MOSFET model (Sakurai-Newton, JSSC 1990) — the device
// model behind the transient simulator that stands in for the paper's
// HSPICE validation runs.
//
//   saturation:  Id = (W * Kd) * (Vgs - Vt)^alpha            (Vds >= Vd0)
//   linear:      Id = Id_sat * (2 - Vds/Vd0) * (Vds/Vd0)     (Vds <  Vd0)
//   cutoff:      Id = 0                                      (Vgs <= Vt)
//
// with Vd0 = Vd0_ref * ((Vgs-Vt)/(VDD-Vt))^(alpha/2). Kd is calibrated so
// that Id(VDD, VDD) equals the technology's quoted Idsat per µm. PMOS uses
// mirrored voltages. Currents in mA, voltages in V, widths in µm — with
// capacitance in fF and time in ps the units close (fF*V/mA = ps).

#include "pops/process/technology.hpp"

namespace pops::spice {

/// Calibrated parameters of one device polarity.
struct AlphaPowerParams {
  bool is_pmos = false;
  double vt = 0.5;          ///< threshold magnitude (V)
  double alpha = 1.3;       ///< velocity-saturation index
  double kd_ma_um = 0.0;    ///< drive coefficient: Idsat = kd*W*(Vgs-Vt)^alpha
  double vd0_ref = 0.9;     ///< saturation drain voltage at Vgs = VDD (V)
  double vdd = 2.5;         ///< calibration supply (V)
};

/// Calibrate the NMOS / PMOS parameter set for a technology.
AlphaPowerParams nmos_params(const process::Technology& tech);
AlphaPowerParams pmos_params(const process::Technology& tech);

/// Drain current magnitude (mA) for a device of width `w_um`.
/// For NMOS: vgs/vds are taken w.r.t. the source as usual.
/// For PMOS: pass the *magnitudes* |Vgs|, |Vds| (the caller mirrors).
double drain_current_ma(const AlphaPowerParams& p, double w_um, double vgs,
                        double vds);

}  // namespace pops::spice
