#include "pops/spice/measure.hpp"

#include <stdexcept>
#include <string>

namespace pops::spice {

using liberty::Cell;

ChainMeasurement measure_chain(const liberty::Library& lib,
                               const ChainSpec& spec,
                               const TransientOptions& opt) {
  const std::size_t n = spec.kinds.size();
  if (n == 0 || spec.wn_um.size() != n)
    throw std::invalid_argument("measure_chain: bad spec arity");
  if (!spec.extra_load_ff.empty() && spec.extra_load_ff.size() != n)
    throw std::invalid_argument("measure_chain: extra_load arity");

  const process::Technology& tech = lib.tech();
  const double vdd = tech.vdd;

  Circuit ckt(tech);

  // Input ramp, starting after a settle pad.
  const double pad_ps = 20.0;
  Pwl stim;
  if (spec.input_rising)
    stim.points = {{0.0, 0.0}, {pad_ps, 0.0}, {pad_ps + spec.input_ramp_ps, vdd}};
  else
    stim.points = {{0.0, vdd}, {pad_ps, vdd}, {pad_ps + spec.input_ramp_ps, 0.0}};
  const NodeIndex in = ckt.add_driven_node("in", stim);

  // Expand the chain and remember output nodes + their settled polarity.
  std::vector<NodeIndex> outs;
  std::vector<bool> out_rising;  // does this node rise during the event?
  bool level = spec.input_rising;  // final logic level of the current net
  NodeIndex prev = in;
  for (std::size_t i = 0; i < n; ++i) {
    const Cell& cell = lib.cell(spec.kinds[i]);
    const NodeIndex out =
        ckt.expand_gate(cell, spec.wn_um[i], prev, "g" + std::to_string(i));
    if (!spec.extra_load_ff.empty() && spec.extra_load_ff[i] > 0.0)
      ckt.add_cap(out, spec.extra_load_ff[i]);
    if (cell.inverting) level = !level;
    outs.push_back(out);
    out_rising.push_back(level);  // settles high => the event is a rise
    prev = out;
  }
  if (spec.terminal_load_ff > 0.0) ckt.add_cap(outs.back(), spec.terminal_load_ff);

  // Initial conditions: each net starts at its pre-event logic level.
  std::vector<bool> initial_high(ckt.node_count(), false);
  {
    bool lvl = !spec.input_rising;  // input's *initial* level
    for (std::size_t i = 0; i < n; ++i) {
      const Cell& cell = lib.cell(spec.kinds[i]);
      if (cell.inverting) lvl = !lvl;
      initial_high[static_cast<std::size_t>(outs[i])] = lvl;
      // Buf's internal node settles at the inverse of its output.
      if (spec.kinds[i] == liberty::CellKind::Buf) {
        const NodeIndex mid = ckt.find_node("g" + std::to_string(i) + "_mid");
        initial_high[static_cast<std::size_t>(mid)] = !lvl;
      }
    }
    // NAND/NOR internal stack nodes start discharged/charged with their
    // stacks; leaving them at 0 V (NAND) is fine, NOR stacks start near
    // VDD.
    for (std::size_t i = 0; i < n; ++i) {
      const liberty::CellKind k = spec.kinds[i];
      const bool is_nor = k == liberty::CellKind::Nor2 ||
                          k == liberty::CellKind::Nor3 ||
                          k == liberty::CellKind::Nor4;
      if (!is_nor) continue;
      for (int d = 0;; ++d) {
        const NodeIndex sn = ckt.try_find_node("g" + std::to_string(i) + "_s" +
                                               std::to_string(d));
        if (sn < 0) break;
        initial_high[static_cast<std::size_t>(sn)] = true;
      }
    }
  }

  // Simulate; widen the window until the last output settles.
  double t_end = pad_ps + spec.input_ramp_ps + 400.0 * static_cast<double>(n);
  for (int attempt = 0; attempt < 4; ++attempt) {
    const TransientResult result = simulate(ckt, t_end, initial_high, opt);

    const double t_in_mid =
        result.crossing_ps(in, 0.5 * vdd, spec.input_rising, 0.0);

    ChainMeasurement m;
    m.stage_delay_ps.resize(n);
    m.stage_transition_ps.resize(n);
    bool complete = t_in_mid >= 0.0;
    double t_prev = t_in_mid;
    for (std::size_t i = 0; i < n && complete; ++i) {
      const double t_out =
          result.crossing_ps(outs[i], 0.5 * vdd, out_rising[i], 0.0);
      const double tr = result.transition_ps(outs[i], vdd, out_rising[i], 0.0);
      if (t_out < 0.0 || tr < 0.0) {
        complete = false;
        break;
      }
      m.stage_delay_ps[i] = t_out - t_prev;
      m.stage_transition_ps[i] = tr;
      t_prev = t_out;
    }
    if (complete) {
      m.path_delay_ps = t_prev - t_in_mid;
      return m;
    }
    t_end *= 2.0;
  }
  throw std::runtime_error("measure_chain: output never settled");
}

}  // namespace pops::spice
