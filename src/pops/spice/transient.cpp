#include "pops/spice/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pops::spice {

namespace {

/// Dense LU with partial pivoting (the systems here are tiny: one row per
/// free node of a gate chain).
class Lu {
 public:
  explicit Lu(std::vector<std::vector<double>> a) : a_(std::move(a)) {
    const std::size_t n = a_.size();
    piv_.resize(n);
    for (std::size_t i = 0; i < n; ++i) piv_[i] = i;
    for (std::size_t col = 0; col < n; ++col) {
      std::size_t best = col;
      for (std::size_t r = col + 1; r < n; ++r)
        if (std::abs(a_[r][col]) > std::abs(a_[best][col])) best = r;
      if (std::abs(a_[best][col]) < 1e-12)
        throw std::runtime_error(
            "transient: singular capacitance matrix (a free node without "
            "capacitance to anywhere?)");
      std::swap(a_[col], a_[best]);
      std::swap(piv_[col], piv_[best]);
      for (std::size_t r = col + 1; r < n; ++r) {
        a_[r][col] /= a_[col][col];
        for (std::size_t c = col + 1; c < n; ++c)
          a_[r][c] -= a_[r][col] * a_[col][c];
      }
    }
  }

  std::vector<double> solve(const std::vector<double>& b) const {
    const std::size_t n = a_.size();
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
    for (std::size_t i = 1; i < n; ++i)
      for (std::size_t j = 0; j < i; ++j) x[i] -= a_[i][j] * x[j];
    for (std::size_t ri = n; ri-- > 0;) {
      for (std::size_t j = ri + 1; j < n; ++j) x[ri] -= a_[ri][j] * x[j];
      x[ri] /= a_[ri][ri];
    }
    return x;
  }

 private:
  std::vector<std::vector<double>> a_;
  std::vector<std::size_t> piv_;
};

/// Signed drain current (mA) *into* `into_node` for one device, with
/// symmetric terminal handling.
double device_current_into(const Device& d, const AlphaPowerParams& nmos,
                           const AlphaPowerParams& pmos,
                           const std::vector<double>& v, NodeIndex into_node) {
  const double vg = v[static_cast<std::size_t>(d.gate)];
  const double va = v[static_cast<std::size_t>(d.drain)];
  const double vb = v[static_cast<std::size_t>(d.source)];
  double mag = 0.0;
  NodeIndex from, to;  // conventional current flows from -> to
  if (!d.is_pmos) {
    const double vhi = std::max(va, vb), vlo = std::min(va, vb);
    mag = drain_current_ma(nmos, d.w_um, vg - vlo, vhi - vlo);
    from = va >= vb ? d.drain : d.source;
    to = va >= vb ? d.source : d.drain;
  } else {
    const double vhi = std::max(va, vb), vlo = std::min(va, vb);
    mag = drain_current_ma(pmos, d.w_um, vhi - vg, vhi - vlo);
    from = va >= vb ? d.drain : d.source;
    to = va >= vb ? d.source : d.drain;
  }
  if (into_node == to) return mag;
  if (into_node == from) return -mag;
  return 0.0;
}

}  // namespace

double TransientResult::crossing_ps(NodeIndex n, double v_target, bool rising,
                                    double t_after_ps) const {
  const auto& vv = voltage(n);
  for (std::size_t i = 1; i < vv.size(); ++i) {
    if (time_ps_[i] < t_after_ps) continue;
    const double v0 = vv[i - 1], v1 = vv[i];
    const bool crossed =
        rising ? (v0 < v_target && v1 >= v_target)
               : (v0 > v_target && v1 <= v_target);
    if (crossed) {
      const double w = (v_target - v0) / (v1 - v0);
      return time_ps_[i - 1] + w * (time_ps_[i] - time_ps_[i - 1]);
    }
  }
  return -1.0;
}

double TransientResult::transition_ps(NodeIndex n, double vdd, bool rising,
                                      double t_after_ps) const {
  const double lo = 0.2 * vdd, hi = 0.8 * vdd;
  const double t_first =
      crossing_ps(n, rising ? lo : hi, rising, t_after_ps);
  if (t_first < 0.0) return -1.0;
  const double t_second = crossing_ps(n, rising ? hi : lo, rising, t_first);
  if (t_second < 0.0) return -1.0;
  return (t_second - t_first) / 0.6;
}

TransientResult simulate(const Circuit& circuit, double t_end_ps,
                         const std::vector<bool>& initial_high,
                         const TransientOptions& opt) {
  if (!(t_end_ps > 0.0) || !(opt.dt_ps > 0.0))
    throw std::invalid_argument("simulate: bad time parameters");

  const std::size_t n_all = circuit.node_count();

  // Free-node indexing.
  std::vector<int> free_index(n_all, -1);
  std::vector<NodeIndex> free_nodes;
  for (std::size_t i = 0; i < n_all; ++i) {
    if (!circuit.is_driven(static_cast<NodeIndex>(i))) {
      free_index[i] = static_cast<int>(free_nodes.size());
      free_nodes.push_back(static_cast<NodeIndex>(i));
    }
  }
  const std::size_t nf = free_nodes.size();
  if (nf == 0) throw std::invalid_argument("simulate: no free nodes");

  // Capacitance matrix blocks.
  std::vector<std::vector<double>> cff(nf, std::vector<double>(nf, 0.0));
  // For the driven contribution we only need, per free node, the sum of
  // C(f,d)*dVd/dt at a given time.
  struct DrivenCoupling {
    int free_row;
    NodeIndex driven_node;
    double c_ff;
  };
  std::vector<DrivenCoupling> couplings;

  for (const Capacitor& cap : circuit.caps()) {
    const int fa = free_index[static_cast<std::size_t>(cap.a)];
    const int fb = free_index[static_cast<std::size_t>(cap.b)];
    if (fa >= 0) cff[static_cast<std::size_t>(fa)][static_cast<std::size_t>(fa)] += cap.c_ff;
    if (fb >= 0) cff[static_cast<std::size_t>(fb)][static_cast<std::size_t>(fb)] += cap.c_ff;
    if (fa >= 0 && fb >= 0) {
      cff[static_cast<std::size_t>(fa)][static_cast<std::size_t>(fb)] -= cap.c_ff;
      cff[static_cast<std::size_t>(fb)][static_cast<std::size_t>(fa)] -= cap.c_ff;
    } else if (fa >= 0 && fb < 0) {
      couplings.push_back({fa, cap.b, cap.c_ff});
    } else if (fb >= 0 && fa < 0) {
      couplings.push_back({fb, cap.a, cap.c_ff});
    }
  }
  // Numerical floor so an accidentally load-less node doesn't sing.
  for (std::size_t i = 0; i < nf; ++i)
    if (cff[i][i] < 1e-3) cff[i][i] += 1e-3;

  const Lu lu(cff);

  // State.
  std::vector<double> v(n_all, 0.0);
  for (std::size_t i = 0; i < n_all; ++i) {
    const auto node = static_cast<NodeIndex>(i);
    if (circuit.is_driven(node)) {
      v[i] = circuit.stimulus(node).at(0.0);
    } else if (i < initial_high.size() && initial_high[i]) {
      v[i] = circuit.tech().vdd;
    }
  }

  auto derivative = [&](double t, const std::vector<double>& volt) {
    std::vector<double> rhs(nf, 0.0);
    for (const Device& d : circuit.devices()) {
      for (NodeIndex term : {d.drain, d.source}) {
        const int fi = free_index[static_cast<std::size_t>(term)];
        if (fi < 0) continue;
        rhs[static_cast<std::size_t>(fi)] +=
            device_current_into(d, circuit.nmos(), circuit.pmos(), volt, term);
      }
    }
    for (const DrivenCoupling& c : couplings)
      rhs[static_cast<std::size_t>(c.free_row)] +=
          c.c_ff * circuit.stimulus(c.driven_node).slope_at(t);
    return lu.solve(rhs);
  };

  const auto n_steps = static_cast<std::size_t>(std::ceil(t_end_ps / opt.dt_ps));
  const auto stride = static_cast<std::size_t>(std::max(1.0, opt.record_every));

  std::vector<double> time;
  std::vector<std::vector<double>> waves(n_all);
  auto record = [&](double t) {
    time.push_back(t);
    for (std::size_t i = 0; i < n_all; ++i) waves[i].push_back(v[i]);
  };
  record(0.0);

  std::vector<double> v_pred(n_all);
  for (std::size_t step = 0; step < n_steps; ++step) {
    const double t = static_cast<double>(step) * opt.dt_ps;
    const double t1 = t + opt.dt_ps;

    const std::vector<double> k1 = derivative(t, v);
    v_pred = v;
    for (std::size_t f = 0; f < nf; ++f)
      v_pred[static_cast<std::size_t>(free_nodes[f])] += opt.dt_ps * k1[f];
    for (std::size_t i = 0; i < n_all; ++i) {
      const auto node = static_cast<NodeIndex>(i);
      if (circuit.is_driven(node)) v_pred[i] = circuit.stimulus(node).at(t1);
    }
    const std::vector<double> k2 = derivative(t1, v_pred);

    for (std::size_t f = 0; f < nf; ++f)
      v[static_cast<std::size_t>(free_nodes[f])] +=
          0.5 * opt.dt_ps * (k1[f] + k2[f]);
    for (std::size_t i = 0; i < n_all; ++i) {
      const auto node = static_cast<NodeIndex>(i);
      if (circuit.is_driven(node)) v[i] = circuit.stimulus(node).at(t1);
    }
    if ((step + 1) % stride == 0) record(t1);
  }

  return TransientResult(std::move(time), std::move(waves));
}

}  // namespace pops::spice
