#include "pops/spice/circuit.hpp"

#include <algorithm>
#include <stdexcept>

namespace pops::spice {

using liberty::Cell;
using liberty::CellKind;

double Pwl::at(double t_ps) const {
  if (points.empty()) throw std::logic_error("Pwl: empty");
  if (t_ps <= points.front().first) return points.front().second;
  if (t_ps >= points.back().first) return points.back().second;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (t_ps <= points[i].first) {
      const auto& [t0, v0] = points[i - 1];
      const auto& [t1, v1] = points[i];
      const double w = (t_ps - t0) / (t1 - t0);
      return v0 + w * (v1 - v0);
    }
  }
  return points.back().second;
}

double Pwl::slope_at(double t_ps) const {
  if (points.size() < 2) return 0.0;
  if (t_ps <= points.front().first || t_ps >= points.back().first) return 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (t_ps <= points[i].first) {
      const auto& [t0, v0] = points[i - 1];
      const auto& [t1, v1] = points[i];
      return (v1 - v0) / (t1 - t0);
    }
  }
  return 0.0;
}

Circuit::Circuit(const process::Technology& tech)
    : tech_(&tech), nmos_(nmos_params(tech)), pmos_(pmos_params(tech)) {
  // Node 0 = GND, node 1 = VDD, both driven at constant voltage.
  names_ = {"gnd", "vdd"};
  driven_ = {true, true};
  stimuli_.resize(2);
  stimuli_[0].points = {{0.0, 0.0}, {1.0, 0.0}};
  stimuli_[1].points = {{0.0, tech.vdd}, {1.0, tech.vdd}};
}

NodeIndex Circuit::add_node(const std::string& name, double cap_ff) {
  const NodeIndex n = static_cast<NodeIndex>(names_.size());
  names_.push_back(name);
  driven_.push_back(false);
  stimuli_.emplace_back();
  if (cap_ff > 0.0) add_cap(n, cap_ff);
  return n;
}

NodeIndex Circuit::add_driven_node(const std::string& name, Pwl stimulus) {
  if (stimulus.points.empty())
    throw std::invalid_argument("add_driven_node: empty stimulus");
  const NodeIndex n = static_cast<NodeIndex>(names_.size());
  names_.push_back(name);
  driven_.push_back(true);
  stimuli_.push_back(std::move(stimulus));
  return n;
}

void Circuit::add_cap(NodeIndex a, double c_ff, NodeIndex b) {
  if (c_ff < 0.0) throw std::invalid_argument("add_cap: negative capacitance");
  if (a == b) throw std::invalid_argument("add_cap: self-loop");
  caps_.push_back({a, b, c_ff});
}

void Circuit::add_device(bool is_pmos, double w_um, NodeIndex gate,
                         NodeIndex drain, NodeIndex source) {
  devices_.push_back({is_pmos, w_um, gate, drain, source});
}

NodeIndex Circuit::find_node(const std::string& name) const {
  const NodeIndex n = try_find_node(name);
  if (n < 0) throw std::invalid_argument("find_node: " + name);
  return n;
}

NodeIndex Circuit::try_find_node(const std::string& name) const noexcept {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) return -1;
  return static_cast<NodeIndex>(it - names_.begin());
}

const Pwl& Circuit::stimulus(NodeIndex n) const {
  if (!is_driven(n)) throw std::invalid_argument("stimulus: node not driven");
  return stimuli_.at(static_cast<std::size_t>(n));
}

void Circuit::add_gate_load(const Cell& cell, double wn_um, NodeIndex node) {
  add_cap(node, cell.cin_ff(*tech_, wn_um));
}

namespace {

int series_length(CellKind kind) {
  switch (kind) {
    case CellKind::Nand2:
    case CellKind::Nor2: return 2;
    case CellKind::Nand3:
    case CellKind::Nor3: return 3;
    case CellKind::Nand4:
    case CellKind::Nor4: return 4;
    default: return 1;
  }
}

}  // namespace

NodeIndex Circuit::expand_gate(const Cell& cell, double wn_um, NodeIndex in,
                               const std::string& prefix) {
  const double k = cell.k_ratio;
  const double wp = k * wn_um;
  const double cj = tech_->cdiff_ff_per_um;

  // The driven node carries the gate input capacitance of this cell.
  add_gate_load(cell, wn_um, in);
  // Input-output Miller coupling (Cgd overlap): half the device gate cap,
  // split per polarity, consistent with ClosedFormModel::coupling_ff.
  const double cm = 0.25 * cell.cin_ff(*tech_, wn_um);

  switch (cell.kind) {
    case CellKind::Inv: {
      const NodeIndex out = add_node(prefix + "_out", cj * (wn_um + wp));
      add_device(false, wn_um, in, out, gnd());
      add_device(true, wp, in, out, vdd());
      add_cap(in, cm, out);
      return out;
    }
    case CellKind::Buf: {
      const NodeIndex mid = add_node(prefix + "_mid", cj * (wn_um + wp));
      add_device(false, wn_um, in, mid, gnd());
      add_device(true, wp, in, mid, vdd());
      add_cap(in, cm, mid);
      // Second stage slightly larger (internal taper of a real buffer).
      const double wn2 = 1.5 * wn_um, wp2 = 1.5 * wp;
      add_cap(mid, tech_->cgate_ff_per_um * (wn2 + wp2));
      const NodeIndex out = add_node(prefix + "_out", cj * (wn2 + wp2));
      add_device(false, wn2, mid, out, gnd());
      add_device(true, wp2, mid, out, vdd());
      add_cap(mid, 0.25 * tech_->cgate_ff_per_um * (wn2 + wp2), out);
      return out;
    }
    case CellKind::Nand2:
    case CellKind::Nand3:
    case CellKind::Nand4: {
      const int n = series_length(cell.kind);
      const NodeIndex out = add_node(prefix + "_out", cj * (wn_um + static_cast<double>(n) * wp));
      // Series NMOS stack, switching input at the BOTTOM (worst case);
      // side inputs tied to VDD (non-controlling for NAND).
      NodeIndex below = gnd();
      for (int d = 0; d < n; ++d) {
        const bool switching = (d == 0);  // bottom of the stack
        const NodeIndex above =
            d == n - 1 ? out
                       : add_node(prefix + "_s" + std::to_string(d), 0.5 * cj * wn_um);
        add_device(false, wn_um, switching ? in : vdd(), above, below);
        below = above;
      }
      // Parallel PMOS; only the switching one toggles, others stay off
      // (gate at VDD keeps PMOS off -> worst-case single pull-up).
      add_device(true, wp, in, out, vdd());
      for (int d = 1; d < n; ++d) add_device(true, wp, vdd(), out, vdd());
      add_cap(in, cm, out);
      return out;
    }
    case CellKind::Nor2:
    case CellKind::Nor3:
    case CellKind::Nor4: {
      const int n = series_length(cell.kind);
      const NodeIndex out = add_node(prefix + "_out", cj * (static_cast<double>(n) * wn_um + wp));
      // Series PMOS stack, switching input at the TOP (nearest VDD, worst
      // case); side inputs tied to GND (non-controlling for NOR).
      NodeIndex above = vdd();
      for (int d = 0; d < n; ++d) {
        const bool switching = (d == 0);  // top of the stack
        const NodeIndex below =
            d == n - 1 ? out
                       : add_node(prefix + "_s" + std::to_string(d), 0.5 * cj * wp);
        add_device(true, wp, switching ? in : gnd(), below, above);
        above = below;
      }
      // Parallel NMOS; only the switching one toggles, others off.
      add_device(false, wn_um, in, out, gnd());
      for (int d = 1; d < n; ++d) add_device(false, wn_um, gnd(), out, gnd());
      add_cap(in, cm, out);
      return out;
    }
    default:
      throw std::invalid_argument(
          std::string("expand_gate: unsupported kind ") + cell.name);
  }
}

}  // namespace pops::spice
