#include "pops/spice/mosfet.hpp"

#include <cmath>
#include <stdexcept>

namespace pops::spice {

namespace {
AlphaPowerParams calibrate(bool is_pmos, double vt, double alpha,
                           double idsat_ma_um, double vdd) {
  AlphaPowerParams p;
  p.is_pmos = is_pmos;
  p.vt = vt;
  p.alpha = alpha;
  p.vdd = vdd;
  p.kd_ma_um = idsat_ma_um / std::pow(vdd - vt, alpha);
  // Generic magnitude: Vd0 at full gate drive is about 40% of (VDD-VT) for
  // short-channel devices; PMOS saturates slightly later.
  p.vd0_ref = (is_pmos ? 0.48 : 0.42) * (vdd - vt);
  return p;
}
}  // namespace

AlphaPowerParams nmos_params(const process::Technology& tech) {
  return calibrate(false, tech.vtn, tech.alpha_n, tech.idsat_n_ma_um, tech.vdd);
}

AlphaPowerParams pmos_params(const process::Technology& tech) {
  return calibrate(true, tech.vtp, tech.alpha_p, tech.idsat_p_ma_um, tech.vdd);
}

double drain_current_ma(const AlphaPowerParams& p, double w_um, double vgs,
                        double vds) {
  if (!(w_um > 0.0)) throw std::invalid_argument("drain_current_ma: w <= 0");
  if (vgs <= p.vt || vds <= 0.0) return 0.0;
  const double overdrive = vgs - p.vt;
  const double idsat = p.kd_ma_um * w_um * std::pow(overdrive, p.alpha);
  const double vd0 =
      p.vd0_ref * std::pow(overdrive / (p.vdd - p.vt), 0.5 * p.alpha);
  if (vds >= vd0) return idsat;
  const double x = vds / vd0;
  return idsat * (2.0 - x) * x;
}

}  // namespace pops::spice
