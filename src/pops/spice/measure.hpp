#pragma once
// High-level delay measurement on gate chains — the reproduction's stand-in
// for the paper's HSPICE validation runs ("The delay values are obtained
// from SPICE simulations of the corresponding path implementations").
//
// A ChainSpec describes a linear path of library gates with explicit
// drives, per-stage extra loads and a terminal load; `measure_chain`
// expands it to transistors, applies a ramp at the input and reports 50%
// propagation delays and full-swing-equivalent transition times.

#include <vector>

#include "pops/liberty/library.hpp"
#include "pops/spice/circuit.hpp"
#include "pops/spice/transient.hpp"

namespace pops::spice {

/// A linear chain of gates for transistor-level measurement.
struct ChainSpec {
  std::vector<liberty::CellKind> kinds;   ///< stage cells, input to output
  std::vector<double> wn_um;              ///< per-stage drives
  std::vector<double> extra_load_ff;      ///< fixed extra cap per stage output
  double terminal_load_ff = 0.0;          ///< extra cap on the last output
  double input_ramp_ps = 50.0;            ///< input 0-100% ramp duration
  bool input_rising = true;               ///< direction of the input step
};

/// Measured timing of one chain.
struct ChainMeasurement {
  double path_delay_ps = 0.0;              ///< input 50% -> last output 50%
  std::vector<double> stage_delay_ps;      ///< per-stage 50%-50% delays
  std::vector<double> stage_transition_ps; ///< per-stage output transitions
};

/// Build, simulate and measure. Throws std::runtime_error if an output
/// never settles (simulation window is auto-extended a few times first).
ChainMeasurement measure_chain(const liberty::Library& lib,
                               const ChainSpec& spec,
                               const TransientOptions& opt = {});

}  // namespace pops::spice
