#pragma once
// Fixed-step nonlinear transient analysis.
//
// The circuit's free nodes obey  C_ff * dVf/dt = I(V) - C_fd * dVd/dt,
// where C is the nodal capacitance matrix (constant), f/d index free and
// driven nodes, and I collects MOSFET drain currents. C_ff is LU-factored
// once; integration is Heun's method (explicit RK2) with a fixed step —
// adequate for the fF/mA/ps scales of gate chains, and verified against
// the analytic RC response in the test suite.
//
// MOSFET terminals are treated symmetrically (source = the lower-potential
// terminal for NMOS, higher for PMOS), so stacked devices behave correctly
// when internal nodes float above/below their nominal source.

#include <vector>

#include "pops/spice/circuit.hpp"

namespace pops::spice {

struct TransientOptions {
  double dt_ps = 0.05;     ///< integration step
  double record_every = 1; ///< store every n-th sample (>=1)
};

/// Recorded waveforms.
class TransientResult {
 public:
  TransientResult(std::vector<double> time, std::vector<std::vector<double>> v)
      : time_ps_(std::move(time)), v_(std::move(v)) {}

  const std::vector<double>& time_ps() const noexcept { return time_ps_; }
  /// Voltage samples of node `n` (parallel to time_ps()).
  const std::vector<double>& voltage(NodeIndex n) const {
    return v_.at(static_cast<std::size_t>(n));
  }

  /// First time after `t_after_ps` where node `n` crosses `v_target`
  /// in the given direction, linearly interpolated. Returns a negative
  /// value if no crossing is found.
  double crossing_ps(NodeIndex n, double v_target, bool rising,
                     double t_after_ps = 0.0) const;

  /// Full-swing-equivalent transition time around a crossing: the 20%-80%
  /// span of the swing divided by 0.6.
  double transition_ps(NodeIndex n, double vdd, bool rising,
                       double t_after_ps = 0.0) const;

 private:
  std::vector<double> time_ps_;
  std::vector<std::vector<double>> v_;  ///< [node][sample]
};

/// Integrate for `t_end_ps`. All free nodes start at the value implied by
/// a DC guess: nodes are initialised to 0 V or VDD according to
/// `initial_high` (per-node; empty = all low). Throws on singular C_ff.
TransientResult simulate(const Circuit& circuit, double t_end_ps,
                         const std::vector<bool>& initial_high = {},
                         const TransientOptions& opt = {});

}  // namespace pops::spice
