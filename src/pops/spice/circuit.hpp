#pragma once
// Transistor-level circuit representation for the transient simulator.
//
// A circuit is a set of nodes (voltages), two-terminal linear capacitors,
// MOSFETs, and driven nodes (GND, VDD, and piecewise-linear stimulus
// inputs). Gates of the POPS library are expanded into their pull-up /
// pull-down networks by `expand_gate` with the same physical convention
// the abstract model uses: a gate of drive `wn` instantiates series NMOS
// devices of width wn (NAND stacks), parallel PMOS of width k*wn, etc., so
// the logical weights DW of eq. (3) emerge from the device physics instead
// of being assumed.

#include <string>
#include <vector>

#include "pops/liberty/library.hpp"
#include "pops/spice/mosfet.hpp"

namespace pops::spice {

using NodeIndex = int;

/// A piecewise-linear voltage stimulus (time ps -> volts).
struct Pwl {
  std::vector<std::pair<double, double>> points;  ///< sorted by time
  double at(double t_ps) const;
  double slope_at(double t_ps) const;  ///< dV/dt (V/ps)
};

/// One MOSFET instance.
struct Device {
  bool is_pmos = false;
  double w_um = 1.0;
  NodeIndex gate = -1;
  NodeIndex drain = -1;
  NodeIndex source = -1;
};

/// One linear capacitor between two nodes (node b may be ground).
struct Capacitor {
  NodeIndex a = -1;
  NodeIndex b = -1;
  double c_ff = 0.0;
};

class Circuit {
 public:
  /// Construct with calibrated device parameters for `tech`.
  explicit Circuit(const process::Technology& tech);

  const process::Technology& tech() const noexcept { return *tech_; }
  const AlphaPowerParams& nmos() const noexcept { return nmos_; }
  const AlphaPowerParams& pmos() const noexcept { return pmos_; }

  /// Fixed rails, created by the constructor.
  NodeIndex gnd() const noexcept { return 0; }
  NodeIndex vdd() const noexcept { return 1; }

  /// Add a floating (solved) node; `cap_ff` is its grounded capacitance.
  NodeIndex add_node(const std::string& name, double cap_ff = 0.0);

  /// Add a node driven by a PWL source (not solved).
  NodeIndex add_driven_node(const std::string& name, Pwl stimulus);

  /// Extra capacitance between two nodes (b defaults to ground).
  void add_cap(NodeIndex a, double c_ff, NodeIndex b = 0);

  /// Raw device.
  void add_device(bool is_pmos, double w_um, NodeIndex gate, NodeIndex drain,
                  NodeIndex source);

  /// Expand one library gate driven at node `in` (all logic inputs tied to
  /// `in`? No: side inputs are tied to their non-controlling rail so the
  /// path through `in` is sensitised, with the switching device placed at
  /// the worst position of the stack). Returns the output node. Supported
  /// kinds: Inv, Buf (two cascaded inverters), Nand2-4, Nor2-4; others
  /// throw std::invalid_argument.
  NodeIndex expand_gate(const liberty::Cell& cell, double wn_um, NodeIndex in,
                        const std::string& prefix);

  /// Attach the *input capacitance* a gate presents, as an explicit linear
  /// cap on `node` (the device model here is current-only; gate loading is
  /// carried by these lumps, mirroring the abstract model's CIN).
  void add_gate_load(const liberty::Cell& cell, double wn_um, NodeIndex node);

  // Introspection for the solver.
  std::size_t node_count() const noexcept { return names_.size(); }
  const std::string& node_name(NodeIndex n) const { return names_.at(static_cast<std::size_t>(n)); }
  NodeIndex find_node(const std::string& name) const;
  /// Like find_node but returns -1 instead of throwing.
  NodeIndex try_find_node(const std::string& name) const noexcept;
  bool is_driven(NodeIndex n) const { return driven_.at(static_cast<std::size_t>(n)); }
  const Pwl& stimulus(NodeIndex n) const;
  const std::vector<Device>& devices() const noexcept { return devices_; }
  const std::vector<Capacitor>& caps() const noexcept { return caps_; }

 private:
  const process::Technology* tech_;
  AlphaPowerParams nmos_;
  AlphaPowerParams pmos_;
  std::vector<std::string> names_;
  std::vector<bool> driven_;
  std::vector<Pwl> stimuli_;  ///< parallel to nodes; empty for free nodes
  std::vector<Device> devices_;
  std::vector<Capacitor> caps_;
};

}  // namespace pops::spice
