// pops_fabric — coordinator CLI of the distributed sweep fabric.
//
// Takes the same sweep description pops_sweep / pops_serve client take,
// shards its point grid across a fleet of pops_serve worker daemons by
// consistent hash of each point's content-pure key, and merges the
// per-worker streams back into the deterministic job order: stdout is a
// JSONL stream BYTE-IDENTICAL to a single daemon (or pops_sweep --jsonl)
// run of the same spec (use --no-runtimes for run-to-run byte equality).
// Workers keep persistent journaled caches, so repeated fleet runs are
// replays; a worker that dies mid-sweep is retried and its points
// re-sharded onto the survivors (see fabric/coordinator.hpp).
//
//   pops_fabric --workers 127.0.0.1:7425,127.0.0.1:7426 --tc 0.8,0.9 @c432
//   pops_fabric --workers HOSTS --spec sweep.json --trace-out fleet.trace
//
// Exit codes: 0 success, 1 protocol/usage error, 2 at least one point
// missed its constraint (suppress with --allow-unmet).

#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "pops/fabric/coordinator.hpp"
#include "pops/obs/trace.hpp"
#include "pops/service/serialize.hpp"

namespace {

using namespace pops;
using cli::parse_double;
using cli::parse_long;
using cli::read_file;
using cli::split_list;

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: pops_fabric --workers HOST:PORT[,HOST:PORT...] [options] "
      "[circuits...]\n"
      "\n"
      "Circuits: .bench file paths (shipped to workers inline) or @name "
      "built-ins.\n"
      "\n"
      "Options:\n"
      "  --workers LIST       comma-separated worker daemon addresses "
      "(required)\n"
      "  --spec FILE          submit this SweepSpec JSON\n"
      "  --tc / --margins / --policies / --temperature / --vt-policies /\n"
      "  --power-model / --pipeline / --threads\n"
      "                       build the spec from flags (pops_sweep "
      "syntax)\n"
      "  --po-load FF         PO load for shipped .bench files (default "
      "12.0)\n"
      "  --no-runtimes        drop the run-dependent 'measured' fields "
      "(byte-\n"
      "                       identical merged stream, run to run)\n"
      "  --connect-timeout MS worker connect bound (default 5000)\n"
      "  --read-timeout MS    per-reply read bound; 0 = unbounded "
      "(default 0)\n"
      "  --max-attempts N     dispatch attempts per point before a worker "
      "is\n"
      "                       declared dead (default 3)\n"
      "  --retry-backoff MS   sleep between attempts (default 100)\n"
      "  --trace-out FILE     record coordinator + worker spans; write "
      "the merged\n"
      "                       Chrome trace-event JSON here\n"
      "  --metrics-out FILE   write the aggregated fleet metrics snapshot "
      "here\n"
      "  --allow-unmet        exit 0 even when points miss their "
      "constraint\n"
      "  -h, --help           this text\n");
}

fabric::WorkerAddress parse_worker(const std::string& token) {
  const std::size_t colon = token.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= token.size())
    throw std::invalid_argument("--workers entry '" + token +
                                "' is not HOST:PORT");
  fabric::WorkerAddress w;
  w.host = token.substr(0, colon);
  const long port = parse_long(token.substr(colon + 1), "--workers");
  if (port < 1 || port > 65535)
    throw std::invalid_argument("--workers entry '" + token +
                                "': port must be in [1, 65535]");
  w.port = static_cast<std::uint16_t>(port);
  return w;
}

int run(int argc, char** argv) {
  std::vector<fabric::WorkerAddress> workers;
  fabric::FabricOptions fopt;
  service::SweepSpec spec;
  spec.tc_ratios = {0.8};
  std::vector<std::string> policy_names;
  std::map<std::string, std::string> bench;
  std::string spec_path;
  std::string trace_path;
  std::string metrics_path;
  bool allow_unmet = false;
  bool have_axis_flags = false;

  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument(std::string(flag) + " needs a value");
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--workers") {
      for (const std::string& token : split_list(value(i, "--workers")))
        workers.push_back(parse_worker(token));
    } else if (arg == "--spec") {
      spec_path = value(i, "--spec");
    } else if (arg == "--tc") {
      spec.tc_ratios.clear();
      for (const std::string& s : split_list(value(i, "--tc")))
        spec.tc_ratios.push_back(parse_double(s, "--tc"));
      have_axis_flags = true;
    } else if (arg == "--margins") {
      spec.shield_margins.clear();
      for (const std::string& s : split_list(value(i, "--margins")))
        spec.shield_margins.push_back(parse_double(s, "--margins"));
      have_axis_flags = true;
    } else if (arg == "--policies") {
      policy_names = split_list(value(i, "--policies"));
      have_axis_flags = true;
    } else if (arg == "--temperature") {
      spec.temperatures.clear();
      for (const std::string& s : split_list(value(i, "--temperature")))
        spec.temperatures.push_back(parse_double(s, "--temperature"));
      have_axis_flags = true;
    } else if (arg == "--vt-policies") {
      spec.vt_policies = split_list(value(i, "--vt-policies"));
      have_axis_flags = true;
    } else if (arg == "--power-model") {
      spec.base.power_model = value(i, "--power-model");
      have_axis_flags = true;
    } else if (arg == "--pipeline") {
      spec.pipeline = split_list(value(i, "--pipeline"));
      have_axis_flags = true;
    } else if (arg == "--threads") {
      const long n = parse_long(value(i, "--threads"), "--threads");
      if (n < 0) throw std::invalid_argument("--threads must be >= 0");
      spec.n_threads = static_cast<std::size_t>(n);
    } else if (arg == "--po-load") {
      fopt.po_load_ff = parse_double(value(i, "--po-load"), "--po-load");
    } else if (arg == "--no-runtimes") {
      fopt.record_runtimes = false;
    } else if (arg == "--connect-timeout") {
      fopt.connect_timeout_ms =
          parse_long(value(i, "--connect-timeout"), "--connect-timeout");
    } else if (arg == "--read-timeout") {
      fopt.read_timeout_ms =
          parse_long(value(i, "--read-timeout"), "--read-timeout");
    } else if (arg == "--max-attempts") {
      const long n = parse_long(value(i, "--max-attempts"), "--max-attempts");
      if (n < 1) throw std::invalid_argument("--max-attempts must be >= 1");
      fopt.max_attempts = static_cast<int>(n);
    } else if (arg == "--retry-backoff") {
      fopt.retry_backoff_ms =
          parse_long(value(i, "--retry-backoff"), "--retry-backoff");
    } else if (arg == "--trace-out") {
      trace_path = value(i, "--trace-out");
    } else if (arg == "--metrics-out") {
      metrics_path = value(i, "--metrics-out");
    } else if (arg == "--allow-unmet") {
      allow_unmet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::invalid_argument("unknown option '" + arg + "'");
    } else if (!arg.empty() && arg[0] == '@') {
      spec.circuits.push_back(arg.substr(1));  // worker-side built-in
    } else {
      const std::string label = cli::bench_label(arg);
      bench[label] = read_file(arg);
      spec.circuits.push_back(label);
    }
  }
  if (workers.empty())
    throw std::invalid_argument("--workers is required (HOST:PORT list)");

  if (!spec_path.empty()) {
    if (have_axis_flags)
      throw std::invalid_argument(
          "--spec replaces the axis flags; give one or the other");
    service::SweepSpec file_spec =
        service::sweep_spec_from_json(util::Json::parse(read_file(spec_path)));
    for (std::string& c : spec.circuits)
      file_spec.circuits.push_back(std::move(c));
    file_spec.n_threads = spec.n_threads ? spec.n_threads : file_spec.n_threads;
    spec = std::move(file_spec);
  } else {
    if (!policy_names.empty()) {
      spec.policies.clear();
      for (const std::string& name : policy_names)
        spec.policies.push_back(service::buffer_policy(name));
    }
    if (spec.circuits.empty())
      throw std::invalid_argument(
          "no circuits given (.bench paths, @builtin names, or --spec)");
  }

  fabric::FabricCoordinator coordinator(std::move(workers), fopt);
  if (!trace_path.empty()) {
    obs::TraceRecorder::global().start();
    coordinator.start_worker_traces();
  }

  const fabric::FabricCoordinator::RecordSink sink =
      [](const std::string& raw) {
        std::fwrite(raw.data(), 1, raw.size(), stdout);
        std::fputc('\n', stdout);
      };
  const fabric::FabricReport report = coordinator.run(spec, bench, sink);
  std::fflush(stdout);

  if (!trace_path.empty()) {
    obs::TraceRecorder::global().stop();
    std::ofstream out(trace_path);
    if (!out) throw std::runtime_error("cannot write '" + trace_path + "'");
    out << coordinator.merged_trace().dump(0) << "\n";
    std::fprintf(stderr, "pops_fabric: merged trace written to %s\n",
                 trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) throw std::runtime_error("cannot write '" + metrics_path + "'");
    out << coordinator.fleet_metrics().dump(2) << "\n";
    std::fprintf(stderr, "pops_fabric: fleet metrics written to %s\n",
                 metrics_path.c_str());
  }

  std::fprintf(stderr, "pops_fabric: %zu points (%zu unmet), %zu failovers\n",
               report.points, report.unmet, report.failovers);
  for (const auto& [label, n] : report.points_per_worker)
    std::fprintf(stderr, "pops_fabric:   %s: %zu points\n", label.c_str(), n);
  for (const std::string& label : report.dead_workers)
    std::fprintf(stderr, "pops_fabric:   %s: DEAD (points re-sharded)\n",
                 label.c_str());

  if (report.unmet > 0 && !allow_unmet) {
    std::fprintf(stderr,
                 "pops_fabric: %zu point(s) missed their constraint (pass "
                 "--allow-unmet to ignore)\n",
                 report.unmet);
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pops_fabric: %s\n", e.what());
    std::fprintf(stderr, "try 'pops_fabric --help'\n");
    return 1;
  }
}
