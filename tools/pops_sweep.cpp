// pops_sweep — batch constraint-sweep front-end over pops::service.
//
// Loads .bench netlists (or built-in benchmarks with a leading '@'),
// expands a declarative sweep grid (Tc ratios x shield margins x
// temperatures x Vt policies x buffer policies), runs it through
// SweepService — memoizing repeated points in
// the context's ResultCache — and writes one JSON report. With --jsonl,
// each completed point is additionally streamed to stdout as a compact
// one-line record while the sweep runs. The grid may come from a JSON
// spec file (--spec, the to_json(SweepSpec) schema) instead of flags, and
// the same grid can be run under several delay-model backends
// (--delay-model closed-form,table) for side-by-side comparison — the
// records carry the producing backend, and the result cache keys on it,
// so mixed-backend repeats never alias.
//
//   pops_sweep --tc 0.7,0.85,1.0 c432.bench @c880
//   pops_sweep --tc 0.8 --margins 1.0,1.5 --policies standard,no-shield
//              --repeat 2 --out report.json @c432
//   pops_sweep --delay-model closed-form,table --tc 0.85 @c432
//   pops_sweep --spec sweep.json --out report.json
//
// See README.md ("Constraint sweeps as a service" and "Delay-model
// backends") for the spec axes, the JSON schema, and the cache semantics.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "pops/netlist/bench_io.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/obs/trace.hpp"
#include "pops/service/serialize.hpp"
#include "pops/service/sweep.hpp"

namespace {

using namespace pops;
using cli::parse_double;
using cli::parse_long;
using cli::split_doubles;
using cli::split_list;

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: pops_sweep [options] <circuit.bench | @builtin>...\n"
               "\n"
               "Sweep axes (comma-separated lists):\n"
               "  --tc RATIOS        Tc as fractions of each circuit's "
               "initial delay (default 0.8)\n"
               "  --margins LIST     shield-margin (Flimit bound) points "
               "(default 1.0)\n"
               "  --policies LIST    buffer policies: standard no-shield "
               "no-restructure minimal (default standard)\n"
               "  --temperature LIST junction temperatures (degC) the "
               "power section is\n"
               "                     evaluated at (default 25)\n"
               "  --vt-policies LIST Vt assignment regimes: none multi-vt "
               "(default none)\n"
               "  --pipeline LIST    explicit pass sequence by registry "
               "name (default: standard pipeline)\n"
               "  --delay-model LIST delay-model backends to run the grid "
               "under: closed-form table\n"
               "                     (several = the whole sweep once per "
               "backend, side by side)\n"
               "  --power-model NAME power backend for every point's power "
               "section: proxy state\n"
               "                     (default proxy)\n"
               "  --spec FILE        load the sweep spec from a JSON file "
               "(to_json(SweepSpec)\n"
               "                     schema); replaces axis/base flags "
               "given before it, flags\n"
               "                     after it override; spec circuits "
               "without '@'/'.bench'/'/'\n"
               "                     resolve as built-ins, CLI circuits "
               "are merged in\n"
               "\n"
               "Execution:\n"
               "  --sta-workers N    level-parallel STA sweep workers "
               "(default 1 = sequential;\n"
               "                     results are bitwise-identical at any "
               "count)\n"
               "  --sta-threshold N  min netlist nodes before STA sweeps "
               "parallelize\n"
               "                     (default 50000)\n"
               "  --threads N        workers per batch (default 0 = "
               "hardware threads)\n"
               "  --repeat K         run the whole sweep K times; repeats "
               "hit the result cache (default 1)\n"
               "  --no-cache         disable result caching\n"
               "  --po-load FF       primary-output load for .bench "
               "files (default 12.0)\n"
               "\n"
               "  --allow-unmet      exit 0 even when sweep points miss "
               "their constraint\n"
               "                     (default: any unmet point exits 2, "
               "so CI can assert)\n"
               "\n"
               "Output:\n"
               "  --out FILE         write the JSON report to FILE "
               "(default: stdout)\n"
               "  --jsonl            stream one compact JSON record per "
               "point to stdout (the\n"
               "                     final report then goes only to "
               "--out, never to stdout)\n"
               "  --no-runtimes      drop the run-dependent 'measured' "
               "fields from records\n"
               "                     (same spec => byte-identical "
               "output, diffable with no scrubbing)\n"
               "  --trace FILE       record a Chrome trace-event JSON of "
               "the run to FILE\n"
               "                     (load in chrome://tracing or "
               "Perfetto; summarize with pops_profile)\n"
               "  --list-passes      print the registered pass names and "
               "exit\n"
               "  -h, --help         this text\n");
}

/// Label under which a circuit argument appears in spec/report: built-ins
/// keep their name, files their basename without the .bench suffix.
std::string circuit_label(const std::string& arg) {
  if (!arg.empty() && arg[0] == '@') return arg.substr(1);
  return cli::bench_label(arg);
}

struct Options {
  service::SweepSpec spec;
  std::map<std::string, std::string> bench_paths;  // label -> file path
  std::vector<std::string> delay_models;  // empty = the spec base's backend
  double po_load_ff = 12.0;
  int repeat = 1;
  bool use_cache = true;
  bool jsonl = false;
  bool allow_unmet = false;
  bool record_runtimes = true;
  std::string out_path;
  std::string trace_path;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  opt.spec.tc_ratios = {0.8};

  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument(std::string(flag) + " needs a value");
    return argv[++i];
  };

  // CLI positionals: '@name' is a built-in, anything else a .bench path.
  auto add_circuit = [&opt](const std::string& arg) {
    const std::string label = circuit_label(arg);
    opt.spec.circuits.push_back(label);
    if (arg.empty() || arg[0] != '@') opt.bench_paths[label] = arg;
  };
  // Spec-file circuits: serialized reports store bare labels (no '@'), so
  // a dumped spec must round-trip — only names that look like files
  // ('.bench' suffix or a path separator) are opened as files; everything
  // else resolves as a built-in benchmark.
  auto add_spec_circuit = [&opt, &add_circuit](const std::string& name) {
    const bool is_file = name.find('/') != std::string::npos ||
                         (name.size() > 6 &&
                          name.rfind(".bench") == name.size() - 6);
    if (!name.empty() && (name[0] == '@' || is_file)) {
      add_circuit(name);
    } else {
      opt.spec.circuits.push_back(name);
    }
  };

  std::vector<std::string> policy_names;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--list-passes") {
      for (const std::string& n : api::PassRegistry::global().names())
        std::printf("%s\n", n.c_str());
      std::exit(0);
    } else if (arg == "--spec") {
      const std::string path = value(i, "--spec");
      std::ifstream in(path);
      if (!in) throw std::runtime_error("cannot open '" + path + "'");
      std::ostringstream text;
      text << in.rdbuf();
      service::SweepSpec file_spec =
          service::sweep_spec_from_json(util::Json::parse(text.str()));
      // The spec REPLACES every axis/base value given before it (flags
      // after --spec override; see usage) — including a pending
      // --policies or --delay-model, which would otherwise silently win
      // over the file. Circuits already given on the CLI are kept/merged.
      policy_names.clear();
      opt.delay_models.clear();
      std::vector<std::string> circuits = std::move(file_spec.circuits);
      file_spec.circuits = std::move(opt.spec.circuits);
      opt.spec = std::move(file_spec);
      for (const std::string& c : circuits) add_spec_circuit(c);
    } else if (arg == "--delay-model") {
      opt.delay_models = split_list(value(i, "--delay-model"));
      if (opt.delay_models.empty())
        throw std::invalid_argument("--delay-model needs at least one name");
    } else if (arg == "--tc") {
      opt.spec.tc_ratios = split_doubles(value(i, "--tc"), "--tc");
    } else if (arg == "--margins") {
      opt.spec.shield_margins =
          split_doubles(value(i, "--margins"), "--margins");
    } else if (arg == "--policies") {
      policy_names = split_list(value(i, "--policies"));
    } else if (arg == "--temperature") {
      opt.spec.temperatures =
          split_doubles(value(i, "--temperature"), "--temperature");
    } else if (arg == "--vt-policies") {
      opt.spec.vt_policies = split_list(value(i, "--vt-policies"));
    } else if (arg == "--power-model") {
      opt.spec.base.power_model = value(i, "--power-model");
    } else if (arg == "--pipeline") {
      opt.spec.pipeline = split_list(value(i, "--pipeline"));
    } else if (arg == "--threads") {
      const long n = parse_long(value(i, "--threads"), "--threads");
      if (n < 0) throw std::invalid_argument("--threads must be >= 0");
      opt.spec.n_threads = static_cast<std::size_t>(n);
    } else if (arg == "--sta-workers") {
      const long n = parse_long(value(i, "--sta-workers"), "--sta-workers");
      if (n < 1) throw std::invalid_argument("--sta-workers must be >= 1");
      opt.spec.base.sta_workers = static_cast<std::size_t>(n);
    } else if (arg == "--sta-threshold") {
      const long n = parse_long(value(i, "--sta-threshold"), "--sta-threshold");
      if (n < 0) throw std::invalid_argument("--sta-threshold must be >= 0");
      opt.spec.base.sta_parallel_min_nodes = static_cast<std::size_t>(n);
    } else if (arg == "--repeat") {
      const long n = parse_long(value(i, "--repeat"), "--repeat");
      if (n < 1) throw std::invalid_argument("--repeat must be >= 1");
      opt.repeat = static_cast<int>(n);
    } else if (arg == "--no-cache") {
      opt.use_cache = false;
    } else if (arg == "--allow-unmet") {
      opt.allow_unmet = true;
    } else if (arg == "--po-load") {
      opt.po_load_ff = parse_double(value(i, "--po-load"), "--po-load");
    } else if (arg == "--out") {
      opt.out_path = value(i, "--out");
    } else if (arg == "--jsonl") {
      opt.jsonl = true;
    } else if (arg == "--no-runtimes") {
      opt.record_runtimes = false;
    } else if (arg == "--trace") {
      opt.trace_path = value(i, "--trace");
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::invalid_argument("unknown option '" + arg + "'");
    } else {
      add_circuit(arg);
    }
  }

  if (!policy_names.empty()) {
    opt.spec.policies.clear();
    for (const std::string& name : policy_names)
      opt.spec.policies.push_back(service::buffer_policy(name));
  }
  if (opt.spec.circuits.empty())
    throw std::invalid_argument(
        "no circuits given (expected .bench paths or @builtin names)");
  return opt;
}

netlist::Netlist load_circuit(const Options& opt, const api::OptContext& ctx,
                              const std::string& label) {
  const auto it = opt.bench_paths.find(label);
  if (it == opt.bench_paths.end())
    return netlist::make_benchmark(ctx.lib(), label);
  std::ifstream in(it->second);
  if (!in)
    throw std::runtime_error("cannot open '" + it->second + "'");
  netlist::BenchReadOptions bench_opt;
  bench_opt.po_load_ff = opt.po_load_ff;
  bench_opt.name = label;
  return netlist::read_bench(in, ctx.lib(), bench_opt);
}

int run(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  opt.spec.ensure_valid();

  // The backends the grid runs under; several = the whole sweep once per
  // backend per repeat, so closed-form and table points sit side by side
  // in the report (and exercise the cache's backend keying: a backend's
  // first run never hits entries another backend stored).
  const std::vector<std::string> models =
      opt.delay_models.empty()
          ? std::vector<std::string>{opt.spec.base.delay_model}
          : opt.delay_models;

  api::OptContext ctx;
  service::SweepService sweeps(ctx, opt.use_cache);

  if (!opt.trace_path.empty()) obs::TraceRecorder::global().start();

  const service::SerializeOptions ser{.measured = opt.record_runtimes};
  const service::SweepService::RecordSink sink =
      opt.jsonl ? service::SweepService::RecordSink(
                      [ser](const service::SweepPoint& point) {
                        std::printf(
                            "%s\n",
                            service::to_json(point, ser).dump(0).c_str());
                        std::fflush(stdout);
                      })
                : service::SweepService::RecordSink();

  util::Json report = util::Json::object();
  report["tool"] = "pops_sweep";
  report["spec"] = service::to_json(opt.spec);
  report["runs"] = opt.repeat;
  {
    util::Json models_json = util::Json::array();
    for (const std::string& m : models) models_json.push_back(m);
    report["delay_models"] = std::move(models_json);
  }

  std::size_t unmet_points = 0;
  util::Json sweeps_json = util::Json::array();
  for (int r = 0; r < opt.repeat; ++r) {
    for (const std::string& model : models) {
      service::SweepSpec spec = opt.spec;
      spec.base.delay_model = model;
      const service::SweepReport sweep = sweeps.run(
          spec,
          [&](const std::string& label) {
            return load_circuit(opt, ctx, label);
          },
          sink);
      // Count distinct failing points, not failures x repeats: repeats
      // replay bit-identical results, so the first pass over each
      // backend already covers every point once.
      if (r == 0)
        for (const service::SweepPoint& point : sweep.points)
          if (!point.report.met) ++unmet_points;
      std::fprintf(stderr,
                   "run %d/%d [%s]: %zu points, %.0f ms, cache %zu hits / "
                   "%zu misses\n",
                   r + 1, opt.repeat, model.c_str(), sweep.points.size(),
                   sweep.wall_ms, sweep.cache_hits, sweep.cache_misses);
      util::Json entry = service::to_json(sweep, ser);
      entry["delay_model"] = model;
      sweeps_json.push_back(std::move(entry));
    }
  }
  report["sweeps"] = std::move(sweeps_json);

  if (!opt.trace_path.empty()) {
    // Stop after report serialization so serialize/point spans are in the
    // drain; the trace write itself is deliberately outside the trace.
    obs::TraceRecorder::global().stop();
    std::ofstream trace_out(opt.trace_path);
    if (!trace_out)
      throw std::runtime_error("cannot write '" + opt.trace_path + "'");
    trace_out << obs::TraceRecorder::global().chrome_json().dump(0) << "\n";
    std::fprintf(stderr, "trace written to %s\n", opt.trace_path.c_str());
  }

  if (service::ResultCache* cache = sweeps.cache()) {
    const service::ResultCache::Stats stats = cache->stats();
    util::Json cache_json = util::Json::object();
    cache_json["hits"] = stats.hits;
    cache_json["misses"] = stats.misses;
    cache_json["entries"] = stats.entries;
    report["cache"] = std::move(cache_json);
  }

  // A point that misses its constraint fails the run (exit 2, distinct
  // from usage/IO errors) unless --allow-unmet: CI scripts assert on the
  // exit code instead of parsing the report. "Missed" is the reports'
  // `met` flag, i.e. the one shared tolerance (core::kTcMetRelTol) the
  // protocol round loop also stops on — a point cannot iterate as
  // violating yet count as met here.
  int exit_code = 0;
  if (unmet_points > 0 && !opt.allow_unmet) {
    std::fprintf(stderr,
                 "pops_sweep: %zu sweep point(s) missed their constraint "
                 "(pass --allow-unmet to ignore)\n",
                 unmet_points);
    exit_code = 2;
  }

  const std::string text = report.dump(2) + "\n";
  if (opt.out_path.empty()) {
    if (opt.jsonl) {
      // stdout already carries the JSONL records; appending the pretty
      // report would make the stream neither valid JSONL nor one JSON
      // document.
      std::fprintf(stderr,
                   "note: final report suppressed in --jsonl mode; pass "
                   "--out FILE to keep it\n");
      return exit_code;
    }
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(opt.out_path);
    if (!out)
      throw std::runtime_error("cannot write '" + opt.out_path + "'");
    out << text;
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pops_sweep: %s\n", e.what());
    std::fprintf(stderr, "try 'pops_sweep --help'\n");
    return 1;
  }
}
