// pops_gen — synthetic .bench netlist generator.
//
// Emits netlist::make_synthetic circuits (the same generator behind the
// paper's Table 1 synthetic benchmarks) at arbitrary scale, in the
// ISCAS .bench format read back by pops_sweep / pops_profile and the
// smoke scripts. The point is netlists far beyond the ISCAS set —
// hundreds of thousands of gates — where the level-parallel STA sweeps
// and the incremental engine earn their keep; generation is deterministic
// in (--seed, shape), so two invocations with the same flags are
// byte-identical and make cheap fixtures for parallel-vs-sequential
// parity checks.
//
//   pops_gen --gates 100000 --out big.bench
//   pops_gen --gates 250000 --pis 512 --pos 256 --depth 40 --seed 7

#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

#include "pops/liberty/library.hpp"
#include "pops/netlist/bench_io.hpp"
#include "pops/process/technology.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/netlist.hpp"
#include "cli_util.hpp"

namespace {

using namespace pops;

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: pops_gen [options]\n"
               "\n"
               "Generate a synthetic .bench netlist (deterministic in the "
               "flags).\n"
               "\n"
               "  --gates N   total gate target (default 100000)\n"
               "  --pis N     primary inputs (default 256)\n"
               "  --pos N     primary outputs, approximate (default 128)\n"
               "  --depth N   critical-path gate count (default 32)\n"
               "  --seed S    generator seed (default 1)\n"
               "  --name NAME circuit name (default gen<gates>)\n"
               "  --out FILE  write here instead of stdout\n"
               "  -h, --help  this text\n");
}

int checked_int(long v, const char* flag) {
  if (v < 1 || v > std::numeric_limits<int>::max())
    throw std::invalid_argument(std::string(flag) + " out of range");
  return static_cast<int>(v);
}

int run(int argc, char** argv) {
  netlist::BenchmarkSpec spec;
  spec.n_gates = 100000;
  spec.n_pi = 256;
  spec.n_po = 128;
  spec.path_depth = 32;
  spec.seed = 1;
  std::string out_path;

  const auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument(std::string(flag) + " needs a value");
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--gates") {
      spec.n_gates = checked_int(cli::parse_long(value(i, "--gates"),
                                                 "--gates"), "--gates");
    } else if (arg == "--pis") {
      spec.n_pi = checked_int(cli::parse_long(value(i, "--pis"), "--pis"),
                              "--pis");
    } else if (arg == "--pos") {
      spec.n_po = checked_int(cli::parse_long(value(i, "--pos"), "--pos"),
                              "--pos");
    } else if (arg == "--depth") {
      spec.path_depth = checked_int(cli::parse_long(value(i, "--depth"),
                                                    "--depth"), "--depth");
    } else if (arg == "--seed") {
      const long s = cli::parse_long(value(i, "--seed"), "--seed");
      if (s < 0) throw std::invalid_argument("--seed must be >= 0");
      spec.seed = static_cast<std::uint64_t>(s);
    } else if (arg == "--name") {
      spec.name = value(i, "--name");
    } else if (arg == "--out") {
      out_path = value(i, "--out");
    } else {
      throw std::invalid_argument("unknown option '" + arg + "'");
    }
  }
  if (spec.name.empty()) spec.name = "gen" + std::to_string(spec.n_gates);
  if (spec.path_depth > spec.n_gates)
    throw std::invalid_argument("--depth cannot exceed --gates");

  const liberty::Library lib(process::Technology::cmos025());
  const netlist::Netlist nl = netlist::make_synthetic(lib, spec);

  if (out_path.empty()) {
    netlist::write_bench(std::cout, nl);
  } else {
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot write '" + out_path + "'");
    netlist::write_bench(out, nl);
    const netlist::NetlistStats stats = nl.stats();
    std::fprintf(stderr, "%s: %zu gates, %zu PIs, %zu POs -> %s\n",
                 nl.name().c_str(), stats.n_gates, stats.n_inputs,
                 stats.n_outputs, out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pops_gen: %s\n", e.what());
    return 1;
  }
}
