// pops_profile — top-down time breakdown of a pops trace.
//
// Reads a Chrome trace-event JSON file (pops_sweep --trace, pops_serve
// --trace-out) and aggregates the complete ("ph": "X") events per span
// name: count, total (inclusive) time, self time (total minus the time
// spent in spans nested inside), and the self share of the whole trace.
// The same containment math a trace viewer's bottom-up view does, as a
// terminal table — the quick answer to "where do the milliseconds go"
// without leaving the shell.
//
//   pops_sweep --tc 0.8 --trace trace.json --out /dev/null @c432
//   pops_profile trace.json
//   pops_profile --sort self trace.json
//
// Nesting is reconstructed per thread from timestamps: events are sorted
// by (start asc, duration desc), so an enclosing span precedes the spans
// it contains and a stack of open intervals yields each span's children.

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "pops/util/json.hpp"

namespace {

using pops::util::Json;

struct Agg {
  std::size_t count = 0;
  double total_us = 0.0;  ///< inclusive
  double self_us = 0.0;   ///< total minus nested spans
};

struct Event {
  std::string name;
  double ts = 0.0;   ///< microseconds
  double dur = 0.0;  ///< microseconds
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: pops_profile [--sort total|self|count] <trace.json>\n"
               "\n"
               "Summarizes a Chrome trace-event file (pops_sweep --trace /\n"
               "pops_serve --trace-out) as a per-span-name table: calls,\n"
               "inclusive total ms, self ms (minus nested spans), self %%.\n");
}

double num_member(const Json& j, const char* key) {
  const Json* v = j.find(key);
  if (!v || !v->is_number())
    throw std::invalid_argument(std::string("event needs a numeric '") + key +
                                "'");
  return v->as_number();
}

int run(int argc, char** argv) {
  std::string path;
  std::string sort_key = "total";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--sort") {
      if (i + 1 >= argc) throw std::invalid_argument("--sort needs a value");
      sort_key = argv[++i];
      if (sort_key != "total" && sort_key != "self" && sort_key != "count")
        throw std::invalid_argument("--sort must be total, self, or count");
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::invalid_argument("unknown option '" + arg + "'");
    } else if (path.empty()) {
      path = arg;
    } else {
      throw std::invalid_argument("exactly one trace file expected");
    }
  }
  if (path.empty()) throw std::invalid_argument("no trace file given");

  const Json doc = Json::parse(pops::cli::read_file(path));
  const Json* events = doc.is_object() ? doc.find("traceEvents") : nullptr;
  if (!events || !events->is_array())
    throw std::invalid_argument("'" + path +
                                "' is not a Chrome trace-event document "
                                "(no 'traceEvents' array)");

  // Bucket complete events by tid; everything else (metadata records,
  // instant events) is ignored.
  std::map<double, std::vector<Event>> by_tid;
  for (const Json& e : events->items()) {
    if (!e.is_object()) continue;
    const Json* ph = e.find("ph");
    if (!ph || !ph->is_string() || ph->as_string() != "X") continue;
    const Json* name = e.find("name");
    Event ev;
    ev.name = name && name->is_string() ? name->as_string() : "<unnamed>";
    ev.ts = num_member(e, "ts");
    ev.dur = num_member(e, "dur");
    const Json* tid = e.find("tid");
    by_tid[tid && tid->is_number() ? tid->as_number() : 0.0].push_back(
        std::move(ev));
  }

  std::map<std::string, Agg> aggs;
  std::size_t n_events = 0;
  for (auto& [tid, list] : by_tid) {
    std::sort(list.begin(), list.end(), [](const Event& a, const Event& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      return a.dur > b.dur;  // the enclosing span first
    });
    struct Open {
      const Event* ev;
      double child_us = 0.0;
    };
    std::vector<Open> stack;
    auto close = [&](const Open& open) {
      Agg& a = aggs[open.ev->name];
      ++a.count;
      a.total_us += open.ev->dur;
      a.self_us += open.ev->dur - open.child_us;
    };
    for (const Event& ev : list) {
      ++n_events;
      while (!stack.empty() &&
             stack.back().ev->ts + stack.back().ev->dur <= ev.ts) {
        close(stack.back());
        stack.pop_back();
      }
      if (!stack.empty()) stack.back().child_us += ev.dur;
      stack.push_back(Open{&ev});
    }
    while (!stack.empty()) {
      close(stack.back());
      stack.pop_back();
    }
  }

  double trace_self_us = 0.0;
  for (const auto& [name, a] : aggs) trace_self_us += a.self_us;

  std::vector<std::pair<std::string, Agg>> rows(aggs.begin(), aggs.end());
  std::sort(rows.begin(), rows.end(), [&](const auto& a, const auto& b) {
    if (sort_key == "count" && a.second.count != b.second.count)
      return a.second.count > b.second.count;
    if (sort_key == "self" && a.second.self_us != b.second.self_us)
      return a.second.self_us > b.second.self_us;
    if (a.second.total_us != b.second.total_us)
      return a.second.total_us > b.second.total_us;
    return a.first < b.first;  // deterministic tie-break
  });

  std::printf("%zu events, %zu span names, %.3f ms self time total\n\n",
              n_events, rows.size(), trace_self_us / 1e3);
  std::printf("%-24s %10s %12s %12s %7s\n", "span", "count", "total_ms",
              "self_ms", "self%");
  for (const auto& [name, a] : rows)
    std::printf("%-24s %10zu %12.3f %12.3f %6.1f%%\n", name.c_str(), a.count,
                a.total_us / 1e3, a.self_us / 1e3,
                trace_self_us > 0.0 ? 100.0 * a.self_us / trace_self_us : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pops_profile: %s\n", e.what());
    std::fprintf(stderr, "try 'pops_profile --help'\n");
    return 1;
  }
}
