// pops_serve — the sweep daemon and its command-line client.
//
// Server mode binds a loopback/TCP port, accepts newline-delimited
// SweepSpec JSON requests (net/protocol.hpp), routes them onto a
// delay-model-keyed context pool, and streams per-point JSONL records
// back as they complete. With --cache-file the result cache survives
// restarts as an append-only journal (service/cache_journal.hpp):
// replayed at start, appended per store, compacted on checkpoint and
// shutdown — a warm restart serves repeated specs without recomputing
// anything. As a fleet member behind pops_fabric, --max-connections
// bounds the damage a misbehaving client can do to a shared worker.
//
//   pops_serve --port 7425 --cache-file cache.jnl --cache-capacity 4096
//   pops_serve --port 0               # ephemeral; the port is printed
//
// Client mode submits a spec (from --spec JSON, or built from the same
// axis flags pops_sweep takes) and tails the stream; .bench files given
// as positionals are shipped inline, '@name' resolves server-side as a
// built-in. Point records go to stdout verbatim (valid JSONL, diffable
// against pops_sweep --jsonl); the summary goes to stderr.
//
//   pops_serve client --port 7425 --tc 0.8,0.9 @c432 my_design.bench
//   pops_serve client --port 7425 --spec sweep.json --out report.json
//   pops_serve client --port 7425 --ping | --stats | --save | --shutdown
//
// Exit codes (client): 0 success, 1 protocol/usage error, 2 at least one
// sweep point missed its constraint (suppress with --allow-unmet).

#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "pops/net/client.hpp"
#include "pops/net/server.hpp"
#include "pops/obs/trace.hpp"
#include "pops/service/serialize.hpp"

namespace {

using namespace pops;
using cli::parse_double;
using cli::parse_long;
using cli::read_file;
using cli::split_list;

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: pops_serve [options]                 start the daemon\n"
      "       pops_serve client [options] [circuits...]\n"
      "\n"
      "Server options:\n"
      "  --host ADDR          bind address (default 127.0.0.1)\n"
      "  --port N             TCP port; 0 = kernel-assigned, printed on "
      "stdout (default 0)\n"
      "  --threads N          worker threads per sweep; 0 = hardware "
      "(default 0)\n"
      "  --cache-file FILE    persist the result cache here as an "
      "append-only\n"
      "                       journal (replayed at start, compacted on "
      "shutdown)\n"
      "  --cache-capacity N   LRU bound on cached entries; 0 = unbounded "
      "(default 0)\n"
      "  --checkpoint-every N offer journal compaction every N sweeps; 0 "
      "= only on\n"
      "                       save/shutdown (default 1)\n"
      "  --max-connections N  serve at most N concurrent connections; "
      "extras get\n"
      "                       one error event and are closed (default 0 = "
      "no cap)\n"
      "  --trace-out FILE     record a Chrome trace-event JSON of the "
      "daemon's\n"
      "                       lifetime to FILE at shutdown\n"
      "\n"
      "Client options:\n"
      "  --host ADDR --port N daemon address (port is required)\n"
      "  --spec FILE          submit this SweepSpec JSON\n"
      "  --tc / --margins / --policies / --temperature / --vt-policies /\n"
      "  --power-model / --pipeline / --threads\n"
      "                       build the spec from flags (pops_sweep "
      "syntax)\n"
      "  --po-load FF         PO load for shipped .bench files (default "
      "12.0)\n"
      "  --out FILE           also write a JSON report of the run\n"
      "  --no-runtimes        ask the server to drop the run-dependent "
      "'measured'\n"
      "                       fields (byte-identical records, run to "
      "run)\n"
      "  --allow-unmet        exit 0 even when points miss their "
      "constraint\n"
      "  --ping|--stats|--metrics|--save|--shutdown\n"
      "                       control ops instead of a sweep (--metrics "
      "dumps the\n"
      "                       daemon's counters/histograms snapshot)\n"
      "  -h, --help           this text\n");
}

// ----- server mode ------------------------------------------------------------

int run_server(int argc, char** argv) {
  net::SweepServerOptions opt;
  std::string trace_path;
  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--host") {
      opt.host = value(i, "--host");
    } else if (arg == "--port") {
      const long p = parse_long(value(i, "--port"), "--port");
      if (p < 0 || p > 65535)
        throw std::invalid_argument("--port must be in [0, 65535]");
      opt.port = static_cast<std::uint16_t>(p);
    } else if (arg == "--threads") {
      const long n = parse_long(value(i, "--threads"), "--threads");
      if (n < 0) throw std::invalid_argument("--threads must be >= 0");
      opt.n_threads = static_cast<std::size_t>(n);
    } else if (arg == "--cache-file") {
      opt.cache_file = value(i, "--cache-file");
    } else if (arg == "--cache-capacity") {
      const long n =
          parse_long(value(i, "--cache-capacity"), "--cache-capacity");
      if (n < 0) throw std::invalid_argument("--cache-capacity must be >= 0");
      opt.cache_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--checkpoint-every") {
      const long n =
          parse_long(value(i, "--checkpoint-every"), "--checkpoint-every");
      if (n < 0) throw std::invalid_argument("--checkpoint-every must be >= 0");
      opt.checkpoint_every = static_cast<std::size_t>(n);
    } else if (arg == "--max-connections") {
      const long n =
          parse_long(value(i, "--max-connections"), "--max-connections");
      if (n < 0) throw std::invalid_argument("--max-connections must be >= 0");
      opt.max_connections = static_cast<std::size_t>(n);
    } else if (arg == "--trace-out") {
      trace_path = value(i, "--trace-out");
    } else {
      throw std::invalid_argument("unknown server option '" + arg + "'");
    }
  }

  net::SweepServer server(opt);
  if (!trace_path.empty()) obs::TraceRecorder::global().start();
  const service::CacheLoadReport loaded = server.start();
  if (!opt.cache_file.empty()) {
    std::fprintf(stderr,
                 "pops_serve: cache '%s': %zu entries, %zu initial delays "
                 "loaded\n",
                 opt.cache_file.c_str(), loaded.entries_loaded,
                 loaded.initial_delays_loaded);
    for (const std::string& p : loaded.problems)
      std::fprintf(stderr, "pops_serve: cache: %s\n", p.c_str());
  }
  // The port line is the startup contract: scripts parse it to find an
  // ephemeral port. stdout, flushed, exactly one line.
  std::printf("pops_serve: listening on %s:%u\n", opt.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // Run until a client's "shutdown" op or a signal; either way drain and
  // flush the cache instead of dropping the delta since the last
  // checkpoint.
  while (!server.wait_for_ms(200) && g_signal == 0) {
  }
  const service::ResultCache::Stats stats =
      server.cache() ? server.cache()->stats() : service::ResultCache::Stats{};
  server.stop();
  if (!trace_path.empty()) {
    obs::TraceRecorder::global().stop();
    std::ofstream trace_out(trace_path);
    if (!trace_out)
      throw std::runtime_error("cannot write '" + trace_path + "'");
    trace_out << obs::TraceRecorder::global().chrome_json().dump(0) << "\n";
    std::fprintf(stderr, "pops_serve: trace written to %s\n",
                 trace_path.c_str());
  }
  std::fprintf(stderr,
               "pops_serve: shut down (%zu sweeps, %zu points, cache %zu "
               "hits / %zu misses / %zu entries)\n",
               server.stats().sweeps, server.stats().points, stats.hits,
               stats.misses, stats.entries);
  return 0;
}

// ----- client mode ------------------------------------------------------------

struct ClientOptions {
  std::string host = "127.0.0.1";
  long port = -1;
  std::string spec_path;
  std::string out_path;
  std::string control;  // ping | stats | metrics | save | shutdown
  service::SweepSpec spec;
  std::map<std::string, std::string> bench;
  double po_load_ff = 12.0;
  bool allow_unmet = false;
  bool record_runtimes = true;
  bool have_axis_flags = false;
};

int run_client(int argc, char** argv) {
  ClientOptions opt;
  opt.spec.tc_ratios = {0.8};
  std::vector<std::string> policy_names;

  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument(std::string(flag) + " needs a value");
    return argv[++i];
  };

  for (int i = 2; i < argc; ++i) {  // argv[1] == "client"
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--host") {
      opt.host = value(i, "--host");
    } else if (arg == "--port") {
      opt.port = parse_long(value(i, "--port"), "--port");
    } else if (arg == "--spec") {
      opt.spec_path = value(i, "--spec");
    } else if (arg == "--out") {
      opt.out_path = value(i, "--out");
    } else if (arg == "--tc") {
      opt.spec.tc_ratios.clear();
      for (const std::string& s : split_list(value(i, "--tc")))
        opt.spec.tc_ratios.push_back(parse_double(s, "--tc"));
      opt.have_axis_flags = true;
    } else if (arg == "--margins") {
      opt.spec.shield_margins.clear();
      for (const std::string& s : split_list(value(i, "--margins")))
        opt.spec.shield_margins.push_back(parse_double(s, "--margins"));
      opt.have_axis_flags = true;
    } else if (arg == "--policies") {
      policy_names = split_list(value(i, "--policies"));
      opt.have_axis_flags = true;
    } else if (arg == "--temperature") {
      opt.spec.temperatures.clear();
      for (const std::string& s : split_list(value(i, "--temperature")))
        opt.spec.temperatures.push_back(parse_double(s, "--temperature"));
      opt.have_axis_flags = true;
    } else if (arg == "--vt-policies") {
      opt.spec.vt_policies = split_list(value(i, "--vt-policies"));
      opt.have_axis_flags = true;
    } else if (arg == "--power-model") {
      opt.spec.base.power_model = value(i, "--power-model");
      opt.have_axis_flags = true;
    } else if (arg == "--pipeline") {
      opt.spec.pipeline = split_list(value(i, "--pipeline"));
      opt.have_axis_flags = true;
    } else if (arg == "--threads") {
      const long n = parse_long(value(i, "--threads"), "--threads");
      if (n < 0) throw std::invalid_argument("--threads must be >= 0");
      opt.spec.n_threads = static_cast<std::size_t>(n);
    } else if (arg == "--po-load") {
      opt.po_load_ff = parse_double(value(i, "--po-load"), "--po-load");
    } else if (arg == "--allow-unmet") {
      opt.allow_unmet = true;
    } else if (arg == "--no-runtimes") {
      opt.record_runtimes = false;
    } else if (arg == "--ping" || arg == "--stats" || arg == "--metrics" ||
               arg == "--save" || arg == "--shutdown") {
      opt.control = arg.substr(2);
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::invalid_argument("unknown client option '" + arg + "'");
    } else if (!arg.empty() && arg[0] == '@') {
      opt.spec.circuits.push_back(arg.substr(1));  // server-side built-in
    } else {
      // A local .bench file: ship its source inline.
      const std::string label = cli::bench_label(arg);
      opt.bench[label] = read_file(arg);
      opt.spec.circuits.push_back(label);
    }
  }
  if (opt.port < 0 || opt.port > 65535)
    throw std::invalid_argument("client mode needs --port N (1..65535)");

  net::SweepClient client(opt.host, static_cast<std::uint16_t>(opt.port));

  if (!opt.control.empty()) {
    util::Json reply;
    if (opt.control == "ping") reply = client.ping();
    else if (opt.control == "stats") reply = client.server_stats();
    else if (opt.control == "metrics") reply = client.metrics();
    else if (opt.control == "save") reply = client.save();
    else reply = client.shutdown_server();
    std::printf("%s\n", reply.dump(0).c_str());
    return 0;
  }

  if (!opt.spec_path.empty()) {
    if (opt.have_axis_flags)
      throw std::invalid_argument(
          "--spec replaces the axis flags; give one or the other");
    service::SweepSpec file_spec = service::sweep_spec_from_json(
        util::Json::parse(read_file(opt.spec_path)));
    // Circuits given as positionals (shipped .bench files / @builtins)
    // merge with the spec's own.
    for (std::string& c : opt.spec.circuits)
      file_spec.circuits.push_back(std::move(c));
    file_spec.n_threads =
        opt.spec.n_threads ? opt.spec.n_threads : file_spec.n_threads;
    opt.spec = std::move(file_spec);
  } else {
    if (!policy_names.empty()) {
      opt.spec.policies.clear();
      for (const std::string& name : policy_names)
        opt.spec.policies.push_back(service::buffer_policy(name));
    }
    if (opt.spec.circuits.empty())
      throw std::invalid_argument(
          "no circuits given (.bench paths, @builtin names, or --spec)");
  }

  util::Json points = util::Json::array();
  const bool collect = !opt.out_path.empty();
  const net::SweepClient::PointSink sink =
      [&](const util::Json& point, const std::string& raw) {
        std::printf("%s\n", raw.c_str());
        std::fflush(stdout);
        if (collect) points.push_back(point);
      };
  const net::SweepSummary summary = client.submit(
      opt.spec, sink, opt.bench, opt.po_load_ff, opt.record_runtimes);

  std::fprintf(stderr,
               "pops_serve client: %zu points (%zu unmet), cache %zu hits / "
               "%zu misses, %.0f ms\n",
               summary.points, summary.unmet, summary.cache_hits,
               summary.cache_misses, summary.wall_ms);

  if (collect) {
    util::Json report = util::Json::object();
    report["tool"] = "pops_serve client";
    report["spec"] = service::to_json(opt.spec);
    report["points"] = std::move(points);
    util::Json cache = util::Json::object();
    cache["hits"] = summary.cache_hits;
    cache["misses"] = summary.cache_misses;
    cache["entries"] = summary.cache_entries;
    report["cache"] = std::move(cache);
    report["unmet"] = summary.unmet;
    report["wall_ms"] = summary.wall_ms;
    std::ofstream out(opt.out_path);
    if (!out) throw std::runtime_error("cannot write '" + opt.out_path + "'");
    out << report.dump(2) << "\n";
  }

  if (summary.unmet > 0 && !opt.allow_unmet) {
    std::fprintf(stderr,
                 "pops_serve client: %zu point(s) missed their constraint "
                 "(pass --allow-unmet to ignore)\n",
                 summary.unmet);
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc > 1 && std::string(argv[1]) == "client")
      return run_client(argc, argv);
    return run_server(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pops_serve: %s\n", e.what());
    std::fprintf(stderr, "try 'pops_serve --help'\n");
    return 1;
  }
}
