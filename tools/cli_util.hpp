#pragma once
// Shared command-line plumbing for the pops_* tools (pops_sweep,
// pops_serve): comma-list splitting, strict numeric parsing, whole-file
// reads, and .bench-path labelling. One copy so the error-message
// conventions (diagnose the flag and the offending token, never a bare
// "stod") cannot drift between tools.

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace pops::cli {

/// Split a comma-separated flag value; empty items are dropped.
inline std::vector<std::string> split_list(const std::string& arg) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : arg) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += c;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

/// Strict numeric parsing: the whole token must be consumed ("2x" or
/// "abc" are diagnosed, not silently truncated or rethrown as bare
/// "stod").
inline double parse_double(const std::string& s, const char* flag) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (s.empty() || used != s.size())
    throw std::invalid_argument(std::string(flag) + ": bad number '" + s +
                                "'");
  return v;
}

inline long parse_long(const std::string& s, const char* flag) {
  std::size_t used = 0;
  long v = 0;
  try {
    v = std::stol(s, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (s.empty() || used != s.size())
    throw std::invalid_argument(std::string(flag) + ": bad integer '" + s +
                                "'");
  return v;
}

inline std::vector<double> split_doubles(const std::string& arg,
                                         const char* flag) {
  std::vector<double> out;
  for (const std::string& item : split_list(arg))
    out.push_back(parse_double(item, flag));
  return out;
}

/// Whole file as a string; throws std::runtime_error when unreadable.
inline std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Label under which a .bench path appears in specs/reports: the
/// basename without the ".bench" suffix.
inline std::string bench_label(const std::string& path) {
  std::string base = path;
  const std::size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  const std::size_t dot = base.rfind(".bench");
  if (dot != std::string::npos && dot + 6 == base.size())
    base = base.substr(0, dot);
  return base;
}

}  // namespace pops::cli
