// Table 1 — "CPU time comparison in satisfying path delay constraint":
// wall-clock time of the deterministic constant-sensitivity distribution
// (POPS) against the greedy iterative sizer (AMPS substitute) on every
// benchmark path, both meeting Tc = 1.2*Tmin. The paper reports a
// two-order-of-magnitude gap — which follows from the algorithms
// (O(N) sweeps vs O(N^2) full-path re-evaluations per move), so the
// *ratio* is the reproduced quantity, not the absolute milliseconds.
//
// A google-benchmark microharness of the two kernels on a mid-size path
// is appended for calibrated per-iteration numbers.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hpp"
#include "pops/baseline/amps.hpp"
#include "pops/core/bounds.hpp"
#include "pops/core/sensitivity.hpp"

namespace {

using namespace pops;
using namespace bench_common;

void print_table() {
  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header(
      "Table 1 — CPU time to satisfy Tc = 1.2*Tmin: POPS vs AMPS",
      "deterministic distribution is ~two orders of magnitude faster");

  util::Table t({"circuit", "path gates", "POPS (ms)", "AMPS (ms)",
                 "speed-up", "AMPS evals"});
  for (std::size_t c = 1; c < 6; ++c) t.set_align(c, util::Align::Right);

  for (const std::string& name : paper_circuit_names()) {
    PathCase pc = critical_path_case(lib, dm, name);
    const core::PathBounds bounds = core::compute_bounds(pc.path, dm);
    const double tc = 1.2 * bounds.tmin_ps;

    double pops_ms = 0.0;
    // POPS is fast enough that a few repetitions stabilise the clock.
    constexpr int reps = 5;
    pops_ms = time_ms([&] {
                for (int r = 0; r < reps; ++r)
                  benchmark::DoNotOptimize(
                      core::size_for_constraint(pc.path, dm, tc));
              }) /
              reps;

    long evals = 0;
    const double amps_ms = time_ms([&] {
      const baseline::AmpsResult r = baseline::meet_constraint(pc.path, dm, tc);
      evals = r.evaluations;
      benchmark::DoNotOptimize(&r);
    });

    t.add_row({name, std::to_string(pc.gate_count), util::fmt(pops_ms, 2),
               util::fmt(amps_ms, 1),
               util::fmt(amps_ms / std::max(pops_ms, 1e-3), 0) + "x",
               std::to_string(evals)});
  }
  std::printf("%s\n", t.str().c_str());
}

// --- google-benchmark kernels -------------------------------------------------

api::OptContext& bench_ctx() {
  static api::OptContext ctx;
  return ctx;
}

void BM_PopsConstraint(benchmark::State& state) {
  const timing::DelayModel& dm = bench_ctx().dm();
  PathCase pc = critical_path_case(bench_ctx(), "c1908");
  const core::PathBounds bounds = core::compute_bounds(pc.path, dm);
  const double tc = 1.2 * bounds.tmin_ps;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::size_for_constraint(pc.path, dm, tc));
}
BENCHMARK(BM_PopsConstraint)->Unit(benchmark::kMillisecond);

void BM_AmpsConstraint(benchmark::State& state) {
  const timing::DelayModel& dm = bench_ctx().dm();
  PathCase pc = critical_path_case(bench_ctx(), "c1908");
  const core::PathBounds bounds = core::compute_bounds(pc.path, dm);
  const double tc = 1.2 * bounds.tmin_ps;
  for (auto _ : state)
    benchmark::DoNotOptimize(baseline::meet_constraint(pc.path, dm, tc));
}
BENCHMARK(BM_AmpsConstraint)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
