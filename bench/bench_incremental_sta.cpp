// Extension — incremental vs. cold STA round cost.
//
// The Fig. 7 protocol pays one full timing re-verification per sizing
// round; the round touches a handful of gates, so almost all of that work
// re-derives unchanged values. timing::IncrementalSta repropagates only
// the affected fanout/fan-in cones (arrivals, slews, and the K-paths
// downstream bounds), bit-identical to a cold run. This bench measures
// the per-round re-analysis cost — Sta::run() + Sta::downstream_delays()
// cold, vs. IncrementalSta::update() warm — on c432/c880/c1355 across
// dirty-set sizes, which is exactly what ProtocolPass::run_protocol pays
// per round.
//
// Emits BENCH_incremental_sta.json for cross-PR perf tracking; the CI
// smoke (scripts/smoke_bench_incremental.sh) asserts incremental <= cold
// for the smallest dirty set.

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "pops/timing/incremental_sta.hpp"
#include "pops/util/json.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops;
using namespace bench_common;
using netlist::NodeId;
using timing::IncrementalSta;
using timing::Sta;

constexpr int kReps = 60;

double random_drive(const Netlist& nl, util::Rng& rng) {
  return rng.uniform(nl.lib().wmin_um(), nl.lib().wmax_um());
}

void incremental_sta(util::Json& doc) {
  print_header(
      "Extension — incremental STA for the protocol hot loop",
      "a sizing round's re-verification costs O(changed fanout cone), not "
      "O(E); bit-identical to a cold Sta::run()");

  api::OptContext ctx;
  const timing::DelayModel& dm = ctx.dm();

  util::Table t({"circuit", "gates", "dirty", "cold round (ms)",
                 "incremental (ms)", "speedup"});
  for (std::size_t c = 1; c < 6; ++c) t.set_align(c, util::Align::Right);

  util::Json circuits = util::Json::array();
  double min_speedup_dirty1 = 1e300;

  for (const std::string& name :
       {std::string("c432"), std::string("c880"), std::string("c1355")}) {
    Netlist nl = netlist::make_benchmark(ctx.lib(), name);
    const std::vector<NodeId> gates = nl.gates();
    const Sta sta(nl, dm);
    IncrementalSta inc(nl, dm);
    inc.run_full();
    // Activate bound maintenance (the protocol queries the bounds every
    // round via k_critical_paths), so update() below pays for both the
    // forward and the backward pass — like-for-like with the cold round.
    inc.downstream();

    util::Json rows = util::Json::array();
    for (const std::size_t dirty_size : {1u, 2u, 4u, 8u, 16u}) {
      util::Rng rng(0x5EED0000u + dirty_size);

      // Identical mutation stream for both timings: each rep resizes
      // `dirty_size` random gates, then re-analyzes.
      double inc_ms = 0.0;
      double cold_ms = 0.0;
      double sink = 0.0;
      for (int rep = 0; rep < kReps; ++rep) {
        std::vector<NodeId> dirty;
        dirty.reserve(dirty_size);
        for (std::size_t i = 0; i < dirty_size; ++i) {
          const NodeId g = gates[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(gates.size()) - 1))];
          nl.set_drive(g, random_drive(nl, rng));
          dirty.push_back(g);
        }
        inc_ms += time_ms([&] { sink += inc.update(dirty).critical_delay_ps; });
        cold_ms += time_ms([&] {
          const timing::StaResult r = sta.run();
          sink += sta.downstream_delays(r)[0] == 0.0 ? 0.0 : r.critical_delay_ps;
        });
      }
      if (sink == 0.0) std::printf(" ");  // keep the analyses observable

      // The exactness guarantee, once per configuration (outside timing).
      inc.check_against_full();

      const double speedup = cold_ms / inc_ms;
      if (dirty_size == 1) min_speedup_dirty1 = std::min(min_speedup_dirty1, speedup);
      t.add_row({name, std::to_string(gates.size()),
                 std::to_string(dirty_size), util::fmt(cold_ms / kReps, 3),
                 util::fmt(inc_ms / kReps, 3), util::fmt(speedup, 1) + "x"});

      util::Json row = util::Json::object();
      row["dirty"] = dirty_size;
      row["cold_round_ms"] = cold_ms / kReps;
      row["incremental_ms"] = inc_ms / kReps;
      row["speedup"] = speedup;
      rows.push_back(std::move(row));
    }

    util::Json entry = util::Json::object();
    entry["circuit"] = name;
    entry["gates"] = gates.size();
    entry["rows"] = std::move(rows);
    circuits.push_back(std::move(entry));
  }

  doc["circuits"] = std::move(circuits);
  doc["reps"] = kReps;
  doc["min_speedup_dirty1"] = min_speedup_dirty1;
  std::printf("%s", t.str().c_str());
  std::printf("(cold round = Sta::run + downstream_delays, what the "
              "protocol paid per round before; smallest dirty-1 speedup "
              "%.1fx)\n",
              min_speedup_dirty1);
}

}  // namespace

int main(int argc, char** argv) {
  util::Json doc = util::Json::object();
  doc["bench"] = "incremental_sta";
  incremental_sta(doc);

  return bench_common::write_bench_json(argc, argv, "incremental_sta", doc);
}
