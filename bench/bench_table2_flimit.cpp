// Table 2 — "Fanout limit (Flimit) for a gate (i) controlled by an
// inverter": the load buffer insertion limit computed from the closed-form
// model (the "Calcul." column) against the same crossing measured with the
// transistor-level transient simulator (the "Simulation" column — the
// paper used HSPICE). Expected shape: inv > nand2 > nand3 > nor2 > nor3,
// values in the 2..7 range, model and simulation within ~15-20%.

#include <cstdio>

#include "common.hpp"
#include "pops/core/buffer.hpp"
#include "pops/spice/measure.hpp"
#include "pops/util/stats.hpp"

namespace {

using namespace pops;
using liberty::CellKind;

/// Transistor-level Fig. 5 crossing: find the fanout where inserting an
/// inverter buffer (sized with the model's optimal CIN) starts winning.
double flimit_simulated(const liberty::Library& lib,
                        const timing::DelayModel& dm, CellKind gate_kind,
                        const core::FlimitOptions& opt) {
  const auto& tech = lib.tech();
  const liberty::Cell& gate = lib.cell(gate_kind);
  const liberty::Cell& buf = lib.cell(CellKind::Inv);
  const double wn_driver = tech.wmin_um * opt.driver_drive_x;
  const double wn_gate = tech.wmin_um * opt.gate_drive_x;
  const double cin_g = gate.cin_ff(tech, wn_gate);

  // Delay of config A (direct drive) minus config B (buffered), measured
  // from the gate's input, worst polarity. Buffer size: model optimum via
  // golden section on the *model* (the paper sizes the buffer once, from
  // its characterisation, not per simulation point).
  auto h = [&](double f) {
    const double cl = f * cin_g;

    auto measure = [&](bool buffered, bool rising) {
      spice::ChainSpec spec;
      spec.kinds = {CellKind::Inv, gate_kind};
      spec.wn_um = {wn_driver, wn_gate};
      spec.extra_load_ff = {0.0, buffered ? 0.0 : cl};
      spec.input_rising = rising;
      spec.input_ramp_ps = 2.0 * dm.default_input_slew_ps();
      if (buffered) {
        // Optimal buffer from the analytic model: cb ~ sqrt(cl * cin_b).
        const double cb = pops::util::golden_section_min(
            [&](double c) {
              const double tg = dm.transition_ps(gate, timing::Edge::Fall,
                                                 cin_g, c);
              return tg + dm.delay_ps(buf, timing::Edge::Rise, tg, c,
                                      cl + buf.cpar_ff(tech, buf.wn_for_cin(tech, c)));
            },
            buf.cin_ff(tech, tech.wmin_um), 2.0 * cl, 1e-3);
        spec.kinds.push_back(CellKind::Inv);
        spec.wn_um.push_back(buf.wn_for_cin(tech, cb));
        spec.extra_load_ff.push_back(cl);
      }
      const spice::ChainMeasurement m = spice::measure_chain(lib, spec);
      // Delay from the gate's input (driver output) to the final load:
      // total minus the driver stage.
      return m.path_delay_ps - m.stage_delay_ps[0];
    };

    double worst_a = 0.0, worst_b = 0.0;
    for (bool rising : {true, false}) {
      worst_a = std::max(worst_a, measure(false, rising));
      worst_b = std::max(worst_b, measure(true, rising));
    }
    return worst_a - worst_b;
  };

  if (h(60.0) <= 0.0) return std::numeric_limits<double>::infinity();
  if (h(1.5) >= 0.0) return 1.5;
  return pops::util::bisect_root(h, 1.5, 60.0, 0.05);
}

}  // namespace

int main() {
  using namespace pops;
  using namespace bench_common;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header(
      "Table 2 — load buffer insertion limit Flimit, model vs simulation",
      "inv 5.7/5.9 > nand2 4.9/5.4 > nand3 4.5/5.2 > nor2 3.8/3.5 > "
      "nor3 2.7/2.5 (paper values calc/sim)");

  const core::FlimitOptions opt;
  util::Table t({"gate(i-1)", "gate(i)", "Flimit calc.", "Flimit sim.",
                 "delta"});
  t.set_align(2, util::Align::Right);
  t.set_align(3, util::Align::Right);
  t.set_align(4, util::Align::Right);

  const CellKind gates[] = {CellKind::Inv, CellKind::Nand2, CellKind::Nand3,
                            CellKind::Nor2, CellKind::Nor3};
  for (CellKind g : gates) {
    const double calc = core::flimit(dm, CellKind::Inv, g, opt);
    const double sim = flimit_simulated(lib, dm, g, opt);
    t.add_row({"inv", lib.cell(g).name, util::fmt(calc, 2),
               util::fmt(sim, 2),
               util::fmt_percent(pops::util::rel_diff(calc, sim), 0)});
  }
  std::printf("%s", t.str().c_str());
  std::printf(
      "\nNote: 'sim.' uses the alpha-power transistor-level transient\n"
      "solver (the reproduction's HSPICE substitute, see DESIGN.md).\n");

  // "A complete characterization must involve all possibility of (i-1)
  // gate and can be done easily following the same procedure" — the full
  // driver sweep (model column only; the paper's Table 2 fixes inv).
  std::printf("\nComplete characterisation across driver kinds (calc.):\n");
  util::Table full({"driver \\ gate", "inv", "nand2", "nand3", "nor2",
                    "nor3"});
  for (CellKind driver : {CellKind::Inv, CellKind::Nand2, CellKind::Nand3,
                          CellKind::Nor2, CellKind::Nor3}) {
    std::vector<std::string> row{lib.cell(driver).name};
    for (CellKind g : gates)
      row.push_back(util::fmt(core::flimit(dm, driver, g, opt), 2));
    full.add_row(row);
  }
  std::printf("%s", full.str().c_str());
  return 0;
}
