// Table 3 — "Comparison of sizing and buffer insertion techniques": the
// minimum delay reachable on every benchmark path with pure gate sizing
// (the link equations) versus sizing plus Flimit-guided buffer insertion,
// and the resulting gain. Paper gains: 2..22% depending on the path
// structure (how overloaded its interior nodes are).

#include <cstdio>

#include "common.hpp"
#include "pops/core/bounds.hpp"
#include "pops/core/buffer.hpp"
#include "pops/util/csv.hpp"

int main() {
  using namespace pops;
  using namespace bench_common;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header(
      "Table 3 — minimum path delay: sizing vs buffer insertion",
      "buffering lowers Tmin by 2..22% depending on path structure; "
      "never hurts (falls back to sizing)");

  util::Table t({"circuit", "method", "Tmin (ns)", "gain", "buffers",
                 "shields"});
  t.set_align(2, util::Align::Right);
  t.set_align(3, util::Align::Right);

  util::CsvWriter csv("table3_buffer.csv");
  csv.row(std::vector<std::string>{"circuit", "tmin_sizing_ns",
                                   "tmin_buffered_ns", "gain"});

  core::FlimitTable& table = ctx.flimits();
  for (const std::string& name : paper_circuit_names()) {
    PathCase pc = critical_path_case(lib, dm, name);
    const core::PathBounds bounds = core::compute_bounds(pc.path, dm);
    const core::BufferInsertionResult buffered =
        core::min_delay_with_buffers(pc.path, dm, table);

    const double gain =
        (bounds.tmin_ps - buffered.delay_ps) / bounds.tmin_ps;
    t.add_row({name, "sizing", util::fmt(bounds.tmin_ps * 1e-3, 3), "", "",
               ""});
    t.add_row({"", "buff", util::fmt(buffered.delay_ps * 1e-3, 3),
               util::fmt_percent(gain, 0),
               std::to_string(buffered.buffers_inserted),
               std::to_string(buffered.shield_buffers)});
    t.add_rule();
    csv.row(std::vector<std::string>{name, util::fmt(bounds.tmin_ps * 1e-3, 4),
                                     util::fmt(buffered.delay_ps * 1e-3, 4),
                                     util::fmt(gain, 4)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\nseries written to table3_buffer.csv\n");
  return 0;
}
