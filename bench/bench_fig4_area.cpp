// Fig. 4 — "Comparison of the constraint distribution methods on different
// ISCAS circuits": total transistor width ΣW needed to implement each
// critical path under the identical hard constraint Tc = 1.2*Tmin, POPS
// (constant sensitivity) vs AMPS (greedy iterative). Expected shape:
// POPS at or below AMPS everywhere.

#include <cstdio>

#include "common.hpp"
#include "pops/baseline/amps.hpp"
#include "pops/core/bounds.hpp"
#include "pops/core/sensitivity.hpp"
#include "pops/util/csv.hpp"

int main() {
  using namespace pops;
  using namespace bench_common;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header(
      "Fig. 4 — path area at the hard constraint Tc = 1.2*Tmin: POPS vs AMPS",
      "the equal-sensitivity method yields the smaller area/power "
      "implementation on every circuit");

  // The paper's Fig. 4 set.
  const std::vector<std::string> circuits = {"Adder16", "c432",  "c1355",
                                             "c1908",   "c3540", "c5315",
                                             "c7552"};

  util::Table t({"circuit", "Tc (ns)", "sum W POPS (um)", "sum W AMPS (um)",
                 "AMPS/POPS"});
  for (std::size_t c = 1; c < 5; ++c) t.set_align(c, util::Align::Right);

  util::CsvWriter csv("fig4_area.csv");
  csv.row(std::vector<std::string>{"circuit", "area_pops_um", "area_amps_um"});

  for (const std::string& name : circuits) {
    PathCase pc = critical_path_case(lib, dm, name);
    const core::PathBounds bounds = core::compute_bounds(pc.path, dm);
    const double tc = 1.2 * bounds.tmin_ps;

    const core::SizingResult pops = core::size_for_constraint(pc.path, dm, tc);
    const baseline::AmpsResult amps = baseline::meet_constraint(pc.path, dm, tc);

    t.add_row({name, util::fmt(tc * 1e-3, 3), util::fmt(pops.area_um, 1),
               amps.feasible ? util::fmt(amps.area_um, 1) : "infeasible",
               amps.feasible ? util::fmt(amps.area_um / pops.area_um, 2)
                             : "-"});
    csv.row(std::vector<std::string>{name, util::fmt(pops.area_um, 2),
                                     util::fmt(amps.area_um, 2)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\nseries written to fig4_area.csv\n");
  return 0;
}
