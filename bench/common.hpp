#pragma once
// Shared plumbing for the reproduction benches: every experiment starts
// from the critical path of a benchmark circuit, extracted exactly the way
// POPS does it (STA -> most critical PI->PO path -> bounded path with
// frozen off-path loads).

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/core/protocol.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/obs/clock.hpp"
#include "pops/timing/sta.hpp"
#include "pops/util/json.hpp"
#include "pops/util/table.hpp"

namespace bench_common {

using pops::api::OptContext;
using pops::liberty::Library;
using pops::netlist::Netlist;
using pops::timing::BoundedPath;
using pops::timing::DelayModel;

/// A named benchmark critical path ready for optimisation.
struct PathCase {
  std::string name;
  std::size_t gate_count;  ///< gates on the extracted path
  BoundedPath path;
};

/// Extract the critical path of a named benchmark.
inline PathCase critical_path_case(const Library& lib, const DelayModel& dm,
                                   const std::string& name) {
  Netlist nl = pops::netlist::make_benchmark(lib, name);
  const pops::timing::Sta sta(nl, dm);
  const pops::timing::StaResult res = sta.run();
  const pops::timing::TimedPath tp = sta.critical_path(res);
  BoundedPath bp =
      BoundedPath::extract(nl, tp, dm.default_input_slew_ps());
  return PathCase{name, bp.size(), std::move(bp)};
}

/// Context-based overload: the way new experiments should pull their
/// environment (one OptContext per technology node).
inline PathCase critical_path_case(const OptContext& ctx,
                                   const std::string& name) {
  return critical_path_case(ctx.lib(), ctx.dm(), name);
}

/// The Table 1 benchmark list (paper order).
inline const std::vector<std::string>& paper_circuit_names() {
  static const std::vector<std::string> names = {
      "Adder16", "fpd",   "c432",  "c499",  "c880",  "c1355",
      "c1908",   "c3540", "c5315", "c6288", "c7552",
  };
  return names;
}

/// Milliseconds spent in `fn` (single shot; the workloads here are large
/// enough that one run is representative, mirroring the paper's Table 1).
/// Clocked through obs — the one blessed clock reader — like every other
/// measurement in the tree.
template <typename Fn>
double time_ms(Fn&& fn) {
  const pops::obs::StopWatch watch;
  fn();
  return watch.elapsed_ms();
}

/// Record ms_base/ms_parallel as row["speedup"] — but only when the host
/// can actually run `threads` workers concurrently. On an oversubscribed
/// host (hardware_threads < threads) the parallel timing measures
/// scheduler churn, not scaling, so the row gets "speedup": null plus a
/// "note" naming the limit instead of a misleading number. Per-thread-
/// count timings should always be emitted alongside; only the ratio is
/// suppressed.
inline void add_guarded_speedup(pops::util::Json& row, double ms_base,
                                double ms_parallel, std::size_t threads) {
  const std::size_t hw = std::thread::hardware_concurrency();
  row["hardware_threads"] = hw;
  if (hw >= threads && ms_parallel > 0.0) {
    row["speedup"] = ms_base / ms_parallel;
  } else {
    row["speedup"] = pops::util::Json();  // null
    row["note"] = "host has " + std::to_string(hw) +
                  " hardware thread(s); a " + std::to_string(threads) +
                  "-worker speedup would measure oversubscription, not "
                  "scaling";
  }
}

/// Write a bench's BENCH_<name>.json artifact (cross-PR perf tracking):
/// argv[1] overrides the default path. Returns the process exit code so
/// mains can `return write_bench_json(...)`.
inline int write_bench_json(int argc, char** argv, const char* name,
                            const pops::util::Json& doc) {
  const std::string path =
      argc > 1 ? argv[1] : std::string("BENCH_") + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << doc.dump(2) << "\n";
  std::printf("\nJSON timings written to %s\n", path.c_str());
  return 0;
}

/// Print a standard bench header.
inline void print_header(const char* experiment, const char* claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper reference shape: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace bench_common
