// Ablation — constraint distribution methods (paper §3.2).
//
// The paper motivates the constant-sensitivity method against the
// "simplest method" (Sutherland's equal effort-delay distribution, from
// Mead's ideal-inverter rule): equal-delay is fast but oversizes gates
// with a large logical weight. This ablation quantifies the claim on
// every benchmark path at two constraints, with the greedy industrial
// proxy as the third column.

#include <cstdio>

#include "common.hpp"
#include "pops/baseline/amps.hpp"
#include "pops/core/bounds.hpp"
#include "pops/core/sensitivity.hpp"

int main() {
  using namespace pops;
  using namespace bench_common;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header(
      "Ablation — constraint distribution: constant sensitivity vs "
      "equal effort-delay vs greedy",
      "equal-delay oversizes heavy gates; constant sensitivity is the "
      "minimum-area distribution");

  for (double ratio : {1.3, 1.8}) {
    std::printf("\n--- Tc = %.1f * Tmin ---\n", ratio);
    util::Table t({"circuit", "const-sens (um)", "equal-effort (um)",
                   "greedy (um)", "equal/cs", "greedy/cs"});
    for (std::size_t c = 1; c < 6; ++c) t.set_align(c, util::Align::Right);

    for (const std::string& name : paper_circuit_names()) {
      PathCase pc = critical_path_case(lib, dm, name);
      const core::PathBounds bounds = core::compute_bounds(pc.path, dm);
      const double tc = ratio * bounds.tmin_ps;

      const core::SizingResult cs = core::size_for_constraint(pc.path, dm, tc);
      const core::SizingResult ee = core::size_equal_effort(pc.path, dm, tc);
      const baseline::AmpsResult gr = baseline::meet_constraint(pc.path, dm, tc);

      auto cell = [](bool ok, double v) {
        return ok ? util::fmt(v, 1) : std::string("infeas.");
      };
      t.add_row({name, cell(cs.feasible, cs.area_um),
                 cell(ee.feasible, ee.area_um), cell(gr.feasible, gr.area_um),
                 ee.feasible && cs.feasible
                     ? util::fmt(ee.area_um / cs.area_um, 2)
                     : "-",
                 gr.feasible && cs.feasible
                     ? util::fmt(gr.area_um / cs.area_um, 2)
                     : "-"});
    }
    std::printf("%s", t.str().c_str());
  }
  return 0;
}
