// Ablation — buffer insertion styles.
//
// DESIGN.md calls out a deliberate design choice in the buffer-insertion
// engine: the paper's Fig. 5 mechanism puts the buffer *in the path*
// (before the node's whole load), while this implementation additionally
// supports *shield* buffers that absorb only the off-path fanout (their
// delay leaves the critical path entirely). This ablation contrasts the
// three styles on the minimum reachable delay and on area at a hard
// constraint.

#include <cstdio>

#include "common.hpp"
#include "pops/core/bounds.hpp"
#include "pops/core/buffer.hpp"
#include "pops/core/sensitivity.hpp"

int main() {
  using namespace pops;
  using namespace bench_common;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header(
      "Ablation — buffer styles: in-path (paper Fig. 5) vs shield vs auto",
      "shields dominate when the overload is off-path fanout; in-path "
      "buffers when it is the terminal load");

  core::FlimitTable& table = ctx.flimits();

  util::Table t({"circuit", "Tmin sizing (ns)", "in-path (ns)", "shield (ns)",
                 "auto (ns)", "best style"});
  for (std::size_t c = 1; c < 5; ++c) t.set_align(c, util::Align::Right);

  for (const std::string& name : paper_circuit_names()) {
    PathCase pc = critical_path_case(lib, dm, name);
    const timing::BoundedPath at_tmin = core::size_for_tmin(pc.path, dm);
    const double tmin = at_tmin.delay_ps(dm);

    auto tmin_with = [&](core::InsertionStyle style) {
      core::BufferInsertionResult r =
          core::insert_buffers_local(at_tmin, dm, table, style);
      if (r.buffers_inserted == 0) return tmin;
      return core::size_for_tmin(r.path, dm).delay_ps(dm);
    };

    const double inpath = tmin_with(core::InsertionStyle::InPathOnly);
    const double shield = tmin_with(core::InsertionStyle::ShieldOnly);
    const double both = tmin_with(core::InsertionStyle::Auto);

    const char* best = "none";
    double best_v = tmin;
    if (inpath < best_v) best = "in-path", best_v = inpath;
    if (shield < best_v) best = "shield", best_v = shield;
    if (both < best_v) best = "auto", best_v = both;

    t.add_row({name, util::fmt(tmin * 1e-3, 3), util::fmt(inpath * 1e-3, 3),
               util::fmt(shield * 1e-3, 3), util::fmt(both * 1e-3, 3), best});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}
