// Extension — scaling studies beyond the paper, in two directions:
//
//  1. Technology scaling: the paper evaluates a single 0.25µm process. The
//     library carries generic 0.18µm and 0.13µm parameter sets, so the
//     protocol's behaviour can be checked across nodes: Tmin scales with
//     tau, the constraint domains keep their structure, and the Flimit
//     metric stays in the same band (it is a ratio of delays, so
//     first-order node-independent).
//
//  2. Workload scaling: Optimizer::run_many fans the whole ISCAS set out
//     across a thread pool (each circuit is independent). The batch is run
//     with 1 and 4 workers; the results must be bit-identical and the
//     multi-worker batch faster on multi-core hosts.

#include <cstdio>
#include <thread>
#include <vector>

#include "common.hpp"
#include "pops/util/json.hpp"

namespace {

using namespace pops;
using namespace bench_common;

void technology_scaling(util::Json& doc) {
  print_header(
      "Extension — the protocol across technology nodes (0.25/0.18/0.13um)",
      "Tmin tracks tau; Flimit and the domain structure are "
      "first-order node-invariant");

  const process::Technology nodes[] = {
      process::Technology::cmos025(),
      process::Technology::cmos018(),
      process::Technology::cmos013(),
  };

  util::Table t({"node", "tau (ps)", "Tmin c1355 (ns)", "Flimit inv",
                 "Flimit nor3", "area @1.2Tmin (um)"});
  for (std::size_t c = 1; c < 6; ++c) t.set_align(c, util::Align::Right);

  util::Json rows = util::Json::array();
  for (const process::Technology& tech : nodes) {
    api::OptContext ctx(tech);
    const timing::DelayModel& dm = ctx.dm();
    core::FlimitTable& table = ctx.flimits();

    PathCase pc = critical_path_case(ctx, "c1355");
    const core::PathBounds bounds = core::compute_bounds(pc.path, dm);
    const core::SizingResult sized =
        core::size_for_constraint(pc.path, dm, 1.2 * bounds.tmin_ps);

    const double flimit_inv =
        table.get(dm, liberty::CellKind::Inv, liberty::CellKind::Inv);
    const double flimit_nor3 =
        table.get(dm, liberty::CellKind::Inv, liberty::CellKind::Nor3);
    t.add_row({tech.name, util::fmt(tech.tau_ps, 1),
               util::fmt(bounds.tmin_ps * 1e-3, 3),
               util::fmt(flimit_inv, 2), util::fmt(flimit_nor3, 2),
               util::fmt(sized.area_um, 1)});

    util::Json row = util::Json::object();
    row["node"] = tech.name;
    row["tau_ps"] = tech.tau_ps;
    row["tmin_c1355_ps"] = bounds.tmin_ps;
    row["flimit_inv"] = flimit_inv;
    row["flimit_nor3"] = flimit_nor3;
    row["area_at_1p2_tmin_um"] = sized.area_um;
    rows.push_back(std::move(row));
  }
  doc["technology_scaling"] = std::move(rows);
  std::printf("%s", t.str().c_str());
}

std::vector<Netlist> make_iscas_fleet(const api::OptContext& ctx) {
  std::vector<Netlist> fleet;
  for (const std::string& name : paper_circuit_names())
    fleet.push_back(pops::netlist::make_benchmark(ctx.lib(), name));
  return fleet;
}

void batch_scaling(util::Json& doc) {
  std::printf("\n");
  print_header(
      "Extension — batch throughput: Optimizer::run_many over the ISCAS set",
      "independent circuits fan out across a thread pool; results are "
      "bit-identical for any worker count");

  api::OptContext ctx;
  ctx.warm_flimits();  // exclude one-time characterisation from the timing
  const api::Optimizer optimizer(ctx);
  constexpr double kRatio = 0.85;

  std::vector<api::PipelineReport> r1, r4;
  std::vector<Netlist> fleet1 = make_iscas_fleet(ctx);
  const double ms1 =
      time_ms([&] { r1 = optimizer.run_many_relative(fleet1, kRatio, 1); });

  std::vector<Netlist> fleet4 = make_iscas_fleet(ctx);
  const double ms4 =
      time_ms([&] { r4 = optimizer.run_many_relative(fleet4, kRatio, 4); });

  bool identical = r1.size() == r4.size();
  for (std::size_t i = 0; identical && i < r1.size(); ++i)
    identical = r1[i].final_delay_ps == r4[i].final_delay_ps &&
                r1[i].final_area_um == r4[i].final_area_um &&
                r1[i].total_buffers_inserted() == r4[i].total_buffers_inserted();
  std::size_t met = 0;
  for (const api::PipelineReport& r : r1)
    if (r.met) ++met;

  util::Table t({"circuits", "Tc", "1 thread (ms)", "4 threads (ms)",
                 "speed-up", "identical", "met"});
  for (std::size_t c = 2; c < 5; ++c) t.set_align(c, util::Align::Right);
  t.add_row({std::to_string(fleet1.size()),
             util::fmt(kRatio, 2) + "x initial", util::fmt(ms1, 0),
             util::fmt(ms4, 0), util::fmt(ms1 / ms4, 2) + "x",
             identical ? "yes" : "NO", std::to_string(met) + "/" +
                 std::to_string(fleet1.size())});
  std::printf("%s", t.str().c_str());
  std::printf("(host has %u hardware threads; the speed-up saturates at "
              "min(4, cores, circuits))\n",
              std::thread::hardware_concurrency());

  util::Json batch = util::Json::object();
  batch["circuits"] = fleet1.size();
  batch["tc_ratio"] = kRatio;
  // Per-thread-count timings are always recorded; the ratio only when the
  // host genuinely has 4 hardware threads (add_guarded_speedup nulls it
  // with a note otherwise — an oversubscribed "speedup" is noise and has
  // polluted cross-PR tracking before).
  batch["ms_1_thread"] = ms1;
  batch["ms_4_threads"] = ms4;
  add_guarded_speedup(batch, ms1, ms4, 4);
  batch["identical"] = identical;
  batch["met"] = met;
  doc["batch_throughput"] = std::move(batch);
}

}  // namespace

int main(int argc, char** argv) {
  // Machine-readable timings ride along with the stdout tables so the
  // perf trajectory can be tracked across PRs (BENCH_*.json artifacts).
  util::Json doc = util::Json::object();
  doc["bench"] = "scaling_nodes";
  technology_scaling(doc);
  batch_scaling(doc);

  return bench_common::write_bench_json(argc, argv, "scaling_nodes", doc);
}
