// Extension — technology scaling study (beyond the paper).
//
// The paper evaluates a single 0.25µm process. The library here carries
// generic 0.18µm and 0.13µm parameter sets, so the protocol's behaviour
// can be checked across nodes: Tmin scales with tau, the constraint
// domains keep their structure, and the Flimit metric stays in the same
// band (it is a ratio of delays, so first-order node-independent).

#include <cstdio>

#include "common.hpp"
#include "pops/core/buffer.hpp"
#include "pops/core/protocol.hpp"

int main() {
  using namespace pops;
  using namespace bench_common;

  print_header(
      "Extension — the protocol across technology nodes (0.25/0.18/0.13um)",
      "Tmin tracks tau; Flimit and the domain structure are "
      "first-order node-invariant");

  const process::Technology nodes[] = {
      process::Technology::cmos025(),
      process::Technology::cmos018(),
      process::Technology::cmos013(),
  };

  util::Table t({"node", "tau (ps)", "Tmin c1355 (ns)", "Flimit inv",
                 "Flimit nor3", "area @1.2Tmin (um)"});
  for (std::size_t c = 1; c < 6; ++c) t.set_align(c, util::Align::Right);

  for (const process::Technology& tech : nodes) {
    const liberty::Library lib(tech);
    const timing::DelayModel dm(lib);
    core::FlimitTable table;

    PathCase pc = critical_path_case(lib, dm, "c1355");
    const core::PathBounds bounds = core::compute_bounds(pc.path, dm);
    const core::SizingResult sized =
        core::size_for_constraint(pc.path, dm, 1.2 * bounds.tmin_ps);

    t.add_row({tech.name, util::fmt(tech.tau_ps, 1),
               util::fmt(bounds.tmin_ps * 1e-3, 3),
               util::fmt(table.get(dm, liberty::CellKind::Inv,
                                   liberty::CellKind::Inv), 2),
               util::fmt(table.get(dm, liberty::CellKind::Inv,
                                   liberty::CellKind::Nor3), 2),
               util::fmt(sized.area_um, 1)});
  }
  std::printf("%s", t.str().c_str());
  return 0;
}
