// Extension — delay-model backend parity and cost.
//
// The protocol is derived on the closed-form model of eq. (1-3); the
// TableModel backend replays the same timing queries through NLDM-style
// (slew x load) lookup tables with bilinear interpolation. Two questions
// decide whether table-backed sweeps are usable for Fig. 6/8-style
// comparisons:
//
//  1. Parity — how far do STA critical delays and path evaluations drift
//     between the backends on real ISCAS circuits (bilinear error on the
//     Miller-term curvature, accumulated per stage)?
//  2. Cost — what does a table lookup cost relative to evaluating the
//     closed form, over full STA runs and over hot path re-evaluations
//     (the inner loop of every sizing sweep)?
//
// Emits BENCH_backend_parity.json for cross-PR perf tracking.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "pops/timing/table_model.hpp"
#include "pops/util/json.hpp"

namespace {

using namespace pops;
using namespace bench_common;
using timing::ClosedFormModel;
using timing::Sta;
using timing::TableModel;

constexpr int kStaReps = 40;
constexpr int kPathReps = 20000;

void backend_parity(util::Json& doc) {
  print_header(
      "Extension — closed-form eq. (1-3) vs. NLDM-style TableModel backend",
      "table STA tracks the closed form within the bilinear interpolation "
      "error; lookups cost the same order as the closed form");

  api::OptContext ctx;
  const ClosedFormModel cf(ctx.lib());
  const TableModel tm = TableModel::characterize(cf);

  util::Table t({"circuit", "gates", "closed-form (ps)", "table (ps)",
                 "rel err", "STA cf (ms)", "STA tbl (ms)", "path cf (ms)",
                 "path tbl (ms)"});
  for (std::size_t c = 1; c < 9; ++c) t.set_align(c, util::Align::Right);

  util::Json rows = util::Json::array();
  double worst_rel_err = 0.0;
  for (const std::string& name : {std::string("c432"), std::string("c880"),
                                  std::string("c1355"), std::string("c3540")}) {
    const Netlist nl = pops::netlist::make_benchmark(ctx.lib(), name);

    const Sta sta_cf(nl, cf);
    const Sta sta_tm(nl, tm);
    double delay_cf = 0.0, delay_tm = 0.0;
    const double ms_cf = time_ms([&] {
      for (int i = 0; i < kStaReps; ++i) delay_cf = sta_cf.run().critical_delay_ps;
    });
    const double ms_tm = time_ms([&] {
      for (int i = 0; i < kStaReps; ++i) delay_tm = sta_tm.run().critical_delay_ps;
    });
    const double rel_err = std::abs(delay_tm - delay_cf) / delay_cf;
    worst_rel_err = std::max(worst_rel_err, rel_err);

    // Hot-loop cost: full-path delay evaluation (the kernel every link /
    // sensitivity sweep iterates).
    PathCase pc = critical_path_case(ctx.lib(), cf, name);
    double sink = 0.0;
    const double path_cf = time_ms([&] {
      for (int i = 0; i < kPathReps; ++i) sink += pc.path.delay_ps(cf);
    });
    const double path_tm = time_ms([&] {
      for (int i = 0; i < kPathReps; ++i) sink += pc.path.delay_ps(tm);
    });
    if (sink == 0.0) std::printf(" ");  // keep the evaluations observable

    t.add_row({name, std::to_string(nl.stats().n_gates),
               util::fmt(delay_cf, 1), util::fmt(delay_tm, 1),
               util::fmt(100.0 * rel_err, 3) + "%", util::fmt(ms_cf, 1),
               util::fmt(ms_tm, 1), util::fmt(path_cf, 1),
               util::fmt(path_tm, 1)});

    util::Json row = util::Json::object();
    row["circuit"] = name;
    row["gates"] = nl.stats().n_gates;
    row["critical_delay_closed_form_ps"] = delay_cf;
    row["critical_delay_table_ps"] = delay_tm;
    row["rel_err"] = rel_err;
    row["sta_ms_closed_form"] = ms_cf / kStaReps;
    row["sta_ms_table"] = ms_tm / kStaReps;
    row["path_eval_us_closed_form"] = 1e3 * path_cf / kPathReps;
    row["path_eval_us_table"] = 1e3 * path_tm / kPathReps;
    rows.push_back(std::move(row));
  }
  doc["circuits"] = std::move(rows);
  doc["worst_rel_err"] = worst_rel_err;
  doc["sta_reps"] = kStaReps;
  doc["path_reps"] = kPathReps;
  std::printf("%s", t.str().c_str());
  std::printf("(default characterization grid; worst critical-delay "
              "deviation %.3f%%)\n",
              100.0 * worst_rel_err);
}

}  // namespace

int main(int argc, char** argv) {
  util::Json doc = util::Json::object();
  doc["bench"] = "backend_parity";
  backend_parity(doc);

  return bench_common::write_bench_json(argc, argv, "backend_parity", doc);
}
