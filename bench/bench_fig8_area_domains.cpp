// Fig. 8 — "Area saving in the different constraint domain for different
// optimization methods": path implementation area for the three methods
// (pure sizing / locally-sized buffers + sizing / global buffering +
// sizing) at a weak, a medium and a hard constraint, on every benchmark.
// Paper shape: the methods are nearly equivalent at weak and medium
// constraints; at hard constraints buffer insertion with global sizing
// yields an important area saving.

#include <cstdio>

#include "common.hpp"
#include "pops/core/protocol.hpp"
#include "pops/util/csv.hpp"

int main() {
  using namespace pops;
  using namespace bench_common;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header(
      "Fig. 8 — area per method across constraint domains",
      "weak/medium: methods comparable; hard: buffering + global sizing "
      "saves significant area (or is the only feasible method)");

  struct Domain {
    const char* label;
    double ratio;
  };
  const Domain domains[] = {
      {"hard (Tc = 1.1 Tmin)", 1.1},
      {"medium (Tc = 1.8 Tmin)", 1.8},
      {"weak (Tc = 3.0 Tmin)", 3.0},
  };

  core::FlimitTable& table = ctx.flimits();
  util::CsvWriter csv("fig8_area_domains.csv");
  csv.row(std::vector<std::string>{"domain", "circuit", "sizing_um",
                                   "local_buff_um", "global_buff_um"});

  for (const Domain& dom : domains) {
    std::printf("\n--- %s ---\n", dom.label);
    util::Table t({"circuit", "sizing (um)", "local buff (um)",
                   "global buff (um)", "best"});
    for (std::size_t c = 1; c < 4; ++c) t.set_align(c, util::Align::Right);

    for (const std::string& name : paper_circuit_names()) {
      PathCase pc = critical_path_case(lib, dm, name);
      const core::PathBounds bounds = core::compute_bounds(pc.path, dm);
      const double tc = dom.ratio * bounds.tmin_ps;

      const core::SizingResult s = core::optimize_with_method(
          pc.path, dm, table, tc, core::Method::Sizing);
      const core::SizingResult l = core::optimize_with_method(
          pc.path, dm, table, tc, core::Method::LocalBufferSizing);
      const core::SizingResult g = core::optimize_with_method(
          pc.path, dm, table, tc, core::Method::GlobalBufferSizing);

      auto cell = [](const core::SizingResult& r) {
        return r.feasible ? util::fmt(r.area_um, 1) : std::string("infeas.");
      };
      const char* best = "-";
      double best_area = 1e300;
      if (s.feasible && s.area_um < best_area) best = "sizing", best_area = s.area_um;
      if (l.feasible && l.area_um < best_area) best = "local", best_area = l.area_um;
      if (g.feasible && g.area_um < best_area) best = "global", best_area = g.area_um;

      t.add_row({name, cell(s), cell(l), cell(g), best});
      csv.row(std::vector<std::string>{dom.label, name, util::fmt(s.area_um, 2),
                                       util::fmt(l.area_um, 2),
                                       util::fmt(g.area_um, 2)});
    }
    std::printf("%s", t.str().c_str());
  }
  std::printf("\nseries written to fig8_area_domains.csv\n");
  return 0;
}
