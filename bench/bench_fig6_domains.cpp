// Fig. 6 — "Constraint domain definition": delay-vs-area trade-off curves
// of a 13-gate array for the two methods (pure sizing, and buffer
// insertion with global sizing), swept across the constraint range. The
// three constraint domains of the protocol emerge from the crossings:
//   weak   (Tc > 2.5 Tmin)        sizing is the best solution
//   medium (1.2 < Tc/Tmin < 2.5)  buffering optional, saves area
//   hard   (Tc < 1.2 Tmin)        buffering + global sizing wins

#include <cstdio>

#include "common.hpp"
#include "pops/core/protocol.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/util/csv.hpp"

int main() {
  using namespace pops;
  using namespace bench_common;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header(
      "Fig. 6 — delay/area fronts of a 13-gate array; constraint domains",
      "sizing curve and buffering curve cross near the 1.2*Tmin / "
      "2.5*Tmin boundaries");

  netlist::Netlist nl = netlist::make_fig6_array(lib);
  const timing::Sta sta(nl, dm);
  const timing::TimedPath tp = sta.critical_path(sta.run());
  timing::BoundedPath path =
      timing::BoundedPath::extract(nl, tp, dm.default_input_slew_ps());

  core::FlimitTable& table = ctx.flimits();
  const core::PathBounds bounds = core::compute_bounds(path, dm);
  std::printf("workload: 13-gate array with overloaded interior nodes, "
              "Tmin = %.1f ps, Tmax = %.1f ps\n\n",
              bounds.tmin_ps, bounds.tmax_ps);

  util::Table t({"Tc/Tmin", "domain", "area sizing (um)",
                 "area buffered (um)", "winner"});
  t.set_align(2, util::Align::Right);
  t.set_align(3, util::Align::Right);

  util::CsvWriter csv("fig6_domains.csv");
  csv.row(std::vector<std::string>{"tc_over_tmin", "area_sizing_um",
                                   "area_buffered_um"});

  for (double ratio : {1.02, 1.05, 1.1, 1.15, 1.2, 1.3, 1.5, 1.8, 2.1, 2.5,
                       3.0, 3.5}) {
    const double tc = ratio * bounds.tmin_ps;
    const core::SizingResult sizing =
        core::optimize_with_method(path, dm, table, tc, core::Method::Sizing);
    const core::SizingResult buffered = core::optimize_with_method(
        path, dm, table, tc, core::Method::GlobalBufferSizing);

    const char* winner = "-";
    if (sizing.feasible && buffered.feasible)
      winner = sizing.area_um <= buffered.area_um ? "sizing" : "buffering";
    else if (buffered.feasible)
      winner = "buffering (sizing infeasible)";
    else if (sizing.feasible)
      winner = "sizing";

    t.add_row({util::fmt(ratio, 2),
               core::to_string(core::classify_constraint(tc, bounds.tmin_ps)),
               sizing.feasible ? util::fmt(sizing.area_um, 1) : "infeas.",
               buffered.feasible ? util::fmt(buffered.area_um, 1) : "infeas.",
               winner});
    csv.row(std::vector<double>{ratio, sizing.area_um, buffered.area_um});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\nseries written to fig6_domains.csv\n");
  return 0;
}
