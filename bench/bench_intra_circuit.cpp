// bench_intra_circuit — the intra-circuit timing-engine experiments:
//
//   1. slack maintenance   incremental slack queries after a 1-gate edit
//                          vs a cold STA + backward sweep (c1355);
//   2. K-path gating       cached re-enumeration skips on a real protocol
//                          run (zero-progress rounds replay the last list);
//   3. cross-pass sharing  full O(E) STA runs per optimized point under
//                          the pipeline's shared engine;
//   4. level parallelism   deterministic level-parallel sweeps on a
//                          synthetic 120k-gate netlist at 1/2/4 workers.
//
// Every mode is bitwise-checked against its sequential / cold reference
// here (not just in the unit tests) so the timings can't silently drift
// away from the exact semantics they claim to accelerate. Emits
// BENCH_intra_circuit.json (argv[1] overrides the path).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "pops/api/api.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/netlist.hpp"
#include "pops/obs/metrics.hpp"
#include "pops/timing/incremental_sta.hpp"
#include "pops/timing/sta.hpp"
#include "pops/util/json.hpp"
#include "pops/util/table.hpp"

namespace {

using namespace pops;
using namespace bench_common;

double counter_value(const char* name) {
  const util::Json snap = obs::Registry::global().snapshot_json();
  const util::Json* counters = snap.find("counters");
  if (counters == nullptr) return 0.0;
  const util::Json* cell = counters->find(name);
  return cell == nullptr ? 0.0 : cell->as_number();
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// ---- 1. incremental slack maintenance vs cold sweeps -------------------------

void slack_incremental(const api::OptContext& ctx, util::Json& doc) {
  print_header(
      "Leg 1 — slack queries after a 1-gate edit: maintained vs cold",
      "shield-style per-candidate slack queries cost O(dirty cone), not "
      "O(E)");

  const std::string circuit = "c1355";
  constexpr int kIters = 200;
  netlist::Netlist nl = netlist::make_benchmark(ctx.lib(), circuit);
  const timing::DelayModel& dm = ctx.dm();

  // The edited gate: mid netlist, alternating between two drives so every
  // iteration really changes timing.
  const netlist::NodeId g = nl.gates()[nl.gates().size() / 2];
  const double w0 = nl.node(g).wn_um;

  timing::IncrementalSta inc(nl, dm);
  const double tc = inc.run_full().critical_delay_ps;
  inc.slacks(tc);  // materialize once; the loop below only maintains

  const double ms_inc = time_ms([&] {
    for (int i = 0; i < kIters; ++i) {
      nl.set_drive(g, i % 2 == 0 ? w0 * 1.25 : w0);
      const netlist::NodeId dirty[] = {g};
      inc.update(dirty);
      (void)inc.slacks(tc);
    }
  });

  nl.set_drive(g, w0);
  const netlist::NodeId dirty[] = {g};
  inc.update(dirty);

  const timing::Sta sta(nl, dm);
  std::vector<double> cold_slack;
  const double ms_cold = time_ms([&] {
    for (int i = 0; i < kIters; ++i) {
      nl.set_drive(g, i % 2 == 0 ? w0 * 1.25 : w0);
      const timing::StaResult res = sta.run();
      cold_slack = sta.slacks(res, tc);
    }
  });
  nl.set_drive(g, w0);
  const timing::StaResult cold = sta.run();
  cold_slack = sta.slacks(cold, tc);

  const std::vector<double>& inc_slack = inc.slacks(tc);
  bool identical = inc_slack.size() == cold_slack.size();
  for (std::size_t i = 0; identical && i < cold_slack.size(); ++i)
    identical = same_bits(inc_slack[i], cold_slack[i]);

  util::Table t({"circuit", "edits", "cold (ms)", "incremental (ms)",
                 "speed-up", "identical"});
  for (std::size_t c = 2; c < 5; ++c) t.set_align(c, util::Align::Right);
  t.add_row({circuit, std::to_string(kIters), util::fmt(ms_cold, 1),
             util::fmt(ms_inc, 1), util::fmt(ms_cold / ms_inc, 1) + "x",
             identical ? "yes" : "NO"});
  std::printf("%s", t.str().c_str());

  util::Json leg = util::Json::object();
  leg["circuit"] = circuit;
  leg["edits"] = kIters;
  leg["dirty_gates_per_edit"] = 1;
  leg["ms_cold"] = ms_cold;
  leg["ms_incremental"] = ms_inc;
  // Same-process, same-thread ratio — no hardware-thread guard needed.
  leg["speedup"] = ms_cold / ms_inc;
  leg["identical"] = identical;
  doc["slack_incremental"] = std::move(leg);
}

// ---- 2. gated K-path re-enumeration ------------------------------------------

// One protocol run with the enumeration counters sampled around it.
struct GatingRun {
  std::size_t rounds = 0;
  bool met = false;
  double enumerations = 0.0;
  double cached_skips = 0.0;
};

GatingRun gated_protocol_run(api::OptContext& ctx, netlist::Netlist& nl,
                             double tc_ps) {
  core::CircuitOptions opt;
  opt.max_rounds = 8;
  const double enum_before = counter_value("sta.kpaths_enumerated");
  const double cached_before = counter_value("sta.kpaths_cached");
  const core::CircuitResult res =
      api::ProtocolPass::run_protocol(nl, ctx.dm(), ctx.flimits(), tc_ps, opt);
  GatingRun out;
  out.rounds = res.rounds;
  out.met = res.met;
  out.enumerations = counter_value("sta.kpaths_enumerated") - enum_before;
  out.cached_skips = counter_value("sta.kpaths_cached") - cached_before;
  return out;
}

void kpath_gating(api::OptContext& ctx, util::Json& doc) {
  std::printf("\n");
  print_header(
      "Leg 2 — K-path re-enumeration gating on real protocol runs",
      "zero-progress rounds replay the cached path list instead of "
      "re-enumerating");

  // Progress run: every round resizes something, so every round must
  // re-enumerate — the gate may not fire spuriously.
  const std::string circuit = "c432";
  constexpr double kRatio = 0.55;
  netlist::Netlist iscas = netlist::make_benchmark(ctx.lib(), circuit);
  const double initial =
      timing::Sta(iscas, ctx.dm()).run().critical_delay_ps;
  const GatingRun progress = gated_protocol_run(ctx, iscas, initial * kRatio);

  // Zero-progress run: the critical path's only gate drives the PO straight
  // from a PI, and the first gate of any path is input-load-pinned (its CIN
  // is the primary input's load, so the sizing transform may not touch it).
  // The protocol can therefore never improve this path: every round after
  // the first just re-checks the same delays against a 3%-tighter target,
  // and the gate replays the cached enumeration instead of re-running the
  // best-first K-paths search. The fast side path stays below the target,
  // which is what keeps the round loop re-checking instead of breaking.
  netlist::Netlist pinned(ctx.lib(), "input_pinned");
  const netlist::NodeId a = pinned.add_input("a");
  const netlist::NodeId h1 =
      pinned.add_gate(liberty::CellKind::Inv, "h1", {a});
  pinned.mark_output(h1, 1e4);  // heavy PO: the pinned path stays critical
  const netlist::NodeId b = pinned.add_input("b");
  const netlist::NodeId s1 =
      pinned.add_gate(liberty::CellKind::Inv, "s1", {b});
  pinned.mark_output(s1, 1.0);
  const double pinned_initial =
      timing::Sta(pinned, ctx.dm()).run().critical_delay_ps;
  const GatingRun zero =
      gated_protocol_run(ctx, pinned, pinned_initial * 0.3);

  util::Table t({"run", "circuit", "rounds", "enumerations",
                 "cached skips"});
  for (std::size_t c = 2; c < 5; ++c) t.set_align(c, util::Align::Right);
  t.add_row({"progress", circuit, std::to_string(progress.rounds),
             util::fmt(progress.enumerations, 0),
             util::fmt(progress.cached_skips, 0)});
  t.add_row({"zero-progress", "input_pinned", std::to_string(zero.rounds),
             util::fmt(zero.enumerations, 0),
             util::fmt(zero.cached_skips, 0)});
  std::printf("%s", t.str().c_str());

  const auto to_json = [](const std::string& name, double tc_ratio,
                          const GatingRun& run) {
    util::Json j = util::Json::object();
    j["circuit"] = name;
    j["tc_ratio"] = tc_ratio;
    j["rounds"] = run.rounds;
    j["met"] = run.met;
    j["enumerations"] = run.enumerations;
    j["cached_skips"] = run.cached_skips;
    return j;
  };
  util::Json leg = util::Json::object();
  leg["progress_run"] = to_json(circuit, kRatio, progress);
  leg["zero_progress_run"] = to_json("input_pinned", 0.3, zero);
  // The acceptance numbers: skips happen on the zero-progress run and
  // never on the progress run.
  leg["cached_skips"] = zero.cached_skips;
  leg["spurious_skips"] = progress.cached_skips;
  doc["kpath_gating"] = std::move(leg);
}

// ---- 3. cross-pass STA sharing -----------------------------------------------

void cross_pass(api::OptContext& ctx, util::Json& doc) {
  std::printf("\n");
  print_header(
      "Leg 3 — full O(E) STA runs per optimized point (shared engine)",
      "one cold run per point plus one per renumbering sweep, instead of "
      "one per pass plus one per shield candidate");

  const std::string circuit = "c880";
  constexpr double kRatio = 0.85;
  netlist::Netlist nl = netlist::make_benchmark(ctx.lib(), circuit);

  const api::OptimizerConfig cfg;
  const api::PassPipeline pipeline = api::PassPipeline::standard(cfg);
  const double initial = timing::Sta(nl, ctx.dm()).run().critical_delay_ps;

  const double full_before = counter_value("sta.full_runs");
  const double updates_before = counter_value("sta.updates");
  const api::PipelineReport rep =
      pipeline.run(nl, ctx, cfg, initial * kRatio, initial);

  const double full_runs = counter_value("sta.full_runs") - full_before;
  const double updates = counter_value("sta.updates") - updates_before;

  std::printf("  %s @ %.2fx initial: %zu passes, %.0f full STA runs, "
              "%.0f incremental updates\n",
              circuit.c_str(), kRatio, pipeline.size(), full_runs, updates);

  util::Json leg = util::Json::object();
  leg["circuit"] = circuit;
  leg["tc_ratio"] = kRatio;
  leg["passes"] = pipeline.size();
  leg["full_sta_runs"] = full_runs;
  leg["incremental_updates"] = updates;
  leg["met"] = rep.met;
  doc["cross_pass"] = std::move(leg);
}

// ---- 4. deterministic level-parallel sweeps ----------------------------------

void level_parallel(const api::OptContext& ctx, util::Json& doc) {
  std::printf("\n");
  print_header(
      "Leg 4 — level-parallel STA sweeps on a synthetic 120k-gate netlist",
      "forward/backward sweeps fan each topological level across workers; "
      "bitwise-equal at any count");

  netlist::BenchmarkSpec spec;
  spec.name = "gen120k";
  spec.n_pi = 256;
  spec.n_po = 128;
  spec.n_gates = 120000;
  spec.path_depth = 40;
  spec.seed = 7;
  const netlist::Netlist nl = netlist::make_synthetic(ctx.lib(), spec);

  const std::vector<std::size_t> worker_counts = {1, 2, 4};
  std::vector<double> ms(worker_counts.size(), 0.0);
  std::vector<timing::StaResult> results(worker_counts.size());
  std::vector<std::vector<double>> slack(worker_counts.size());

  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    timing::StaOptions opt;
    opt.level_parallel_workers = worker_counts[i];
    const timing::Sta sta(nl, ctx.dm(), opt);
    ms[i] = time_ms([&] {
      results[i] = sta.run();
      slack[i] = sta.slacks(results[i], results[i].critical_delay_ps);
    });
  }

  bool identical = true;
  for (std::size_t i = 1; identical && i < worker_counts.size(); ++i) {
    identical = results[i].arrival_ps == results[0].arrival_ps &&
                results[i].slew_ps == results[0].slew_ps &&
                same_bits(results[i].critical_delay_ps,
                          results[0].critical_delay_ps);
    for (std::size_t n = 0; identical && n < slack[0].size(); ++n)
      identical = same_bits(slack[i][n], slack[0][n]);
  }

  util::Table t({"gates", "workers", "run+slacks (ms)", "identical"});
  t.set_align(2, util::Align::Right);
  for (std::size_t i = 0; i < worker_counts.size(); ++i)
    t.add_row({std::to_string(spec.n_gates),
               std::to_string(worker_counts[i]), util::fmt(ms[i], 1),
               identical ? "yes" : "NO"});
  std::printf("%s", t.str().c_str());

  util::Json leg = util::Json::object();
  leg["gates"] = spec.n_gates;
  leg["identical"] = identical;
  util::Json rows = util::Json::array();
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    util::Json row = util::Json::object();
    row["workers"] = worker_counts[i];
    row["ms"] = ms[i];
    if (worker_counts[i] > 1) add_guarded_speedup(row, ms[0], ms[i],
                                                  worker_counts[i]);
    rows.push_back(std::move(row));
  }
  leg["runs"] = std::move(rows);
  doc["level_parallel"] = std::move(leg);
}

}  // namespace

int main(int argc, char** argv) {
  api::OptContext ctx;
  ctx.warm_flimits();

  util::Json doc = util::Json::object();
  doc["experiment"] = "intra_circuit";

  slack_incremental(ctx, doc);
  kpath_gating(ctx, doc);
  cross_pass(ctx, doc);
  level_parallel(ctx, doc);

  return write_bench_json(argc, argv, "intra_circuit", doc);
}
