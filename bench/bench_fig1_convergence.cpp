// Fig. 1 — "Illustration of the sensitivity of the path delay to the gate
// sizing": the fixed-point iterations of the Tmin link equations (eq. 4)
// on a benchmark path, plotted as delay vs normalised size ΣCIN/CREF,
// together with the Tmax / Tmin bounds. The paper's key observation —
// the converged Tmin is independent of the initial CREF scale — is
// demonstrated by re-running from several initial solutions.

#include <cstdio>

#include "common.hpp"
#include "pops/core/bounds.hpp"
#include "pops/util/csv.hpp"

int main() {
  using namespace pops;
  using namespace bench_common;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header(
      "Fig. 1 — Tmin fixed-point convergence (link equations, eq. 4)",
      "iterations converge to Tmin; final value independent of the "
      "initial CREF scale; Tmax >> Tmin");

  PathCase pc = critical_path_case(lib, dm, "c1355");
  std::printf("workload: longest path of %s (%zu gates)\n\n", pc.name.c_str(),
              pc.gate_count);

  const double tmax = core::tmax_ps(pc.path, dm);

  util::Table t({"iteration", "delay (ps)", "sum CIN/CREF"});
  t.set_align(1, util::Align::Right);
  t.set_align(2, util::Align::Right);

  core::IterationTrace trace;
  core::BoundsOptions opt;
  const timing::BoundedPath at_tmin =
      core::size_for_tmin(pc.path, dm, opt, &trace);
  const double tmin = at_tmin.delay_ps(dm);

  for (std::size_t i = 0; i < trace.delay_ps.size(); ++i) {
    // Print the first sweeps densely, then every 5th.
    if (i > 10 && i % 5 != 0 && i + 1 != trace.delay_ps.size()) continue;
    t.add_row({std::to_string(i), util::fmt(trace.delay_ps[i], 1),
               util::fmt(trace.normalized_size[i], 1)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\nTmax (all gates at minimum drive) = %.1f ps\n", tmax);
  std::printf("Tmin (converged)                  = %.1f ps\n", tmin);
  std::printf("Tmax/Tmin                         = %.2f\n\n", tmax / tmin);

  // Independence from the initial solution (the paper's claim).
  util::Table t2({"initial CREF scale", "converged Tmin (ps)", "sweeps"});
  t2.set_align(1, util::Align::Right);
  t2.set_align(2, util::Align::Right);
  for (double scale : {0.25, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    core::BoundsOptions o;
    o.init_scale = scale;
    int sweeps = 0;
    const auto sized = core::size_for_tmin(pc.path, dm, o, nullptr, &sweeps);
    t2.add_row({util::fmt(scale, 2), util::fmt(sized.delay_ps(dm), 2),
                std::to_string(sweeps)});
  }
  std::printf("Tmin vs initial solution (must be constant):\n%s",
              t2.str().c_str());

  // Figure data for external plotting.
  util::CsvWriter csv("fig1_convergence.csv");
  csv.row(std::vector<std::string>{"iteration", "delay_ps", "sum_cin_over_cref"});
  for (std::size_t i = 0; i < trace.delay_ps.size(); ++i)
    csv.row(std::vector<double>{static_cast<double>(i), trace.delay_ps[i],
                                trace.normalized_size[i]});
  std::printf("\nseries written to fig1_convergence.csv\n");
  return 0;
}
