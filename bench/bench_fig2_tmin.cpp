// Fig. 2 — "Comparison of the minimum delay value (Tmin) determined with
// POPS and AMPS": the link-equation Tmin (POPS) against the greedy
// iterative sizer's best delay (AMPS substitute) on the longest path of
// every benchmark. Expected shape: Tmin(POPS) <= Tmin(AMPS) everywhere.

#include <cstdio>

#include "common.hpp"
#include "pops/baseline/amps.hpp"
#include "pops/core/bounds.hpp"
#include "pops/util/csv.hpp"

int main() {
  using namespace pops;
  using namespace bench_common;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header("Fig. 2 — minimum path delay Tmin: POPS vs AMPS",
               "POPS at or below AMPS on every circuit (the industrial "
               "tool behaves like a pseudo-random sizer)");

  util::Table t({"circuit", "path gates", "Tmin POPS (ns)", "Tmin AMPS (ns)",
                 "AMPS/POPS"});
  for (std::size_t c = 1; c < 5; ++c) t.set_align(c, util::Align::Right);

  util::CsvWriter csv("fig2_tmin.csv");
  csv.row(std::vector<std::string>{"circuit", "tmin_pops_ns", "tmin_amps_ns"});

  for (const std::string& name : paper_circuit_names()) {
    PathCase pc = critical_path_case(lib, dm, name);
    const core::PathBounds bounds = core::compute_bounds(pc.path, dm);

    baseline::AmpsOptions aopt;
    aopt.random_restarts = 2;  // keep the suite runtime civil
    const baseline::AmpsResult amps = baseline::minimize_delay(pc.path, dm, aopt);

    const double pops_ns = bounds.tmin_ps * 1e-3;
    const double amps_ns = amps.delay_ps * 1e-3;
    t.add_row({name, std::to_string(pc.gate_count), util::fmt(pops_ns, 3),
               util::fmt(amps_ns, 3), util::fmt(amps_ns / pops_ns, 3)});
    csv.row(std::vector<std::string>{name, util::fmt(pops_ns, 4),
                                     util::fmt(amps_ns, 4)});
  }
  std::printf("%s", t.str().c_str());
  std::printf("\nseries written to fig2_tmin.csv\n");
  return 0;
}
