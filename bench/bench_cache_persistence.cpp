// Extension — cost of the persistent result cache and the serving path.
//
// The pops::net daemon keeps its ResultCache warm across restarts by
// archiving every entry (optimized netlist + full report) through
// util::Json. Three numbers decide whether that is viable operationally:
//
//  1. Checkpoint cost — how long does save_result_cache take per entry /
//     per byte, since the daemon flushes after sweeps?
//  2. Restart cost — how long does load_result_cache (parse + rebuild +
//     integrity check) take relative to recomputing the entries?
//  3. Replay speedup — warm-cache lookup vs fresh optimization, the
//     number the whole subsystem exists for.
//
// Emits BENCH_cache_persistence.json for cross-PR perf tracking.

#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "pops/service/cache_io.hpp"
#include "pops/service/result_cache.hpp"
#include "pops/util/json.hpp"

namespace {

using namespace pops;
using namespace bench_common;
using api::Optimizer;
using service::ResultCache;

/// Fill a cache by sweeping `circuits` over `ratios`; returns ms spent.
double fill_cache(api::OptContext& ctx,
                  const std::vector<std::string>& circuits,
                  const std::vector<double>& ratios) {
  return time_ms([&] {
    Optimizer opt(ctx);
    for (const std::string& name : circuits) {
      for (const double ratio : ratios) {
        Netlist nl = netlist::make_benchmark(ctx.lib(), name);
        opt.run_relative(nl, ratio);
      }
    }
  });
}

void run(util::Json& doc) {
  print_header(
      "Extension — persistent ResultCache: checkpoint, restart, replay",
      "warm restarts replay sweeps at lookup cost; checkpointing stays "
      "cheap relative to the optimization it memoizes");

  const std::vector<std::string> circuits = {"c17", "c432", "c880", "c1355"};
  const std::vector<double> ratios = {0.75, 0.85, 0.95};

  api::OptContext ctx;
  auto cache = std::make_shared<ResultCache>();
  ctx.set_result_cache(cache);
  const double fresh_ms = fill_cache(ctx, circuits, ratios);
  const std::size_t entries = cache->size();

  util::Json archived;
  const double save_ms =
      time_ms([&] { archived = service::save_result_cache(*cache, ctx); });
  const std::string text = archived.dump(0);

  api::OptContext ctx2;
  auto warmed = std::make_shared<ResultCache>();
  ctx2.set_result_cache(warmed);
  double load_ms = 0.0;
  service::CacheLoadReport loaded;
  load_ms = time_ms([&] {
    loaded = service::load_result_cache(*warmed, ctx2,
                                        util::Json::parse(text));
  });

  const double replay_ms = fill_cache(ctx2, circuits, ratios);
  const ResultCache::Stats stats = warmed->stats();

  util::Table t({"stage", "ms", "notes"});
  t.set_align(1, util::Align::Right);
  t.add_row({"fresh sweep", util::Json::number_to_string(fresh_ms),
             std::to_string(entries) + " points computed"});
  t.add_row({"save (archive)", util::Json::number_to_string(save_ms),
             std::to_string(text.size()) + " bytes"});
  t.add_row({"load (parse+verify)", util::Json::number_to_string(load_ms),
             std::to_string(loaded.entries_loaded) + " entries restored"});
  t.add_row({"warm replay", util::Json::number_to_string(replay_ms),
             std::to_string(stats.hits) + " hits / " +
                 std::to_string(stats.misses) + " misses"});
  std::printf("%s", t.str().c_str());
  std::printf("\nspeedup fresh/replay: %.1fx; checkpoint cost %.1f%% of a "
              "fresh sweep\n",
              replay_ms > 0 ? fresh_ms / replay_ms : 0.0,
              fresh_ms > 0 ? 100.0 * save_ms / fresh_ms : 0.0);

  doc["entries"] = entries;
  doc["bytes"] = text.size();
  doc["fresh_ms"] = fresh_ms;
  doc["save_ms"] = save_ms;
  doc["load_ms"] = load_ms;
  doc["replay_ms"] = replay_ms;
  doc["replay_hits"] = stats.hits;
  doc["replay_misses"] = stats.misses;
}

}  // namespace

int main(int argc, char** argv) {
  util::Json doc = util::Json::object();
  doc["bench"] = "cache_persistence";
  run(doc);
  return bench_common::write_bench_json(argc, argv, "cache_persistence", doc);
}
