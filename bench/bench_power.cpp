// Extension — power-backend evaluation cost and multi-Vt leakage recovery.
//
// Two questions the polymorphic power backends raise. First, cost: the
// state-dependent model walks every gate's Vt class, series stacks, and
// state probabilities where the proxy just scales ΣW — how much slower is
// one evaluation? (Both are called once per pipeline run, so this bounds
// the per-point overhead of `--power-model state`.) Second, payoff: how
// much leakage does the slack-driven MultiVtPass actually recover on a
// real circuit, at a tight (1.0x initial delay) and a relaxed (1.25x)
// constraint — with every point still meeting Tc?
//
// Emits BENCH_power.json for cross-PR perf tracking; the CI smoke
// (scripts/smoke_power.sh) checks the sweep-level contract separately.

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/power/power_model.hpp"
#include "pops/service/sweep.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops;
using namespace bench_common;

constexpr int kReps = 200;

void eval_cost(util::Json& doc) {
  print_header(
      "Extension — power backend evaluation cost",
      "the state-dependent model's per-gate Vt/stack/state walk vs. the "
      "proxy's flat ΣW scaling, per evaluation");

  api::OptContext ctx;
  const power::ProxyModel proxy(ctx.lib());
  const power::StateDependentModel state(ctx.lib());

  util::Table t({"circuit", "gates", "proxy (us)", "state (us)", "ratio"});
  for (std::size_t c = 1; c < 5; ++c) t.set_align(c, util::Align::Right);

  util::Json circuits = util::Json::array();
  for (const std::string& name :
       {std::string("c432"), std::string("c880"), std::string("c1355")}) {
    const Netlist nl = netlist::make_benchmark(ctx.lib(), name);
    util::Rng rng(0xB0B);
    // Activities are computed once outside the timed region: both
    // backends consume the same report, so the timings isolate the
    // evaluation itself.
    const netlist::ActivityReport activity =
        netlist::estimate_activity(nl, rng, 512);

    double proxy_ms = 0.0;
    double state_ms = 0.0;
    double sink = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      proxy_ms += time_ms(
          [&] { sink += proxy.evaluate(nl, activity, 100.0).total_uw; });
      state_ms += time_ms(
          [&] { sink += state.evaluate(nl, activity, 100.0).total_uw; });
    }
    if (sink == 0.0) std::printf(" ");  // keep the evaluations observable

    const double proxy_us = proxy_ms / kReps * 1e3;
    const double state_us = state_ms / kReps * 1e3;
    t.add_row({name, std::to_string(nl.gates().size()),
               util::fmt(proxy_us, 2), util::fmt(state_us, 2),
               util::fmt(state_us / proxy_us, 1) + "x"});

    util::Json entry = util::Json::object();
    entry["circuit"] = name;
    entry["gates"] = nl.gates().size();
    entry["proxy_us"] = proxy_us;
    entry["state_us"] = state_us;
    circuits.push_back(std::move(entry));
  }
  doc["eval_cost"] = std::move(circuits);
  doc["reps"] = kReps;
  std::printf("%s\n", t.str().c_str());
}

void multi_vt_recovery(util::Json& doc) {
  print_header(
      "Extension — leakage recovered by the multi-Vt pass",
      "high-Vt implants on positive-slack cones cut sub-threshold leakage "
      "while every sweep point keeps meeting its Tc");

  api::OptContext ctx;
  service::SweepService sweeps(ctx, /*use_cache=*/false);

  service::SweepSpec spec;
  spec.circuits = {"c880"};
  spec.tc_ratios = {1.0, 1.25};
  spec.vt_policies = {"none", "multi-vt"};
  spec.base.power_model = "state";
  spec.n_threads = 1;

  const service::SweepReport rep = sweeps.run(
      spec, [&ctx](const std::string& name) {
        return netlist::make_benchmark(ctx.lib(), name);
      });

  util::Table t({"Tc ratio", "leak (uW)", "multi-vt leak (uW)",
                 "recovered", "high-Vt cells", "met"});
  for (std::size_t c = 1; c < 5; ++c) t.set_align(c, util::Align::Right);

  util::Json rows = util::Json::array();
  // Record order: vt_policy nests outside the ratio axis, so the single-
  // circuit grid lands as (none@1.0, none@1.25, multi-vt@1.0,
  // multi-vt@1.25).
  for (std::size_t i = 0; i < spec.tc_ratios.size(); ++i) {
    const service::SweepPoint& base = rep.points[i];
    const service::SweepPoint& mvt = rep.points[i + spec.tc_ratios.size()];
    const double before = base.report.power.leakage_uw;
    const double after = mvt.report.power.leakage_uw;
    const bool met = base.report.met && mvt.report.met;
    t.add_row({util::fmt(base.tc_ratio, 2), util::fmt(before, 4),
               util::fmt(after, 4),
               util::fmt((before - after) / before * 100.0, 1) + "%",
               std::to_string(mvt.report.total_cells_high_vt()),
               met ? "yes" : "NO"});

    util::Json row = util::Json::object();
    row["tc_ratio"] = base.tc_ratio;
    row["leakage_uw"] = before;
    row["multi_vt_leakage_uw"] = after;
    row["recovered_frac"] = (before - after) / before;
    row["cells_high_vt"] = mvt.report.total_cells_high_vt();
    row["met"] = met;
    rows.push_back(std::move(row));
  }
  doc["multi_vt_recovery"] = std::move(rows);
  std::printf("%s\n", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::Json doc = util::Json::object();
  doc["bench"] = "power";
  eval_cost(doc);
  multi_vt_recovery(doc);

  return bench_common::write_bench_json(argc, argv, "power", doc);
}
