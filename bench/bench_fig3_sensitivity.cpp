// Fig. 3 — "Application of the constant sensitivity method to an 11 gate
// path": the family of sizings obtained by imposing the same sensitivity
// a = dT/dCIN(i) on every gate, for a swept from 0 (the Tmin point)
// towards large negative values (the minimum-area end). The series is the
// path's delay/area trade-off curve.

#include <cstdio>

#include "common.hpp"
#include "pops/core/bounds.hpp"
#include "pops/core/sensitivity.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/util/csv.hpp"

int main() {
  using namespace pops;
  using namespace bench_common;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header(
      "Fig. 3 — constant sensitivity method on an 11-gate path (eq. 5/6)",
      "a = 0 gives Tmin; decreasing a trades delay for area monotonically");

  // The paper's didactic workload: an 11-gate mixed path.
  netlist::Netlist nl = netlist::make_fig3_path(lib);
  const timing::Sta sta(nl, dm);
  const timing::TimedPath tp = sta.critical_path(sta.run());
  timing::BoundedPath path =
      timing::BoundedPath::extract(nl, tp, dm.default_input_slew_ps());
  std::printf("workload: 11-gate mixed path (inv/nand/nor), terminal load "
              "%.0f x CREF\n\n", path.terminal_ff() / lib.cref_ff());

  const double a_scale = path.stage_coefficient(dm, 0) / path.cin(0);

  util::Table t({"a (ps/fF)", "a/a0", "delay (ps)", "sum W (um)",
                 "sum CIN/CREF"});
  for (std::size_t c = 0; c < 5; ++c) t.set_align(c, util::Align::Right);

  util::CsvWriter csv("fig3_sensitivity.csv");
  csv.row(std::vector<std::string>{"a_ps_per_ff", "delay_ps", "area_um"});

  const double factors[] = {0.0,  0.01, 0.02, 0.06, 0.1, 0.2,
                            0.35, 0.6,  0.8,  1.2,  2.0, 4.0};
  for (double f : factors) {
    const double a = -f * a_scale;
    const timing::BoundedPath sized = core::size_at_sensitivity(path, dm, a);
    const double delay = sized.delay_ps(dm);
    const double area = sized.area_um();
    t.add_row({util::fmt(a, 3), util::fmt(-f, 2), util::fmt(delay, 1),
               util::fmt(area, 1), util::fmt(sized.normalized_size(), 1)});
    csv.row(std::vector<double>{a, delay, area});
  }
  std::printf("%s", t.str().c_str());

  const core::PathBounds bounds = core::compute_bounds(path, dm);
  std::printf("\nT(a=0)              = %.1f ps  (the Tmin bound: %.1f ps)\n",
              core::size_at_sensitivity(path, dm, 0.0).delay_ps(dm),
              bounds.tmin_ps);
  std::printf("Tmax (all minimum)  = %.1f ps\n", bounds.tmax_ps);
  std::printf("\nseries written to fig3_sensitivity.csv\n");
  return 0;
}
