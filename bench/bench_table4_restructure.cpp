// Table 4 — "Comparison between buffer insertion and logic structure
// modification": implementation area of the critical paths under a hard
// and a medium constraint, using the paper's Fig. 5 buffer insertion
// ("buff") versus the De Morgan NOR->NAND rewrite ("restruct").
// Paper shape: restructuring saves 4..16% area; at the hardest
// constraints buffering alone can be infeasible (the paper's X entries).

#include <cstdio>

#include "common.hpp"
#include "pops/core/bounds.hpp"
#include "pops/core/buffer.hpp"
#include "pops/core/restructure.hpp"
#include "pops/core/sensitivity.hpp"
#include "pops/util/csv.hpp"

int main() {
  using namespace pops;
  using namespace bench_common;

  api::OptContext ctx;
  const liberty::Library& lib = ctx.lib();
  const timing::DelayModel& dm = ctx.dm();

  print_header(
      "Table 4 — buffer insertion vs De Morgan restructuring",
      "restructuring the critical NORs saves area over Fig. 5 buffering "
      "under tight constraints; 'X' marks infeasible implementations");

  const std::vector<std::string> circuits = {"c1355", "c1908", "c5315",
                                             "c7552"};
  struct Constraint {
    const char* label;
    double ratio;
  };
  const Constraint constraints[] = {
      {"hard (Tc = 1.10 Tmin)", 1.10},
      {"medium (Tc = 1.60 Tmin)", 1.60},
  };

  core::FlimitTable& table = ctx.flimits();
  util::CsvWriter csv("table4_restructure.csv");
  csv.row(std::vector<std::string>{"constraint", "circuit", "buff_um",
                                   "restruct_um", "gain"});

  for (const Constraint& con : constraints) {
    std::printf("\n--- %s ---\n", con.label);
    util::Table t({"circuit", "method", "sum W (um)", "gain", "NORs rewritten"});
    t.set_align(2, util::Align::Right);
    t.set_align(3, util::Align::Right);

    for (const std::string& name : circuits) {
      PathCase pc = critical_path_case(lib, dm, name);
      const core::PathBounds bounds = core::compute_bounds(pc.path, dm);
      const double tc = con.ratio * bounds.tmin_ps;

      // "buff": the paper's Fig. 5 in-path insertion + global sizing.
      const core::BufferInsertionResult buf = core::insert_buffers_local(
          pc.path, dm, table, core::InsertionStyle::InPathOnly);
      const core::SizingResult buf_sized =
          core::size_for_constraint(buf.path, dm, tc);
      const double buf_area = buf_sized.area_um + buf.shield_area_um;

      // "restruct": De Morgan on the critical NORs + global sizing.
      const core::RestructureResult rr =
          core::restructure_path(pc.path, dm, table);
      const core::SizingResult re_sized =
          core::size_for_constraint(rr.path, dm, tc);
      const double re_area = re_sized.area_um + rr.off_path_area_um;

      const std::string buf_cell =
          buf_sized.feasible ? util::fmt(buf_area, 0) : std::string("X");
      const std::string re_cell =
          re_sized.feasible ? util::fmt(re_area, 0) : std::string("X");
      std::string gain = "X";
      if (buf_sized.feasible && re_sized.feasible)
        gain = util::fmt_percent((buf_area - re_area) / buf_area, 0);
      else if (re_sized.feasible && !buf_sized.feasible)
        gain = "restruct only feasible";

      t.add_row({name, "buff", buf_cell, "", ""});
      t.add_row({"", "restruct", re_cell, gain,
                 std::to_string(rr.gates_restructured)});
      t.add_rule();
      csv.row(std::vector<std::string>{con.label, name,
                                       util::fmt(buf_area, 2),
                                       util::fmt(re_area, 2), gain});
    }
    std::printf("%s", t.str().c_str());
  }
  std::printf("\nseries written to table4_restructure.csv\n");
  return 0;
}
