#!/usr/bin/env bash
# Trace smoke: run pops_sweep with --trace on a builtin circuit and
# assert (a) the trace file is valid Chrome trace-event JSON with > 0
# complete ("ph": "X") events, (b) it carries spans from every layer of
# the stack (pipeline pass -> sweep point -> STA -> cache -> serialize),
# and (c) pops_profile digests it into a non-empty breakdown table.
# Shared by scripts/ci.sh and the GitHub workflow.
# Usage: scripts/smoke_trace.sh <build-dir>
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:?usage: smoke_trace.sh <build-dir>}"

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT

"${BUILD_DIR}/pops_sweep" --tc 0.9 --allow-unmet \
    --trace "${SMOKE_DIR}/trace.json" --out /dev/null @c432 > /dev/null

python3 - "${SMOKE_DIR}/trace.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)  # must be valid JSON
events = doc["traceEvents"]
complete = [e for e in events if e.get("ph") == "X"]
assert len(complete) > 0, "trace has no complete events"
for e in complete:
    assert isinstance(e["name"], str) and e["ts"] >= 0 and e["dur"] >= 0, e
names = {e["name"] for e in complete}
for layer in ("optimizer/point", "cache/lookup", "serialize/point",
              "sweep/run"):
    assert layer in names, f"trace is missing a '{layer}' span: {sorted(names)}"
assert any(n.startswith("pass/") for n in names), sorted(names)
assert any(n.startswith("sta/") for n in names), sorted(names)
print(f"trace smoke OK: {len(complete)} events, {len(names)} span names")
PY

"${BUILD_DIR}/pops_profile" "${SMOKE_DIR}/trace.json" \
    > "${SMOKE_DIR}/profile.txt"
grep -q "^span\|span " "${SMOKE_DIR}/profile.txt" || {
  echo "pops_profile printed no table header"; cat "${SMOKE_DIR}/profile.txt"
  exit 1
}
grep -q "optimizer/point" "${SMOKE_DIR}/profile.txt" || {
  echo "pops_profile breakdown is missing the sweep-point span"
  cat "${SMOKE_DIR}/profile.txt"; exit 1
}
echo "pops_profile smoke OK:"
head -3 "${SMOKE_DIR}/profile.txt"
echo "trace smoke OK"
