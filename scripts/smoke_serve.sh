#!/usr/bin/env bash
# pops_serve smoke: start the daemon on an ephemeral port with a cache
# file, submit a c17 spec through the client, and assert (a) the stream is
# valid JSONL whose records carry the expected schema, (b) a resubmission
# over a NEW connection is served from the shared cache, (c) after a full
# daemon restart the same spec is served entirely from the PERSISTED
# cache — with --no-runtimes the streams compare byte-for-byte, no
# scrubbing — and (d) the control ops (ping/stats/metrics/shutdown)
# answer and shut the daemon down cleanly.
# Shared by scripts/ci.sh and the GitHub workflow so the fixture and the
# assertions cannot drift.
# Usage: scripts/smoke_serve.sh <build-dir>
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:?usage: smoke_serve.sh <build-dir>}"

SMOKE_DIR="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [[ -n "${SERVE_PID}" ]] && kill "${SERVE_PID}" 2>/dev/null || true
  rm -rf "${SMOKE_DIR}"
}
trap cleanup EXIT

cat > "${SMOKE_DIR}/c17.bench" <<'BENCH'
# c17 ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
BENCH

CACHE="${SMOKE_DIR}/cache.json"

start_daemon() {
  "${BUILD_DIR}/pops_serve" --port 0 --cache-file "${CACHE}" \
      > "${SMOKE_DIR}/serve.out" 2> "${SMOKE_DIR}/serve.err" &
  SERVE_PID=$!
  # The port line on stdout is the startup contract.
  for _ in $(seq 1 50); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
            "${SMOKE_DIR}/serve.out")"
    [[ -n "${PORT}" ]] && return 0
    sleep 0.1
  done
  echo "daemon did not start"; cat "${SMOKE_DIR}/serve.err"; exit 1
}

stop_daemon() {
  "${BUILD_DIR}/pops_serve" client --port "${PORT}" --shutdown > /dev/null
  wait "${SERVE_PID}" 2>/dev/null || true
  SERVE_PID=""
}

# --- cold daemon: first submission computes, resubmission hits ---------------
start_daemon
"${BUILD_DIR}/pops_serve" client --port "${PORT}" --ping | grep -q pong

"${BUILD_DIR}/pops_serve" client --port "${PORT}" --tc 0.9,1.0 --allow-unmet \
    "${SMOKE_DIR}/c17.bench" > "${SMOKE_DIR}/run1.jsonl"
"${BUILD_DIR}/pops_serve" client --port "${PORT}" --tc 0.9,1.0 --allow-unmet \
    "${SMOKE_DIR}/c17.bench" > "${SMOKE_DIR}/run2.jsonl"

python3 - "${SMOKE_DIR}/run1.jsonl" "${SMOKE_DIR}/run2.jsonl" first <<'PY'
import json, sys
run1 = [json.loads(l) for l in open(sys.argv[1])]  # must be valid JSONL
run2 = [json.loads(l) for l in open(sys.argv[2])]
assert len(run1) == 2 and len(run2) == 2, (len(run1), len(run2))
for p in run1 + run2:
    assert p["circuit"] == "c17"
    assert "final_delay_ps" in p["report"]
cold = [p["report"]["measured"]["from_cache"] for p in run1]
warm = [p["report"]["measured"]["from_cache"] for p in run2]
assert not any(cold), "cold run must compute"
assert all(warm), "resubmission must hit"
print("serve smoke OK: cold run computed, resubmission served from cache")
PY

# A --no-runtimes stream drops the run-dependent 'measured' section, so
# later replays can be compared byte-for-byte with cmp — no scrubbing.
"${BUILD_DIR}/pops_serve" client --port "${PORT}" --tc 0.9,1.0 --allow-unmet \
    --no-runtimes "${SMOKE_DIR}/c17.bench" > "${SMOKE_DIR}/run_exact1.jsonl"
grep -q '"measured"' "${SMOKE_DIR}/run_exact1.jsonl" && {
  echo "--no-runtimes stream must not carry a measured section"; exit 1
}
stop_daemon
test -s "${CACHE}" || { echo "cache file was not written"; exit 1; }

# --- warm restart: everything from the persisted cache ------------------------
start_daemon
grep -q "2 entries" "${SMOKE_DIR}/serve.err" || {
  echo "restart did not load the persisted cache"; cat "${SMOKE_DIR}/serve.err"
  exit 1
}
"${BUILD_DIR}/pops_serve" client --port "${PORT}" --tc 0.9,1.0 --allow-unmet \
    --no-runtimes "${SMOKE_DIR}/c17.bench" > "${SMOKE_DIR}/run_exact3.jsonl" \
    2> "${SMOKE_DIR}/run3.err"
grep -q "cache 2 hits / 0 misses" "${SMOKE_DIR}/run3.err" || {
  echo "warm restart was not served from the persisted cache"
  cat "${SMOKE_DIR}/run3.err"; exit 1
}

cmp "${SMOKE_DIR}/run_exact1.jsonl" "${SMOKE_DIR}/run_exact3.jsonl" || {
  echo "restart replay must be byte-identical to the pre-restart stream"
  exit 1
}
echo "serve smoke OK: warm restart replayed the persisted cache byte-exact"

"${BUILD_DIR}/pops_serve" client --port "${PORT}" --stats \
    | python3 -c 'import json,sys; s=json.load(sys.stdin); \
assert s["event"]=="stats" and s["cache"]["entries"]==2, s; print("stats OK:", s["cache"])'

"${BUILD_DIR}/pops_serve" client --port "${PORT}" --metrics \
    | python3 -c 'import json,sys; m=json.load(sys.stdin); \
assert m["event"]=="metrics", m; \
assert m["counters"]["net.requests"] > 0, m["counters"]; \
assert m["counters"]["cache.hits"] >= 2, m["counters"]; \
print("metrics OK:", {k: m["counters"][k] for k in ("net.requests", "cache.hits")})'
stop_daemon
echo "pops_serve smoke OK"
