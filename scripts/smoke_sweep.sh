#!/usr/bin/env bash
# pops_sweep smoke: run a small sweep on a real ISCAS netlist (c17) twice
# and assert (a) the report is valid JSON, (b) the repeat run is served
# from the result cache, (c) cached points are bit-identical to fresh ones.
# Then run the same grid once per delay-model backend (closed-form and
# table, mixed with --repeat) and assert (d) both backends produce valid
# JSON whose records carry distinct delay_model fields, (e) the cache
# never aliases across backends (a backend's first run is all misses),
# and (f) a JSON --spec file drives the same sweep.
# Shared by scripts/ci.sh and the GitHub workflow so the fixture and the
# assertions cannot drift.
# Usage: scripts/smoke_sweep.sh <build-dir>
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:?usage: smoke_sweep.sh <build-dir>}"

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT

cat > "${SMOKE_DIR}/c17.bench" <<'BENCH'
# c17 ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
BENCH

# --allow-unmet: c17 under this PO load cannot meet 0.8/0.9 x initial —
# this smoke asserts on JSON structure and caching, not feasibility. The
# exit-code contract itself is asserted below.
"${BUILD_DIR}/pops_sweep" --tc 0.8,0.9,1.0 --repeat 2 --allow-unmet \
    --out "${SMOKE_DIR}/report.json" "${SMOKE_DIR}/c17.bench"

# Without --allow-unmet the same sweep must exit 2 (unmet points), and a
# fully feasible sweep must exit 0 — what CI scripts assert on.
set +e
"${BUILD_DIR}/pops_sweep" --tc 0.8 --out /dev/null "${SMOKE_DIR}/c17.bench" \
    2> /dev/null
rc=$?
set -e
[[ "${rc}" -eq 2 ]] || { echo "expected exit 2 on unmet points, got ${rc}"; exit 1; }
"${BUILD_DIR}/pops_sweep" --tc 1.0 --out /dev/null "${SMOKE_DIR}/c17.bench" \
    2> /dev/null \
    || { echo "feasible sweep must exit 0"; exit 1; }

python3 - "${SMOKE_DIR}/report.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)  # must be valid JSON
assert report["tool"] == "pops_sweep"
assert len(report["sweeps"]) == 2
assert all(len(s["points"]) == 3 for s in report["sweeps"])
assert report["sweeps"][1]["cache"]["hits"] > 0, "repeat run must hit the cache"
first, second = (s["points"] for s in report["sweeps"])
for a, b in zip(first, second):
    assert b["report"]["measured"]["from_cache"]
    assert a["report"]["final_delay_ps"] == b["report"]["final_delay_ps"]
    assert a["report"]["final_area_um"] == b["report"]["final_area_um"]
print("pops_sweep smoke OK:", len(first), "points, cache hits on repeat")
PY

# --- delay-model backend smoke: same grid once per backend, repeated ---------
"${BUILD_DIR}/pops_sweep" --tc 0.8,0.9 --delay-model closed-form,table \
    --repeat 2 --allow-unmet \
    --out "${SMOKE_DIR}/backends.json" "${SMOKE_DIR}/c17.bench"

python3 - "${SMOKE_DIR}/backends.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)  # must be valid JSON
assert report["delay_models"] == ["closed-form", "table"]
sweeps = report["sweeps"]
assert [s["delay_model"] for s in sweeps] == [
    "closed-form", "table", "closed-form", "table"]
models_seen = set()
for s in sweeps:
    record_models = {p["report"]["delay_model"] for p in s["points"]}
    assert record_models == {s["delay_model"]}, record_models
    models_seen |= record_models
assert models_seen == {"closed-form", "table"}, "backends must be distinct"
# First pass of EACH backend: all misses (no cross-backend aliasing); the
# repeat of each backend: all hits.
for s in sweeps[:2]:
    assert s["cache"]["hits"] == 0 and s["cache"]["misses"] == 2, s["cache"]
for s in sweeps[2:]:
    assert s["cache"]["hits"] == 2 and s["cache"]["misses"] == 0, s["cache"]
print("backend smoke OK: closed-form and table side by side, no aliasing")
PY

# --- spec-file front-end smoke ------------------------------------------------
cat > "${SMOKE_DIR}/spec.json" <<'SPEC'
{
  "circuits": ["@c17"],
  "tc_ratios": [0.9],
  "base": {"delay_model": "table"}
}
SPEC
"${BUILD_DIR}/pops_sweep" --spec "${SMOKE_DIR}/spec.json" --allow-unmet \
    --out "${SMOKE_DIR}/spec_report.json"

python3 - "${SMOKE_DIR}/spec_report.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
points = report["sweeps"][0]["points"]
assert len(points) == 1
assert points[0]["circuit"] == "c17"
assert points[0]["report"]["delay_model"] == "table"
print("spec-file smoke OK: table-backed sweep from JSON spec")
PY
