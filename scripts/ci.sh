#!/usr/bin/env bash
# CI entry point: strict build + tests, the determinism lint, then
# ASan/UBSan and TSan jobs. Usage: scripts/ci.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== job 1: -Wall -Wextra -Werror, Release, full ctest ==="
cmake -B "${PREFIX}" -S . -DPOPS_WERROR=ON -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "=== job 1b: pops_sweep smoke (c17; per-backend sweeps, cache hits, spec file) ==="
scripts/smoke_sweep.sh "${PREFIX}"

echo "=== job 1c: pops_serve smoke (daemon, client, cache-file restart) ==="
scripts/smoke_serve.sh "${PREFIX}"

echo "=== job 1d: bench_incremental_sta smoke (valid JSON, incremental <= cold) ==="
scripts/smoke_bench_incremental.sh "${PREFIX}"

echo "=== job 1d2: pops_fabric smoke (2-worker fleet, byte-identical merge, journal warm restart) ==="
scripts/smoke_fabric.sh "${PREFIX}"

echo "=== job 1d3: power smoke (state backend at 85C, multi-Vt recovery, byte determinism) ==="
scripts/smoke_power.sh "${PREFIX}"

echo "=== job 1e: pops_lint determinism lint over the compiled tree ==="
# Job 1 exported compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS),
# so the lint scans exactly the TUs the build compiles. The self-test
# first proves every rule still fires on a synthetic violation.
tools/pops_lint --self-test
tools/pops_lint --compile-commands "${PREFIX}/compile_commands.json"

echo "=== job 1f: trace smoke (pops_sweep --trace -> Chrome JSON -> pops_profile) ==="
scripts/smoke_trace.sh "${PREFIX}"

echo "=== job 1g: intra-circuit timing smoke (slack engine, gating, level-parallel) ==="
scripts/smoke_intra_circuit.sh "${PREFIX}"

echo "=== job 2: ASan/UBSan, Debug, full ctest ==="
cmake -B "${PREFIX}-asan" -S . -DPOPS_WERROR=ON -DPOPS_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=Debug
cmake --build "${PREFIX}-asan" -j "${JOBS}"
# The incremental-vs-full fuzz suites must run under the sanitizers (and
# debug builds additionally self-check every IncrementalSta::update
# against a cold run).
# Plain grep (not -q) drains ctest's stdout — under pipefail, -q would
# SIGPIPE ctest once the test listing outgrows the pipe buffer.
ctest --test-dir "${PREFIX}-asan" -N | grep "IncrementalSta\." > /dev/null \
  || { echo "ASan job does not cover the IncrementalSta fuzz tests"; exit 1; }
ctest --test-dir "${PREFIX}-asan" -N | grep "ShieldMatchesHistoricalFullSweepBitwise" > /dev/null \
  || { echo "ASan job does not cover the shield parity regression"; exit 1; }
ctest --test-dir "${PREFIX}-asan" -N | grep "EngineSharing\." > /dev/null \
  || { echo "ASan job does not cover the engine-sharing obs tests"; exit 1; }
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}"

echo "=== job 3: TSan, full ctest + concurrency stress suites ==="
cmake -B "${PREFIX}-tsan" -S . -DPOPS_WERROR=ON -DPOPS_TSAN=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${PREFIX}-tsan" -j "${JOBS}"
# The stress suites are the reason this job exists: they provoke the
# interleavings (shared cache, registry stampede, run_many contention,
# concurrent sweeps + checkpointing) that TSan needs to observe. Same
# drain-grep pattern as the ASan coverage assert above.
ctest --test-dir "${PREFIX}-tsan" -N | grep "ConcurrencyTest\." > /dev/null \
  || { echo "TSan job does not cover the ConcurrencyTest stress suites"; exit 1; }
# The level-parallel sweep kernels must race-check under TSan too.
ctest --test-dir "${PREFIX}-tsan" -N | grep "LevelParallelSweepsDeterministicUnderMutation" > /dev/null \
  || { echo "TSan job does not cover the level-parallel sweep fuzz"; exit 1; }
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}"

echo "CI OK"
