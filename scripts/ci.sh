#!/usr/bin/env bash
# CI entry point: strict build + tests, then an ASan/UBSan job.
# Usage: scripts/ci.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== job 1: -Wall -Wextra -Werror, Release, full ctest ==="
cmake -B "${PREFIX}" -S . -DPOPS_WERROR=ON -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "=== job 1b: pops_sweep smoke (c17; per-backend sweeps, cache hits, spec file) ==="
scripts/smoke_sweep.sh "${PREFIX}"

echo "=== job 1c: pops_serve smoke (daemon, client, cache-file restart) ==="
scripts/smoke_serve.sh "${PREFIX}"

echo "=== job 2: ASan/UBSan, Debug, full ctest ==="
cmake -B "${PREFIX}-asan" -S . -DPOPS_WERROR=ON -DPOPS_SANITIZE=ON \
      -DCMAKE_BUILD_TYPE=Debug
cmake --build "${PREFIX}-asan" -j "${JOBS}"
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}"

echo "CI OK"
