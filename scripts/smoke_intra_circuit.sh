#!/usr/bin/env bash
# Intra-circuit timing smoke: the PR-8 engine work end to end.
#
#  1. bench_intra_circuit must run and emit valid JSON showing: the
#     incremental slack update no slower than a cold sweep at dirty=1
#     (bit-identical values), at least one gated K-path re-enumeration
#     skip on the zero-progress protocol run with NO spurious skips on
#     the progress run, and level-parallel sweeps bitwise-equal to
#     sequential at every tested worker count.
#  2. A pops_gen netlist (past the level-parallel size threshold) is
#     swept with --sta-workers 1 and 4; the --jsonl --no-runtimes
#     streams must be byte-identical (cmp, no scrubbing).
#
# Shared by scripts/ci.sh and the GitHub workflow.
# Usage: scripts/smoke_intra_circuit.sh <build-dir>
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:?usage: smoke_intra_circuit.sh <build-dir>}"

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT

"${BUILD_DIR}/bench_intra_circuit" "${SMOKE_DIR}/bench.json" > /dev/null

python3 - "${SMOKE_DIR}/bench.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)  # must be valid JSON
assert doc["experiment"] == "intra_circuit"

slack = doc["slack_incremental"]
assert slack["identical"] is True, "incremental slacks diverged from cold"
# Timing smoke, so the bound is conservative: a dirty=1 slack update must
# never cost more than a full cold backward sweep.
assert slack["ms_incremental"] <= slack["ms_cold"], (
    f"incremental slack update slower than cold "
    f"({slack['ms_incremental']:.3f} vs {slack['ms_cold']:.3f} ms)")

gating = doc["kpath_gating"]
assert gating["cached_skips"] >= 1, "no gated re-enumeration skip"
assert gating["spurious_skips"] == 0, (
    f"{gating['spurious_skips']} skip(s) on a run that made progress")

lp = doc["level_parallel"]
assert lp["identical"] is True, "level-parallel diverged from sequential"
assert len(lp["runs"]) >= 3  # workers 1/2/4

print("bench_intra_circuit smoke OK: "
      f"slack {slack['speedup']:.1f}x@dirty=1, "
      f"{gating['cached_skips']} gated skip(s), "
      f"level-parallel identical at {len(lp['runs'])} worker counts")
PY

# Generated-netlist sweep: sequential vs level-parallel streams must be
# byte-identical. 60k gates clears the 50k default parallel threshold;
# --no-cache makes the second run recompute instead of replaying.
"${BUILD_DIR}/pops_gen" --gates 60000 --seed 7 \
    --out "${SMOKE_DIR}/gen.bench" 2> /dev/null
SWEEP_FLAGS=(--tc 0.98 --no-cache --jsonl --no-runtimes --allow-unmet)
"${BUILD_DIR}/pops_sweep" "${SWEEP_FLAGS[@]}" --sta-workers 1 \
    "${SMOKE_DIR}/gen.bench" --out "${SMOKE_DIR}/seq.json" \
    > "${SMOKE_DIR}/seq.jsonl" 2> /dev/null
"${BUILD_DIR}/pops_sweep" "${SWEEP_FLAGS[@]}" --sta-workers 4 \
    "${SMOKE_DIR}/gen.bench" --out "${SMOKE_DIR}/par.json" \
    > "${SMOKE_DIR}/par.jsonl" 2> /dev/null
cmp "${SMOKE_DIR}/seq.jsonl" "${SMOKE_DIR}/par.jsonl" || {
    echo "level-parallel sweep stream differs from sequential"; exit 1; }
echo "pops_gen sweep smoke OK: 1-worker and 4-worker streams identical"
