#!/usr/bin/env bash
# pops_fabric smoke: the distributed sweep fabric end to end. Starts a
# coordinator against TWO loopback worker daemons (journaled caches) and
# asserts (a) the merged --no-runtimes stream is BYTE-IDENTICAL (cmp, no
# scrubbing) to a single-daemon run of the same spec, (b) a second spec
# under the table delay-model backend routes through the workers'
# per-selector context pools and merges byte-identically too, (c) after
# both workers restart from their journals, the warm rerun is again
# byte-identical AND entirely replayed — zero cache misses fleet-wide,
# counter-asserted through the coordinator's aggregated metrics — and
# (d) the coordinator's merged trace contains worker-side sweep/run
# spans relayed over the wire.
# Shared by scripts/ci.sh and the GitHub workflow so the fixture and the
# assertions cannot drift.
# Usage: scripts/smoke_fabric.sh <build-dir>
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:?usage: smoke_fabric.sh <build-dir>}"

SMOKE_DIR="$(mktemp -d)"
declare -A PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "${pid}" 2>/dev/null || true; done
  rm -rf "${SMOKE_DIR}"
}
trap cleanup EXIT

cat > "${SMOKE_DIR}/c17.bench" <<'BENCH'
# c17 ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
BENCH

# start_worker NAME PORT — 0 = ephemeral; the chosen port lands in
# PORT_<NAME>. Restarting on the recorded port keeps the worker's ring
# label (host:port) stable, which is what pins every point back onto the
# journal that already holds it.
start_worker() {
  local name="$1" port="$2"
  "${BUILD_DIR}/pops_serve" --port "${port}" \
      --cache-file "${SMOKE_DIR}/${name}.jnl" \
      > "${SMOKE_DIR}/${name}.out" 2> "${SMOKE_DIR}/${name}.err" &
  PIDS[${name}]=$!
  for _ in $(seq 1 50); do
    local got
    got="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
           "${SMOKE_DIR}/${name}.out")"
    if [[ -n "${got}" ]]; then
      eval "PORT_${name}=${got}"
      return 0
    fi
    sleep 0.1
  done
  echo "worker ${name} did not start"; cat "${SMOKE_DIR}/${name}.err"; exit 1
}

stop_worker() {
  local name="$1" port_var="PORT_$1"
  "${BUILD_DIR}/pops_serve" client --port "${!port_var}" --shutdown > /dev/null
  wait "${PIDS[${name}]}" 2>/dev/null || true
  unset "PIDS[${name}]"
}

SPEC_ARGS=(--tc 0.8,0.9 --margins 0.05,0.1 --no-runtimes --allow-unmet)

# --- cold fleet vs single daemon: the byte-identity contract -----------------
start_worker A 0
start_worker B 0
start_worker S 0   # the single-daemon reference

"${BUILD_DIR}/pops_fabric" --workers "127.0.0.1:${PORT_A},127.0.0.1:${PORT_B}" \
    "${SPEC_ARGS[@]}" --trace-out "${SMOKE_DIR}/fleet.trace" \
    "${SMOKE_DIR}/c17.bench" @c432 \
    > "${SMOKE_DIR}/fleet_cold.jsonl" 2> "${SMOKE_DIR}/fleet_cold.err"
"${BUILD_DIR}/pops_fabric" --workers "127.0.0.1:${PORT_S}" \
    "${SPEC_ARGS[@]}" "${SMOKE_DIR}/c17.bench" @c432 \
    > "${SMOKE_DIR}/single.jsonl"

cmp "${SMOKE_DIR}/fleet_cold.jsonl" "${SMOKE_DIR}/single.jsonl" || {
  echo "fleet merge must be byte-identical to the single-daemon stream"
  exit 1
}
grep -q "0 failovers" "${SMOKE_DIR}/fleet_cold.err" || {
  echo "healthy fleet must not fail over"; cat "${SMOKE_DIR}/fleet_cold.err"
  exit 1
}
echo "fabric smoke OK: 2-worker merge byte-identical to single daemon"

# The merged trace must carry spans relayed from the workers (rebased
# into the coordinator timeline as pid 1000+w), not just local ones.
python3 - "${SMOKE_DIR}/fleet.trace" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
worker_runs = [e for e in events if e["name"] == "sweep/run" and e["pid"] >= 1000]
dispatches = [e for e in events if e["name"] == "fabric/dispatch" and e["pid"] < 1000]
assert len(worker_runs) == 8, f"expected 8 worker sweep/run spans, got {len(worker_runs)}"
# An 8-point grid can legitimately shard entirely onto one worker, so
# only the presence of relayed worker spans is load-bearing here.
assert len({e["pid"] for e in worker_runs}) >= 1
assert len(dispatches) == 8, f"expected 8 coordinator dispatch spans, got {len(dispatches)}"
print("trace OK: worker sweep/run spans merged into the coordinator timeline")
PY

# --- second backend through the same workers ---------------------------------
# A table delay-model spec must route into each worker's per-selector
# context pool (the daemons already served closed-form sweeps above) and
# still merge byte-identically against the single daemon.
cat > "${SMOKE_DIR}/table.json" <<'SPEC'
{"circuits": ["c17"], "tc_ratios": [0.85, 0.95],
 "base": {"delay_model": "table"}}
SPEC
"${BUILD_DIR}/pops_fabric" --workers "127.0.0.1:${PORT_A},127.0.0.1:${PORT_B}" \
    --spec "${SMOKE_DIR}/table.json" --no-runtimes --allow-unmet \
    > "${SMOKE_DIR}/fleet_table.jsonl"
"${BUILD_DIR}/pops_fabric" --workers "127.0.0.1:${PORT_S}" \
    --spec "${SMOKE_DIR}/table.json" --no-runtimes --allow-unmet \
    > "${SMOKE_DIR}/single_table.jsonl"
cmp "${SMOKE_DIR}/fleet_table.jsonl" "${SMOKE_DIR}/single_table.jsonl" || {
  echo "table-backend fleet merge must match the single daemon"; exit 1
}
echo "fabric smoke OK: table-backend spec served through the context pools"

# --- warm restart: every point replayed from the journals --------------------
stop_worker A
stop_worker B
test -s "${SMOKE_DIR}/A.jnl" || { echo "worker A journal missing"; exit 1; }
test -s "${SMOKE_DIR}/B.jnl" || { echo "worker B journal missing"; exit 1; }

start_worker A "${PORT_A}"
start_worker B "${PORT_B}"
grep -Eq "cache '.*A\.jnl': [1-9][0-9]* entries" "${SMOKE_DIR}/A.err" || {
  echo "worker A restart did not replay its journal"; cat "${SMOKE_DIR}/A.err"
  exit 1
}

"${BUILD_DIR}/pops_fabric" --workers "127.0.0.1:${PORT_A},127.0.0.1:${PORT_B}" \
    "${SPEC_ARGS[@]}" --metrics-out "${SMOKE_DIR}/fleet.metrics" \
    "${SMOKE_DIR}/c17.bench" @c432 \
    > "${SMOKE_DIR}/fleet_warm.jsonl"
cmp "${SMOKE_DIR}/fleet_cold.jsonl" "${SMOKE_DIR}/fleet_warm.jsonl" || {
  echo "warm fleet rerun must be byte-identical to the cold run"; exit 1
}

# Zero recomputes, proven by counters: the restarted workers' registries
# are fresh, so any miss in the aggregate would be a recompute.
python3 - "${SMOKE_DIR}/fleet.metrics" <<'PY'
import json, sys
m = json.load(open(sys.argv[1]))
agg = m["aggregate"]["counters"]
assert len(m["workers"]) == 2, sorted(m["workers"])
assert agg.get("cache.misses", 0) == 0, f"warm rerun recomputed: {agg}"
assert agg.get("cache.hits", 0) >= 8, f"expected >= 8 journal hits: {agg}"
print("metrics OK: warm fleet rerun was all cache hits "
      f"({int(agg['cache.hits'])} hits, 0 misses)")
PY
echo "fabric smoke OK: warm restart replayed entirely from the journals"

stop_worker A
stop_worker B
stop_worker S
echo "pops_fabric smoke OK"
