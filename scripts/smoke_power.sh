#!/usr/bin/env bash
# Power-backend smoke: sweep a built-in circuit under the state-dependent
# power model at 85 degC with the multi-Vt axis on, and assert (a) every
# record carries a power section from the requested backend at the
# requested temperature, (b) multi-vt points spend slack on high-Vt cells
# and report less leakage than their single-Vt twins, (c) a repeat run
# with --no-runtimes is BYTE-IDENTICAL (the power RNG stream is seeded by
# content, not by process), and (d) the unmet-point exit contract (exit 2)
# survives the power axes. Shared by scripts/ci.sh and the GitHub
# workflow.
# Usage: scripts/smoke_power.sh <build-dir>
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:?usage: smoke_power.sh <build-dir>}"

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT

"${BUILD_DIR}/pops_sweep" --tc 1.0,1.25 --power-model state --temperature 85 \
    --vt-policies none,multi-vt --no-runtimes \
    --out "${SMOKE_DIR}/run1.json" @c432
"${BUILD_DIR}/pops_sweep" --tc 1.0,1.25 --power-model state --temperature 85 \
    --vt-policies none,multi-vt --no-runtimes \
    --out "${SMOKE_DIR}/run2.json" @c432

cmp "${SMOKE_DIR}/run1.json" "${SMOKE_DIR}/run2.json" \
    || { echo "power sweep is not byte-deterministic across runs"; exit 1; }

python3 - "${SMOKE_DIR}/run1.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)  # must be valid JSON
points = report["sweeps"][0]["points"]
assert len(points) == 4, len(points)
by_vt = {}
for p in points:
    power = p["report"]["power"]
    assert power["model"] == "state", power["model"]
    assert power["temperature_c"] == 85.0, power["temperature_c"]
    assert power["leakage_uw"] > 0 and power["total_uw"] > 0
    assert p["temperature_c"] == 85.0
    by_vt.setdefault(p["vt_policy"], {})[p["tc_ratio"]] = p
assert set(by_vt) == {"none", "multi-vt"}, set(by_vt)
for ratio, mvt in by_vt["multi-vt"].items():
    base = by_vt["none"][ratio]
    assert mvt["report"]["cells_high_vt"] > 0, ratio
    assert (mvt["report"]["power"]["leakage_uw"]
            < base["report"]["power"]["leakage_uw"]), ratio
    assert mvt["report"]["met"] and base["report"]["met"], ratio
print("power smoke OK:",
      ", ".join(f"tc={r}: {m['report']['cells_high_vt']} high-Vt cells"
                for r, m in sorted(by_vt["multi-vt"].items())))
PY

# Exit contract: an infeasible constraint still exits 2 under the power
# axes (and 0 with --allow-unmet).
set +e
"${BUILD_DIR}/pops_sweep" --tc 0.5 --power-model state --temperature 85 \
    --out /dev/null @c432 2> /dev/null
rc=$?
set -e
[[ "${rc}" -eq 2 ]] || { echo "expected exit 2 on unmet points, got ${rc}"; exit 1; }
"${BUILD_DIR}/pops_sweep" --tc 0.5 --power-model state --temperature 85 \
    --allow-unmet --out /dev/null @c432 2> /dev/null \
    || { echo "--allow-unmet must exit 0"; exit 1; }
echo "power exit-contract OK"
