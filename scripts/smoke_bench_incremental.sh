#!/usr/bin/env bash
# bench_incremental_sta smoke: the bench must run, emit valid JSON with
# the expected shape, and show the incremental analyzer no slower than a
# cold re-run for the smallest dirty set on every circuit (the bench
# itself asserts bit-identity via IncrementalSta::check_against_full on
# every configuration). Shared by scripts/ci.sh and the GitHub workflow.
# Usage: scripts/smoke_bench_incremental.sh <build-dir>
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:?usage: smoke_bench_incremental.sh <build-dir>}"

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT

"${BUILD_DIR}/bench_incremental_sta" "${SMOKE_DIR}/bench.json" > /dev/null

python3 - "${SMOKE_DIR}/bench.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)  # must be valid JSON
assert doc["bench"] == "incremental_sta"
circuits = {c["circuit"]: c for c in doc["circuits"]}
assert set(circuits) == {"c432", "c880", "c1355"}, set(circuits)
for name, c in circuits.items():
    rows = {r["dirty"]: r for r in c["rows"]}
    assert 1 in rows, f"{name}: missing dirty=1 row"
    for r in c["rows"]:
        assert r["cold_round_ms"] > 0 and r["incremental_ms"] > 0, (name, r)
    one = rows[1]
    # Timing smoke, so keep the bound conservative: a single-gate resize
    # must never cost more than a full cold re-analysis.
    assert one["incremental_ms"] <= one["cold_round_ms"], (
        f"{name}: incremental dirty=1 slower than cold "
        f"({one['incremental_ms']:.3f} vs {one['cold_round_ms']:.3f} ms)")
print("bench_incremental_sta smoke OK:",
      ", ".join(f"{n} {circuits[n]['rows'][0]['speedup']:.1f}x@dirty=1"
                for n in ("c432", "c880", "c1355")))
PY
