// Tests for De Morgan restructuring (paper §4.2): functional equivalence
// of the netlist rewrite (exhaustively checked), PO-name preservation,
// and the path-level rewrite's delay/area behaviour.

#include <gtest/gtest.h>

#include "pops/core/bounds.hpp"
#include "pops/core/restructure.hpp"
#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/process/technology.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops::core;
using namespace pops::netlist;
using namespace pops::timing;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;
using pops::util::Rng;

class RestructureTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};
  FlimitTable table;
};

TEST_F(RestructureTest, NorToNandPreservesFunction) {
  for (CellKind nor : {CellKind::Nor2, CellKind::Nor3, CellKind::Nor4}) {
    const int arity = lib.cell(nor).fanin;
    Netlist nl(lib, "t");
    std::vector<NodeId> pis;
    for (int i = 0; i < arity; ++i)
      pis.push_back(nl.add_input("i" + std::to_string(i)));
    const NodeId g = nl.add_gate(nor, "g", pis);
    nl.mark_output(g, 5.0);

    Netlist rewritten = nl;
    demorgan_nor_to_nand(rewritten, rewritten.find("g"));
    rewritten.validate();
    Rng rng(1);
    EXPECT_TRUE(equivalent(nl, rewritten, rng)) << lib.cell(nor).name;
    // The rewritten netlist has no NOR left.
    for (NodeId id : rewritten.gates())
      EXPECT_NE(rewritten.node(id).kind, nor);
  }
}

TEST_F(RestructureTest, NandToNorDualPreservesFunction) {
  Netlist nl(lib, "t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(CellKind::Nand2, "g", {a, b});
  nl.mark_output(g, 5.0);
  Netlist rewritten = nl;
  demorgan_nand_to_nor(rewritten, rewritten.find("g"));
  rewritten.validate();
  Rng rng(2);
  EXPECT_TRUE(equivalent(nl, rewritten, rng));
}

TEST_F(RestructureTest, RewriteInsideLargerCircuit) {
  // Rewrite every NOR of a synthetic circuit; function must be intact.
  Netlist nl = make_benchmark(lib, "fpd");
  Netlist rewritten = nl;
  std::vector<NodeId> nors;
  for (NodeId id : rewritten.gates()) {
    const CellKind k = rewritten.node(id).kind;
    if (k == CellKind::Nor2 || k == CellKind::Nor3 || k == CellKind::Nor4)
      nors.push_back(id);
  }
  ASSERT_FALSE(nors.empty());
  for (NodeId id : nors) demorgan_nor_to_nand(rewritten, id);
  rewritten.validate();
  Rng rng(3);
  EXPECT_TRUE(equivalent(nl, rewritten, rng, /*n_random_vectors=*/256));
}

TEST_F(RestructureTest, PoNamePreserved) {
  Netlist nl(lib, "t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId g = nl.add_gate(CellKind::Nor2, "my_output", {a, b});
  nl.mark_output(g, 7.0);
  const NodeId out = demorgan_nor_to_nand(nl, g);
  EXPECT_EQ(nl.node(out).name, "my_output");
  EXPECT_TRUE(nl.node(out).is_output);
  EXPECT_DOUBLE_EQ(nl.node(out).po_load_ff, 7.0);
  EXPECT_FALSE(nl.node(g).is_output);
}

TEST_F(RestructureTest, RejectsWrongKinds) {
  Netlist nl(lib, "t");
  const NodeId a = nl.add_input("a");
  const NodeId g = nl.add_gate(CellKind::Inv, "g", {a});
  nl.mark_output(g, 1.0);
  EXPECT_THROW(demorgan_nor_to_nand(nl, g), std::invalid_argument);
  EXPECT_THROW(demorgan_nand_to_nor(nl, g), std::invalid_argument);
  EXPECT_THROW(demorgan_nor_to_nand(nl, a), std::invalid_argument);
}

// ---- path level ---------------------------------------------------------------

namespace pathlevel {

BoundedPath nor_heavy_path(const Library& lib, const DelayModel& dm,
                           double off_x) {
  std::vector<PathStage> stages(9);
  const CellKind mix[] = {CellKind::Inv, CellKind::Nand2, CellKind::Nor3,
                          CellKind::Inv, CellKind::Nor2};
  for (std::size_t i = 0; i < stages.size(); ++i) stages[i].kind = mix[i % 5];
  stages[2].off_path_ff = off_x * lib.cref_ff();  // overloaded NOR3
  return BoundedPath(lib, stages, 2.0 * lib.cref_ff(), 12.0 * lib.cref_ff(),
                     Edge::Rise, dm.default_input_slew_ps());
}

}  // namespace pathlevel

TEST_F(RestructureTest, PathRewriteReplacesCriticalNors) {
  const BoundedPath p = pathlevel::nor_heavy_path(lib, dm, 70.0);
  const RestructureResult r = restructure_path(p, dm, table);
  ASSERT_GE(r.gates_restructured, 1u);
  // Off-path inverters charged: arity-1 per rewritten gate at least.
  EXPECT_GE(r.off_path_inverters, r.gates_restructured);
  EXPECT_GT(r.off_path_area_um, 0.0);
  // The rewritten path contains a NAND3 where the critical NOR3 was.
  bool has_nand3 = false;
  for (std::size_t i = 0; i < r.path.size(); ++i)
    if (r.path.stage(i).kind == CellKind::Nand3) has_nand3 = true;
  EXPECT_TRUE(has_nand3);
}

TEST_F(RestructureTest, RestructureBeatsInPathBufferingAtHardConstraint) {
  // The Table 4 comparison: under a hard constraint, replacing the
  // critical NOR by its NAND dual ("restruct") implements the path at
  // less cost than the paper's Fig. 5 buffer insertion ("buff") — and may
  // remain feasible where buffering alone is not (the paper's own hard
  // rows include such entries, marked X).
  const BoundedPath p = pathlevel::nor_heavy_path(lib, dm, 70.0);
  const BoundedPath base_tmin = size_for_tmin(p, dm);
  const double tc = 1.1 * base_tmin.delay_ps(dm);

  const BufferInsertionResult buf =
      insert_buffers_local(p, dm, table, InsertionStyle::InPathOnly);
  const SizingResult buf_sized = size_for_constraint(buf.path, dm, tc);

  const RestructureResult rr = restructure_path(p, dm, table);
  ASSERT_GE(rr.gates_restructured, 1u);
  const SizingResult re = size_for_constraint(rr.path, dm, tc);
  ASSERT_TRUE(re.feasible);

  if (buf_sized.feasible) {
    EXPECT_LT(re.area_um + rr.off_path_area_um,
              buf_sized.area_um + buf.shield_area_um);
  }
  // Either way, restructuring carries the day at the hard end.
  SUCCEED();
}

TEST_F(RestructureTest, UncriticalPathUntouched) {
  // Lightly loaded path: nothing exceeds Flimit once sensibly sized, so
  // the rewrite is a no-op.
  BoundedPath p = pathlevel::nor_heavy_path(lib, dm, 0.0);
  const BoundedPath sized = size_for_tmin(p, dm);
  const RestructureResult r = restructure_path(sized, dm, table);
  EXPECT_EQ(r.gates_restructured, 0u);
  EXPECT_EQ(r.path.size(), p.size());
  EXPECT_DOUBLE_EQ(r.off_path_area_um, 0.0);
}

TEST_F(RestructureTest, InverterPairCancellation) {
  // An INV immediately before a critical NOR absorbs the rewrite's input
  // inverter: stage count grows by 1 (out inv) instead of 2.
  std::vector<PathStage> stages(5);
  stages[0].kind = CellKind::Nand2;
  stages[1].kind = CellKind::Inv;   // will cancel
  stages[2].kind = CellKind::Nor2;  // critical
  stages[3].kind = CellKind::Inv;
  stages[4].kind = CellKind::Inv;
  stages[2].off_path_ff = 80.0 * Library(Technology::cmos025()).cref_ff();
  const BoundedPath p(lib, stages, 2.0 * lib.cref_ff(), 10.0 * lib.cref_ff(),
                      Edge::Rise, dm.default_input_slew_ps());
  const RestructureResult r = restructure_path(p, dm, table);
  ASSERT_EQ(r.gates_restructured, 1u);
  // 5 stages - 1 cancelled inv + 1 new output inv = 5.
  EXPECT_EQ(r.path.size(), 5u);
  EXPECT_EQ(r.path.stage(1).kind, CellKind::Nand2);  // NOR became NAND
}

}  // namespace
