// Tests for the area/power reporting module: the paper's ΣW proxy plus the
// first-order dynamic/leakage estimate built on simulated activities.

#include <gtest/gtest.h>

#include "pops/core/power.hpp"
#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/process/technology.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops;
using liberty::CellKind;
using liberty::Library;
using netlist::Netlist;
using netlist::NodeId;
using process::Technology;
using util::Rng;

class PowerTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
};

TEST_F(PowerTest, ReportFieldsPositive) {
  const Netlist nl = netlist::make_c17(lib);
  Rng rng(1);
  const core::PowerReport rep = core::estimate_power(nl, rng);
  EXPECT_GT(rep.area_um, 0.0);
  EXPECT_GT(rep.switched_cap_ff, 0.0);
  EXPECT_GT(rep.dynamic_uw, 0.0);
  EXPECT_GT(rep.leakage_uw, 0.0);
  EXPECT_NEAR(rep.total_uw, rep.dynamic_uw + rep.leakage_uw, 1e-12);
  EXPECT_DOUBLE_EQ(rep.frequency_mhz, 100.0);
}

TEST_F(PowerTest, DynamicPowerScalesWithFrequency) {
  const Netlist nl = netlist::make_c17(lib);
  Rng rng1(2), rng2(2);
  const auto at100 = core::estimate_power(nl, rng1, 100.0);
  const auto at200 = core::estimate_power(nl, rng2, 200.0);
  EXPECT_NEAR(at200.dynamic_uw, 2.0 * at100.dynamic_uw,
              1e-9 * at200.dynamic_uw);
  // Leakage does not depend on frequency.
  EXPECT_NEAR(at200.leakage_uw, at100.leakage_uw, 1e-12);
}

TEST_F(PowerTest, UpsizingIncreasesPowerAndArea) {
  Netlist small = netlist::make_c17(lib);
  Netlist big = netlist::make_c17(lib);
  for (NodeId g : big.gates()) big.set_drive(g, 4.0 * lib.wmin_um());
  Rng rng1(3), rng2(3);
  const auto p_small = core::estimate_power(small, rng1);
  const auto p_big = core::estimate_power(big, rng2);
  EXPECT_GT(p_big.area_um, p_small.area_um);
  EXPECT_GT(p_big.dynamic_uw, p_small.dynamic_uw);
  EXPECT_GT(p_big.leakage_uw, p_small.leakage_uw);
}

TEST_F(PowerTest, AreaMatchesNetlistTotalWidth) {
  const Netlist nl = netlist::make_benchmark(lib, "fpd");
  Rng rng(4);
  const auto rep = core::estimate_power(nl, rng, 50.0, 128);
  EXPECT_NEAR(rep.area_um, nl.total_width_um(), 1e-9);
}

TEST_F(PowerTest, InvalidFrequencyThrows) {
  const Netlist nl = netlist::make_c17(lib);
  Rng rng(5);
  EXPECT_THROW(core::estimate_power(nl, rng, 0.0), std::invalid_argument);
}

TEST_F(PowerTest, PathAreaHelperAgrees) {
  using namespace pops::timing;
  std::vector<PathStage> stages(3);
  for (auto& s : stages) s.kind = CellKind::Inv;
  const ClosedFormModel dm(lib);
  const BoundedPath p(lib, stages, 2.0 * lib.cref_ff(), 8.0 * lib.cref_ff(),
                      Edge::Rise, dm.default_input_slew_ps());
  EXPECT_DOUBLE_EQ(core::path_area_um(p), p.area_um());
}

TEST_F(PowerTest, DeterministicUnderSeed) {
  const Netlist nl = netlist::make_benchmark(lib, "fpd");
  Rng a(7), b(7);
  const auto ra = core::estimate_power(nl, a);
  const auto rb = core::estimate_power(nl, b);
  EXPECT_DOUBLE_EQ(ra.dynamic_uw, rb.dynamic_uw);
}

}  // namespace
