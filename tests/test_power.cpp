// Tests for the area/power reporting module: the paper's ΣW proxy plus the
// first-order dynamic/leakage estimate built on simulated activities.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pops/api/api.hpp"
#include "pops/core/power.hpp"
#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/power/power_model.hpp"
#include "pops/process/technology.hpp"
#include "pops/service/sweep.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops;
using liberty::CellKind;
using liberty::Library;
using netlist::Netlist;
using netlist::NodeId;
using process::Technology;
using util::Rng;

class PowerTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
};

TEST_F(PowerTest, ReportFieldsPositive) {
  const Netlist nl = netlist::make_c17(lib);
  Rng rng(1);
  const core::PowerReport rep = core::estimate_power(nl, rng);
  EXPECT_GT(rep.area_um, 0.0);
  EXPECT_GT(rep.switched_cap_ff, 0.0);
  EXPECT_GT(rep.dynamic_uw, 0.0);
  EXPECT_GT(rep.leakage_uw, 0.0);
  EXPECT_NEAR(rep.total_uw, rep.dynamic_uw + rep.leakage_uw, 1e-12);
  EXPECT_DOUBLE_EQ(rep.frequency_mhz, 100.0);
}

TEST_F(PowerTest, DynamicPowerScalesWithFrequency) {
  const Netlist nl = netlist::make_c17(lib);
  Rng rng1(2), rng2(2);
  const auto at100 = core::estimate_power(nl, rng1, 100.0);
  const auto at200 = core::estimate_power(nl, rng2, 200.0);
  EXPECT_NEAR(at200.dynamic_uw, 2.0 * at100.dynamic_uw,
              1e-9 * at200.dynamic_uw);
  // Leakage does not depend on frequency.
  EXPECT_NEAR(at200.leakage_uw, at100.leakage_uw, 1e-12);
}

TEST_F(PowerTest, UpsizingIncreasesPowerAndArea) {
  Netlist small = netlist::make_c17(lib);
  Netlist big = netlist::make_c17(lib);
  for (NodeId g : big.gates()) big.set_drive(g, 4.0 * lib.wmin_um());
  Rng rng1(3), rng2(3);
  const auto p_small = core::estimate_power(small, rng1);
  const auto p_big = core::estimate_power(big, rng2);
  EXPECT_GT(p_big.area_um, p_small.area_um);
  EXPECT_GT(p_big.dynamic_uw, p_small.dynamic_uw);
  EXPECT_GT(p_big.leakage_uw, p_small.leakage_uw);
}

TEST_F(PowerTest, AreaMatchesNetlistTotalWidth) {
  const Netlist nl = netlist::make_benchmark(lib, "fpd");
  Rng rng(4);
  const auto rep = core::estimate_power(nl, rng, 50.0, 128);
  EXPECT_NEAR(rep.area_um, nl.total_width_um(), 1e-9);
}

TEST_F(PowerTest, InvalidFrequencyThrows) {
  const Netlist nl = netlist::make_c17(lib);
  Rng rng(5);
  EXPECT_THROW(core::estimate_power(nl, rng, 0.0), std::invalid_argument);
}

TEST_F(PowerTest, PathAreaHelperAgrees) {
  using namespace pops::timing;
  std::vector<PathStage> stages(3);
  for (auto& s : stages) s.kind = CellKind::Inv;
  const ClosedFormModel dm(lib);
  const BoundedPath p(lib, stages, 2.0 * lib.cref_ff(), 8.0 * lib.cref_ff(),
                      Edge::Rise, dm.default_input_slew_ps());
  EXPECT_DOUBLE_EQ(core::path_area_um(p), p.area_um());
}

TEST_F(PowerTest, DeterministicUnderSeed) {
  const Netlist nl = netlist::make_benchmark(lib, "fpd");
  Rng a(7), b(7);
  const auto ra = core::estimate_power(nl, a);
  const auto rb = core::estimate_power(nl, b);
  EXPECT_DOUBLE_EQ(ra.dynamic_uw, rb.dynamic_uw);
}

// ---------------------------------------------------------------------------
// Polymorphic power backends
// ---------------------------------------------------------------------------

/// The pre-backend core::estimate_power arithmetic, written out straight-
/// line: the ProxyModel (which estimate_power now forwards through) must
/// reproduce these numbers bit for bit, accumulation order and all.
power::PowerReport legacy_reference(const Netlist& nl, Rng& rng,
                                    double frequency_mhz, int vectors) {
  const netlist::ActivityReport activity =
      netlist::estimate_activity(nl, rng, vectors);
  power::PowerReport rep;
  double switched = 0.0;
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    switched += activity.toggle_rate[i] * (nl.load_ff(id) + nl.cpar_ff(id));
  }
  rep.switched_cap_ff = switched;
  const double vdd = nl.lib().tech().vdd;
  const double dyn_nw = 0.5 * switched * vdd * vdd * frequency_mhz;
  rep.dynamic_uw = dyn_nw * 1e-3 * (1.0 + power::kShortCircuitFraction);
  rep.area_um = nl.total_width_um();
  rep.leakage_uw = power::kProxyIoffNaPerUm * rep.area_um * vdd * 1e-3;
  rep.total_uw = rep.dynamic_uw + rep.leakage_uw;
  rep.frequency_mhz = frequency_mhz;
  return rep;
}

TEST_F(PowerTest, ProxyMatchesLegacyBitIdentically) {
  for (const char* const name : {"c17", "c432", "c880"}) {
    const Netlist nl = netlist::make_benchmark(lib, name);
    Rng legacy_rng(11), proxy_rng(11), forward_rng(11);
    const power::PowerReport want = legacy_reference(nl, legacy_rng, 100.0, 256);

    const power::ProxyModel proxy(lib);
    const power::PowerReport got = proxy.estimate(nl, proxy_rng, 100.0, 256);
    EXPECT_EQ(got.area_um, want.area_um) << name;
    EXPECT_EQ(got.switched_cap_ff, want.switched_cap_ff) << name;
    EXPECT_EQ(got.dynamic_uw, want.dynamic_uw) << name;
    EXPECT_EQ(got.leakage_uw, want.leakage_uw) << name;
    EXPECT_EQ(got.total_uw, want.total_uw) << name;

    // The legacy entry point forwards through the same backend.
    const core::PowerReport fwd =
        core::estimate_power(nl, forward_rng, 100.0, 256);
    EXPECT_EQ(fwd.dynamic_uw, want.dynamic_uw) << name;
    EXPECT_EQ(fwd.leakage_uw, want.leakage_uw) << name;
    EXPECT_EQ(fwd.total_uw, want.total_uw) << name;
  }
}

TEST_F(PowerTest, StateLeakageRisesWithTemperature) {
  const Netlist nl = netlist::make_benchmark(lib, "c432");
  const power::StateDependentModel model(lib);
  Rng cool_rng(13), hot_rng(13);
  const auto cool = model.estimate(nl, cool_rng, 100.0, 256, 25.0);
  const auto hot = model.estimate(nl, hot_rng, 100.0, 256, 85.0);
  EXPECT_GT(hot.subthreshold_uw, cool.subthreshold_uw);
  EXPECT_GT(hot.leakage_uw, cool.leakage_uw);
  // Gate (tunnelling) leakage and dynamic power are temperature-blind.
  EXPECT_DOUBLE_EQ(hot.gate_leak_uw, cool.gate_leak_uw);
  EXPECT_DOUBLE_EQ(hot.dynamic_uw, cool.dynamic_uw);
}

TEST_F(PowerTest, StateLeakageFallsWithHighVtFraction) {
  const Netlist svt = netlist::make_benchmark(lib, "c432");
  Netlist hvt = svt;
  const int cls = lib.tech().find_vt_class("hvt");
  ASSERT_GT(cls, 0);
  for (NodeId g : hvt.gates()) hvt.set_vt_class(g, cls);

  const power::StateDependentModel model(lib);
  Rng svt_rng(17), hvt_rng(17);
  const auto p_svt = model.estimate(svt, svt_rng, 100.0, 256);
  const auto p_hvt = model.estimate(hvt, hvt_rng, 100.0, 256);
  EXPECT_LT(p_hvt.subthreshold_uw, p_svt.subthreshold_uw);
  EXPECT_LT(p_hvt.leakage_uw, p_svt.leakage_uw);
  // A Vt implant swaps threshold, not geometry: dynamic power unchanged.
  EXPECT_DOUBLE_EQ(p_hvt.dynamic_uw, p_svt.dynamic_uw);
}

TEST_F(PowerTest, UnknownBackendNameThrows) {
  EXPECT_THROW(power::make_power_model("spice", lib), std::invalid_argument);
}

TEST(PowerCache, BackendsNeverAlias) {
  // Proxy- and state-model runs of the same circuit must key distinct
  // cache entries: neither backend may replay the other's reports.
  api::OptContext ctx;
  auto cache = std::make_shared<service::ResultCache>();
  ctx.set_result_cache(cache);

  auto run_once = [&](const std::string& model) {
    api::Optimizer opt(ctx, api::OptimizerConfig{}.with_power_model(model));
    Netlist nl = netlist::make_benchmark(ctx.lib(), "c432");
    return opt.run_relative(nl, 0.85);
  };

  const api::PipelineReport proxy1 = run_once("proxy");
  EXPECT_EQ(cache->misses(), 1u);
  const api::PipelineReport state1 = run_once("state");
  EXPECT_EQ(cache->misses(), 2u);
  EXPECT_EQ(cache->hits(), 0u) << "state run replayed a proxy entry";
  EXPECT_EQ(proxy1.power.model, "proxy");
  EXPECT_EQ(state1.power.model, "state");

  const api::PipelineReport proxy2 = run_once("proxy");
  const api::PipelineReport state2 = run_once("state");
  EXPECT_EQ(cache->hits(), 2u);
  EXPECT_EQ(proxy1.power.leakage_uw, proxy2.power.leakage_uw);
  EXPECT_EQ(state1.power.leakage_uw, state2.power.leakage_uw);
}

TEST(MultiVtPass, SweepMeetsTcAndRecoversLeakage) {
  api::OptContext ctx;
  service::SweepService sweeps(ctx);

  service::SweepSpec spec;
  spec.circuits = {"c880"};
  spec.tc_ratios = {1.0, 1.25};
  spec.vt_policies = {"none", "multi-vt"};
  spec.base.power_model = "state";
  spec.n_threads = 1;

  const service::SweepReport rep = sweeps.run(
      spec, [&ctx](const std::string& name) {
        return netlist::make_benchmark(ctx.lib(), name);
      });
  ASSERT_EQ(rep.points.size(), 4u);

  // Every point — with and without the pass — still meets its constraint.
  for (const service::SweepPoint& p : rep.points)
    EXPECT_TRUE(p.report.met)
        << p.circuit << " @" << p.tc_ratio << " vt=" << p.vt_policy;

  // Record order: vt_policy is outside the ratio axis, so points pair up
  // as (none@1.0, none@1.25, multi-vt@1.0, multi-vt@1.25).
  for (std::size_t i = 0; i < 2; ++i) {
    const service::SweepPoint& base = rep.points[i];
    const service::SweepPoint& mvt = rep.points[i + 2];
    ASSERT_EQ(base.tc_ratio, mvt.tc_ratio);
    EXPECT_EQ(base.vt_policy, "none");
    EXPECT_EQ(mvt.vt_policy, "multi-vt");
    EXPECT_GT(mvt.report.total_cells_high_vt(), 0u)
        << "no slack spent at Tc ratio " << mvt.tc_ratio;
    EXPECT_GT(mvt.report.total_leakage_saved_uw(), 0.0);
    EXPECT_LT(mvt.report.power.leakage_uw, base.report.power.leakage_uw)
        << "Tc ratio " << mvt.tc_ratio;
  }
}

}  // namespace
