// Cross-module property tests: randomised paths and circuits pushed
// through the full pipeline, with the paper's invariants asserted at each
// stage. Deterministic seeds — failures reproduce exactly.

#include <gtest/gtest.h>

#include "pops/core/protocol.hpp"
#include "pops/liberty/library.hpp"
#include "pops/netlist/bench_io.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/netlist/logic_sim.hpp"
#include "pops/process/technology.hpp"
#include "pops/spice/transient.hpp"
#include "pops/timing/sta.hpp"
#include "pops/util/rng.hpp"

namespace {

using namespace pops;
using namespace pops::timing;
using liberty::CellKind;
using liberty::Library;
using process::Technology;
using util::Rng;

// ---------- randomised bounded paths through the sizing pipeline -------------

class RandomPathTest : public ::testing::TestWithParam<int> {};

BoundedPath random_path(const Library& lib, const DelayModel& dm, Rng& rng) {
  const int n = static_cast<int>(rng.uniform_int(3, 24));
  const CellKind pool[] = {CellKind::Inv,   CellKind::Nand2, CellKind::Nand3,
                           CellKind::Nor2,  CellKind::Nor3,  CellKind::Nand4,
                           CellKind::Nor4};
  std::vector<PathStage> stages(static_cast<std::size_t>(n));
  for (auto& st : stages) {
    st.kind = pool[rng.uniform_int(0, 6)];
    if (rng.bernoulli(0.3))
      st.off_path_ff = rng.uniform(1.0, 40.0) * lib.cref_ff();
  }
  return BoundedPath(lib, stages, rng.uniform(1.0, 4.0) * lib.cref_ff(),
                     rng.uniform(4.0, 40.0) * lib.cref_ff(),
                     rng.bernoulli(0.5) ? Edge::Rise : Edge::Fall,
                     dm.default_input_slew_ps());
}

TEST_P(RandomPathTest, PipelineInvariantsHold) {
  const Library lib(Technology::cmos025());
  const ClosedFormModel dm(lib);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

  const BoundedPath path = random_path(lib, dm, rng);

  // 1. Bounds sane.
  const core::PathBounds bounds = core::compute_bounds(path, dm);
  ASSERT_GT(bounds.tmin_ps, 0.0);
  ASSERT_LE(bounds.tmin_ps, bounds.tmax_ps * (1.0 + 1e-9));

  // 2. Constraint met anywhere in the feasible band, at monotone area.
  const double r1 = rng.uniform(1.05, 1.6);
  const double r2 = r1 + rng.uniform(0.2, 1.0);
  const core::SizingResult tight =
      core::size_for_constraint(path, dm, r1 * bounds.tmin_ps);
  const core::SizingResult loose =
      core::size_for_constraint(path, dm, r2 * bounds.tmin_ps);
  EXPECT_TRUE(tight.feasible);
  EXPECT_TRUE(loose.feasible);
  EXPECT_LE(tight.delay_ps, r1 * bounds.tmin_ps * 1.001);
  EXPECT_LE(loose.area_um, tight.area_um * (1.0 + 1e-9));

  // 3. The protocol never does worse than pure sizing.
  core::FlimitTable table;
  const core::ProtocolResult pr =
      core::optimize_path(path, dm, table, r1 * bounds.tmin_ps);
  EXPECT_TRUE(pr.sizing.feasible);
  EXPECT_LE(pr.total_area_um(), tight.area_um * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPathTest, ::testing::Range(0, 24));

// ---------- randomised synthetic circuits -------------------------------------

class RandomCircuitTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCircuitTest, GenerateAnalyzeRoundTrip) {
  const Library lib(Technology::cmos025());
  const ClosedFormModel dm(lib);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);

  netlist::BenchmarkSpec spec;
  spec.name = "fuzz" + std::to_string(GetParam());
  spec.n_pi = static_cast<int>(rng.uniform_int(4, 40));
  spec.n_po = static_cast<int>(rng.uniform_int(2, 12));
  spec.path_depth = static_cast<int>(rng.uniform_int(4, 30));
  spec.n_gates = spec.path_depth + static_cast<int>(rng.uniform_int(20, 300));
  spec.seed = rng();

  const netlist::Netlist nl = netlist::make_synthetic(lib, spec);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.stats().depth, static_cast<std::size_t>(spec.path_depth));

  // STA runs; critical path extractable and consistent.
  const Sta sta(nl, dm);
  const StaResult res = sta.run();
  const TimedPath tp = sta.critical_path(res);
  ASSERT_GE(tp.points.size(), 2u);
  EXPECT_NEAR(tp.delay_ps, res.critical_delay_ps, 1e-9);

  // .bench round trip preserves the function.
  const netlist::Netlist reread =
      netlist::read_bench_string(netlist::write_bench_string(nl), lib);
  Rng eq_rng(3);
  EXPECT_TRUE(netlist::equivalent(nl, reread, eq_rng, 64));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitTest, ::testing::Range(0, 10));

// ---------- protocol across the full benchmark suite ---------------------------

class ProtocolSuiteTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProtocolSuiteTest, MediumConstraintMetAtOrBelowSizingArea) {
  const Library lib(Technology::cmos025());
  const ClosedFormModel dm(lib);
  netlist::Netlist nl = netlist::make_benchmark(lib, GetParam());
  const Sta sta(nl, dm);
  const TimedPath tp = sta.critical_path(sta.run());
  const BoundedPath path =
      BoundedPath::extract(nl, tp, dm.default_input_slew_ps());

  const core::PathBounds bounds = core::compute_bounds(path, dm);
  const double tc = 1.3 * bounds.tmin_ps;

  core::FlimitTable table;
  const core::ProtocolResult pr = core::optimize_path(path, dm, table, tc);
  const core::SizingResult plain = core::size_for_constraint(path, dm, tc);

  EXPECT_TRUE(pr.sizing.feasible) << GetParam();
  EXPECT_LE(pr.sizing.delay_ps, tc * 1.001) << GetParam();
  if (plain.feasible) {
    EXPECT_LE(pr.total_area_um(), plain.area_um * 1.001) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ProtocolSuiteTest,
                         ::testing::Values("Adder16", "fpd", "c432", "c499",
                                           "c880", "c1355", "c1908", "c3540",
                                           "c5315", "c7552"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---------- transient solver physics ------------------------------------------

TEST(TransientPhysics, CapacitiveDividerMatchesAnalytic) {
  // A driven ramp couples through Cc onto a floating node with Cg to
  // ground: the node must settle at dV * Cc / (Cc + Cg).
  const Technology tech = Technology::cmos025();
  spice::Circuit ckt(tech);
  spice::Pwl ramp;
  ramp.points = {{0.0, 0.0}, {10.0, 0.0}, {60.0, 2.5}};
  const auto in = ckt.add_driven_node("in", ramp);
  const auto node = ckt.add_node("float", /*cap_ff=*/30.0);  // Cg
  ckt.add_cap(in, 10.0, node);                               // Cc

  const spice::TransientResult res = spice::simulate(ckt, 200.0);
  const double v_end = res.voltage(node).back();
  EXPECT_NEAR(v_end, 2.5 * 10.0 / 40.0, 0.01);
}

TEST(TransientPhysics, InverterDischargeConservesMonotonicity) {
  // A single NMOS discharging a capacitor: the voltage must fall
  // monotonically to ground, never below.
  const Technology tech = Technology::cmos025();
  spice::Circuit ckt(tech);
  const auto out = ckt.add_node("out", 50.0);
  ckt.add_device(false, 2.0, ckt.vdd(), out, ckt.gnd());  // gate tied high
  std::vector<bool> init(ckt.node_count(), false);
  init[static_cast<std::size_t>(out)] = true;  // start charged

  const spice::TransientResult res = spice::simulate(ckt, 500.0, init);
  const auto& v = res.voltage(out);
  EXPECT_NEAR(v.front(), tech.vdd, 1e-6);
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_LE(v[i], v[i - 1] + 1e-9);
    EXPECT_GE(v[i], -0.05);
  }
  EXPECT_LT(v.back(), 0.1);
}

TEST(TransientPhysics, ChargeInjectionThroughMiller) {
  // The Miller cap couples the input edge onto the output: during a fast
  // input rise the output of an inverter overshoots *upward* briefly
  // before the NMOS pulls it down — the bump eq. (1) models with CM.
  const Technology tech = Technology::cmos025();
  const Library lib(tech);
  spice::Circuit ckt(tech);
  spice::Pwl ramp;
  ramp.points = {{0.0, 0.0}, {20.0, 0.0}, {30.0, 2.5}};  // fast edge
  const auto in = ckt.add_driven_node("in", ramp);
  const auto out = ckt.expand_gate(lib.cell(CellKind::Inv), 1.0, in, "g");
  ckt.add_cap(out, 5.0);
  std::vector<bool> init(ckt.node_count(), false);
  init[static_cast<std::size_t>(out)] = true;

  const spice::TransientResult res = spice::simulate(ckt, 300.0, init);
  double vmax = 0.0;
  for (double v : res.voltage(out)) vmax = std::max(vmax, v);
  EXPECT_GT(vmax, tech.vdd + 0.01);  // the Miller bump
}

}  // namespace
