// Tests for the textual timing reports.

#include <gtest/gtest.h>

#include "pops/liberty/library.hpp"
#include "pops/netlist/benchmarks.hpp"
#include "pops/process/technology.hpp"
#include "pops/timing/report.hpp"
#include "pops/util/table.hpp"

namespace {

using namespace pops;
using namespace pops::timing;
using liberty::Library;
using process::Technology;

class ReportTest : public ::testing::Test {
 protected:
  Library lib{Technology::cmos025()};
  ClosedFormModel dm{lib};
};

TEST_F(ReportTest, PathReportShowsStages) {
  const netlist::Netlist nl = netlist::make_c17(lib);
  const Sta sta(nl, dm);
  const StaResult res = sta.run();
  ReportOptions opt;
  opt.max_paths = 2;
  const std::string text = report_paths(nl, sta, res, opt);
  EXPECT_NE(text.find("Path #1"), std::string::npos);
  EXPECT_NE(text.find("Path #2"), std::string::npos);
  EXPECT_NE(text.find("nand2"), std::string::npos);
  EXPECT_NE(text.find("(input)"), std::string::npos);
  // Critical path delay appears.
  EXPECT_NE(text.find(util::fmt(res.critical_delay_ps, 1)),
            std::string::npos);
}

TEST_F(ReportTest, EndpointReportSortsWorstFirst) {
  const netlist::Netlist nl = netlist::make_benchmark(lib, "fpd");
  const Sta sta(nl, dm);
  const StaResult res = sta.run();
  ReportOptions opt;
  opt.tc_ps = res.critical_delay_ps;  // exact: worst endpoint has 0 slack
  const std::string text = report_endpoints(nl, sta, res, opt);
  // First data row carries the worst slack: 0.0 at the critical endpoint.
  const std::size_t first_row = text.find("| ", text.find("status"));
  ASSERT_NE(first_row, std::string::npos);
  EXPECT_NE(text.find("0.0"), std::string::npos);
  EXPECT_EQ(text.find("VIOLATED"), std::string::npos);  // met exactly
}

TEST_F(ReportTest, ViolationsFlagged) {
  const netlist::Netlist nl = netlist::make_c17(lib);
  const Sta sta(nl, dm);
  const StaResult res = sta.run();
  ReportOptions opt;
  opt.tc_ps = 0.5 * res.critical_delay_ps;
  const std::string text = report_endpoints(nl, sta, res, opt);
  EXPECT_NE(text.find("VIOLATED"), std::string::npos);
}

TEST_F(ReportTest, HistogramCountsAllEndpoints) {
  const netlist::Netlist nl = netlist::make_benchmark(lib, "c499");
  const Sta sta(nl, dm);
  const StaResult res = sta.run();
  const std::string text = report_slack_histogram(nl, sta, res);
  const std::size_t n_po = nl.outputs().size();
  EXPECT_NE(text.find(std::to_string(n_po) + " endpoints"),
            std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST_F(ReportTest, DefaultTcIsCriticalDelay) {
  const netlist::Netlist nl = netlist::make_c17(lib);
  const Sta sta(nl, dm);
  const StaResult res = sta.run();
  const std::string text = report_endpoints(nl, sta, res);
  EXPECT_NE(text.find(util::fmt(res.critical_delay_ps, 1)),
            std::string::npos);
}

}  // namespace
