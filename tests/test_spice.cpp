// Tests for the transistor-level transient simulator (the HSPICE
// substitute): device model sanity, waveform physics, and agreement of
// the closed-form delay model with "simulation" — the validation loop the
// paper runs for eq. (1-3) and Table 2.

#include <gtest/gtest.h>

#include "pops/liberty/library.hpp"
#include "pops/process/technology.hpp"
#include "pops/spice/measure.hpp"
#include "pops/spice/mosfet.hpp"
#include "pops/timing/delay_model.hpp"

namespace {

using namespace pops::spice;
using pops::liberty::CellKind;
using pops::liberty::Library;
using pops::process::Technology;

class SpiceTest : public ::testing::Test {
 protected:
  Technology tech = Technology::cmos025();
  Library lib{tech};
};

TEST_F(SpiceTest, MosfetRegions) {
  const AlphaPowerParams n = nmos_params(tech);
  // Cutoff below threshold.
  EXPECT_DOUBLE_EQ(drain_current_ma(n, 1.0, 0.3, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(drain_current_ma(n, 1.0, 1.0, 0.0), 0.0);
  // Calibration: Idsat at full gate drive equals the technology value.
  EXPECT_NEAR(drain_current_ma(n, 1.0, tech.vdd, tech.vdd),
              tech.idsat_n_ma_um, 1e-9);
  // Linear region below Vd0 carries less current than saturation.
  EXPECT_LT(drain_current_ma(n, 1.0, tech.vdd, 0.05),
            drain_current_ma(n, 1.0, tech.vdd, tech.vdd));
  // Monotone in Vgs and width.
  EXPECT_LT(drain_current_ma(n, 1.0, 1.2, 2.0),
            drain_current_ma(n, 1.0, 1.8, 2.0));
  EXPECT_NEAR(drain_current_ma(n, 3.0, tech.vdd, tech.vdd),
              3.0 * tech.idsat_n_ma_um, 1e-9);
  EXPECT_THROW(drain_current_ma(n, 0.0, 1.0, 1.0), std::invalid_argument);
}

TEST_F(SpiceTest, PmosWeakerThanNmos) {
  const AlphaPowerParams n = nmos_params(tech);
  const AlphaPowerParams p = pmos_params(tech);
  EXPECT_GT(drain_current_ma(n, 1.0, tech.vdd, tech.vdd),
            2.0 * drain_current_ma(p, 1.0, tech.vdd, tech.vdd) / 1.2);
}

TEST_F(SpiceTest, PwlInterpolation) {
  Pwl pwl;
  pwl.points = {{0.0, 0.0}, {10.0, 2.5}};
  EXPECT_DOUBLE_EQ(pwl.at(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(pwl.at(5.0), 1.25);
  EXPECT_DOUBLE_EQ(pwl.at(50.0), 2.5);
  EXPECT_NEAR(pwl.slope_at(5.0), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(pwl.slope_at(50.0), 0.0);
}

TEST_F(SpiceTest, InverterSwitchesFullRail) {
  ChainSpec spec;
  spec.kinds = {CellKind::Inv};
  spec.wn_um = {2.0};
  spec.terminal_load_ff = 20.0;
  spec.input_ramp_ps = 50.0;
  const ChainMeasurement m = measure_chain(lib, spec);
  EXPECT_GT(m.path_delay_ps, 5.0);
  EXPECT_LT(m.path_delay_ps, 500.0);
  EXPECT_GT(m.stage_transition_ps[0], 5.0);
}

TEST_F(SpiceTest, DelayMonotoneInLoad) {
  double prev = 0.0;
  for (double load : {10.0, 30.0, 90.0}) {
    ChainSpec spec;
    spec.kinds = {CellKind::Inv};
    spec.wn_um = {2.0};
    spec.terminal_load_ff = load;
    const ChainMeasurement m = measure_chain(lib, spec);
    EXPECT_GT(m.path_delay_ps, prev) << load;
    prev = m.path_delay_ps;
  }
}

TEST_F(SpiceTest, DelayShrinksWithDrive) {
  auto delay_at = [&](double wn) {
    ChainSpec spec;
    spec.kinds = {CellKind::Inv};
    spec.wn_um = {wn};
    spec.terminal_load_ff = 60.0;
    return measure_chain(lib, spec).path_delay_ps;
  };
  EXPECT_GT(delay_at(1.0), delay_at(4.0));
}

TEST_F(SpiceTest, NorSlowerThanNandAtEqualDrive) {
  auto delay_of = [&](CellKind k) {
    ChainSpec spec;
    spec.kinds = {CellKind::Inv, k, CellKind::Inv};
    spec.wn_um = {2.0, 2.0, 2.0};
    spec.terminal_load_ff = 30.0;
    return measure_chain(lib, spec).path_delay_ps;
  };
  // Worst-case single-input switching: the serial PMOS of the NOR is the
  // weakest structure in the library.
  EXPECT_GT(delay_of(CellKind::Nor3), delay_of(CellKind::Nand3));
}

TEST_F(SpiceTest, BothInputPolaritiesMeasurable) {
  for (bool rising : {true, false}) {
    ChainSpec spec;
    spec.kinds = {CellKind::Inv, CellKind::Nand2};
    spec.wn_um = {2.0, 2.0};
    spec.terminal_load_ff = 25.0;
    spec.input_rising = rising;
    const ChainMeasurement m = measure_chain(lib, spec);
    EXPECT_GT(m.path_delay_ps, 0.0) << rising;
  }
}

TEST_F(SpiceTest, BadSpecThrows) {
  ChainSpec spec;  // empty
  EXPECT_THROW(measure_chain(lib, spec), std::invalid_argument);
  spec.kinds = {CellKind::Inv};
  spec.wn_um = {1.0, 2.0};  // arity mismatch
  EXPECT_THROW(measure_chain(lib, spec), std::invalid_argument);
}

// The paper's validation claim: the closed-form model (eq. 1-3) tracks
// SPICE. We require the model's FO4-style delays to agree with the
// transient simulator within a calibration band, and — more importantly —
// to track the *trend* across loads.
class ModelVsSpiceTest : public ::testing::TestWithParam<double> {};

TEST_P(ModelVsSpiceTest, InverterDelayTracksSimulation) {
  const Technology tech = Technology::cmos025();
  const Library lib(tech);
  const pops::timing::ClosedFormModel dm(lib);
  const auto& inv = lib.cell(CellKind::Inv);
  const double wn = 2.0;
  const double cin = inv.cin_ff(tech, wn);
  const double load = GetParam() * cin;

  // Transient measurement: inv driven by an inv (realistic slope), loaded
  // by `load`.
  ChainSpec spec;
  spec.kinds = {CellKind::Inv, CellKind::Inv};
  spec.wn_um = {wn, wn};
  spec.extra_load_ff = {0.0, load};
  spec.terminal_load_ff = 0.0;
  const ChainMeasurement m = measure_chain(lib, spec);
  const double sim = m.stage_delay_ps[1];

  // Model: the same configuration, both edges averaged (the sim chain
  // exercises one polarity per stage; average is the fair comparison for
  // a symmetric-ish inverter).
  const double slew_in = m.stage_transition_ps[0];
  double model = 0.0;
  for (auto e : {pops::timing::Edge::Rise, pops::timing::Edge::Fall})
    model += 0.5 * dm.delay_ps(inv, e, slew_in, cin,
                               load + inv.cpar_ff(tech, wn));
  // Within 40% across a decade of loads: the closed-form model is a
  // first-order abstraction, and this band is what makes Table 2's
  // "Calcul. vs Simulation" agreement meaningful.
  EXPECT_NEAR(model, sim, 0.40 * sim) << "fanout " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Fanouts, ModelVsSpiceTest,
                         ::testing::Values(2.0, 4.0, 8.0, 16.0));

TEST_F(SpiceTest, ModelTracksLoadTrend) {
  // Correlation check: delays at increasing load must increase in both
  // worlds with similar ratios.
  const pops::timing::ClosedFormModel dm(lib);
  const auto& inv = lib.cell(CellKind::Inv);
  const double wn = 2.0;
  const double cin = inv.cin_ff(tech, wn);

  std::vector<double> sim, model;
  for (double f : {3.0, 12.0}) {
    ChainSpec spec;
    spec.kinds = {CellKind::Inv, CellKind::Inv};
    spec.wn_um = {wn, wn};
    spec.extra_load_ff = {0.0, f * cin};
    const ChainMeasurement m = measure_chain(lib, spec);
    sim.push_back(m.stage_delay_ps[1]);
    model.push_back(dm.delay_ps(inv, pops::timing::Edge::Fall,
                                m.stage_transition_ps[0], cin,
                                f * cin + inv.cpar_ff(tech, wn)));
  }
  const double sim_ratio = sim[1] / sim[0];
  const double model_ratio = model[1] / model[0];
  EXPECT_NEAR(model_ratio, sim_ratio, 0.5 * sim_ratio);
  EXPECT_GT(sim_ratio, 1.5);
}

}  // namespace
